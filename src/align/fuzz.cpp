#include "align/fuzz.h"

#include <map>

#include "common/strings.h"

namespace lce::align {

namespace {

const std::vector<std::string>& string_pool() {
  static const std::vector<std::string> kPool = {
      "10.0.0.0/16", "10.0.1.0/24", "10.0.0.0/29", "192.168.0.0/24", "not-a-cidr",
      "us-east",     "us-west",     "eu-central",  "banana",         "default",
      "dedicated",   "PROVISIONED", "value-x",
  };
  return kPool;
}

}  // namespace

FuzzReport run_fuzz(CloudBackend& emulator, CloudBackend& cloud,
                    const spec::SpecSet& spec, const FuzzOptions& opts) {
  FuzzReport report;
  Rng rng(opts.seed);
  emulator.reset();
  cloud.reset();

  // Pools of ids known on BOTH backends, indexed in lockstep.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> pool;
  std::set<std::string> seen;

  // Flat list of (machine, transition) candidates, internal ones excluded.
  struct Api {
    const spec::StateMachine* m;
    const spec::Transition* t;
  };
  std::vector<Api> apis;
  for (const auto& m : spec.machines) {
    for (const auto& t : m.transitions) {
      if (ends_with(t.name, "BackRef")) continue;
      apis.push_back(Api{&m, &t});
    }
  }
  if (apis.empty()) return report;

  for (std::size_t n = 0; n < opts.max_calls; ++n) {
    const Api& api = apis[rng.uniform(apis.size())];
    ApiRequest emu_req;
    ApiRequest cloud_req;
    emu_req.api = cloud_req.api = api.t->name;

    auto random_ref = [&](const std::string& type, Value& emu_v, Value& cloud_v) {
      auto it = pool.find(type);
      if (it != pool.end() && !it->second.empty() && !rng.chance(0.1)) {
        const auto& pair = it->second[rng.uniform(it->second.size())];
        emu_v = Value::ref(pair.first);
        cloud_v = Value::ref(pair.second);
      } else {
        emu_v = cloud_v = Value::ref("ghost-424242");
      }
    };

    for (const auto& p : api.t->params) {
      if (rng.chance(0.05)) continue;  // occasionally omit a param
      Value ev;
      Value cv;
      switch (p.type.kind) {
        case spec::TypeKind::kRef:
          random_ref(p.type.ref_type, ev, cv);
          break;
        case spec::TypeKind::kBool:
          ev = cv = Value(rng.chance(0.5));
          break;
        case spec::TypeKind::kInt:
          ev = cv = Value(rng.range(-1, 70000));
          break;
        default:
          ev = cv = Value(string_pool()[rng.uniform(string_pool().size())]);
      }
      emu_req.args[p.name] = ev;
      cloud_req.args[p.name] = cv;
    }
    if (api.t->kind != spec::TransitionKind::kCreate) {
      Value ev;
      Value cv;
      random_ref(api.m->name, ev, cv);
      emu_req.args["id"] = ev;
      cloud_req.args["id"] = cv;
    }

    ApiResponse er = emulator.invoke(emu_req);
    ApiResponse cr = cloud.invoke(cloud_req);
    ++report.calls_executed;

    if (er.ok && cr.ok && api.t->kind == spec::TransitionKind::kCreate) {
      const Value* ei = er.data.get("id");
      const Value* ci = cr.data.get("id");
      if (ei != nullptr && ci != nullptr) {
        pool[api.m->name].emplace_back(ei->as_str(), ci->as_str());
      }
    }
    // Keep stores in sync-ish: when only one side created, drop the orphan
    // by ignoring it (pools only track both-sided resources).

    if (!cr.aligned_with(er)) {
      std::string key = strf(api.t->name, "/", cr.ok ? "ok" : cr.code, "-vs-",
                             er.ok ? "ok" : er.code);
      if (seen.insert(key).second) {
        report.discoveries.emplace_back(key, report.calls_executed);
      }
    }
  }
  return report;
}

}  // namespace lce::align
