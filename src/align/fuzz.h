// Random API fuzzing baseline (paper §4.3: "randomly fuzzing the entire
// emulator is inefficient"). Drives both backends in lockstep with random
// calls and counts how many API invocations it takes to surface each
// distinct behavioural discrepancy — the ablation bench compares this
// curve against the symbolic generator's.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/api.h"
#include "common/rng.h"
#include "spec/ast.h"

namespace lce::align {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t max_calls = 20000;
};

struct FuzzReport {
  std::size_t calls_executed = 0;
  /// Distinct divergences (api + ok-pattern + codes) with the call count
  /// at which each was first seen.
  std::vector<std::pair<std::string, std::size_t>> discoveries;
};

/// Fuzz `emulator` against `cloud` using the API surface of `spec`.
FuzzReport run_fuzz(CloudBackend& emulator, CloudBackend& cloud,
                    const spec::SpecSet& spec, const FuzzOptions& opts);

}  // namespace lce::align
