// Parallel differential execution for the alignment loop (paper §4.3).
//
// The differential pass — replay every symbolic trace on the emulator AND
// the reference cloud, record divergences and sweep evidence — is
// embarrassingly parallel *except* that backends are stateful: each replay
// resets and mutates the backend's resource store. Rather than lock one
// backend pair, the executor deep-clones the pair per worker
// (CloudBackend::clone()) and shards the trace corpus across workers in a
// stride pattern. Results land in per-trace slots indexed by the corpus
// order, so the merged output is byte-identical to a serial run for ANY
// worker count — the determinism contract tests/align/parallel_executor_test
// enforces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "align/differ.h"
#include "align/trace_gen.h"
#include "common/api.h"

namespace lce::align {

/// Everything the engine needs from one trace's differential replay:
/// the divergence (if any) plus the cloud's probe outcome, which feeds the
/// enum-precondition evidence maps ("" = probe succeeded, else error code).
struct TraceOutcome {
  std::optional<Discrepancy> discrepancy;
  bool have_probe_outcome = false;
  std::string probe_outcome;
};

class ParallelExecutor {
 public:
  /// workers: 0 = auto (hardware concurrency), 1 = serial, N = N threads.
  ParallelExecutor(CloudBackend& cloud, CloudBackend& emulator, int workers = 0);

  /// Replay every trace on both backends; outcome i corresponds to
  /// traces[i]. Falls back to serial execution on the real backends when
  /// either backend cannot clone() or only one worker is requested.
  std::vector<TraceOutcome> execute(const std::vector<GenTrace>& traces);

  /// The parallelism the last execute() actually used (1 after a serial
  /// fallback); 0 before the first execute().
  int effective_workers() const { return effective_; }

 private:
  CloudBackend& cloud_;
  CloudBackend& emu_;
  int workers_;
  int effective_ = 0;
};

}  // namespace lce::align
