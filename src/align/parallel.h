// Parallel differential execution for the alignment loop (paper §4.3).
//
// The differential pass — replay every symbolic trace on the emulator AND
// the reference cloud, record divergences and sweep evidence — is
// embarrassingly parallel *except* that backends are stateful: each replay
// resets and mutates the backend's resource store. Rather than lock one
// backend pair, the executor deep-clones the pair per worker
// (CloudBackend::clone()) and shards the trace corpus across workers in a
// stride pattern. Results land in per-trace slots indexed by the corpus
// order, so the merged output is byte-identical to a serial run for ANY
// worker count — the determinism contract tests/align/parallel_executor_test
// enforces.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "align/differ.h"
#include "align/trace_gen.h"
#include "common/api.h"

namespace lce::align {

/// Everything the engine needs from one trace's differential replay:
/// the divergence (if any) plus the cloud's probe outcome, which feeds the
/// enum-precondition evidence maps ("" = probe succeeded, else error code).
struct TraceOutcome {
  std::optional<Discrepancy> discrepancy;
  bool have_probe_outcome = false;
  std::string probe_outcome;
};

class ParallelExecutor {
 public:
  /// workers: 0 = auto (hardware concurrency), 1 = serial, N = N threads.
  /// collect_metrics: wrap every worker's backend pair in a
  /// stack::MetricsLayer and aggregate per-API counters across workers
  /// (see metrics()).
  ParallelExecutor(CloudBackend& cloud, CloudBackend& emulator, int workers = 0,
                   bool collect_metrics = false);

  /// Replay every trace on both backends; outcome i corresponds to
  /// traces[i]. Falls back to serial execution on the real backends when
  /// either backend cannot clone() or only one worker is requested.
  std::vector<TraceOutcome> execute(const std::vector<GenTrace>& traces);

  /// The parallelism the last execute() actually used (1 after a serial
  /// fallback); 0 before the first execute().
  int effective_workers() const { return effective_; }

  /// Aggregated {"cloud": ..., "emulator": ...} MetricsLayer snapshots for
  /// the last execute(); null unless collect_metrics. Call/error counts
  /// are identical for every worker count (the per-API workload is fixed
  /// by the trace corpus); latency fields are wall-clock and are — like
  /// RoundStats timings — excluded from the determinism contract.
  const Value& metrics() const { return metrics_; }

 private:
  CloudBackend& cloud_;
  CloudBackend& emu_;
  int workers_;
  bool collect_metrics_;
  int effective_ = 0;
  Value metrics_;
};

}  // namespace lce::align
