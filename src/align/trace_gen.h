// Symbolic trace generation (paper §4.3): "performing symbolic passes over
// the SMs to divide the search space into symbolically equivalent classes,
// based on the check/assert conditions for each state transition".
//
// For every transition of every SM the generator emits:
//  * one HAPPY-PATH trace: dependency-ordered setup (create the containment
//    chain and every referenced resource with compatible attributes), the
//    probe call with arguments satisfying every assert, and a trailing
//    describe (so silent state divergence is observable);
//  * one SINGULAR-VIOLATION trace per assert: identical setup but with
//    exactly that assert's condition falsified (so a failure pinpoints one
//    check — "the SM ensures that there is a singular check violation in
//    the generated test traces");
//  * STATE-SWEEP variants for modify/action transitions: the probe re-run
//    from every reachable value of the machine's enum state variables
//    (drivers found by searching the spec for write-const transitions) —
//    this is what exposes *missing* checks such as the undocumented
//    StartInstance/IncorrectInstanceState behaviour.
//
// Classes whose constraints the solver cannot concretize are skipped and
// reported (the paper's §6 completeness caveat).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/api.h"
#include "spec/ast.h"

namespace lce::align {

enum class ClassKind {
  kHappyPath,
  kAssertViolation,
  kStateSweep,      // enum state var driven to a non-initial member
  kRefAttrSweep,    // ref state var driven non-null before the probe
  kBoolCoupling,    // bool param forced true after driving a bool attr false
  kBoundaryProbe,   // numeric arg at the spec's documented upper bound
  kMemberProbe,     // each documented enum member exercised individually
  kTimerFire,       // advance the virtual clock to a timer clause's deadline
  kTimerInterleave, // API call moves the var off its trigger mid-countdown
};

std::string to_string(ClassKind k);

struct SymbolicClass {
  ClassKind kind = ClassKind::kHappyPath;
  std::string machine;
  std::string transition;
  int assert_index = -1;        // kAssertViolation: which assert is falsified
  std::string expected_code;    // the spec's own prediction ("" = success)
  std::string description;
  // Sweep metadata consumed by the repair engine's predicate inference.
  std::string sweep_attr;       // which attribute was driven
  std::string sweep_value;      // the value it was driven to
  std::string sweep_param;      // kBoolCoupling: the bool param forced true
  std::string bound_param;      // kBoundaryProbe: the probed parameter
  std::int64_t bound_value = 0; // kBoundaryProbe: the probed numeric value
  std::string member_param;     // kMemberProbe: the enum-domain parameter
  std::string member_value;     // kMemberProbe: the documented member probed
};

struct GenTrace {
  Trace trace;
  SymbolicClass cls;
  std::size_t probe_call = 0;  // index of the call exercising the class
};

struct GenStats {
  std::size_t classes_total = 0;
  std::size_t classes_concretized = 0;
  std::vector<std::string> skipped;  // unconcretizable classes, with reason
};

class TraceGenerator {
 public:
  explicit TraceGenerator(const spec::SpecSet& spec);

  /// Traces for one transition.
  std::vector<GenTrace> generate_for(const std::string& machine,
                                     const std::string& transition);

  /// Traces for every transition in the spec.
  std::vector<GenTrace> generate_all();

  const GenStats& stats() const { return stats_; }

 private:
  const spec::SpecSet& spec_;
  GenStats stats_;
};

}  // namespace lce::align
