#include "align/repair.h"

#include <algorithm>
#include <functional>

#include "common/cidr.h"
#include "common/errors.h"
#include "common/strings.h"

namespace lce::align {

namespace {

using spec::BinaryOp;
using spec::ExprKind;
using spec::StateMachine;
using spec::StmtKind;
using spec::Transition;
using spec::TransitionKind;

void ensure_code_registered(const std::string& code) {
  ErrorRegistry::instance().add(code, "Request failed ({api}).");
}

spec::StmtPtr assert_stmt(spec::ExprPtr pred, std::string code) {
  auto s = std::make_unique<spec::Stmt>();
  s->kind = StmtKind::kAssert;
  s->expr = std::move(pred);
  s->error_code = std::move(code);
  return s;
}

/// Insert a precondition after any leading exists-asserts (reference
/// validation fires first on the cloud too).
void insert_precondition(Transition& t, spec::StmtPtr stmt) {
  std::size_t pos = 0;
  while (pos < t.body.size() && t.body[pos]->kind == StmtKind::kAssert &&
         t.body[pos]->error_code == errc::kResourceNotFound) {
    ++pos;
  }
  t.body.insert(t.body.begin() + static_cast<std::ptrdiff_t>(pos), std::move(stmt));
}

spec::Type type_for_value(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBool: return spec::Type::boolean();
    case ValueKind::kInt: return spec::Type::integer();
    case ValueKind::kRef: return spec::Type::ref();
    case ValueKind::kList: return spec::Type::list();
    default: return spec::Type::str();
  }
}

}  // namespace

std::string to_string(RepairAction::Kind k) {
  switch (k) {
    case RepairAction::Kind::kPatchErrorCode: return "patch-error-code";
    case RepairAction::Kind::kDropAssert: return "drop-assert";
    case RepairAction::Kind::kAddStateCheck: return "add-state-check";
    case RepairAction::Kind::kAddNullGuard: return "add-null-guard";
    case RepairAction::Kind::kAddBoolCoupling: return "add-bool-coupling";
    case RepairAction::Kind::kTightenBound: return "tighten-bound";
    case RepairAction::Kind::kTightenEnum: return "tighten-enum";
    case RepairAction::Kind::kAddReclaimGuard: return "add-reclaim-guard";
    case RepairAction::Kind::kAddParentAttach: return "add-parent-attach";
    case RepairAction::Kind::kStripDescribeWrites: return "strip-describe-writes";
    case RepairAction::Kind::kPatchWriteLiteral: return "patch-write-literal";
    case RepairAction::Kind::kAddWriteEffect: return "add-write-effect";
    case RepairAction::Kind::kAddStateVar: return "add-state-var";
    case RepairAction::Kind::kDropStateVar: return "drop-state-var";
    case RepairAction::Kind::kPatchInitial: return "patch-initial";
  }
  return "?";
}

std::string RepairAction::to_text() const {
  return strf("[", to_string(kind), "] ", machine,
              transition.empty() ? "" : strf("::", transition), ": ", detail);
}

Repairer::Repairer(interp::Interpreter& emulator, CloudBackend& cloud)
    : emu_(emulator), cloud_(cloud) {}

interp::FailureSite Repairer::emu_failure_at(const Discrepancy& d) {
  emu_.reset();
  std::vector<ApiResponse> prior;
  for (std::size_t i = 0; i <= d.call_index && i < d.trace.calls.size(); ++i) {
    prior.push_back(emu_.invoke(resolve_placeholders(d.trace.calls[i], prior)));
  }
  return emu_.last_failure();
}

ApiRequest Repairer::cloud_request_at(const Discrepancy& d,
                                      std::vector<ApiResponse>* prior_out) {
  cloud_.reset();
  std::vector<ApiResponse> prior;
  ApiRequest resolved;
  for (std::size_t i = 0; i <= d.call_index && i < d.trace.calls.size(); ++i) {
    resolved = resolve_placeholders(d.trace.calls[i], prior);
    prior.push_back(cloud_.invoke(resolved));
  }
  if (prior_out != nullptr) *prior_out = std::move(prior);
  return resolved;
}

std::optional<RepairAction> Repairer::repair(const Discrepancy& d) {
  switch (d.kind) {
    case DivergenceKind::kErrorCodeMismatch: return repair_code_mismatch(d);
    case DivergenceKind::kCloudOkEmuErr: return repair_spurious_failure(d);
    case DivergenceKind::kCloudErrEmuOk: return repair_missing_check(d);
    case DivergenceKind::kPayloadMismatch: return repair_payload(d);
  }
  return std::nullopt;
}

std::optional<RepairAction> Repairer::repair_code_mismatch(const Discrepancy& d) {
  interp::FailureSite site = emu_failure_at(d);
  spec::SpecSet spec = emu_.spec().clone();
  StateMachine* m = spec.find_machine(site.machine);
  Transition* t = m != nullptr ? m->find_transition(site.transition) : nullptr;

  if (site.origin == interp::FailureSite::Origin::kAssert && t != nullptr) {
    for (auto& s : t->body) {
      if (s->kind == StmtKind::kAssert && s->error_code == site.error_code &&
          s->expr && s->expr->to_text() == site.assert_text) {
        ensure_code_registered(d.cloud.code);
        std::string old = s->error_code;
        s->error_code = d.cloud.code;
        emu_.replace_spec(std::move(spec));
        return RepairAction{RepairAction::Kind::kPatchErrorCode, site.machine,
                            site.transition,
                            strf("'", old, "' -> '", d.cloud.code, "' (learned from cloud)")};
      }
    }
  }
  if (site.origin == interp::FailureSite::Origin::kFramework && t != nullptr &&
      t->kind == TransitionKind::kDestroy) {
    // The framework reclaim guard fired with DependencyViolation but the
    // cloud uses a different code: encode an explicit assert that fires
    // first with the learned code.
    ensure_code_registered(d.cloud.code);
    auto pred = spec::make_binary(
        BinaryOp::kEq,
        spec::make_builtin("child_count", [] {
          std::vector<spec::ExprPtr> v;
          v.push_back(spec::make_literal(Value("")));
          return v;
        }()),
        spec::make_literal(Value(0)));
    insert_precondition(*t, assert_stmt(std::move(pred), d.cloud.code));
    emu_.replace_spec(std::move(spec));
    return RepairAction{RepairAction::Kind::kAddReclaimGuard, site.machine, site.transition,
                        strf("explicit reclaim guard with learned code '", d.cloud.code, "'")};
  }
  return std::nullopt;
}

std::optional<RepairAction> Repairer::repair_spurious_failure(const Discrepancy& d) {
  interp::FailureSite site = emu_failure_at(d);
  spec::SpecSet spec = emu_.spec().clone();
  StateMachine* m = spec.find_machine(site.machine);
  Transition* t = m != nullptr ? m->find_transition(site.transition) : nullptr;
  if (t == nullptr) return std::nullopt;

  if (site.origin == interp::FailureSite::Origin::kAssert) {
    for (std::size_t i = 0; i < t->body.size(); ++i) {
      const auto& s = t->body[i];
      if (s->kind == StmtKind::kAssert && s->error_code == site.error_code && s->expr &&
          s->expr->to_text() == site.assert_text) {
        std::string text = s->expr->to_text();
        t->body.erase(t->body.begin() + static_cast<std::ptrdiff_t>(i));
        emu_.replace_spec(std::move(spec));
        return RepairAction{RepairAction::Kind::kDropAssert, site.machine, site.transition,
                            strf("cloud permits it; dropped assert ", text)};
      }
    }
    return std::nullopt;
  }

  if (site.origin == interp::FailureSite::Origin::kWriteCheck) {
    const std::string& var = site.assert_text;  // carries the state var name
    if (t->kind == TransitionKind::kDescribe) {
      // Describe must be read-only: strip its writes wholesale.
      spec::Body kept;
      for (auto& s : t->body) {
        if (s->kind != StmtKind::kWrite) kept.push_back(std::move(s));
      }
      t->body = std::move(kept);
      emu_.replace_spec(std::move(spec));
      return RepairAction{RepairAction::Kind::kStripDescribeWrites, site.machine,
                          site.transition, "describe() made read-only"};
    }
    // Learn the correct value from the cloud: run the trace there, then
    // describe the resource and read the attribute back.
    std::vector<ApiResponse> prior;
    ApiRequest probe = cloud_request_at(d, &prior);
    if (!prior.empty() && prior.back().ok) {
      const Transition* describe = nullptr;
      for (const auto& tt : m->transitions) {
        if (tt.kind == TransitionKind::kDescribe) describe = &tt;
      }
      std::string target =
          !probe.target.empty()           ? probe.target
          : probe.args.count("id") != 0   ? std::string(probe.args.at("id").as_str())
                                          : "";
      if (describe != nullptr && !target.empty()) {
        ApiResponse resp =
            cloud_.invoke(ApiRequest{describe->name, {{"id", Value::ref(target)}}, ""});
        const Value* learned = resp.ok ? resp.data.get(var) : nullptr;
        if (learned != nullptr) {
          for (auto& s : t->body) {
            if (s->kind == StmtKind::kWrite && s->var == var && s->expr &&
                s->expr->kind == ExprKind::kLiteral) {
              s->expr = spec::make_literal(*learned);
              emu_.replace_spec(std::move(spec));
              return RepairAction{RepairAction::Kind::kPatchWriteLiteral, site.machine,
                                  site.transition,
                                  strf("write(", var, ") literal learned as ",
                                       learned->to_text())};
            }
          }
        }
      }
    }
    return std::nullopt;
  }

  if (site.origin == interp::FailureSite::Origin::kFramework &&
      t->kind == TransitionKind::kCreate && !m->parent_type.empty()) {
    // The create lost its attach_parent (the framework guard rejected the
    // orphan). Reattach via the ref param typed to the parent.
    for (const auto& p : t->params) {
      if (p.type.kind == spec::TypeKind::kRef && p.type.ref_type == m->parent_type) {
        auto s = std::make_unique<spec::Stmt>();
        s->kind = StmtKind::kAttachParent;
        s->expr = spec::make_var(p.name);
        t->body.insert(t->body.begin(), std::move(s));
        emu_.replace_spec(std::move(spec));
        return RepairAction{RepairAction::Kind::kAddParentAttach, site.machine,
                            site.transition, strf("reattached via param '", p.name, "'")};
      }
    }
  }
  return std::nullopt;
}

std::optional<RepairAction> Repairer::repair_missing_check(const Discrepancy& d) {
  const std::string& code = d.cloud.code;
  spec::SpecSet spec = emu_.spec().clone();
  StateMachine* m = spec.find_machine(d.cls.machine);
  Transition* t = m != nullptr ? m->find_transition(d.cls.transition) : nullptr;
  if (t == nullptr) return std::nullopt;

  switch (d.cls.kind) {
    case ClassKind::kRefAttrSweep: {
      ensure_code_registered(code);
      auto pred = spec::make_builtin("is_null", [&] {
        std::vector<spec::ExprPtr> v;
        v.push_back(spec::make_field(spec::make_self(), d.cls.sweep_attr));
        return v;
      }());
      insert_precondition(*t, assert_stmt(std::move(pred), code));
      emu_.replace_spec(std::move(spec));
      return RepairAction{RepairAction::Kind::kAddNullGuard, d.cls.machine, d.cls.transition,
                          strf("learned: fails with '", code, "' while '", d.cls.sweep_attr,
                               "' is attached")};
    }
    case ClassKind::kBoolCoupling: {
      ensure_code_registered(code);
      auto pred = spec::make_binary(
          BinaryOp::kOr,
          spec::make_unary(spec::UnaryOp::kNot, spec::make_var(d.cls.sweep_param)),
          spec::make_field(spec::make_self(), d.cls.sweep_attr));
      insert_precondition(*t, assert_stmt(std::move(pred), code));
      emu_.replace_spec(std::move(spec));
      return RepairAction{
          RepairAction::Kind::kAddBoolCoupling, d.cls.machine, d.cls.transition,
          strf("learned: '", d.cls.sweep_param, "'=true requires '", d.cls.sweep_attr, "'")};
    }
    case ClassKind::kBoundaryProbe: {
      // Re-learn the true upper bound by probing the cloud downward from
      // the documented bound.
      std::int64_t doc_hi = d.cls.bound_value;
      std::int64_t true_hi = -1;
      for (std::int64_t v = doc_hi - 1; v >= doc_hi - 8 && v >= 0; --v) {
        Trace probe_trace = d.trace;
        ApiRequest& probe = probe_trace.calls[d.call_index];
        auto it = probe.args.find(d.cls.bound_param);
        if (it == probe.args.end()) break;
        if (it->second.is_int()) {
          it->second = Value(v);
        } else {
          auto cur = Cidr::parse(it->second.as_str());
          if (!cur) break;
          it->second = Value(Cidr(cur->base(), static_cast<int>(v)).to_string());
        }
        auto resp = run_trace(cloud_, probe_trace);
        if (resp[d.call_index].ok) {
          true_hi = v;
          break;
        }
      }
      if (true_hi < 0) return std::nullopt;
      // Patch the spec's bound literal: the `<= doc_hi` comparison.
      bool patched = false;
      for (auto& s : t->body) {
        if (s->kind != StmtKind::kAssert || !s->expr) continue;
        std::function<void(spec::Expr&)> walk = [&](spec::Expr& e) {
          if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kLe &&
              e.kids[1]->kind == ExprKind::kLiteral && e.kids[1]->literal.is_int() &&
              e.kids[1]->literal.as_int() == doc_hi) {
            e.kids[1] = spec::make_literal(Value(true_hi));
            patched = true;
          }
          for (auto& k : e.kids) walk(*k);
        };
        walk(*s->expr);
      }
      if (!patched) return std::nullopt;
      emu_.replace_spec(std::move(spec));
      return RepairAction{RepairAction::Kind::kTightenBound, d.cls.machine, d.cls.transition,
                          strf("'", d.cls.bound_param, "' bound re-learned: ", doc_hi, " -> ",
                               true_hi, " (docs overstated)")};
    }
    case ClassKind::kMemberProbe: {
      // The docs listed a member the cloud rejects: remove it from the
      // in_list assert (and the emulator's error code for it becomes the
      // assert's own, which the next round verifies).
      bool patched = false;
      for (auto& s : t->body) {
        if (s->kind != StmtKind::kAssert || !s->expr) continue;
        std::function<void(spec::Expr&)> walk = [&](spec::Expr& e) {
          if (e.kind == ExprKind::kBuiltin && e.name == "in_list" && !e.kids.empty()) {
            const auto* head = e.kids[0].get();
            if (head->kind == ExprKind::kVar && head->name == d.cls.member_param) {
              auto& kids = e.kids;
              for (std::size_t i = 1; i < kids.size(); ++i) {
                if (kids[i]->kind == ExprKind::kLiteral &&
                    kids[i]->literal.is_str() &&
                    kids[i]->literal.as_str() == d.cls.member_value) {
                  kids.erase(kids.begin() + static_cast<std::ptrdiff_t>(i));
                  patched = true;
                  break;
                }
              }
            }
          }
          for (auto& k : e.kids) walk(*k);
        };
        walk(*s->expr);
      }
      if (!patched) return std::nullopt;
      // The assert's code may also need the cloud's: adopt it.
      ensure_code_registered(code);
      for (auto& s : t->body) {
        if (s->kind != StmtKind::kAssert || !s->expr) continue;
        std::string text = s->expr->to_text();
        if (text.find("in_list") != std::string::npos &&
            text.find(d.cls.member_param) != std::string::npos) {
          s->error_code = code;
        }
      }
      emu_.replace_spec(std::move(spec));
      return RepairAction{RepairAction::Kind::kTightenEnum, d.cls.machine,
                          d.cls.transition,
                          strf("stale member '", d.cls.member_value,
                               "' removed from '", d.cls.member_param,
                               "' domain (cloud rejects it with '", code, "')")};
    }
    default: {
      // State-sweep divergences belong to the evidence-driven inference
      // path; a dependency-style fallback here would guess wrong guards.
      if (d.cls.kind == ClassKind::kStateSweep) return std::nullopt;
      // Fallback heuristics: dependency-style failures.
      if (code == errc::kDependencyViolation || code == errc::kResourceInUse) {
        // Is some ref attr attached on the emulator at probe time?
        emu_failure_at(d);  // replay; emulator state now at post-probe
        // Re-run prefix only:
        emu_.reset();
        std::vector<ApiResponse> prior;
        for (std::size_t i = 0; i < d.call_index; ++i) {
          prior.push_back(emu_.invoke(resolve_placeholders(d.trace.calls[i], prior)));
        }
        ApiRequest probe = resolve_placeholders(d.trace.calls[d.call_index], prior);
        std::string target =
            !probe.target.empty()           ? probe.target
            : probe.args.count("id") != 0   ? std::string(probe.args.at("id").as_str())
                                            : "";
        const interp::Resource* self = emu_.store().find(target);
        if (self != nullptr) {
          for (const auto& sv : m->states) {
            if (sv.type.kind != spec::TypeKind::kRef) continue;
            const Value* cur = self->attrs.get(sv.name);
            if (cur == nullptr || cur->is_null()) continue;
            ensure_code_registered(code);
            auto pred = spec::make_builtin("is_null", [&] {
              std::vector<spec::ExprPtr> v;
              v.push_back(spec::make_field(spec::make_self(), sv.name));
              return v;
            }());
            insert_precondition(*t, assert_stmt(std::move(pred), code));
            emu_.replace_spec(std::move(spec));
            return RepairAction{RepairAction::Kind::kAddNullGuard, d.cls.machine,
                                d.cls.transition,
                                strf("learned guard on '", sv.name, "' -> '", code, "'")};
          }
          if (emu_.store().child_count(target) != 0) {
            ensure_code_registered(code);
            auto pred = spec::make_binary(
                BinaryOp::kEq,
                spec::make_builtin("child_count", [] {
                  std::vector<spec::ExprPtr> v;
                  v.push_back(spec::make_literal(Value("")));
                  return v;
                }()),
                spec::make_literal(Value(0)));
            insert_precondition(*t, assert_stmt(std::move(pred), code));
            emu_.replace_spec(std::move(spec));
            return RepairAction{RepairAction::Kind::kAddReclaimGuard, d.cls.machine,
                                d.cls.transition, strf("learned code '", code, "'")};
          }
        }
      }
      return std::nullopt;
    }
  }
}

std::optional<RepairAction> Repairer::repair_state_check(const std::string& machine,
                                                         const std::string& transition,
                                                         const std::string& attr,
                                                         const StateEvidence& evidence) {
  // Discriminating evidence: at least one passing and one failing member.
  std::vector<std::string> passing;
  std::map<std::string, int> code_votes;
  for (const auto& [member, outcome] : evidence.outcome_by_member) {
    if (outcome.empty()) {
      passing.push_back(member);
    } else {
      ++code_votes[outcome];
    }
  }
  if (passing.empty() || code_votes.empty()) return std::nullopt;
  std::string code = code_votes.begin()->first;
  for (const auto& [c, n] : code_votes) {
    if (n > code_votes[code]) code = c;
  }

  spec::SpecSet spec = emu_.spec().clone();
  StateMachine* m = spec.find_machine(machine);
  Transition* t = m != nullptr ? m->find_transition(transition) : nullptr;
  if (t == nullptr) return std::nullopt;
  ensure_code_registered(code);
  // Literal types follow the swept attribute: bool sweeps compare against
  // true/false values, enum sweeps against member strings.
  const spec::StateVar* sv = m->find_state(attr);
  bool is_bool = sv != nullptr && sv->type.kind == spec::TypeKind::kBool;
  std::vector<spec::ExprPtr> args;
  args.push_back(spec::make_field(spec::make_self(), attr));
  for (const auto& v : passing) {
    args.push_back(spec::make_literal(is_bool ? Value(v == "true") : Value(v)));
  }
  insert_precondition(*t, assert_stmt(spec::make_builtin("in_list", std::move(args)), code));
  emu_.replace_spec(std::move(spec));
  return RepairAction{
      RepairAction::Kind::kAddStateCheck, machine, transition,
      strf("learned: only valid from ", attr, " in {", join(passing, ", "), "}, else '",
           code, "'")};
}

std::optional<RepairAction> Repairer::repair_payload(const Discrepancy& d) {
  if (!d.cloud.data.is_map() || !d.emulator.data.is_map()) return std::nullopt;
  spec::SpecSet spec = emu_.spec().clone();

  // Identify the machine whose payload diverged: the probe call's owner.
  const std::string& api = d.trace.calls[d.call_index].api;
  auto [mc, tc] = spec.find_api(api);
  if (mc == nullptr || tc == nullptr) return std::nullopt;
  StateMachine* m = spec.find_machine(mc->name);
  Transition* t = m->find_transition(tc->name);

  // 1. Keys present on the cloud but missing from the emulator: a state
  //    variable the docs (or the LLM) lost.
  for (const auto& [key, cloud_v] : d.cloud.data.as_map()) {
    if (d.emulator.data.has(key)) continue;
    spec::StateVar sv;
    sv.name = key;
    sv.type = type_for_value(cloud_v);
    sv.initial = cloud_v;
    m->states.push_back(std::move(sv));
    emu_.replace_spec(std::move(spec));
    return RepairAction{RepairAction::Kind::kAddStateVar, m->name, "",
                        strf("state '", key, "' learned from cloud payload (initial ",
                             cloud_v.to_text(), ")")};
  }
  // 2. Keys the emulator invents: drop the hallucinated state variable
  //    (and any writes to it).
  for (const auto& [key, emu_v] : d.emulator.data.as_map()) {
    (void)emu_v;
    if (d.cloud.data.has(key)) continue;
    m->states.erase(std::remove_if(m->states.begin(), m->states.end(),
                                   [&](const spec::StateVar& sv) { return sv.name == key; }),
                    m->states.end());
    for (auto& tt : m->transitions) {
      tt.body.erase(std::remove_if(tt.body.begin(), tt.body.end(),
                                   [&](const spec::StmtPtr& s) {
                                     return s->kind == StmtKind::kWrite && s->var == key;
                                   }),
                    tt.body.end());
    }
    emu_.replace_spec(std::move(spec));
    return RepairAction{RepairAction::Kind::kDropStateVar, m->name, "",
                        strf("dropped hallucinated state '", key, "'")};
  }
  // 3. Same keys, different values.
  for (const auto& [key, cloud_v] : d.cloud.data.as_map()) {
    const Value* emu_v = d.emulator.data.get(key);
    if (emu_v == nullptr || *emu_v == cloud_v) continue;
    if (cloud_v.is_ref() && emu_v->is_ref()) continue;  // ids compare equal

    if (t->kind == TransitionKind::kCreate) {
      // Wrong value straight out of create: fix the write literal when one
      // exists, else the initial.
      for (auto& s : t->body) {
        if (s->kind == StmtKind::kWrite && s->var == key && s->expr &&
            s->expr->kind == ExprKind::kLiteral) {
          s->expr = spec::make_literal(cloud_v);
          emu_.replace_spec(std::move(spec));
          return RepairAction{RepairAction::Kind::kPatchWriteLiteral, m->name, t->name,
                              strf("write(", key, ") learned as ", cloud_v.to_text())};
        }
      }
      for (auto& sv : m->states) {
        if (sv.name == key) {
          sv.initial = cloud_v;
          emu_.replace_spec(std::move(spec));
          return RepairAction{RepairAction::Kind::kPatchInitial, m->name, "",
                              strf("initial '", key, "' learned as ", cloud_v.to_text())};
        }
      }
    }
    if (t->kind == TransitionKind::kDescribe && d.call_index > 0) {
      // The divergence is the footprint of the PREVIOUS call: a modify
      // whose effect the spec lost (silent transition).
      const ApiRequest& prev = d.trace.calls[d.call_index - 1];
      auto [pm, pt] = spec.find_api(prev.api);
      if (pm != nullptr && pt != nullptr && pm->name == m->name) {
        Transition* prev_t = m->find_transition(pt->name);
        // Prefer wiring the effect to a parameter carrying the value.
        std::string source_param;
        for (const auto& [pname, pval] : prev.args) {
          if (pname != "id" && pval == cloud_v) source_param = pname;
        }
        auto w = std::make_unique<spec::Stmt>();
        w->kind = StmtKind::kWrite;
        w->var = key;
        w->expr = source_param.empty() ? spec::make_literal(cloud_v)
                                       : spec::make_var(source_param);
        prev_t->body.push_back(std::move(w));
        emu_.replace_spec(std::move(spec));
        return RepairAction{
            RepairAction::Kind::kAddWriteEffect, m->name, prev_t->name,
            strf("learned effect: ", prev_t->name, " sets '", key, "' ",
                 source_param.empty() ? strf("to ", cloud_v.to_text())
                                      : strf("from param '", source_param, "'"))};
      }
    }
  }
  return std::nullopt;
}

}  // namespace lce::align
