// Diagnosis and repair (paper §4.3): "we feed the LLM with the delta to
// diagnose the error ... Eventually, based on the diagnoses, the LLM
// updates the emulator to align with the cloud behavior."
//
// Here the LLM's diagnosis step is a rule-based synthesizer that *learns
// from the oracle*: predicates are inferred from observed pass/fail
// outcomes across symbolic classes (enum-state sweeps), numeric bounds are
// re-learned by probing the cloud at candidate boundaries, and effect
// values are read back from the cloud's describe responses. Every fix is a
// grammar-level edit to the learned SpecSet — the repaired emulator stays
// an executable specification.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "align/differ.h"
#include "interp/interpreter.h"

namespace lce::align {

struct RepairAction {
  enum class Kind {
    kPatchErrorCode,    // assert kept, code relabelled to the cloud's
    kDropAssert,        // cloud permits what the spec forbade
    kAddStateCheck,     // inferred in_list(self.attr, ...) precondition
    kAddNullGuard,      // inferred is_null(self.attr) dependency guard
    kAddBoolCoupling,   // inferred (!param || self.attr) coupling
    kTightenBound,      // numeric bound re-learned by probing the cloud
    kTightenEnum,       // stale documented enum member removed
    kAddReclaimGuard,   // explicit children-reclaimed assert (code learned)
    kAddParentAttach,   // create() reattached to its containment parent
    kStripDescribeWrites,  // describe() made read-only again
    kPatchWriteLiteral, // write literal read back from the cloud
    kAddWriteEffect,    // missing modify effect synthesized
    kAddStateVar,       // state variable learned from the cloud's payload
    kDropStateVar,      // hallucinated state variable removed
    kPatchInitial,      // initial value read back from the cloud
  };
  Kind kind;
  std::string machine;
  std::string transition;  // "" for machine-level repairs
  std::string detail;

  std::string to_text() const;
};

std::string to_string(RepairAction::Kind k);

/// Aggregated evidence for enum-precondition inference: per state member,
/// the cloud's outcome for the probe transition ("" = success, else code).
struct StateEvidence {
  std::map<std::string, std::string> outcome_by_member;
};

class Repairer {
 public:
  Repairer(interp::Interpreter& emulator, CloudBackend& cloud);

  /// Try to repair `d`; on success the emulator's spec has been updated
  /// and the action describes the edit.
  std::optional<RepairAction> repair(const Discrepancy& d);

  /// Inferred-state-check repair driven by sweep evidence (engine calls
  /// this for CloudErrEmuOk discrepancies on state sweeps / happy paths).
  std::optional<RepairAction> repair_state_check(const std::string& machine,
                                                 const std::string& transition,
                                                 const std::string& attr,
                                                 const StateEvidence& evidence);

 private:
  /// Replay d's trace on the emulator and return the failure site of the
  /// diverging call.
  interp::FailureSite emu_failure_at(const Discrepancy& d);

  /// Replay d's trace on the cloud and return the probe's resolved request
  /// (with backend-local ids).
  ApiRequest cloud_request_at(const Discrepancy& d, std::vector<ApiResponse>* prior);

  std::optional<RepairAction> repair_code_mismatch(const Discrepancy& d);
  std::optional<RepairAction> repair_spurious_failure(const Discrepancy& d);
  std::optional<RepairAction> repair_missing_check(const Discrepancy& d);
  std::optional<RepairAction> repair_payload(const Discrepancy& d);

  interp::Interpreter& emu_;
  CloudBackend& cloud_;
};

}  // namespace lce::align
