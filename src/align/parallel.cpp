#include "align/parallel.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "stack/layers.h"

namespace lce::align {

namespace {

/// One trace's full differential replay against a (cloud, emulator) pair.
/// Pure function of the pair's behaviour: both run_trace and diff_trace
/// reset the backend before replaying, so outcomes do not depend on which
/// worker (or which clone) executes them.
TraceOutcome replay_one(CloudBackend& cloud, CloudBackend& emulator,
                        const GenTrace& g) {
  TraceOutcome out;
  out.discrepancy = diff_trace(cloud, emulator, g);
  // Sweep and happy-path probes additionally contribute the cloud's
  // outcome to the engine's enum-precondition evidence.
  bool wants_outcome =
      (g.cls.kind == ClassKind::kStateSweep || g.cls.kind == ClassKind::kHappyPath) &&
      g.probe_call < g.trace.calls.size();
  if (wants_outcome) {
    std::vector<ApiResponse> cloud_resp = run_trace(cloud, g.trace);
    out.have_probe_outcome = true;
    out.probe_outcome =
        cloud_resp[g.probe_call].ok ? "" : cloud_resp[g.probe_call].code;
  }
  return out;
}

}  // namespace

ParallelExecutor::ParallelExecutor(CloudBackend& cloud, CloudBackend& emulator,
                                   int workers, bool collect_metrics)
    : cloud_(cloud), emu_(emulator), workers_(workers),
      collect_metrics_(collect_metrics) {}

std::vector<TraceOutcome> ParallelExecutor::execute(
    const std::vector<GenTrace>& traces) {
  std::vector<TraceOutcome> out(traces.size());
  metrics_ = Value();

  int w = workers_ > 0 ? workers_ : ThreadPool::hardware_workers();
  w = std::min<int>(w, static_cast<int>(traces.size()));
  w = std::max(w, 1);

  // Per-worker backend clones. Each worker owns one independent pair, so
  // replays never contend; a backend that cannot clone forces serial mode.
  std::vector<std::pair<std::unique_ptr<CloudBackend>, std::unique_ptr<CloudBackend>>>
      pairs;
  if (w > 1) {
    for (int i = 0; i < w; ++i) {
      auto c = cloud_.clone();
      auto e = emu_.clone();
      if (!c || !e) {
        pairs.clear();
        w = 1;
        break;
      }
      pairs.emplace_back(std::move(c), std::move(e));
    }
  }
  effective_ = w;

  // Per-worker observability: each worker's pair is wrapped in its own
  // MetricsLayer (no cross-worker contention); counters merge after the
  // barrier. The layers forward every call unchanged, so replay behaviour
  // — and therefore the determinism contract — is untouched.
  std::vector<std::unique_ptr<stack::MetricsLayer>> cloud_metrics;
  std::vector<std::unique_ptr<stack::MetricsLayer>> emu_metrics;
  auto wrap = [&](CloudBackend& c, CloudBackend& e) {
    cloud_metrics.push_back(std::make_unique<stack::MetricsLayer>());
    cloud_metrics.back()->attach(c);
    emu_metrics.push_back(std::make_unique<stack::MetricsLayer>());
    emu_metrics.back()->attach(e);
  };

  if (w <= 1) {
    CloudBackend* c = &cloud_;
    CloudBackend* e = &emu_;
    if (collect_metrics_) {
      wrap(*c, *e);
      c = cloud_metrics.back().get();
      e = emu_metrics.back().get();
    }
    for (std::size_t i = 0; i < traces.size(); ++i) {
      out[i] = replay_one(*c, *e, traces[i]);
    }
  } else {
    ThreadPool pool(w);
    for (int k = 0; k < w; ++k) {
      CloudBackend* c = pairs[static_cast<std::size_t>(k)].first.get();
      CloudBackend* e = pairs[static_cast<std::size_t>(k)].second.get();
      if (collect_metrics_) {
        wrap(*c, *e);
        c = cloud_metrics.back().get();
        e = emu_metrics.back().get();
      }
      pool.submit([&, c, e, k] {
        // Stride sharding: worker k owns slots k, k+w, k+2w, ... Disjoint
        // result slots mean no synchronisation on the output vector.
        for (std::size_t i = static_cast<std::size_t>(k); i < traces.size();
             i += static_cast<std::size_t>(w)) {
          out[i] = replay_one(*c, *e, traces[i]);
        }
      });
    }
    pool.wait();
  }

  if (collect_metrics_) {
    stack::MetricsLayer cloud_total;
    stack::MetricsLayer emu_total;
    for (const auto& m : cloud_metrics) cloud_total.merge_from(*m);
    for (const auto& m : emu_metrics) emu_total.merge_from(*m);
    metrics_ = Value(Value::Map{{"cloud", cloud_total.metrics()},
                                {"emulator", emu_total.metrics()}});
  }
  return out;
}

}  // namespace lce::align
