#include "align/differ.h"

#include <set>

#include "common/strings.h"

namespace lce::align {

std::string to_string(DivergenceKind k) {
  switch (k) {
    case DivergenceKind::kCloudErrEmuOk: return "cloud-err-emu-ok";
    case DivergenceKind::kCloudOkEmuErr: return "cloud-ok-emu-err";
    case DivergenceKind::kErrorCodeMismatch: return "error-code-mismatch";
    case DivergenceKind::kPayloadMismatch: return "payload-mismatch";
  }
  return "?";
}

std::string Discrepancy::to_text() const {
  std::string out =
      strf("[", to_string(kind), "] ", trace.label, " call #", call_index, " ",
           call_index < trace.calls.size() ? trace.calls[call_index].api : "?", "\n");
  out += strf("  cloud:    ", cloud.to_text(), "\n");
  out += strf("  emulator: ", emulator.to_text());
  return out;
}

namespace {

DivergenceKind classify(const ApiResponse& cloud, const ApiResponse& emu) {
  if (!cloud.ok && emu.ok) return DivergenceKind::kCloudErrEmuOk;
  if (cloud.ok && !emu.ok) return DivergenceKind::kCloudOkEmuErr;
  if (!cloud.ok && !emu.ok) return DivergenceKind::kErrorCodeMismatch;
  return DivergenceKind::kPayloadMismatch;
}

/// Call indices referenced by "$k.field" placeholders in a value tree.
void collect_deps(const Value& v, std::set<std::size_t>& deps) {
  if (v.is_str() || v.is_ref()) {
    std::string_view s = v.as_str();
    if (s.size() > 2 && s[0] == '$') {
      std::size_t dot = s.find('.');
      std::int64_t k = -1;
      if (dot != std::string_view::npos &&
          parse_int(s.substr(1, dot - 1), k) && k >= 0) {
        deps.insert(static_cast<std::size_t>(k));
      }
    }
    return;
  }
  if (v.is_list()) {
    for (const auto& e : v.as_list()) collect_deps(e, deps);
  }
  if (v.is_map()) {
    for (const auto& [_, e] : v.as_map()) collect_deps(e, deps);
  }
}

std::set<std::size_t> call_deps(const ApiRequest& req) {
  std::set<std::size_t> deps;
  for (const auto& [_, v] : req.args) collect_deps(v, deps);
  collect_deps(Value(req.target), deps);
  return deps;
}

/// Remove call `victim` from a trace, remapping all "$k" placeholders.
/// Returns nullopt when any surviving call depends on the victim.
std::optional<Trace> remove_call(const Trace& t, std::size_t victim) {
  for (std::size_t i = victim + 1; i < t.calls.size(); ++i) {
    if (call_deps(t.calls[i]).count(victim) != 0) return std::nullopt;
  }
  auto remap_value = [&](const Value& v) -> Value {
    if (!(v.is_str() || v.is_ref())) return v;
    std::string_view s = v.as_str();
    if (s.size() <= 2 || s[0] != '$') return v;
    std::size_t dot = s.find('.');
    std::int64_t k = -1;
    if (dot == std::string_view::npos || !parse_int(s.substr(1, dot - 1), k) || k < 0) {
      return v;
    }
    std::size_t idx = static_cast<std::size_t>(k);
    if (idx > victim) --idx;
    std::string out = strf("$", idx, s.substr(dot));
    return v.is_ref() ? Value::ref(out) : Value(out);
  };
  Trace shrunk;
  shrunk.label = t.label + "/shrunk";
  for (std::size_t i = 0; i < t.calls.size(); ++i) {
    if (i == victim) continue;
    ApiRequest req = t.calls[i];
    for (auto& [_, v] : req.args) {
      if (v.is_list()) {
        Value::List items = v.as_list();
        for (auto& e : items) e = remap_value(e);
        v = Value(std::move(items));
      } else {
        v = remap_value(v);
      }
    }
    req.target = std::string(remap_value(Value(req.target)).as_str());
    shrunk.calls.push_back(std::move(req));
  }
  return shrunk;
}

}  // namespace

std::optional<Discrepancy> diff_trace(CloudBackend& cloud, CloudBackend& emulator,
                                      const GenTrace& gen) {
  auto cloud_resp = run_trace(cloud, gen.trace);
  auto emu_resp = run_trace(emulator, gen.trace);
  for (std::size_t i = 0; i < gen.trace.calls.size(); ++i) {
    if (cloud_resp[i].aligned_with(emu_resp[i])) continue;
    Discrepancy d;
    d.trace = gen.trace;
    d.call_index = i;
    d.cloud = cloud_resp[i];
    d.emulator = emu_resp[i];
    d.kind = classify(cloud_resp[i], emu_resp[i]);
    d.cls = gen.cls;
    return d;
  }
  return std::nullopt;
}

Discrepancy shrink(CloudBackend& cloud, CloudBackend& emulator, Discrepancy d) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Drop the tail beyond the divergence first.
    if (d.call_index + 1 < d.trace.calls.size()) {
      d.trace.calls.resize(d.call_index + 1);
    }
    for (std::size_t victim = 0; victim + 1 < d.trace.calls.size(); ++victim) {
      auto candidate = remove_call(d.trace, victim);
      if (!candidate) continue;
      GenTrace probe;
      probe.trace = *candidate;
      probe.cls = d.cls;
      auto again = diff_trace(cloud, emulator, probe);
      if (again && again->kind == d.kind &&
          again->call_index == d.call_index - 1 &&
          again->trace.calls[again->call_index].api ==
              d.trace.calls[d.call_index].api) {
        d.trace = std::move(again->trace);
        d.call_index = again->call_index;
        d.cloud = again->cloud;
        d.emulator = again->emulator;
        progress = true;
        break;
      }
    }
  }
  return d;
}

}  // namespace lce::align
