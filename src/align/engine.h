// The automated-alignment loop (paper §4.3 and Fig. 2's feedback edge):
//
//   repeat:
//     symbolically generate high-coverage traces from the CURRENT spec
//     run them on emulator + cloud, collect divergences
//     shrink each divergence to a minimal reproducer
//     diagnose (failure-site breadcrumbs + class metadata) and repair
//   until no divergence or the round budget is exhausted.
//
// "This phase closes the loop, allowing the emulator to continuously and
// autonomously improve its fidelity over time."
#pragma once

#include <string>
#include <vector>

#include "align/differ.h"
#include "align/repair.h"
#include "align/trace_gen.h"
#include "interp/interpreter.h"

namespace lce::align {

struct AlignmentOptions {
  int max_rounds = 6;
  bool shrink = true;
  bool repair = true;  // false = detection-only (measurement mode)
  /// Differential-pass parallelism: 0 = auto (hardware concurrency),
  /// 1 = serial, N = N worker threads over cloned backend pairs. The
  /// resulting report is byte-identical for every value (see parallel.h).
  int workers = 0;
  /// Wrap every differential worker's backend pair in a
  /// stack::MetricsLayer and store the aggregated per-API counters in
  /// RoundStats::metrics (excluded, like the timing counters, from the
  /// determinism contract).
  bool collect_metrics = false;
};

struct RoundStats {
  std::size_t traces = 0;
  std::size_t api_calls = 0;       // per backend
  std::size_t discrepancies = 0;
  std::size_t repairs = 0;
  // Differential-pass performance counters (excluded from the determinism
  // contract: canonical_text() never includes them).
  double diff_wall_ms = 0;         // wall clock of the differential pass
  double traces_per_sec = 0;       // throughput of the differential pass
  int workers = 1;                 // parallelism the pass actually used
  // Aggregated per-API MetricsLayer counters for the pass, null unless
  // AlignmentOptions::collect_metrics (also outside the contract: counts
  // are deterministic but latency fields are wall-clock).
  Value metrics;
};

struct AlignmentReport {
  std::vector<RoundStats> rounds;
  std::vector<RepairAction> repairs;
  std::vector<Discrepancy> unrepaired;  // after the final round
  bool converged = false;
  std::vector<std::string> log;

  std::size_t total_discrepancies() const;
  std::size_t total_api_calls() const;
};

/// Canonical serialization of everything behavioural in a report — round
/// counters (minus timings), repairs, unrepaired discrepancies, the log —
/// used by the determinism tests and benches to assert that serial and
/// parallel runs produce bit-identical results.
std::string canonical_text(const AlignmentReport& report);

class AlignmentEngine {
 public:
  AlignmentEngine(interp::Interpreter& emulator, CloudBackend& cloud,
                  AlignmentOptions opts = {});

  AlignmentReport run();

 private:
  interp::Interpreter& emu_;
  CloudBackend& cloud_;
  AlignmentOptions opts_;
};

}  // namespace lce::align
