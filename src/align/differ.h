// Differential execution: run a trace against the learned emulator and the
// cloud oracle, report the first response divergence, and shrink offending
// traces to the minimal API sequence still triggering the discrepancy
// (paper §4.3: "we leverage the SM abstraction to find the minimal API
// traces that could trigger the discrepancies").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "align/trace_gen.h"
#include "common/api.h"

namespace lce::align {

enum class DivergenceKind {
  kCloudErrEmuOk,     // missing emulator check
  kCloudOkEmuErr,     // spurious emulator check / wrong effect
  kErrorCodeMismatch, // both fail, different codes
  kPayloadMismatch,   // both succeed, different data
};

std::string to_string(DivergenceKind k);

struct Discrepancy {
  Trace trace;                 // (possibly shrunk) reproducer
  std::size_t call_index = 0;  // where the divergence appears
  DivergenceKind kind = DivergenceKind::kPayloadMismatch;
  ApiResponse cloud;
  ApiResponse emulator;
  SymbolicClass cls;           // the symbolic class that produced it

  std::string to_text() const;
};

/// Run `trace` on both backends; the first misaligned call becomes a
/// Discrepancy (nullopt when fully aligned).
std::optional<Discrepancy> diff_trace(CloudBackend& cloud, CloudBackend& emulator,
                                      const GenTrace& gen);

/// Greedy delta-debugging shrink: drop calls (respecting "$k" placeholder
/// dependencies) while the SAME divergence kind persists at the final
/// diverging call. Returns the minimized discrepancy.
Discrepancy shrink(CloudBackend& cloud, CloudBackend& emulator, Discrepancy d);

}  // namespace lce::align
