#include "align/trace_gen.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/cidr.h"
#include "common/strings.h"
#include "interp/timers.h"

namespace lce::align {

std::string to_string(ClassKind k) {
  switch (k) {
    case ClassKind::kHappyPath: return "happy-path";
    case ClassKind::kAssertViolation: return "assert-violation";
    case ClassKind::kStateSweep: return "state-sweep";
    case ClassKind::kRefAttrSweep: return "ref-attr-sweep";
    case ClassKind::kBoolCoupling: return "bool-coupling";
    case ClassKind::kBoundaryProbe: return "boundary-probe";
    case ClassKind::kMemberProbe: return "member-probe";
    case ClassKind::kTimerFire: return "timer-fire";
    case ClassKind::kTimerInterleave: return "timer-interleave";
  }
  return "?";
}

namespace {

using spec::BinaryOp;
using spec::Expr;
using spec::ExprKind;
using spec::StateMachine;
using spec::StmtKind;
using spec::Transition;
using spec::TransitionKind;

// Generated back-reference transitions are internal to the emulator; they
// must never appear in traces sent to the cloud.
bool is_internal_transition(const std::string& name) {
  return ends_with(name, "BackRef");
}

// -------------------------------------------------- assert-shape matching --

enum class Shape {
  kExists, kInList, kCidrValid, kPrefixRange, kWithinParent, kSiblingOverlap,
  kIntRange, kRefAttrMatch, kAttrEquals, kAttrNotEquals, kAttrNull,
  kTrueRequires, kChildrenReclaimed, kUnknown,
};

struct AssertInfo {
  Shape shape = Shape::kUnknown;
  std::string param;   // constrained parameter
  std::string attr;    // involved self/target attribute
  std::string parent_param;              // kWithinParent: link param
  std::vector<std::string> values;       // kInList members
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  Value literal;       // kAttrEquals / kAttrNotEquals expected value
  std::string code;    // assert's error code
};

bool is_var(const Expr& e, std::string* name = nullptr) {
  if (e.kind != ExprKind::kVar) return false;
  if (name != nullptr) *name = e.name;
  return true;
}

bool is_self_field(const Expr& e, std::string* attr = nullptr) {
  if (e.kind != ExprKind::kField || e.kids[0]->kind != ExprKind::kSelf) return false;
  if (attr != nullptr) *attr = e.name;
  return true;
}

bool is_builtin(const Expr& e, std::string_view fn) {
  return e.kind == ExprKind::kBuiltin && e.name == fn;
}

bool is_int_literal(const Expr& e, std::int64_t* v = nullptr) {
  if (e.kind != ExprKind::kLiteral || !e.literal.is_int()) return false;
  if (v != nullptr) *v = e.literal.as_int();
  return true;
}

/// Strip a leading "is_null(p) || ..." guard, returning the inner predicate.
const Expr& strip_null_guard(const Expr& e, std::string* guarded) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kOr &&
      is_builtin(*e.kids[0], "is_null") && e.kids[0]->kids.size() == 1 &&
      e.kids[0]->kids[0]->kind == ExprKind::kVar) {
    if (guarded != nullptr) *guarded = e.kids[0]->kids[0]->name;
    return *e.kids[1];
  }
  return e;
}

AssertInfo analyze_assert(const spec::Stmt& s) {
  AssertInfo info;
  info.code = s.error_code;
  if (!s.expr) return info;
  std::string guarded;
  const Expr& e = strip_null_guard(*s.expr, &guarded);

  // exists(p[, "T"])
  if (is_builtin(e, "exists") && !e.kids.empty() && is_var(*e.kids[0], &info.param)) {
    info.shape = Shape::kExists;
    if (e.kids.size() > 1 && e.kids[1]->kind == ExprKind::kLiteral) {
      info.attr = e.kids[1]->literal.as_str();  // expected type
    }
    return info;
  }
  // in_list(p, v...)
  if (is_builtin(e, "in_list") && !e.kids.empty() && is_var(*e.kids[0], &info.param)) {
    info.shape = Shape::kInList;
    for (std::size_t i = 1; i < e.kids.size(); ++i) {
      if (e.kids[i]->kind == ExprKind::kLiteral) {
        info.values.emplace_back(e.kids[i]->literal.as_str());
      }
    }
    return info;
  }
  // cidr_valid(p)
  if (is_builtin(e, "cidr_valid") && !e.kids.empty() && is_var(*e.kids[0], &info.param)) {
    info.shape = Shape::kCidrValid;
    return info;
  }
  // (cidr_prefix_len(p) >= lo) && (cidr_prefix_len(p) <= hi)
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd &&
      e.kids[0]->kind == ExprKind::kBinary && e.kids[0]->binary_op == BinaryOp::kGe &&
      is_builtin(*e.kids[0]->kids[0], "cidr_prefix_len")) {
    const Expr& lo_e = *e.kids[0];
    const Expr& hi_e = *e.kids[1];
    if (is_var(*lo_e.kids[0]->kids[0], &info.param) && is_int_literal(*lo_e.kids[1], &info.lo) &&
        hi_e.kind == ExprKind::kBinary && hi_e.binary_op == BinaryOp::kLe &&
        is_builtin(*hi_e.kids[0], "cidr_prefix_len") && is_int_literal(*hi_e.kids[1], &info.hi)) {
      info.shape = Shape::kPrefixRange;
      return info;
    }
  }
  // cidr_within(p, link.attr)
  if (is_builtin(e, "cidr_within") && e.kids.size() == 2 && is_var(*e.kids[0], &info.param) &&
      e.kids[1]->kind == ExprKind::kField && is_var(*e.kids[1]->kids[0], &info.parent_param)) {
    info.shape = Shape::kWithinParent;
    info.attr = e.kids[1]->name;
    return info;
  }
  // !sibling_cidr_conflict(p[, "attr"])
  if (e.kind == ExprKind::kUnary && e.unary_op == spec::UnaryOp::kNot &&
      is_builtin(*e.kids[0], "sibling_cidr_conflict") && !e.kids[0]->kids.empty() &&
      is_var(*e.kids[0]->kids[0], &info.param)) {
    info.shape = Shape::kSiblingOverlap;
    if (e.kids[0]->kids.size() > 1 && e.kids[0]->kids[1]->kind == ExprKind::kLiteral) {
      info.attr = e.kids[0]->kids[1]->literal.as_str();
    }
    return info;
  }
  // (p >= lo) && (p <= hi)
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd &&
      e.kids[0]->kind == ExprKind::kBinary && e.kids[0]->binary_op == BinaryOp::kGe &&
      is_var(*e.kids[0]->kids[0], &info.param) && is_int_literal(*e.kids[0]->kids[1], &info.lo) &&
      e.kids[1]->kind == ExprKind::kBinary && e.kids[1]->binary_op == BinaryOp::kLe &&
      is_int_literal(*e.kids[1]->kids[1], &info.hi)) {
    info.shape = Shape::kIntRange;
    return info;
  }
  // p.attr == self.attr
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kEq &&
      e.kids[0]->kind == ExprKind::kField && is_var(*e.kids[0]->kids[0], &info.param) &&
      is_self_field(*e.kids[1], &info.attr)) {
    info.shape = Shape::kRefAttrMatch;
    return info;
  }
  // self.attr == lit / self.attr != lit
  if (e.kind == ExprKind::kBinary &&
      (e.binary_op == BinaryOp::kEq || e.binary_op == BinaryOp::kNe) &&
      is_self_field(*e.kids[0], &info.attr) && e.kids[1]->kind == ExprKind::kLiteral) {
    info.shape = e.binary_op == BinaryOp::kEq ? Shape::kAttrEquals : Shape::kAttrNotEquals;
    info.literal = e.kids[1]->literal;
    return info;
  }
  // is_null(self.attr)
  if (is_builtin(e, "is_null") && !e.kids.empty() && is_self_field(*e.kids[0], &info.attr)) {
    info.shape = Shape::kAttrNull;
    return info;
  }
  // !p || self.attr
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kOr &&
      e.kids[0]->kind == ExprKind::kUnary && e.kids[0]->unary_op == spec::UnaryOp::kNot &&
      is_var(*e.kids[0]->kids[0], &info.param) && is_self_field(*e.kids[1], &info.attr)) {
    info.shape = Shape::kTrueRequires;
    return info;
  }
  // child_count("") == 0
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kEq &&
      is_builtin(*e.kids[0], "child_count")) {
    info.shape = Shape::kChildrenReclaimed;
    return info;
  }
  return info;
}

/// Collect the asserts of a body (top-level; if-bodies excluded — guarded
/// statements are conditional behaviour, not preconditions).
std::vector<const spec::Stmt*> collect_asserts(const spec::Body& body) {
  std::vector<const spec::Stmt*> out;
  for (const auto& s : body) {
    if (s->kind == StmtKind::kAssert) out.push_back(s.get());
  }
  return out;
}

// ---------------------------------------------------------------- builder --

/// Incrementally assembles one trace: dependency-ordered creates with
/// planned (predicted) attribute values, driver calls, and the probe.
class Builder {
 public:
  explicit Builder(const spec::SpecSet& spec) : spec_(spec) {}

  Trace& trace() { return trace_; }
  std::string fail_reason;

  /// Plan of a created resource: predicted attribute values ("$k.id"
  /// strings stand for refs to earlier calls).
  struct Planned {
    std::string machine;
    Value::Map attrs;
  };

  const Planned* planned(std::size_t idx) const {
    auto it = planned_.find(idx);
    return it == planned_.end() ? nullptr : &it->second;
  }

  /// Create an instance of `machine`; returns the call index. Overrides
  /// force specific post-create attribute values (by steering the args
  /// that write them). Returns nullopt (with fail_reason) when unsolvable.
  std::optional<std::size_t> create_instance(const std::string& machine,
                                             const Value::Map& overrides = {},
                                             int depth = 0) {
    if (depth > 6) {
      fail_reason = "create recursion too deep for " + machine;
      return std::nullopt;
    }
    const StateMachine* m = spec_.find_machine(machine);
    if (m == nullptr) {
      fail_reason = "unknown machine " + machine;
      return std::nullopt;
    }
    const Transition* create = nullptr;
    for (const auto& t : m->transitions) {
      if (t.kind == TransitionKind::kCreate) {
        create = &t;
        break;
      }
    }
    if (create == nullptr) {
      fail_reason = "no create transition on " + machine;
      return std::nullopt;
    }
    auto args = solve_args(*m, *create, /*self_idx=*/std::nullopt, overrides, depth);
    if (!args) return std::nullopt;
    std::size_t idx = trace_.add(create->name, std::move(*args));
    plan_effects(*m, *create, idx);
    return idx;
  }

  /// Append a probe/driver call of `t` on the instance created at
  /// `self_idx` (nullopt for create transitions), with `forced` argument
  /// values taking precedence over happy solving.
  std::optional<std::size_t> call_on(const StateMachine& m, const Transition& t,
                                     std::optional<std::size_t> self_idx,
                                     const Value::Map& forced_args = {},
                                     const Value::Map& overrides = {}) {
    auto args = solve_args(m, t, self_idx, overrides, /*depth=*/0, &forced_args);
    if (!args) return std::nullopt;
    if (t.kind != TransitionKind::kCreate) {
      if (!self_idx) {
        fail_reason = "non-create call without target";
        return std::nullopt;
      }
      (*args)["id"] = Value(strf("$", *self_idx, ".id"));
    }
    std::size_t idx = trace_.add(t.name, std::move(*args));
    if (t.kind == TransitionKind::kCreate) {
      plan_effects(m, t, idx);
    } else if (self_idx) {
      apply_writes_to_plan(m, t, *self_idx, trace_.calls[idx].args);
    }
    return idx;
  }

  /// Ensure self's attribute `attr` satisfies `pred` by appending driver
  /// calls found in the spec. Returns false when no driver works.
  bool drive_attr(const std::string& machine, std::size_t self_idx, const std::string& attr,
                  const std::function<bool(const Value&)>& pred, int depth = 0) {
    const Planned* p = planned(self_idx);
    if (p == nullptr) return false;
    Value current = p->attrs.count(attr) != 0 ? p->attrs.at(attr) : Value();
    if (pred(current)) return true;
    if (depth > 2) return false;
    const StateMachine* m = spec_.find_machine(machine);
    if (m == nullptr) return false;

    // Family 1: a transition on self writing a constant that satisfies
    // pred, whose own preconditions hold in the planned state.
    for (const auto& t : m->transitions) {
      if (is_internal_transition(t.name)) continue;
      if (t.kind != TransitionKind::kModify && t.kind != TransitionKind::kAction) continue;
      for (const auto& s : t.body) {
        if (s->kind != StmtKind::kWrite || s->var != attr || !s->expr) continue;
        if (s->expr->kind == ExprKind::kLiteral && pred(s->expr->literal)) {
          if (!preconditions_hold(*m, t, self_idx)) continue;
          if (call_on(*m, t, self_idx)) return true;
        }
        // Family 2: writes the param directly -> force a satisfying value.
        std::string pname;
        if (is_var(*s->expr, &pname)) {
          const spec::Param* param = nullptr;
          for (const auto& pp : t.params) {
            if (pp.name == pname) param = &pp;
          }
          if (param == nullptr) continue;
          Value candidate = candidate_for(*param, t, pred);
          if (candidate.is_null() && !pred(Value())) continue;
          if (!pred(candidate) && !candidate.is_null()) continue;
          if (!preconditions_hold(*m, t, self_idx)) continue;
          Value::Map forced{{pname, candidate}};
          if (call_on(*m, t, self_idx, forced)) return true;
        }
      }
    }

    // Family 3 (ref attrs): another machine's transition that call()s into
    // us and writes `attr` (e.g. AssociateAddress driving nic.public_ip).
    for (const auto& other : spec_.machines) {
      if (other.name == machine) continue;
      for (const auto& t : other.transitions) {
        if (is_internal_transition(t.name)) continue;
        if (!transition_backrefs_attr(other, t, machine, attr)) continue;
        // Create the other instance and call the transition with its ref
        // param bound to self.
        Value::Map overrides;
        // Match attrs the transition requires to equal ours (zone checks).
        for (const spec::Stmt* a : collect_asserts(t.body)) {
          AssertInfo info = analyze_assert(*a);
          if (info.shape == Shape::kRefAttrMatch) {
            const Planned* self_p = planned(self_idx);
            if (self_p != nullptr && self_p->attrs.count(info.attr) != 0) {
              overrides[info.attr] = self_p->attrs.at(info.attr);
            }
          }
        }
        auto other_idx = create_instance(other.name, overrides, depth + 1);
        if (!other_idx) continue;
        // Find the ref param of our type.
        std::string ref_param;
        for (const auto& pp : t.params) {
          if (pp.type.kind == spec::TypeKind::kRef && pp.type.ref_type == machine) {
            ref_param = pp.name;
          }
        }
        if (ref_param.empty()) continue;
        Value::Map forced{{ref_param, Value(strf("$", self_idx, ".id"))}};
        if (call_on(*spec_.find_machine(other.name), t, other_idx, forced)) {
          // Predict the back-reference write on self.
          plan_set(self_idx, attr, Value(strf("$", *other_idx, ".id")));
          const Planned* self_p = planned(self_idx);
          if (self_p != nullptr && pred(self_p->attrs.at(attr))) return true;
        }
      }
    }
    return false;
  }

  /// Create a containment child of `machine` under self (for violating
  /// reclamation guards). Returns false when the spec has no child type.
  bool create_child_of(const std::string& machine, std::size_t self_idx) {
    for (const auto& child : spec_.machines) {
      if (child.parent_type != machine) continue;
      auto saved_calls = trace_.calls.size();
      if (create_child_instance(child.name, self_idx)) return true;
      trace_.calls.resize(saved_calls);
    }
    return false;
  }

  void plan_set(std::size_t idx, const std::string& attr, Value v) {
    planned_[idx].attrs[attr] = std::move(v);
  }

  /// Solve arguments for transition `t` with happy semantics, honoring
  /// forced args and attribute overrides.
  std::optional<Value::Map> solve_args(const StateMachine& m, const Transition& t,
                                       std::optional<std::size_t> self_idx,
                                       const Value::Map& overrides, int depth,
                                       const Value::Map* forced = nullptr) {
    // Which param writes which attr (for overrides steering).
    std::map<std::string, std::string> attr_to_param;
    for (const auto& s : t.body) {
      if (s->kind == StmtKind::kWrite && s->expr) {
        std::string pname;
        if (is_var(*s->expr, &pname)) attr_to_param[s->var] = pname;
      }
    }
    // Per-param constraints from the asserts.
    std::map<std::string, AssertInfo> constraint;
    for (const spec::Stmt* a : collect_asserts(t.body)) {
      AssertInfo info = analyze_assert(*a);
      if (!info.param.empty() && constraint.count(info.param) == 0 &&
          info.shape != Shape::kExists) {
        constraint[info.param] = info;
      }
      // Prefix bounds refine an existing cidr constraint.
      if (info.shape == Shape::kPrefixRange && constraint.count(info.param) != 0 &&
          constraint[info.param].shape == Shape::kCidrValid) {
        constraint[info.param] = info;
      }
    }
    // Sibling carving parent: the attach_parent param, if any.
    std::string link_param;
    for (const auto& s : t.body) {
      if (s->kind == StmtKind::kAttachParent && s->expr) is_var(*s->expr, &link_param);
    }

    Value::Map args;
    for (const auto& p : t.params) {
      if (forced != nullptr && forced->count(p.name) != 0) {
        args[p.name] = forced->at(p.name);
        continue;
      }
      // Overrides steer params that write overridden attrs.
      bool overridden = false;
      for (const auto& [attr, v] : overrides) {
        auto it = attr_to_param.find(attr);
        if (it != attr_to_param.end() && it->second == p.name) {
          args[p.name] = v;
          overridden = true;
        }
      }
      if (overridden) continue;
      auto v = happy_value(m, t, p, constraint, link_param, args, depth);
      if (!v) return std::nullopt;
      args[p.name] = std::move(*v);
    }
    return args;
  }

 private:
  bool create_child_instance(const std::string& child, std::size_t parent_idx) {
    // Create with the parent ref forced to self.
    const StateMachine* m = spec_.find_machine(child);
    if (m == nullptr) return false;
    const Transition* create = nullptr;
    for (const auto& t : m->transitions) {
      if (t.kind == TransitionKind::kCreate) create = &t;
    }
    if (create == nullptr) return false;
    // Identify the parent-link ref param.
    std::string link_param;
    for (const auto& s : create->body) {
      if (s->kind == StmtKind::kAttachParent && s->expr) is_var(*s->expr, &link_param);
    }
    if (link_param.empty()) return false;
    Value::Map forced{{link_param, Value(strf("$", parent_idx, ".id"))}};
    return call_on(*m, *create, std::nullopt, forced).has_value();
  }

  /// Do t's self-state preconditions hold in the planned state of self?
  bool preconditions_hold(const StateMachine& m, const Transition& t,
                          std::size_t self_idx) {
    (void)m;
    const Planned* p = planned(self_idx);
    if (p == nullptr) return false;
    for (const spec::Stmt* a : collect_asserts(t.body)) {
      AssertInfo info = analyze_assert(*a);
      Value cur = p->attrs.count(info.attr) != 0 ? p->attrs.at(info.attr) : Value();
      switch (info.shape) {
        case Shape::kAttrEquals:
          if (!(cur == info.literal)) return false;
          break;
        case Shape::kAttrNotEquals:
          if (cur == info.literal) return false;
          break;
        case Shape::kAttrNull:
          if (!cur.is_null()) return false;
          break;
        default:
          break;
      }
    }
    return true;
  }

  /// A candidate argument value for `param` satisfying the driver's target
  /// predicate (bool first, then enum members, then a plain string).
  Value candidate_for(const spec::Param& param, const Transition& t,
                      const std::function<bool(const Value&)>& pred) {
    if (param.type.kind == spec::TypeKind::kBool) {
      if (pred(Value(true))) return Value(true);
      if (pred(Value(false))) return Value(false);
      return Value();
    }
    // in_list constraint members.
    for (const spec::Stmt* a : collect_asserts(t.body)) {
      AssertInfo info = analyze_assert(*a);
      if (info.shape == Shape::kInList && info.param == param.name) {
        for (const auto& v : info.values) {
          if (pred(Value(v))) return Value(v);
        }
        return Value();
      }
    }
    if (param.type.kind == spec::TypeKind::kInt) {
      for (std::int64_t v : {1, 0, 100}) {
        if (pred(Value(v))) return Value(v);
      }
      return Value();
    }
    if (pred(Value("driven-value"))) return Value("driven-value");
    return Value();
  }

  /// Predict post-create attribute values for planning.
  void plan_effects(const StateMachine& m, const Transition& t, std::size_t idx) {
    Planned p;
    p.machine = m.name;
    for (const auto& sv : m.states) p.attrs[sv.name] = sv.initial;
    planned_[idx] = std::move(p);
    apply_writes_to_plan(m, t, idx, trace_.calls[idx].args);
  }

  void apply_writes_to_plan(const StateMachine& m, const Transition& t, std::size_t idx,
                            const Value::Map& args) {
    (void)m;
    for (const auto& s : t.body) {
      if (s->kind != StmtKind::kWrite || !s->expr) continue;
      if (s->expr->kind == ExprKind::kLiteral) {
        plan_set(idx, s->var, s->expr->literal);
      } else {
        std::string pname;
        if (is_var(*s->expr, &pname) && args.count(pname) != 0) {
          plan_set(idx, s->var, args.at(pname));
        }
      }
    }
  }

  /// Happy value for one parameter.
  std::optional<Value> happy_value(const StateMachine& m, const Transition& t,
                                   const spec::Param& p,
                                   const std::map<std::string, AssertInfo>& constraint,
                                   const std::string& link_param, const Value::Map& args_so_far,
                                   int depth) {
    // Refs: create the target resource (with attr matching when required).
    if (p.type.kind == spec::TypeKind::kRef) {
      Value::Map overrides;
      for (const spec::Stmt* a : collect_asserts(t.body)) {
        AssertInfo info = analyze_assert(*a);
        if (info.shape == Shape::kRefAttrMatch && info.param == p.name) {
          // Self's attr value: for creates, it comes from an arg already
          // chosen or an initial (best effort).
          auto it = args_so_far.find(info.attr);
          if (it != args_so_far.end()) overrides[info.attr] = it->second;
        }
      }
      std::string target = p.type.ref_type;
      if (target.empty()) {
        fail_reason = strf("untyped ref param ", p.name, " on ", t.name);
        return std::nullopt;
      }
      auto idx = create_instance(target, overrides, depth + 1);
      if (!idx) return std::nullopt;
      return Value(strf("$", *idx, ".id"));
    }

    auto cit = constraint.find(p.name);
    const AssertInfo* info = cit != constraint.end() ? &cit->second : nullptr;

    if (info != nullptr && info->shape == Shape::kInList && !info->values.empty()) {
      return Value(info->values.front());
    }
    if (info != nullptr &&
        (info->shape == Shape::kCidrValid || info->shape == Shape::kPrefixRange ||
         info->shape == Shape::kWithinParent || info->shape == Shape::kSiblingOverlap)) {
      return cidr_value(t, p.name, link_param, args_so_far, /*violate_prefix=*/false);
    }
    if (info != nullptr && info->shape == Shape::kIntRange) {
      return Value((info->lo + info->hi) / 2);
    }
    if (info != nullptr && info->shape == Shape::kTrueRequires) {
      // Safe either way only when the required attr is known true; pick
      // false to stay unconditionally satisfying.
      return Value(false);
    }
    switch (p.type.kind) {
      case spec::TypeKind::kBool: return Value(false);
      case spec::TypeKind::kInt: return Value(1);
      case spec::TypeKind::kList: return Value(Value::List{});
      default: {
        // A cidr-flavored param name without an analyzable assert still
        // deserves a valid block.
        if (contains(p.name, "cidr") || contains(p.name, "address")) {
          return cidr_value(t, p.name, link_param, args_so_far, false);
        }
        return Value(strf("value-", p.name));
      }
    }
  }

 public:
  /// Pick a CIDR for param `pname` of transition `t`: nested in the link
  /// parent's block when one exists, disjoint from previously carved
  /// blocks, prefix within the transition's documented bounds (violated on
  /// request by exceeding the upper bound by one).
  Value cidr_value(const Transition& t, const std::string& pname,
                   const std::string& link_param, const Value::Map& args_so_far,
                   bool violate_prefix) {
    int lo = 16;
    int hi = 28;
    std::string within_attr;
    for (const spec::Stmt* a : collect_asserts(t.body)) {
      AssertInfo info = analyze_assert(*a);
      if (info.param != pname) continue;
      if (info.shape == Shape::kPrefixRange) {
        lo = static_cast<int>(info.lo);
        hi = static_cast<int>(info.hi);
      }
      if (info.shape == Shape::kWithinParent) within_attr = info.attr;
    }
    std::optional<Cidr> parent_cidr;
    if (!within_attr.empty() && !link_param.empty()) {
      auto it = args_so_far.find(link_param);
      if (it != args_so_far.end() && it->second.is_str()) {
        // "$k.id" -> planned attrs of call k.
        std::int64_t k = -1;
        std::string_view ph = it->second.as_str();
        if (ph.size() > 1 && ph[0] == '$') {
          (void)parse_int(ph.substr(1, ph.find('.') - 1), k);
        }
        const Planned* pp = k >= 0 ? planned(static_cast<std::size_t>(k)) : nullptr;
        if (pp != nullptr && pp->attrs.count(within_attr) != 0) {
          parent_cidr = Cidr::parse(pp->attrs.at(within_attr).as_str());
        }
      }
    }
    int prefix = violate_prefix ? hi + 1 : std::clamp(24, lo, hi);
    if (prefix > 32) prefix = 32;
    if (parent_cidr) {
      if (prefix <= parent_cidr->prefix_len()) prefix = parent_cidr->prefix_len() + 4;
      if (prefix > 32) prefix = 32;
      auto sub = parent_cidr->subnet_at(prefix, static_cast<std::uint64_t>(cidr_counter_++));
      if (sub) return Value(sub->to_string());
      return Value(parent_cidr->to_string());
    }
    // Top-level block: distinct /N per call.
    int n = cidr_counter_++;
    return Value(strf("10.", (n % 200) + 1, ".0.0/", std::clamp(16, lo, hi)));
  }

  bool transition_backrefs_attr(const StateMachine& owner, const Transition& t,
                                const std::string& target_machine,
                                const std::string& attr) const {
    // Does t contain (possibly inside an if) a call whose callee on
    // `target_machine` writes `attr`?
    const StateMachine* target = spec_.find_machine(target_machine);
    if (target == nullptr) return false;
    (void)owner;
    std::function<bool(const spec::Body&)> scan = [&](const spec::Body& body) {
      for (const auto& s : body) {
        if (s->kind == StmtKind::kCall) {
          const Transition* callee = target->find_transition(s->callee);
          if (callee != nullptr) {
            for (const auto& cs : callee->body) {
              if (cs->kind == StmtKind::kWrite && cs->var == attr) return true;
            }
          }
        }
        if (s->kind == StmtKind::kIf && (scan(s->then_body) || scan(s->else_body))) {
          return true;
        }
      }
      return false;
    };
    return scan(t.body);
  }

 private:
  const spec::SpecSet& spec_;
  Trace trace_;
  std::map<std::size_t, Planned> planned_;
  int cidr_counter_ = 0;
};

}  // namespace

// -------------------------------------------------------------- generator --

TraceGenerator::TraceGenerator(const spec::SpecSet& spec) : spec_(spec) {}

std::vector<GenTrace> TraceGenerator::generate_for(const std::string& machine,
                                                   const std::string& transition) {
  std::vector<GenTrace> out;
  const StateMachine* m = spec_.find_machine(machine);
  const Transition* t = m != nullptr ? m->find_transition(transition) : nullptr;
  if (m == nullptr || t == nullptr || is_internal_transition(transition)) return out;

  auto skip = [&](const std::string& why) {
    ++stats_.classes_total;
    stats_.skipped.push_back(strf(machine, "::", transition, ": ", why));
  };

  const Transition* describe = nullptr;
  for (const auto& tt : m->transitions) {
    if (tt.kind == TransitionKind::kDescribe) describe = &tt;
  }

  // Common scaffold: create self (or not, for create probes).
  auto build_base = [&](Builder& b, std::optional<std::size_t>& self_idx) -> bool {
    if (t->kind == TransitionKind::kCreate) {
      self_idx = std::nullopt;
      return true;
    }
    auto idx = b.create_instance(machine);
    if (!idx) return false;
    self_idx = idx;
    return true;
  };

  // ------------------------------------------------------- happy path --
  {
    ++stats_.classes_total;
    Builder b(spec_);
    std::optional<std::size_t> self_idx;
    bool ok = build_base(b, self_idx);
    std::optional<std::size_t> probe;
    if (ok) {
      // Happy path also needs self-state preconditions satisfied.
      for (const spec::Stmt* a : collect_asserts(t->body)) {
        AssertInfo info = analyze_assert(*a);
        if (!self_idx) break;
        if (info.shape == Shape::kAttrEquals) {
          ok = ok && b.drive_attr(machine, *self_idx, info.attr,
                                  [&](const Value& v) { return v == info.literal; });
        } else if (info.shape == Shape::kAttrNotEquals) {
          ok = ok && b.drive_attr(machine, *self_idx, info.attr,
                                  [&](const Value& v) { return !(v == info.literal); });
        } else if (info.shape == Shape::kAttrNull) {
          ok = ok && b.drive_attr(machine, *self_idx, info.attr,
                                  [](const Value& v) { return v.is_null(); });
        }
      }
      if (ok) probe = b.call_on(*m, *t, self_idx);
    }
    if (ok && probe) {
      std::size_t target_for_describe =
          t->kind == TransitionKind::kCreate ? *probe : *self_idx;
      if (describe != nullptr && t->kind != TransitionKind::kDescribe &&
          t->kind != TransitionKind::kDestroy) {
        Value::Map args{{"id", Value(strf("$", target_for_describe, ".id"))}};
        b.trace().add(describe->name, std::move(args));
      }
      GenTrace g;
      g.cls.kind = ClassKind::kHappyPath;
      g.cls.machine = machine;
      g.cls.transition = transition;
      g.cls.description = strf(transition, " happy path");
      g.probe_call = *probe;
      g.trace = std::move(b.trace());
      g.trace.label = strf(machine, "::", transition, "/happy");
      out.push_back(std::move(g));
      ++stats_.classes_concretized;
    } else {
      skip(b.fail_reason.empty() ? "happy path unsolvable" : b.fail_reason);
    }
  }

  // ----------------------------------------- singular assert violations --
  auto asserts = collect_asserts(t->body);
  for (std::size_t ai = 0; ai < asserts.size(); ++ai) {
    ++stats_.classes_total;
    AssertInfo info = analyze_assert(*asserts[ai]);
    Builder b(spec_);
    std::optional<std::size_t> self_idx;
    if (!build_base(b, self_idx)) {
      skip("setup unsolvable: " + b.fail_reason);
      continue;
    }
    Value::Map forced;
    bool solvable = true;
    std::string why;
    switch (info.shape) {
      case Shape::kExists:
        forced[info.param] = Value::ref("ghost-99999999");
        break;
      case Shape::kInList:
        forced[info.param] = Value("__invalid-member__");
        break;
      case Shape::kCidrValid:
        forced[info.param] = Value("not-a-cidr");
        break;
      case Shape::kPrefixRange: {
        if (info.hi >= 32) {
          solvable = false;
          why = "prefix upper bound already 32";
          break;
        }
        // Need the link arg solved first; do a dry solve of args then
        // override the cidr with an out-of-range prefix.
        auto args = b.solve_args(*m, *t, self_idx, {}, 0);
        if (!args) {
          solvable = false;
          why = "args unsolvable";
          break;
        }
        std::string link_param;
        for (const auto& s : t->body) {
          if (s->kind == StmtKind::kAttachParent && s->expr) is_var(*s->expr, &link_param);
        }
        forced = *args;
        forced[info.param] =
            b.cidr_value(*t, info.param, link_param, *args, /*violate_prefix=*/true);
        break;
      }
      case Shape::kWithinParent:
        forced[info.param] = Value("203.0.113.0/24");
        break;
      case Shape::kSiblingOverlap: {
        // Create a sibling first, then reuse its block.
        if (t->kind != TransitionKind::kCreate) {
          solvable = false;
          why = "sibling violation only for creates";
          break;
        }
        auto sibling = b.create_instance(machine);
        if (!sibling) {
          solvable = false;
          why = "sibling unsolvable";
          break;
        }
        const Builder::Planned* sp = b.planned(*sibling);
        // Reuse the sibling's cidr AND its parent.
        const spec::StateVar* cidr_attr = nullptr;
        for (const auto& sv : m->states) {
          if (contains(sv.name, "cidr") || contains(sv.name, "prefix") ||
              contains(sv.name, "address")) {
            cidr_attr = &sv;
          }
        }
        if (sp == nullptr || cidr_attr == nullptr ||
            sp->attrs.count(cidr_attr->name) == 0) {
          solvable = false;
          why = "cannot locate sibling cidr";
          break;
        }
        forced[info.param] = sp->attrs.at(cidr_attr->name);
        // Same parent: bind the link param to the sibling's parent arg.
        const ApiRequest& sib_call = b.trace().calls[*sibling];
        std::string link_param;
        for (const auto& s : t->body) {
          if (s->kind == StmtKind::kAttachParent && s->expr) is_var(*s->expr, &link_param);
        }
        if (!link_param.empty() && sib_call.args.count(link_param) != 0) {
          forced[link_param] = sib_call.args.at(link_param);
        }
        break;
      }
      case Shape::kIntRange:
        forced[info.param] = Value(info.hi + 1);
        break;
      case Shape::kRefAttrMatch: {
        // Create a mismatching target: override its attr away from ours.
        const StateMachine* target_m = nullptr;
        for (const auto& pp : t->params) {
          if (pp.name == info.param && pp.type.kind == spec::TypeKind::kRef) {
            target_m = spec_.find_machine(pp.type.ref_type);
          }
        }
        if (target_m == nullptr) {
          solvable = false;
          why = "no typed ref param for mismatch";
          break;
        }
        // Self's attr value from planned state (or the create args).
        Value mine;
        if (self_idx) {
          const Builder::Planned* sp = b.planned(*self_idx);
          if (sp != nullptr && sp->attrs.count(info.attr) != 0) mine = sp->attrs.at(info.attr);
        }
        // Candidate differing value: another enum member from the target's
        // create in_list, else "-alt".
        Value other = Value(std::string(mine.as_str()) + "-alt");
        for (const auto& tt : target_m->transitions) {
          if (tt.kind != TransitionKind::kCreate) continue;
          for (const spec::Stmt* a2 : collect_asserts(tt.body)) {
            AssertInfo i2 = analyze_assert(*a2);
            if (i2.shape == Shape::kInList) {
              for (const auto& v : i2.values) {
                if (!(Value(v) == mine)) other = Value(v);
              }
            }
          }
        }
        auto tgt = b.create_instance(target_m->name, {{info.attr, other}});
        if (!tgt) {
          solvable = false;
          why = "mismatch target unsolvable";
          break;
        }
        forced[info.param] = Value(strf("$", *tgt, ".id"));
        break;
      }
      case Shape::kAttrEquals:
        solvable = self_idx && b.drive_attr(machine, *self_idx, info.attr,
                                            [&](const Value& v) { return !(v == info.literal); });
        why = "cannot drive attr away from literal";
        break;
      case Shape::kAttrNotEquals:
        solvable = self_idx && b.drive_attr(machine, *self_idx, info.attr,
                                            [&](const Value& v) { return v == info.literal; });
        why = "cannot drive attr to literal";
        break;
      case Shape::kAttrNull:
        solvable = self_idx && b.drive_attr(machine, *self_idx, info.attr,
                                            [](const Value& v) { return !v.is_null(); });
        why = "cannot make attr non-null";
        break;
      case Shape::kTrueRequires: {
        forced[info.param] = Value(true);
        solvable = self_idx.has_value() &&
                   b.drive_attr(machine, *self_idx, info.attr,
                                [](const Value& v) { return !v.truthy(); });
        why = "cannot drive required attr false";
        break;
      }
      case Shape::kChildrenReclaimed:
        solvable = self_idx && b.create_child_of(machine, *self_idx);
        why = "no creatable child type";
        break;
      case Shape::kUnknown:
        solvable = false;
        why = "unrecognized assert shape: " + asserts[ai]->expr->to_text();
        break;
    }
    if (!solvable) {
      skip(why);
      continue;
    }
    auto probe = b.call_on(*m, *t, self_idx, forced);
    if (!probe) {
      skip("probe args unsolvable: " + b.fail_reason);
      continue;
    }
    GenTrace g;
    g.cls.kind = ClassKind::kAssertViolation;
    g.cls.machine = machine;
    g.cls.transition = transition;
    g.cls.assert_index = static_cast<int>(ai);
    g.cls.expected_code = asserts[ai]->error_code;
    g.cls.description = strf("violate assert #", ai, " (", asserts[ai]->error_code, ")");
    g.probe_call = *probe;
    g.trace = std::move(b.trace());
    g.trace.label = strf(machine, "::", transition, "/violate-", ai);
    out.push_back(std::move(g));
    ++stats_.classes_concretized;
  }

  // --------------------------------------------------------- state sweep --
  if (t->kind == TransitionKind::kModify || t->kind == TransitionKind::kAction ||
      t->kind == TransitionKind::kDestroy) {
    for (const auto& sv : m->states) {
      // Enum state vars sweep over their members; bool state vars sweep
      // over {true, false} (toggle preconditions live there).
      std::vector<std::string> members;
      if (sv.type.kind == spec::TypeKind::kEnum) {
        members = sv.type.enum_members;
      } else if (sv.type.kind == spec::TypeKind::kBool) {
        members = {"true", "false"};
      } else {
        continue;
      }
      bool is_bool = sv.type.kind == spec::TypeKind::kBool;
      for (const auto& member : members) {
        // The initial value's behaviour is covered by the happy path.
        if (sv.initial.is_str() && sv.initial.as_str() == member) continue;
        if (sv.initial.is_bool() &&
            std::string(sv.initial.as_bool() ? "true" : "false") == member) {
          continue;
        }
        ++stats_.classes_total;
        Builder b(spec_);
        std::optional<std::size_t> self_idx;
        if (!build_base(b, self_idx) || !self_idx) {
          skip("sweep setup unsolvable");
          continue;
        }
        Value wanted = is_bool ? Value(member == "true") : Value(member);
        if (!b.drive_attr(machine, *self_idx, sv.name,
                          [&](const Value& v) { return v == wanted; })) {
          skip(strf("state '", sv.name, "'='", member, "' unreachable"));
          continue;
        }
        auto probe = b.call_on(*m, *t, self_idx);
        if (!probe) {
          skip("sweep probe unsolvable: " + b.fail_reason);
          continue;
        }
        if (describe != nullptr && t->kind != TransitionKind::kDestroy) {
          Value::Map args{{"id", Value(strf("$", *self_idx, ".id"))}};
          b.trace().add(describe->name, std::move(args));
        }
        GenTrace g;
        g.cls.kind = ClassKind::kStateSweep;
        g.cls.machine = machine;
        g.cls.transition = transition;
        g.cls.description = strf(transition, " from ", sv.name, "=", member);
        g.cls.sweep_attr = sv.name;
        g.cls.sweep_value = member;
        g.probe_call = *probe;
        g.trace = std::move(b.trace());
        g.trace.label = strf(machine, "::", transition, "/sweep-", sv.name, "-", member);
        out.push_back(std::move(g));
        ++stats_.classes_concretized;
      }
    }
  }

  // ------------------------------------------------------ ref-attr sweep --
  // Drive each ref state variable non-null before the probe: exposes
  // missing "resource still attached" dependency checks.
  if (t->kind == TransitionKind::kModify || t->kind == TransitionKind::kAction ||
      t->kind == TransitionKind::kDestroy) {
    for (const auto& sv : m->states) {
      if (sv.type.kind != spec::TypeKind::kRef) continue;
      ++stats_.classes_total;
      Builder b(spec_);
      std::optional<std::size_t> self_idx;
      if (!build_base(b, self_idx) || !self_idx) {
        skip("ref sweep setup unsolvable");
        continue;
      }
      if (!b.drive_attr(machine, *self_idx, sv.name,
                        [](const Value& v) { return !v.is_null(); })) {
        skip(strf("ref attr '", sv.name, "' cannot be made non-null"));
        continue;
      }
      auto probe = b.call_on(*m, *t, self_idx);
      if (!probe) {
        skip("ref sweep probe unsolvable: " + b.fail_reason);
        continue;
      }
      GenTrace g;
      g.cls.kind = ClassKind::kRefAttrSweep;
      g.cls.machine = machine;
      g.cls.transition = transition;
      g.cls.description = strf(transition, " with ", sv.name, " attached");
      g.cls.sweep_attr = sv.name;
      g.cls.sweep_value = "non-null";
      g.probe_call = *probe;
      g.trace = std::move(b.trace());
      g.trace.label = strf(machine, "::", transition, "/refsweep-", sv.name);
      out.push_back(std::move(g));
      ++stats_.classes_concretized;
    }
  }

  // ------------------------------------------------------- bool coupling --
  // Force each bool parameter to true after driving each bool state var to
  // false: exposes missing "X may only be enabled when Y" couplings.
  if (t->kind == TransitionKind::kModify || t->kind == TransitionKind::kAction) {
    for (const auto& p : t->params) {
      if (p.type.kind != spec::TypeKind::kBool) continue;
      for (const auto& sv : m->states) {
        if (sv.type.kind != spec::TypeKind::kBool) continue;
        ++stats_.classes_total;
        Builder b(spec_);
        std::optional<std::size_t> self_idx;
        if (!build_base(b, self_idx) || !self_idx) {
          skip("bool coupling setup unsolvable");
          continue;
        }
        if (!b.drive_attr(machine, *self_idx, sv.name,
                          [](const Value& v) { return v.is_bool() && !v.as_bool(); })) {
          skip(strf("bool attr '", sv.name, "' cannot be driven false"));
          continue;
        }
        Value::Map forced{{p.name, Value(true)}};
        auto probe = b.call_on(*m, *t, self_idx, forced);
        if (!probe) {
          skip("bool coupling probe unsolvable: " + b.fail_reason);
          continue;
        }
        GenTrace g;
        g.cls.kind = ClassKind::kBoolCoupling;
        g.cls.machine = machine;
        g.cls.transition = transition;
        g.cls.description = strf(transition, "(", p.name, "=true) with ", sv.name, "=false");
        g.cls.sweep_attr = sv.name;
        g.cls.sweep_value = "false";
        g.cls.sweep_param = p.name;
        g.probe_call = *probe;
        g.trace = std::move(b.trace());
        g.trace.label =
            strf(machine, "::", transition, "/coupling-", p.name, "-", sv.name);
        out.push_back(std::move(g));
        ++stats_.classes_concretized;
      }
    }
  }

  // ------------------------------------------------------ boundary probes --
  // Exercise numeric constraints AT the documented upper bound: a doc that
  // overstates the bound (e.g. /29 where the cloud stops at /28) diverges
  // exactly here.
  for (const spec::Stmt* a : asserts) {
    AssertInfo info = analyze_assert(*a);
    if (info.shape != Shape::kPrefixRange && info.shape != Shape::kIntRange) continue;
    ++stats_.classes_total;
    Builder b(spec_);
    std::optional<std::size_t> self_idx;
    if (!build_base(b, self_idx)) {
      skip("boundary setup unsolvable");
      continue;
    }
    auto args = b.solve_args(*m, *t, self_idx, {}, 0);
    if (!args) {
      skip("boundary args unsolvable");
      continue;
    }
    Value::Map forced = *args;
    if (info.shape == Shape::kIntRange) {
      forced[info.param] = Value(info.hi);
    } else {
      // Re-carve the happy cidr at exactly the upper-bound prefix length.
      auto cur = Cidr::parse(forced.count(info.param) != 0
                                 ? forced[info.param].as_str()
                                 : "");
      if (!cur) {
        skip("boundary cidr unsolvable");
        continue;
      }
      forced[info.param] = Value(Cidr(cur->base(), static_cast<int>(info.hi)).to_string());
    }
    auto probe = b.call_on(*m, *t, self_idx, forced);
    if (!probe) {
      skip("boundary probe unsolvable: " + b.fail_reason);
      continue;
    }
    GenTrace g;
    g.cls.kind = ClassKind::kBoundaryProbe;
    g.cls.machine = machine;
    g.cls.transition = transition;
    g.cls.description = strf(transition, " with ", info.param, " at bound ", info.hi);
    g.cls.bound_param = info.param;
    g.cls.bound_value = info.hi;
    g.probe_call = *probe;
    g.trace = std::move(b.trace());
    g.trace.label = strf(machine, "::", transition, "/boundary-", info.param);
    out.push_back(std::move(g));
    ++stats_.classes_concretized;
  }

  // -------------------------------------------------------- member probes --
  // Exercise every DOCUMENTED enum member individually: documentation that
  // lists a member the cloud rejects (stale docs) diverges exactly on that
  // member's probe.
  for (const spec::Stmt* a : asserts) {
    AssertInfo info = analyze_assert(*a);
    if (info.shape != Shape::kInList || info.values.size() < 2) continue;
    for (std::size_t mi = 1; mi < info.values.size(); ++mi) {  // [0] = happy path
      ++stats_.classes_total;
      Builder b(spec_);
      std::optional<std::size_t> self_idx;
      if (!build_base(b, self_idx)) {
        skip("member probe setup unsolvable");
        continue;
      }
      Value::Map forced{{info.param, Value(info.values[mi])}};
      auto probe = b.call_on(*m, *t, self_idx, forced);
      if (!probe) {
        skip("member probe unsolvable: " + b.fail_reason);
        continue;
      }
      GenTrace g;
      g.cls.kind = ClassKind::kMemberProbe;
      g.cls.machine = machine;
      g.cls.transition = transition;
      g.cls.description =
          strf(transition, "(", info.param, "=", info.values[mi], ")");
      g.cls.member_param = info.param;
      g.cls.member_value = info.values[mi];
      g.probe_call = *probe;
      g.trace = std::move(b.trace());
      g.trace.label =
          strf(machine, "::", transition, "/member-", info.param, "-", mi);
      out.push_back(std::move(g));
      ++stats_.classes_concretized;
    }
  }

  // ---------------------------------------------------------- timer moves --
  // When an `after` clause targets this transition the generator learns an
  // advance-clock move: the probe is a virtual-time advance rather than a
  // direct call, so alignment explores timer-fire vs API-call
  // interleavings. Machines without timer clauses emit nothing here, which
  // keeps the learned-pipeline class inventory (and its goldens) unchanged.
  for (const auto& sv : m->states) {
    for (std::size_t ti = 0; ti < sv.timers.size(); ++ti) {
      const auto& tc = sv.timers[ti];
      if (tc.transition != transition) continue;
      const Value trigger = spec::timer_trigger(sv, tc);
      auto arm_self = [&](Builder& b) -> std::optional<std::size_t> {
        auto self_idx = b.create_instance(machine);
        if (!self_idx) return std::nullopt;
        if (!b.drive_attr(machine, *self_idx, sv.name,
                          [&](const Value& v) { return v == trigger; })) {
          b.fail_reason = strf("cannot reach timer trigger ", sv.name);
          return std::nullopt;
        }
        return self_idx;
      };
      auto advance = [&](Builder& b, std::int64_t ticks) {
        Value::Map args{{"ticks", Value(ticks)}};
        return b.trace().add(std::string(interp::timers::kAdvanceClockApi),
                             std::move(args));
      };
      // Fire: arm by reaching the trigger value, advance exactly `delay`
      // ticks, observe the fired transition's writes via describe.
      {
        ++stats_.classes_total;
        Builder b(spec_);
        auto self_idx = arm_self(b);
        if (!self_idx) {
          skip("timer-fire setup unsolvable: " + b.fail_reason);
        } else {
          std::size_t probe = advance(b, tc.delay);
          if (describe != nullptr) {
            Value::Map args{{"id", Value(strf("$", *self_idx, ".id"))}};
            b.trace().add(describe->name, std::move(args));
          }
          GenTrace g;
          g.cls.kind = ClassKind::kTimerFire;
          g.cls.machine = machine;
          g.cls.transition = transition;
          g.cls.description =
              strf(transition, " fired by ", sv.name, " timer after ", tc.delay);
          g.cls.sweep_attr = sv.name;
          g.cls.sweep_value = trigger.is_str() ? std::string(trigger.as_str())
                                               : trigger.to_text();
          g.probe_call = probe;
          g.trace = std::move(b.trace());
          g.trace.label = strf(machine, "::", transition, "/timer-fire-", ti);
          out.push_back(std::move(g));
          ++stats_.classes_concretized;
        }
      }
      // Interleave: advance to one tick short of the deadline, move the
      // variable OFF its trigger with an ordinary API call (cancelling the
      // countdown), then cross the original deadline — the fire must not
      // happen. Diverges against an implementation that fires anyway, or
      // that orders the cancel after the fire.
      {
        ++stats_.classes_total;
        Builder b(spec_);
        auto self_idx = arm_self(b);
        // Burn all but the last tick first, so the cancelling driver call
        // drive_attr appends lands mid-countdown (one tick before the
        // deadline). At delay-1 ticks nothing has fired, so the builder's
        // planned state is still accurate when it solves the driver.
        if (self_idx && tc.delay > 1) advance(b, tc.delay - 1);
        bool cancelled =
            self_idx && b.drive_attr(machine, *self_idx, sv.name,
                                     [&](const Value& v) { return !(v == trigger); });
        if (!self_idx) {
          skip("timer-interleave setup unsolvable: " + b.fail_reason);
        } else if (!cancelled) {
          skip(strf("no driver moves ", sv.name, " off its timer trigger"));
        } else {
          std::size_t probe = advance(b, tc.delay);
          if (describe != nullptr) {
            Value::Map args{{"id", Value(strf("$", *self_idx, ".id"))}};
            b.trace().add(describe->name, std::move(args));
          }
          GenTrace g;
          g.cls.kind = ClassKind::kTimerInterleave;
          g.cls.machine = machine;
          g.cls.transition = transition;
          g.cls.description = strf(transition, " cancelled mid-countdown (",
                                   sv.name, " left its trigger)");
          g.cls.sweep_attr = sv.name;
          g.cls.sweep_value = trigger.is_str() ? std::string(trigger.as_str())
                                               : trigger.to_text();
          g.probe_call = probe;
          g.trace = std::move(b.trace());
          g.trace.label =
              strf(machine, "::", transition, "/timer-interleave-", ti);
          out.push_back(std::move(g));
          ++stats_.classes_concretized;
        }
      }
    }
  }
  return out;
}

std::vector<GenTrace> TraceGenerator::generate_all() {
  std::vector<GenTrace> out;
  for (const auto& m : spec_.machines) {
    for (const auto& t : m.transitions) {
      auto batch = generate_for(m.name, t.name);
      out.insert(out.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
    }
  }
  return out;
}

}  // namespace lce::align
