#include "align/engine.h"

#include <chrono>
#include <map>

#include "align/parallel.h"
#include "common/strings.h"

namespace lce::align {

std::size_t AlignmentReport::total_discrepancies() const {
  std::size_t n = 0;
  for (const auto& r : rounds) n += r.discrepancies;
  return n;
}

std::size_t AlignmentReport::total_api_calls() const {
  std::size_t n = 0;
  for (const auto& r : rounds) n += r.api_calls;
  return n;
}

std::string canonical_text(const AlignmentReport& report) {
  std::string out;
  for (std::size_t i = 0; i < report.rounds.size(); ++i) {
    const RoundStats& r = report.rounds[i];
    out += strf("round ", i + 1, ": traces=", r.traces, " calls=", r.api_calls,
                " discrepancies=", r.discrepancies, " repairs=", r.repairs, "\n");
  }
  for (const auto& a : report.repairs) out += strf("repair: ", a.to_text(), "\n");
  for (const auto& d : report.unrepaired) out += strf("unrepaired: ", d.to_text(), "\n");
  out += strf("converged=", report.converged ? "yes" : "no", "\n");
  for (const auto& line : report.log) out += line + "\n";
  return out;
}

AlignmentEngine::AlignmentEngine(interp::Interpreter& emulator, CloudBackend& cloud,
                                 AlignmentOptions opts)
    : emu_(emulator), cloud_(cloud), opts_(opts) {}

AlignmentReport AlignmentEngine::run() {
  AlignmentReport report;

  for (int round = 0; round < opts_.max_rounds; ++round) {
    RoundStats stats;
    // Regenerate from the CURRENT (possibly already repaired) spec.
    TraceGenerator gen(emu_.spec());
    std::vector<GenTrace> traces = gen.generate_all();
    stats.traces = traces.size();
    for (const auto& g : traces) stats.api_calls += g.trace.calls.size();

    // Differential pass, sharded across worker threads over cloned backend
    // pairs (serial when opts_.workers == 1 or clones are unavailable).
    // Outcomes come back indexed by corpus order, so everything merged
    // below — discrepancy order and evidence content — is identical to a
    // serial run regardless of worker count.
    ParallelExecutor executor(cloud_, emu_, opts_.workers, opts_.collect_metrics);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<TraceOutcome> outcomes = executor.execute(traces);
    stats.diff_wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    stats.workers = executor.effective_workers();
    stats.metrics = executor.metrics();
    stats.traces_per_sec = stats.diff_wall_ms > 0
                               ? static_cast<double>(traces.size()) * 1000.0 /
                                     stats.diff_wall_ms
                               : 0.0;

    std::vector<Discrepancy> found;
    // Evidence for enum-precondition inference, keyed by
    // (machine, transition, attr): per-member cloud outcome.
    std::map<std::string, StateEvidence> evidence;
    std::map<std::string, std::pair<std::string, std::string>> evidence_site;
    std::map<std::string, std::string> evidence_attr;

    for (std::size_t i = 0; i < traces.size(); ++i) {
      const GenTrace& g = traces[i];
      TraceOutcome& o = outcomes[i];
      // Record sweep outcomes (aligned or not) for predicate inference.
      if (g.cls.kind == ClassKind::kStateSweep && o.have_probe_outcome) {
        std::string key = strf(g.cls.machine, "::", g.cls.transition, "::", g.cls.sweep_attr);
        evidence[key].outcome_by_member[g.cls.sweep_value] = o.probe_outcome;
        evidence_site[key] = {g.cls.machine, g.cls.transition};
        evidence_attr[key] = g.cls.sweep_attr;
      }
      // The happy path is the evidence row for every swept attribute's
      // INITIAL member (sweeps skip it).
      if (g.cls.kind == ClassKind::kHappyPath && o.have_probe_outcome) {
        const spec::StateMachine* m = emu_.spec().find_machine(g.cls.machine);
        if (m != nullptr) {
          for (const auto& sv : m->states) {
            std::string member;
            if (sv.type.kind == spec::TypeKind::kEnum && sv.initial.is_str()) {
              member = sv.initial.as_str();
            } else if (sv.type.kind == spec::TypeKind::kBool && sv.initial.is_bool()) {
              member = sv.initial.as_bool() ? "true" : "false";
            } else {
              continue;
            }
            std::string key =
                strf(g.cls.machine, "::", g.cls.transition, "::", sv.name);
            evidence[key].outcome_by_member[member] = o.probe_outcome;
            evidence_site[key] = {g.cls.machine, g.cls.transition};
            evidence_attr[key] = sv.name;
          }
        }
      }
      if (o.discrepancy) found.push_back(std::move(*o.discrepancy));
    }
    stats.discrepancies = found.size();
    report.log.push_back(strf("round ", round + 1, ": ", traces.size(), " traces, ",
                              stats.api_calls, " calls, ", found.size(), " discrepancies"));

    if (found.empty()) {
      report.converged = true;
      report.rounds.push_back(stats);
      break;
    }
    if (!opts_.repair) {
      report.rounds.push_back(stats);
      report.unrepaired = std::move(found);
      break;
    }

    // Augment evidence with each happy-path/sweep divergence's machine
    // initial-state outcome: a CloudErrEmuOk happy path on a machine with
    // an enum state var contributes the initial member's failure.
    Repairer repairer(emu_, cloud_);
    std::size_t repaired = 0;

    // First: inferred state checks (aggregated evidence), which subsume
    // many individual sweep discrepancies at once.
    std::map<std::string, bool> state_checked;
    for (const auto& d : found) {
      if (d.kind != DivergenceKind::kCloudErrEmuOk) continue;
      if (d.cls.kind != ClassKind::kStateSweep && d.cls.kind != ClassKind::kHappyPath) {
        continue;
      }
      // Locate evidence rows for this (machine, transition).
      for (const auto& [key, ev] : evidence) {
        if (evidence_site[key] != std::make_pair(d.cls.machine, d.cls.transition)) continue;
        if (state_checked[key]) continue;
        StateEvidence enriched = ev;
        // Happy path exercises the initial member (string or bool typed).
        if (d.cls.kind == ClassKind::kHappyPath) {
          const spec::StateMachine* m = emu_.spec().find_machine(d.cls.machine);
          const spec::StateVar* sv =
              m != nullptr ? m->find_state(evidence_attr[key]) : nullptr;
          if (sv != nullptr && sv->initial.is_str()) {
            enriched.outcome_by_member[std::string(sv->initial.as_str())] = d.cloud.code;
          } else if (sv != nullptr && sv->initial.is_bool()) {
            enriched.outcome_by_member[sv->initial.as_bool() ? "true" : "false"] =
                d.cloud.code;
          }
        }
        auto action = repairer.repair_state_check(d.cls.machine, d.cls.transition,
                                                  evidence_attr[key], enriched);
        state_checked[key] = true;
        if (action) {
          report.log.push_back("  repair: " + action->to_text());
          report.repairs.push_back(std::move(*action));
          ++repaired;
        }
      }
    }

    // Then: per-discrepancy repairs, re-verified against the evolving spec.
    for (auto& d : found) {
      GenTrace probe;
      probe.trace = d.trace;
      probe.cls = d.cls;
      auto still = diff_trace(cloud_, emu_, probe);
      if (!still) continue;  // an earlier repair already fixed it
      Discrepancy current = std::move(*still);
      current.cls = d.cls;
      if (opts_.shrink) current = shrink(cloud_, emu_, std::move(current));
      auto action = repairer.repair(current);
      if (action) {
        report.log.push_back("  repair: " + action->to_text());
        report.repairs.push_back(std::move(*action));
        ++repaired;
      } else {
        report.unrepaired.push_back(std::move(current));
      }
    }
    stats.repairs = repaired;
    report.rounds.push_back(stats);
    if (repaired == 0) break;  // stuck: avoid spinning
    report.unrepaired.clear(); // retry next round against the new spec
  }
  return report;
}

}  // namespace lce::align
