#include "align/engine.h"

#include <map>

#include "common/strings.h"

namespace lce::align {

std::size_t AlignmentReport::total_discrepancies() const {
  std::size_t n = 0;
  for (const auto& r : rounds) n += r.discrepancies;
  return n;
}

std::size_t AlignmentReport::total_api_calls() const {
  std::size_t n = 0;
  for (const auto& r : rounds) n += r.api_calls;
  return n;
}

AlignmentEngine::AlignmentEngine(interp::Interpreter& emulator, CloudBackend& cloud,
                                 AlignmentOptions opts)
    : emu_(emulator), cloud_(cloud), opts_(opts) {}

AlignmentReport AlignmentEngine::run() {
  AlignmentReport report;

  for (int round = 0; round < opts_.max_rounds; ++round) {
    RoundStats stats;
    // Regenerate from the CURRENT (possibly already repaired) spec.
    TraceGenerator gen(emu_.spec());
    std::vector<GenTrace> traces = gen.generate_all();
    stats.traces = traces.size();
    for (const auto& g : traces) stats.api_calls += g.trace.calls.size();

    // Differential pass.
    std::vector<Discrepancy> found;
    // Evidence for enum-precondition inference, keyed by
    // (machine, transition, attr): per-member cloud outcome.
    std::map<std::string, StateEvidence> evidence;
    std::map<std::string, std::pair<std::string, std::string>> evidence_site;
    std::map<std::string, std::string> evidence_attr;

    for (const auto& g : traces) {
      auto d = diff_trace(cloud_, emu_, g);
      // Record sweep outcomes (aligned or not) for predicate inference.
      if (g.cls.kind == ClassKind::kStateSweep && g.probe_call < g.trace.calls.size()) {
        auto cloud_resp = run_trace(cloud_, g.trace);
        std::string key = strf(g.cls.machine, "::", g.cls.transition, "::", g.cls.sweep_attr);
        evidence[key].outcome_by_member[g.cls.sweep_value] =
            cloud_resp[g.probe_call].ok ? "" : cloud_resp[g.probe_call].code;
        evidence_site[key] = {g.cls.machine, g.cls.transition};
        evidence_attr[key] = g.cls.sweep_attr;
      }
      // The happy path is the evidence row for every swept attribute's
      // INITIAL member (sweeps skip it).
      if (g.cls.kind == ClassKind::kHappyPath && g.probe_call < g.trace.calls.size()) {
        const spec::StateMachine* m = emu_.spec().find_machine(g.cls.machine);
        if (m != nullptr) {
          std::string outcome;
          bool have_outcome = false;
          for (const auto& sv : m->states) {
            std::string member;
            if (sv.type.kind == spec::TypeKind::kEnum && sv.initial.is_str()) {
              member = sv.initial.as_str();
            } else if (sv.type.kind == spec::TypeKind::kBool && sv.initial.is_bool()) {
              member = sv.initial.as_bool() ? "true" : "false";
            } else {
              continue;
            }
            if (!have_outcome) {
              auto cloud_resp = run_trace(cloud_, g.trace);
              outcome = cloud_resp[g.probe_call].ok ? "" : cloud_resp[g.probe_call].code;
              have_outcome = true;
            }
            std::string key =
                strf(g.cls.machine, "::", g.cls.transition, "::", sv.name);
            evidence[key].outcome_by_member[member] = outcome;
            evidence_site[key] = {g.cls.machine, g.cls.transition};
            evidence_attr[key] = sv.name;
          }
        }
      }
      if (d) found.push_back(std::move(*d));
    }
    stats.discrepancies = found.size();
    report.log.push_back(strf("round ", round + 1, ": ", traces.size(), " traces, ",
                              stats.api_calls, " calls, ", found.size(), " discrepancies"));

    if (found.empty()) {
      report.converged = true;
      report.rounds.push_back(stats);
      break;
    }
    if (!opts_.repair) {
      report.rounds.push_back(stats);
      report.unrepaired = std::move(found);
      break;
    }

    // Augment evidence with each happy-path/sweep divergence's machine
    // initial-state outcome: a CloudErrEmuOk happy path on a machine with
    // an enum state var contributes the initial member's failure.
    Repairer repairer(emu_, cloud_);
    std::size_t repaired = 0;

    // First: inferred state checks (aggregated evidence), which subsume
    // many individual sweep discrepancies at once.
    std::map<std::string, bool> state_checked;
    for (const auto& d : found) {
      if (d.kind != DivergenceKind::kCloudErrEmuOk) continue;
      if (d.cls.kind != ClassKind::kStateSweep && d.cls.kind != ClassKind::kHappyPath) {
        continue;
      }
      // Locate evidence rows for this (machine, transition).
      for (const auto& [key, ev] : evidence) {
        if (evidence_site[key] != std::make_pair(d.cls.machine, d.cls.transition)) continue;
        if (state_checked[key]) continue;
        StateEvidence enriched = ev;
        // Happy path exercises the initial member (string or bool typed).
        if (d.cls.kind == ClassKind::kHappyPath) {
          const spec::StateMachine* m = emu_.spec().find_machine(d.cls.machine);
          const spec::StateVar* sv =
              m != nullptr ? m->find_state(evidence_attr[key]) : nullptr;
          if (sv != nullptr && sv->initial.is_str()) {
            enriched.outcome_by_member[sv->initial.as_str()] = d.cloud.code;
          } else if (sv != nullptr && sv->initial.is_bool()) {
            enriched.outcome_by_member[sv->initial.as_bool() ? "true" : "false"] =
                d.cloud.code;
          }
        }
        auto action = repairer.repair_state_check(d.cls.machine, d.cls.transition,
                                                  evidence_attr[key], enriched);
        state_checked[key] = true;
        if (action) {
          report.log.push_back("  repair: " + action->to_text());
          report.repairs.push_back(std::move(*action));
          ++repaired;
        }
      }
    }

    // Then: per-discrepancy repairs, re-verified against the evolving spec.
    for (auto& d : found) {
      GenTrace probe;
      probe.trace = d.trace;
      probe.cls = d.cls;
      auto still = diff_trace(cloud_, emu_, probe);
      if (!still) continue;  // an earlier repair already fixed it
      Discrepancy current = std::move(*still);
      current.cls = d.cls;
      if (opts_.shrink) current = shrink(cloud_, emu_, std::move(current));
      auto action = repairer.repair(current);
      if (action) {
        report.log.push_back("  repair: " + action->to_text());
        report.repairs.push_back(std::move(*action));
        ++repaired;
      } else {
        report.unrepaired.push_back(std::move(current));
      }
    }
    stats.repairs = repaired;
    report.rounds.push_back(stats);
    if (repaired == 0) break;  // stuck: avoid spinning
    report.unrepaired.clear(); // retry next round against the new spec
  }
  return report;
}

}  // namespace lce::align
