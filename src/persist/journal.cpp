#include "persist/journal.h"

#include <unistd.h>

#include <mutex>
#include <utility>

#include "common/strings.h"
#include "interp/interpreter.h"
#include "persist/replica.h"
#include "persist/snapshot.h"
#include "stack/layers.h"

namespace lce::persist {

PersistManager::PersistManager(interp::Interpreter& interp, PersistOptions opts,
                               std::uint64_t epoch,
                               std::unique_ptr<WalWriter> wal)
    : interp_(interp), opts_(std::move(opts)), epoch_(epoch),
      wal_(std::move(wal)) {}

std::unique_ptr<PersistManager> PersistManager::open(interp::Interpreter& interp,
                                                     PersistOptions opts,
                                                     std::string* error,
                                                     RecoveryResult* recovery) {
  if (!ensure_dir(opts.data_dir, error)) return nullptr;
  RecoveryResult rec = recover_into(opts.data_dir, &interp);
  if (recovery != nullptr) *recovery = rec;
  if (!rec.ok) {
    if (error != nullptr) *error = rec.error;
    return nullptr;
  }
  auto wal = WalWriter::open(wal_path(opts.data_dir, rec.epoch), opts.sync, error);
  if (wal == nullptr) return nullptr;
  return std::unique_ptr<PersistManager>(
      new PersistManager(interp, std::move(opts), rec.epoch, std::move(wal)));
}

bool PersistManager::should_log(const std::string& api) const {
  return opts_.log_reads || !stack::ReadCacheLayer::is_read_api(api);
}

bool PersistManager::journal_call(const ApiRequest& req, const ApiResponse& resp) {
  LogRecord rec;
  rec.type = LogRecord::Type::kCall;
  rec.request = req;
  rec.has_response = true;
  rec.response = resp;
  rec.minted_ids = collect_minted_ids(resp);
  if (!wal_->append(rec)) return false;
  // Ship the committed record to the replica feed. This runs with the
  // gate held shared (the caller's contract), so a quiescing reader
  // (seeding, promotion) holding the gate exclusive observes a feed that
  // includes every committed write.
  if (feed_ != nullptr) feed_->publish(rec);
  return true;
}

bool PersistManager::journal_reset() {
  LogRecord rec;
  rec.type = LogRecord::Type::kReset;
  if (!wal_->append(rec)) return false;
  if (feed_ != nullptr) feed_->publish(rec);
  return true;
}

bool PersistManager::attach_feed(std::shared_ptr<WalFeed> feed) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  if (feed_ != nullptr) return false;
  feed_ = std::move(feed);
  return true;
}

std::shared_ptr<WalFeed> PersistManager::feed() const {
  std::shared_lock<std::shared_mutex> gate(gate_);
  return feed_;
}

bool PersistManager::take_snapshot(std::string* error) {
  std::unique_lock<std::shared_mutex> gate(gate_);
  // Every in-flight logged invoke has released the gate, so the store and
  // the WAL agree. Reads may still be running — take shared stripes for
  // the dump (gate -> stripes matches the writers' lock order).
  std::string bytes;
  {
    auto stripes = interp_.store().locks().lock_shared_all();
    bytes = serialize_store(interp_.store());
  }
  const std::uint64_t next_epoch = epoch_ + 1;
  const std::string next_wal = wal_path(opts_.data_dir, next_epoch);
  const std::string next_snap = snapshot_path(opts_.data_dir, next_epoch);
  // Start the next epoch's WAL BEFORE the snapshot becomes discoverable.
  // If any step up to the rename fails, nothing references epoch E+1 yet:
  // recovery keeps pairing snap-E with wal-E, so every acked write stays
  // recoverable and serving continues on the old epoch. (The reverse
  // order would let a WAL-open failure strand acked writes in wal-E while
  // recovery pairs snap-(E+1) with the missing wal-(E+1).) The fresh
  // create also truncates any stale wal-(E+1) a prior life left behind,
  // whose records must not replay on top of the new snapshot.
  auto wal = WalWriter::create_fresh(next_wal, opts_.sync, error);
  if (wal == nullptr) return false;
  // Write, then re-validate: once remove_stale_epochs runs, this snapshot
  // is the only copy of the state, so it must prove readable first.
  std::string check;
  if (!write_snapshot_file(next_snap, bytes, error) ||
      !read_snapshot_file(next_snap, &check) || check != bytes) {
    if (error != nullptr && error->empty()) {
      *error = strf(next_snap, " did not validate after writing");
    }
    wal.reset();
    ::unlink(next_snap.c_str());
    ::unlink(next_wal.c_str());
    return false;
  }
  wal_ = std::move(wal);
  epoch_ = next_epoch;
  snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  remove_stale_epochs(opts_.data_dir, epoch_);
  return true;
}

void PersistManager::maybe_auto_snapshot() {
  if (opts_.snapshot_every == 0) return;
  {
    std::shared_lock<std::shared_mutex> gate(gate_);
    if (wal_->record_count() < opts_.snapshot_every) return;
  }
  // One trigger wins; racers skip rather than queue behind the exclusive
  // gate for a snapshot that will already have rotated their records out.
  bool expected = false;
  if (!snapshotting_.compare_exchange_strong(expected, true)) return;
  std::string error;
  take_snapshot(&error);  // failure keeps serving on the old epoch
  snapshotting_.store(false);
}

PersistStatus PersistManager::status() const {
  PersistStatus st;
  std::shared_lock<std::shared_mutex> gate(gate_);
  st.epoch = epoch_;
  st.wal_records = wal_->record_count();
  st.wal_bytes = wal_->size_bytes();
  st.snapshots_taken = snapshots_taken_.load(std::memory_order_relaxed);
  st.failed = wal_->failed();
  return st;
}

ApiResponse JournalLayer::invoke(const ApiRequest& req) {
  if (manager_ == nullptr || !manager_->should_log(req.api)) {
    return inner().invoke(req);
  }
  ApiResponse resp;
  {
    std::shared_lock<std::shared_mutex> gate(manager_->gate());
    resp = inner().invoke(req);
    if (!manager_->journal_call(req, resp)) {
      // The mutation may have committed but its record did not: acking it
      // would break the recovery contract, so the client sees a retryable
      // server error instead.
      return ApiResponse::failure("InternalError",
                                  "write-ahead log append failed");
    }
  }
  manager_->maybe_auto_snapshot();
  return resp;
}

void JournalLayer::reset() {
  if (manager_ == nullptr) {
    inner().reset();
    return;
  }
  std::unique_lock<std::shared_mutex> gate(manager_->gate());
  inner().reset();
  // An append failure latches the WAL's sticky failed flag; the HTTP
  // handler reads it back via status().failed and refuses to ack the
  // un-logged reset (same no-unlogged-ack rule as the invoke path —
  // recovery would otherwise resurrect the pre-reset state).
  manager_->journal_reset();
}

std::unique_ptr<stack::BackendLayer> JournalLayer::clone_detached() const {
  // Clones must NOT journal: two chains appending to one WAL would
  // interleave un-replayable state lines. The clone passes through.
  return std::make_unique<JournalLayer>(nullptr);
}

}  // namespace lce::persist
