// Write-ahead log: an append-only file of framed LogRecords (format.h)
// behind a group-commit writer. Every committed transition is appended —
// and made durable per the configured sync policy — BEFORE the response
// is released to the client (DESIGN.md "Durability").
//
// Group commit: concurrent appenders serialize their records outside the
// lock, stage the framed bytes into a shared pending buffer, and one
// leader writes the whole batch with a single write() (plus fdatasync
// under WalSync::kBatch) while followers wait on the durable high-water
// mark. The sharded serve path pays one lock handoff per append, not one
// syscall per request.
//
// Torn-tail rule: a record counts only when fully present and checksum-
// valid. Readers (read_wal) stop at the first defect; the writer opens by
// truncating the file to that valid prefix, so a kill -9 at any byte
// offset leaves a log that recovers to a consistent prefix.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persist/format.h"

namespace lce::persist {

enum class WalSync {
  /// write() into the page cache, no explicit sync. Survives process
  /// death (kill -9) — the crash model the torture suite exercises — but
  /// not OS/power failure. The serve-path default.
  kNone,
  /// fdatasync once per group-commit batch. Survives OS crash; costs one
  /// device flush per batch.
  kBatch,
};

/// Result of scanning a WAL file.
struct WalScan {
  std::vector<LogRecord> records;
  /// Byte offset of the first defect — everything before it is the valid
  /// prefix (equals file_bytes for a clean log; 0 when the header itself
  /// is missing or corrupt).
  std::size_t valid_bytes = 0;
  std::size_t file_bytes = 0;
  /// File existed and began with a valid magic + version header.
  bool header_ok = false;
  /// A defect (torn or corrupt record) was found before end of file.
  bool torn_tail = false;
  /// The magic matched but the format version is one this binary does not
  /// read — a log a NEWER binary may own. Writers must refuse to truncate
  /// it (truncating would silently destroy data a future version could
  /// have recovered); readers contribute zero records from it.
  bool version_mismatch = false;
};

/// Read and scan `path`. A missing file yields an empty scan (no error —
/// a fresh data dir has no log yet).
WalScan read_wal(const std::string& path);

/// Write a standalone record file (header + framed records), overwriting
/// `path` — the `lce trace export` path. The result is a valid WAL.
bool write_wal_file(const std::string& path, const std::vector<LogRecord>& records,
                    std::string* error);

class WalWriter {
 public:
  /// Open `path` for appending, creating it (with a fresh header) when
  /// missing or headerless, truncating any torn tail otherwise. Returns
  /// nullptr on I/O failure — or on a version-mismatched header, which is
  /// refused rather than truncated — with a diagnostic in *error.
  static std::unique_ptr<WalWriter> open(const std::string& path, WalSync sync,
                                         std::string* error);
  /// Start `path` over as an empty log (header only), discarding ANY
  /// existing contents — the epoch-rotation path, where a stale file
  /// under the new epoch's name holds records that must not replay on
  /// top of the new snapshot. Still refuses a version-mismatched file.
  static std::unique_ptr<WalWriter> create_fresh(const std::string& path,
                                                 WalSync sync, std::string* error);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Append one record via group commit. Blocks until the record is
  /// durable per the sync policy. False once the writer has failed (any
  /// prior I/O error is sticky — the journal must stop acking writes).
  bool append(const LogRecord& rec);

  /// True once an append hit an I/O error (sticky).
  bool failed() const;
  /// Records in the log file (valid prefix at open + appends since).
  std::uint64_t record_count() const;
  /// Current log file size in bytes.
  std::uint64_t size_bytes() const;
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, WalSync sync, std::uint64_t records,
            std::uint64_t bytes);

  std::string path_;
  int fd_;
  WalSync sync_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string pending_;               // framed bytes staged for the next batch
  std::uint64_t pending_records_ = 0;
  std::uint64_t last_ticket_ = 0;     // ticket of the newest staged record
  std::uint64_t durable_ticket_ = 0;  // high-water mark of flushed tickets
  bool flushing_ = false;             // a leader is writing a batch
  bool failed_ = false;               // sticky I/O failure
  std::uint64_t records_;             // durable records in the file
  std::uint64_t bytes_;               // durable file size
};

}  // namespace lce::persist
