#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "persist/format.h"

namespace fs = std::filesystem;

namespace lce::persist {

namespace {

std::string epoch_name(std::string_view stem, std::uint64_t epoch,
                       std::string_view suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(epoch));
  return strf(stem, "-", buf, suffix);
}

/// Parse "<stem>-NNNNNNNN<suffix>" -> epoch. False on any other name.
bool parse_epoch_name(std::string_view name, std::string_view stem,
                      std::string_view suffix, std::uint64_t* epoch) {
  if (name.size() <= stem.size() + 1 + suffix.size()) return false;
  if (name.substr(0, stem.size()) != stem || name[stem.size()] != '-') return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  std::string_view digits =
      name.substr(stem.size() + 1, name.size() - stem.size() - 1 - suffix.size());
  if (digits.empty()) return false;
  std::uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *epoch = v;
  return true;
}

bool fsync_path(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::string wal_path(const std::string& dir, std::uint64_t epoch) {
  return strf(dir, "/", epoch_name("wal", epoch, kWalSuffix));
}

std::string snapshot_path(const std::string& dir, std::uint64_t epoch) {
  return strf(dir, "/", epoch_name("snap", epoch, kSnapshotSuffix));
}

DataDirState scan_data_dir(const std::string& dir) {
  DataDirState state;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    std::uint64_t epoch = 0;
    if (parse_epoch_name(name, "snap", kSnapshotSuffix, &epoch)) {
      state.snapshot_epochs.push_back(epoch);
    } else if (parse_epoch_name(name, "wal", kWalSuffix, &epoch)) {
      state.wal_epochs.push_back(epoch);
    }
  }
  std::sort(state.snapshot_epochs.begin(), state.snapshot_epochs.end());
  std::sort(state.wal_epochs.begin(), state.wal_epochs.end());
  return state;
}

bool ensure_dir(const std::string& dir, std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = strf("mkdir ", dir, ": ", ec.message());
    return false;
  }
  return true;
}

bool write_snapshot_file(const std::string& path, const std::string& store_bytes,
                         std::string* error) {
  // A frame read_snapshot_file would reject must fail HERE, before the
  // rename makes it discoverable: an unreadable snapshot that rotation
  // then treats as load-bearing orphans the whole data dir.
  if (store_bytes.size() > kMaxSnapshotBytes) {
    if (error != nullptr) {
      *error = strf("store dump is ", store_bytes.size(),
                    " bytes, over the ", kMaxSnapshotBytes,
                    "-byte snapshot format cap");
    }
    return false;
  }
  ByteWriter w;
  w.raw(kSnapshotMagic);
  w.u32(kFormatVersion);
  std::string file = w.take();
  append_framed(file, store_bytes);

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = strf("open ", tmp, ": ", std::strerror(errno));
    return false;
  }
  bool ok = true;
  std::size_t done = 0;
  while (done < file.size()) {
    ssize_t n = ::write(fd, file.data() + done, file.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    done += static_cast<std::size_t>(n);
  }
  // The snapshot must be on disk BEFORE the rename makes it discoverable —
  // otherwise a crash could leave a complete-looking name over torn bytes.
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    if (error != nullptr) *error = strf("write ", tmp, ": ", std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = strf("rename ", tmp, ": ", std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the rename itself (directory entry).
  fsync_path(fs::path(path).parent_path().string());
  return true;
}

bool read_snapshot_file(const std::string& path, std::string* store_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();
  if (bytes.size() < kFileHeaderBytes ||
      std::string_view(bytes).substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    return false;
  }
  {
    ByteReader r(std::string_view(bytes).substr(kSnapshotMagic.size(), 4));
    if (r.u32() != kFormatVersion) return false;
  }
  std::size_t pos = kFileHeaderBytes;
  std::string_view payload;
  if (!scan_framed(bytes, &pos, &payload, kMaxSnapshotBytes)) return false;
  if (pos != bytes.size()) return false;  // trailing garbage = not a clean write
  *store_bytes = std::string(payload);
  return true;
}

void remove_stale_epochs(const std::string& dir, std::uint64_t keep_epoch) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    std::uint64_t epoch = 0;
    bool stale = false;
    if (parse_epoch_name(name, "snap", kSnapshotSuffix, &epoch) ||
        parse_epoch_name(name, "wal", kWalSuffix, &epoch)) {
      stale = epoch < keep_epoch;
    } else if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      stale = true;  // half-written snapshot from a crashed attempt
    }
    if (stale) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace lce::persist
