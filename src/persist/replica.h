// WAL-shipped read replicas (DESIGN.md "Replication"): the deterministic
// group-commit WAL (wal.h) plus the CloudBackend::clone() seam make
// replication nearly free — a replica is a full interpreter seeded from
// the primary's quiesced state and kept current by re-applying the
// primary's committed log records through the exact machinery crash
// recovery uses (apply_records: normal invoke path, minted-id pinning).
//
// Three pieces:
//
//   WalFeed       the transport interface: the primary publishes each
//                 committed record (journal_call/journal_reset, after the
//                 WAL append succeeds and before the response is
//                 released), consumers fetch by sequence number. The
//                 in-process implementation is a bounded ring of
//                 committed records; a network hop slots in behind the
//                 same interface later.
//   Replica       a private Interpreter + an applier thread draining the
//                 feed. Falling off the ring's tail (a gap) triggers a
//                 re-seed: quiesce the primary, clone it, resume from the
//                 clone's sequence — the same snapshot + catch-up shape
//                 recovery implements against disk.
//   ReplicaSet    owns N replicas and implements stack::ReplicaTier, so
//                 the RouteLayer can send bounded-staleness reads at
//                 them. promote() is failover: drain the feed into one
//                 replica under the exclusive gate and verify its
//                 canonical dump against the primary's — byte-identical
//                 for serial/disjoint histories, the same determinism
//                 caveat recovery documents (racing conflicting writes
//                 may commit to the store in the opposite order of their
//                 log records).
//
// Consistency: a replica's state is always SOME prefix of the published
// record sequence applied to a quiesced seed — never a torn mid-write
// view, because records only publish after their transition committed
// and appended. Staleness is bounded by the RouteLayer, not here.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/format.h"
#include "stack/route.h"

namespace lce::interp {
class Interpreter;
}  // namespace lce::interp

namespace lce::persist {

class PersistManager;

// ---------------------------------------------------------------- WalFeed --

/// One fetch outcome. kGap means `after` has been evicted from the
/// feed's retention window — the consumer must re-seed from a snapshot.
enum class FeedFetch { kRecords, kEmpty, kGap };

/// Transport seam between the primary's committed log and its consumers.
/// publish() is called with the primary's commit gate held shared, so
/// published_seq() observed under the gate (shared or exclusive) is
/// exact. All methods are internally synchronized.
class WalFeed {
 public:
  virtual ~WalFeed() = default;

  /// Append one committed record; returns its sequence number (1-based,
  /// contiguous).
  virtual std::uint64_t publish(const LogRecord& rec) = 0;
  /// High-water mark: sequence of the newest published record.
  virtual std::uint64_t published_seq() const = 0;
  /// Copy records with sequence in (after, after + max_records] into
  /// *out (cleared first).
  virtual FeedFetch fetch(std::uint64_t after, std::size_t max_records,
                          std::vector<LogRecord>* out) = 0;
  /// Block until published_seq() > after, `timeout_ms` elapses, or
  /// shutdown() is called. Returns published_seq().
  virtual std::uint64_t wait_published(std::uint64_t after, int timeout_ms) = 0;
  /// Wake every waiter permanently (applier shutdown).
  virtual void shutdown() = 0;
};

/// The in-process feed: a mutex-guarded ring of the newest `capacity`
/// committed records. Readers that fall more than `capacity` records
/// behind observe a gap and re-seed, exactly like a network follower
/// whose retention window on the primary expired.
class InProcessWalFeed final : public WalFeed {
 public:
  explicit InProcessWalFeed(std::size_t capacity = 16384);

  std::uint64_t publish(const LogRecord& rec) override;
  std::uint64_t published_seq() const override;
  FeedFetch fetch(std::uint64_t after, std::size_t max_records,
                  std::vector<LogRecord>* out) override;
  std::uint64_t wait_published(std::uint64_t after, int timeout_ms) override;
  void shutdown() override;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<LogRecord> ring_;   // ring_[i] holds seq base_ + i + 1
  std::uint64_t base_ = 0;        // records evicted off the front
  std::uint64_t head_ = 0;        // newest published sequence
  bool shutdown_ = false;
};

// ------------------------------------------------------------- ReplicaSet --

struct ReplicaSetOptions {
  /// In-process feed retention, in records. Consumers further behind
  /// re-seed from a primary clone instead of replaying the gap.
  std::size_t feed_capacity = 16384;
  /// Records per applier batch.
  std::size_t batch_max = 256;
  /// Applier idle poll interval (the cv wait bounds shutdown latency).
  int poll_ms = 50;
};

/// Per-replica introspection for GET /admin/replicas and /metrics.
struct ReplicaStatus {
  std::uint64_t applied_seq = 0;
  std::uint64_t lag = 0;         // published - applied at sample time
  std::uint64_t reseeds = 0;     // gap-triggered snapshot catch-ups
  std::uint64_t mismatches = 0;  // applied records whose response diverged
};

/// Outcome of promote(): failover rehearsal / verification.
struct PromoteReport {
  bool ok = false;
  std::string error;
  std::uint64_t applied_seq = 0;    // replica's sequence after the drain
  bool dumps_identical = false;     // replica dump == primary dump
  std::uint64_t mismatches = 0;     // lifetime apply mismatches
  std::string canonical_dump;       // serialize_store of the replica
};

class ReplicaSet final : public stack::ReplicaTier {
 public:
  /// Seed `n` replicas from `persist`'s primary (quiescing it once per
  /// replica) and start their applier threads. The primary interpreter
  /// and the manager must outlive the set. Attaches an InProcessWalFeed
  /// to the manager; fails (nullptr + *error) when the manager already
  /// has a feed or a seed clone fails.
  static std::unique_ptr<ReplicaSet> create(PersistManager& persist, std::size_t n,
                                            ReplicaSetOptions opts,
                                            std::string* error);
  ~ReplicaSet() override;

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  // stack::ReplicaTier
  std::size_t replica_count() const override { return replicas_.size(); }
  std::uint64_t primary_seq() const override { return feed_->published_seq(); }
  std::uint64_t replica_applied_seq(std::size_t i) const override;
  ApiResponse invoke_on_replica(std::size_t i, const ApiRequest& req) override;

  /// Failover: quiesce the primary (exclusive gate, so no write is in
  /// flight and everything committed is published), drain the feed into
  /// replica `i`, and compare canonical dumps. The report's dump is the
  /// state a promoted replica would serve — byte-identical to what the
  /// PR 4 recovery path reconstructs from the primary's data dir for
  /// serial/disjoint histories.
  PromoteReport promote(std::size_t i, int drain_timeout_ms = 10000);

  /// Wait (without quiescing) until every replica has applied at least
  /// `seq` (published_seq() when 0). False on timeout.
  bool drain(std::uint64_t seq = 0, int timeout_ms = 10000);

  std::vector<ReplicaStatus> status() const;
  WalFeed& feed() { return *feed_; }

 private:
  struct Rep {
    // swap_mu orders re-seed swaps against readers/applier: shared for
    // invoke + apply, exclusive only while reseed() replaces the interp.
    mutable std::shared_mutex swap_mu;
    std::unique_ptr<interp::Interpreter> interp;
    std::atomic<std::uint64_t> applied{0};
    std::atomic<std::uint64_t> reseeds{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::thread applier;
  };

  ReplicaSet(PersistManager& persist, std::shared_ptr<WalFeed> feed,
             ReplicaSetOptions opts);

  void applier_loop(Rep& rep);
  bool reseed(Rep& rep);

  PersistManager& persist_;
  std::shared_ptr<WalFeed> feed_;
  ReplicaSetOptions opts_;
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Rep>> replicas_;
};

}  // namespace lce::persist
