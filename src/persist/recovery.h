// Crash recovery and deterministic replay.
//
// Recovery (serve boot with --data-dir): pick the highest epoch whose
// snapshot validates, restore the store from it, then re-apply the valid
// prefix of the SAME epoch's WAL — torn or checksum-failing tail records
// are discarded, so a kill -9 at any byte offset recovers to a consistent
// prefix. Re-application goes through the interpreter's normal invoke
// path (not raw state patching): the log holds the normalized calls, and
// minted-id pinning reproduces the exact ids each call created even when
// concurrent commits landed in the log out of mint order.
//
// Replay (lce replay): the verification twin. Run the same computation on
// TWO fresh interpreters and assert their canonical store dumps are
// byte-identical, and that each re-invoked call reproduced its logged
// response (ok bit, code, and data; messages are explicitly out of scope,
// matching the alignment contract). Because the WAL shares the record
// format with RecordLayer traces, a recorded endpoint session exported
// with `lce trace export` replays through the identical machinery.
//
// Determinism caveat: WAL append order is commit order only for
// non-overlapping or serial workloads. Two racing conflicting writes may
// commit to the store in the opposite order of their log records; minted-
// id pinning keeps ids stable regardless, but response-level equality on
// replay is guaranteed only for the serial/disjoint case — which is what
// the acceptance property needs: recovery(state) == replay(prefix), both
// computed sequentially from the same surviving log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/api.h"
#include "persist/format.h"

namespace lce::interp {
class Interpreter;
}  // namespace lce::interp

namespace lce::persist {

/// Outcome of re-applying a record sequence to an interpreter.
struct ApplyResult {
  std::uint64_t applied = 0;     // records executed (calls + resets)
  std::uint64_t mismatches = 0;  // calls whose response diverged from the log
  std::string first_mismatch;    // human-readable description of the first
};

/// Serially re-apply `records` to `interp` from its current state:
/// resolve "$k.field" placeholders against prior replies (exported traces
/// use them; WAL records are concrete and pass through unchanged), pin
/// minted-id counters, invoke, and compare against the logged response
/// when one is present.
ApplyResult apply_records(const std::vector<LogRecord>& records,
                          interp::Interpreter* interp);

struct RecoveryResult {
  bool ok = false;
  std::string error;             // when !ok
  std::uint64_t epoch = 1;       // epoch whose artifacts were used
  bool snapshot_loaded = false;  // a valid snapshot file was restored
  std::uint64_t wal_records = 0; // records re-applied from the WAL prefix
  bool torn_tail = false;        // the WAL had a discarded tail
  std::uint64_t mismatches = 0;  // replayed calls diverging from the log
  std::string first_mismatch;
};

/// Rebuild `interp`'s state from `dir` (resets it first). A missing or
/// empty dir recovers to the fresh state at epoch 1. Serial — runs before
/// the endpoint starts serving.
RecoveryResult recover_into(const std::string& dir, interp::Interpreter* interp);

struct ReplayReport {
  bool ok = false;         // recovery succeeded and the dumps matched
  std::string error;
  RecoveryResult recovery; // first run's stats
  std::uint64_t mismatches = 0;
  std::string first_mismatch;
  bool dumps_identical = false;
  std::string canonical_dump;  // serialize_store of the replayed state
};

/// Verify `dir` end to end: recover into both interpreters independently
/// and require byte-identical canonical dumps plus zero response
/// mismatches. The interpreters must be fresh twins (same spec/options).
ReplayReport replay_dir(const std::string& dir, interp::Interpreter* a,
                        interp::Interpreter* b);

/// Replay a standalone record file (.lcw — a trace export or a copied
/// WAL) against a fresh interpreter from reset.
ReplayReport replay_file(const std::string& path, interp::Interpreter* interp);

/// Trace <-> record conversion (the RecordLayer unification seam).
/// Requests only; has_response stays false so replay skips comparison.
std::vector<LogRecord> records_from_trace(const Trace& trace);
Trace trace_from_records(const std::vector<LogRecord>& records,
                         std::string label = "imported");

}  // namespace lce::persist
