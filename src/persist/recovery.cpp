#include "persist/recovery.h"

#include <utility>

#include "common/strings.h"
#include "interp/interpreter.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace lce::persist {

namespace {

/// Split a minted id "prefix-NNNNNNNN" into its counter components.
bool parse_minted_id(std::string_view id, std::string* prefix, std::uint64_t* n) {
  const std::size_t dash = id.rfind('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 >= id.size()) {
    return false;
  }
  std::uint64_t v = 0;
  for (char c : id.substr(dash + 1)) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;
  *prefix = std::string(id.substr(0, dash));
  *n = v;
  return true;
}

bool responses_match(const ApiResponse& got, const ApiResponse& want) {
  // Messages are out of scope by the same contract alignment uses.
  return got.ok == want.ok && got.code == want.code && got.data == want.data;
}

}  // namespace

ApplyResult apply_records(const std::vector<LogRecord>& records,
                          interp::Interpreter* interp) {
  ApplyResult out;
  std::vector<ApiResponse> prior;  // "$k.field" resolution for trace replays
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecord::Type::kReset) {
      interp->reset();
      prior.clear();
      ++out.applied;
      continue;
    }
    const ApiRequest req = resolve_placeholders(rec.request, prior);
    // Pin the id sequence to what the logged call minted. Set-back before
    // the invoke makes the mint reproduce the logged id; afterwards the
    // counter returns to the high-water mark (which may be ABOVE this
    // record's id: concurrent commits can land in the log out of mint
    // order), so later mints never collide with ids that already exist.
    struct Pin {
      std::string prefix;
      std::uint64_t n;
      std::uint64_t high;  // counter before the set-back
    };
    std::vector<Pin> pins;
    std::string prefix;
    std::uint64_t counter = 0;
    for (const std::string& id : rec.minted_ids) {
      if (parse_minted_id(id, &prefix, &counter)) {
        pins.push_back({prefix, counter, interp->store().id_counter(prefix)});
        interp->store().set_id_counter(prefix, counter - 1);
      }
    }
    const ApiResponse got = interp->invoke(req);
    for (const Pin& pin : pins) {
      const std::uint64_t target = pin.high > pin.n ? pin.high : pin.n;
      if (interp->store().id_counter(pin.prefix) < target) {
        interp->store().set_id_counter(pin.prefix, target);
      }
    }
    prior.push_back(got);
    ++out.applied;
    if (rec.has_response && !responses_match(got, rec.response)) {
      if (out.mismatches == 0) {
        out.first_mismatch =
            strf("call #", out.applied - 1, " ", req.api, ": logged ",
                 rec.response.to_text(), " replayed ", got.to_text());
      }
      ++out.mismatches;
    }
  }
  return out;
}

RecoveryResult recover_into(const std::string& dir, interp::Interpreter* interp) {
  RecoveryResult res;
  interp->reset();

  const DataDirState state = scan_data_dir(dir);
  std::uint64_t epoch = 0;
  // Highest snapshot that VALIDATES wins; a bit-rotted newest snapshot
  // degrades to the previous epoch instead of failing the boot.
  for (auto it = state.snapshot_epochs.rbegin();
       it != state.snapshot_epochs.rend(); ++it) {
    std::string bytes;
    if (read_snapshot_file(snapshot_path(dir, *it), &bytes) &&
        deserialize_store(bytes, &interp->store())) {
      epoch = *it;
      res.snapshot_loaded = true;
      break;
    }
  }
  if (!res.snapshot_loaded) {
    if (!state.snapshot_epochs.empty()) {
      // Every snapshot failed validation and stale-epoch cleanup has long
      // since removed the logs that began at the fresh state: surfacing
      // the corruption beats silently serving an empty account.
      res.error = strf("no snapshot in ", dir,
                       " validates; cannot reconstruct state");
      return res;
    }
    epoch = 1;  // fresh dir: epoch 1 is the only epoch that starts empty
  }
  res.epoch = epoch;

  const WalScan scan = read_wal(wal_path(dir, epoch));
  if (scan.version_mismatch) {
    // A log a newer binary may own: treating it as empty would silently
    // drop its records (and appending to the file later would corrupt
    // it), so refuse the boot instead.
    res.error = strf(wal_path(dir, epoch),
                     " has an unsupported format version; refusing to recover");
    return res;
  }
  res.torn_tail = scan.torn_tail;
  const ApplyResult applied = apply_records(scan.records, interp);
  res.wal_records = applied.applied;
  res.mismatches = applied.mismatches;
  res.first_mismatch = applied.first_mismatch;
  res.ok = true;
  return res;
}

ReplayReport replay_dir(const std::string& dir, interp::Interpreter* a,
                        interp::Interpreter* b) {
  ReplayReport rep;
  RecoveryResult ra = recover_into(dir, a);
  if (!ra.ok) {
    rep.error = ra.error;
    return rep;
  }
  RecoveryResult rb = recover_into(dir, b);
  if (!rb.ok) {
    rep.error = rb.error;
    return rep;
  }
  rep.recovery = ra;
  rep.mismatches = ra.mismatches + rb.mismatches;
  rep.first_mismatch =
      ra.mismatches != 0 ? ra.first_mismatch : rb.first_mismatch;
  const std::string dump_a = serialize_store(a->store());
  const std::string dump_b = serialize_store(b->store());
  rep.dumps_identical = dump_a == dump_b;
  rep.canonical_dump = dump_a;
  rep.ok = rep.dumps_identical && rep.mismatches == 0;
  if (!rep.dumps_identical) {
    rep.error = "canonical dumps differ between independent recoveries";
  } else if (rep.mismatches != 0) {
    rep.error = strf(rep.mismatches, " replayed call(s) diverged from the log: ",
                     rep.first_mismatch);
  }
  return rep;
}

ReplayReport replay_file(const std::string& path, interp::Interpreter* interp) {
  ReplayReport rep;
  const WalScan scan = read_wal(path);
  if (scan.version_mismatch) {
    rep.error = strf(path, " has an unsupported format version");
    return rep;
  }
  if (!scan.header_ok) {
    rep.error = strf(path, " is not a record file (bad or missing header)");
    return rep;
  }
  interp->reset();
  const ApplyResult applied = apply_records(scan.records, interp);
  rep.recovery.ok = true;
  rep.recovery.wal_records = applied.applied;
  rep.recovery.torn_tail = scan.torn_tail;
  rep.mismatches = applied.mismatches;
  rep.first_mismatch = applied.first_mismatch;
  rep.canonical_dump = serialize_store(interp->store());
  rep.dumps_identical = true;  // single run; nothing to cross-check
  rep.ok = rep.mismatches == 0;
  if (!rep.ok) {
    rep.error = strf(rep.mismatches, " replayed call(s) diverged from the log: ",
                     rep.first_mismatch);
  }
  return rep;
}

std::vector<LogRecord> records_from_trace(const Trace& trace) {
  std::vector<LogRecord> out;
  out.reserve(trace.calls.size());
  for (const ApiRequest& call : trace.calls) {
    LogRecord rec;
    rec.type = LogRecord::Type::kCall;
    rec.request = call;
    out.push_back(std::move(rec));
  }
  return out;
}

Trace trace_from_records(const std::vector<LogRecord>& records,
                         std::string label) {
  Trace trace;
  trace.label = std::move(label);
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecord::Type::kCall) trace.calls.push_back(rec.request);
  }
  return trace;
}

}  // namespace lce::persist
