#include "persist/format.h"

#include <array>
#include <cstring>

#include "interp/store.h"

namespace lce::persist {

namespace {

/// Value nesting bound for decode (the JSON wire format and the spec
/// grammar never come close; this guards recovery against hostile bytes).
constexpr int kMaxValueDepth = 128;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

enum class ValueTag : std::uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kInt = 3,
  kStr = 4,
  kRef = 5,
  kList = 6,
  kMap = 7,
};

bool decode_value_impl(ByteReader& r, Value* out, int depth) {
  if (depth > kMaxValueDepth) return false;
  std::uint8_t tag = r.u8();
  if (!r.ok()) return false;
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull: *out = Value(); return true;
    case ValueTag::kFalse: *out = Value(false); return true;
    case ValueTag::kTrue: *out = Value(true); return true;
    case ValueTag::kInt: *out = Value(r.i64()); return r.ok();
    case ValueTag::kStr: *out = Value(r.str()); return r.ok();
    case ValueTag::kRef: *out = Value::ref(r.str()); return r.ok();
    case ValueTag::kList: {
      std::uint32_t n = r.u32();
      if (!r.ok()) return false;
      Value::List list;
      for (std::uint32_t i = 0; i < n; ++i) {
        Value e;
        if (!decode_value_impl(r, &e, depth + 1)) return false;
        list.push_back(std::move(e));
      }
      *out = Value(std::move(list));
      return true;
    }
    case ValueTag::kMap: {
      std::uint32_t n = r.u32();
      if (!r.ok()) return false;
      Value::Map map;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string key = r.str();
        Value e;
        if (!r.ok() || !decode_value_impl(r, &e, depth + 1)) return false;
        map[std::move(key)] = std::move(e);
      }
      *out = Value(std::move(map));
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char ch : bytes) {
    c = table[(c ^ ch) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------- primitives --

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool ByteReader::take(std::size_t n, const char** out) {
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = in_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const char* p = nullptr;
  if (!take(1, &p)) return 0;
  return static_cast<std::uint8_t>(*p);
}

std::uint32_t ByteReader::u32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t ByteReader::u64() {
  const char* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  const char* p = nullptr;
  take(n, &p);
  return std::string(p, n);
}

// ------------------------------------------------------------ Value codec --

void encode_value(const Value& v, ByteWriter& w) {
  switch (v.kind()) {
    case ValueKind::kNull:
      w.u8(static_cast<std::uint8_t>(ValueTag::kNull));
      return;
    case ValueKind::kBool:
      w.u8(static_cast<std::uint8_t>(v.as_bool() ? ValueTag::kTrue : ValueTag::kFalse));
      return;
    case ValueKind::kInt:
      w.u8(static_cast<std::uint8_t>(ValueTag::kInt));
      w.i64(v.as_int());
      return;
    case ValueKind::kStr:
      w.u8(static_cast<std::uint8_t>(ValueTag::kStr));
      w.str(v.as_str());
      return;
    case ValueKind::kRef:
      w.u8(static_cast<std::uint8_t>(ValueTag::kRef));
      w.str(v.as_str());
      return;
    case ValueKind::kList:
      w.u8(static_cast<std::uint8_t>(ValueTag::kList));
      w.u32(static_cast<std::uint32_t>(v.as_list().size()));
      for (const auto& e : v.as_list()) encode_value(e, w);
      return;
    case ValueKind::kMap:
      w.u8(static_cast<std::uint8_t>(ValueTag::kMap));
      w.u32(static_cast<std::uint32_t>(v.as_map().size()));
      for (const auto& [k, e] : v.as_map()) {
        w.str(k);
        encode_value(e, w);
      }
      return;
  }
}

bool decode_value(ByteReader& r, Value* out) { return decode_value_impl(r, out, 0); }

// -------------------------------------------------------------- LogRecord --

std::vector<std::string> collect_minted_ids(const ApiResponse& resp) {
  std::vector<std::string> out;
  if (!resp.ok) return out;
  const Value* id = resp.data.get("id");
  if (id != nullptr && (id->is_ref() || id->is_str()) && !id->as_str().empty()) {
    out.emplace_back(id->as_str());
  }
  return out;
}

std::string encode_record(const LogRecord& rec) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(rec.type));
  if (rec.type == LogRecord::Type::kReset) return w.take();
  w.str(rec.request.api);
  w.str(rec.request.target);
  encode_value(Value(rec.request.args), w);
  w.u8(rec.has_response ? 1 : 0);
  if (rec.has_response) {
    w.u8(rec.response.ok ? 1 : 0);
    w.str(rec.response.code);
    w.str(rec.response.message);
    encode_value(rec.response.data, w);
  }
  w.u32(static_cast<std::uint32_t>(rec.minted_ids.size()));
  for (const auto& id : rec.minted_ids) w.str(id);
  return w.take();
}

bool decode_record(std::string_view payload, LogRecord* out) {
  ByteReader r(payload);
  std::uint8_t type = r.u8();
  if (!r.ok()) return false;
  *out = LogRecord{};
  if (type == static_cast<std::uint8_t>(LogRecord::Type::kReset)) {
    out->type = LogRecord::Type::kReset;
    return r.at_end();
  }
  if (type != static_cast<std::uint8_t>(LogRecord::Type::kCall)) return false;
  out->type = LogRecord::Type::kCall;
  out->request.api = r.str();
  out->request.target = r.str();
  Value args;
  if (!r.ok() || !decode_value(r, &args) || !args.is_map()) return false;
  out->request.args = args.as_map();
  out->has_response = r.u8() != 0;
  if (!r.ok()) return false;
  if (out->has_response) {
    out->response.ok = r.u8() != 0;
    out->response.code = r.str();
    out->response.message = r.str();
    if (!r.ok() || !decode_value(r, &out->response.data)) return false;
  }
  std::uint32_t n = r.u32();
  if (!r.ok() || n > payload.size()) return false;
  for (std::uint32_t i = 0; i < n; ++i) out->minted_ids.push_back(r.str());
  return r.ok() && r.at_end();
}

// ---------------------------------------------------------------- framing --

void append_framed(std::string& out, std::string_view payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  out += w.bytes();
  out.append(payload.data(), payload.size());
}

bool scan_framed(std::string_view bytes, std::size_t* pos, std::string_view* payload,
                 std::uint64_t max_payload_bytes) {
  if (bytes.size() - *pos < 8) return false;
  ByteReader r(bytes.substr(*pos, 8));
  std::uint32_t len = r.u32();
  std::uint32_t crc = r.u32();
  if (len > max_payload_bytes) return false;
  if (bytes.size() - *pos - 8 < len) return false;
  std::string_view body = bytes.substr(*pos + 8, len);
  if (crc32(body) != crc) return false;
  *payload = body;
  *pos += 8 + len;
  return true;
}

// ------------------------------------------------------------ store codec --

namespace {
// v1: resources + id counters + seq clock. v2 appends the virtual-time
// section (clock, timer seq counter, armed timers); v1 inputs are still
// accepted and load with an empty timer set at tick 0.
constexpr std::uint32_t kStoreVersion = 2;
constexpr std::uint32_t kMinStoreVersion = 1;
}  // namespace

std::string serialize_store(const interp::ResourceStore& store) {
  ByteWriter w;
  w.u32(kStoreVersion);
  w.u64(store.next_seq());
  auto counters = store.id_counters();
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [prefix, count] : counters) {
    w.str(prefix);
    w.u64(count);
  }
  auto resources = store.resources_in_creation_order();
  w.u64(resources.size());
  for (const interp::Resource* r : resources) {
    w.str(r->id);
    w.str(r->type);
    w.str(r->parent_id);
    w.u64(r->seq);
    encode_value(r->attrs, w);
  }
  // Virtual-time section (v2): everything that shapes future timer fires —
  // the clock, the seq counter (the deterministic tiebreak) and the armed
  // timers in seq order.
  const auto& timers = store.timers();
  w.u64(timers.now());
  w.u64(timers.next_seq());
  auto armed = timers.snapshot();
  w.u64(armed.size());
  for (const auto& ti : armed) {
    w.u64(ti.seq);
    w.u64(ti.deadline);
    w.str(ti.resource_id);
    w.str(ti.transition);
    w.str(ti.clause_key);
  }
  return w.take();
}

bool deserialize_store(std::string_view bytes, interp::ResourceStore* store) {
  store->clear();
  ByteReader r(bytes);
  std::uint32_t version = r.u32();
  if (version < kMinStoreVersion || version > kStoreVersion || !r.ok()) return false;
  std::uint64_t next_seq = r.u64();
  std::uint32_t n_counters = r.u32();
  if (!r.ok()) return false;
  std::map<std::string, std::uint64_t> counters;
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    std::string prefix = r.str();
    std::uint64_t count = r.u64();
    if (!r.ok()) return false;
    counters[std::move(prefix)] = count;
  }
  std::uint64_t n_resources = r.u64();
  if (!r.ok() || n_resources > bytes.size()) {
    store->clear();
    return false;
  }
  for (std::uint64_t i = 0; i < n_resources; ++i) {
    interp::Resource res;
    res.id = r.str();
    res.type = r.str();
    res.parent_id = r.str();
    res.seq = r.u64();
    Value attrs;
    if (!r.ok() || !decode_value(r, &attrs) || !attrs.is_map()) {
      store->clear();
      return false;
    }
    res.attrs = std::move(attrs);
    store->restore(std::move(res));
  }
  if (version >= 2) {
    std::uint64_t now = r.u64();
    std::uint64_t timer_seq = r.u64();
    std::uint64_t n_timers = r.u64();
    if (!r.ok() || n_timers > bytes.size()) {
      store->clear();
      return false;
    }
    std::vector<vtime::TimerInfo> armed;
    armed.reserve(n_timers);
    for (std::uint64_t i = 0; i < n_timers; ++i) {
      vtime::TimerInfo ti;
      ti.seq = r.u64();
      ti.deadline = r.u64();
      ti.resource_id = r.str();
      ti.transition = r.str();
      ti.clause_key = r.str();
      if (!r.ok()) {
        store->clear();
        return false;
      }
      armed.push_back(std::move(ti));
    }
    store->timers().restore(now, timer_seq, std::move(armed));
  }
  if (!r.at_end()) {
    store->clear();
    return false;
  }
  store->restore_id_counters(counters);
  store->set_next_seq(next_seq);
  return true;
}

}  // namespace lce::persist
