// Snapshot files and the epoch layout of a data dir.
//
// A data dir holds epoch-numbered pairs:
//
//   wal-<epoch>.lcw    the write-ahead log of that epoch
//   snap-<epoch>.lcs   the store state at the MOMENT epoch began, i.e.
//                      snapshot + same-epoch WAL = current state
//
// Taking a snapshot of epoch E starts a FRESH wal-(E+1) (truncating any
// stale file a prior life left under that name), then writes snap-(E+1)
// (tmp file + fsync + atomic rename), re-validates it, then deletes
// stale epochs. The WAL comes first so a failure at any step before the
// rename leaves nothing referencing epoch E+1 — serving continues on
// epoch E with every acked write still recoverable. Every crash window
// is safe:
//
//   - crash before the rename: snap-(E+1).tmp is garbage and wal-(E+1)
//     is empty, both ignored by recovery; snap-E + wal-E still
//     reconstruct the state.
//   - crash after the rename: recovery picks snap-(E+1) and pairs it
//     with the empty wal-(E+1) — exactly the snapshotted state, which
//     equals snap-E + full wal-E.
//   - crash during stale deletion: leftovers from epochs < chosen are
//     ignored (recovery always pairs a snapshot with its OWN epoch's WAL,
//     never an older one, so old records are never double-applied).
//
// Recovery picks the highest epoch whose snapshot VALIDATES (magic,
// version, checksum), falling back to older epochs — a half-written or
// bit-rotted newest snapshot degrades to the previous one instead of
// failing the boot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lce::persist {

inline constexpr std::string_view kWalSuffix = ".lcw";
inline constexpr std::string_view kSnapshotSuffix = ".lcs";

std::string wal_path(const std::string& dir, std::uint64_t epoch);
std::string snapshot_path(const std::string& dir, std::uint64_t epoch);

/// Epochs present in `dir`, each list ascending.
struct DataDirState {
  std::vector<std::uint64_t> snapshot_epochs;
  std::vector<std::uint64_t> wal_epochs;
};

DataDirState scan_data_dir(const std::string& dir);

/// mkdir -p. False (with *error set) when the dir can't be created.
bool ensure_dir(const std::string& dir, std::string* error);

/// Write a snapshot file holding `store_bytes` (a serialize_store dump):
/// header + one CRC-framed record, via tmp + fsync + atomic rename.
/// Fails (without touching `path`) on dumps over kMaxSnapshotBytes —
/// never writes a file read_snapshot_file would reject.
bool write_snapshot_file(const std::string& path, const std::string& store_bytes,
                         std::string* error);

/// Validate + extract a snapshot's store bytes. False on any defect
/// (missing, bad magic/version, torn frame, checksum mismatch).
bool read_snapshot_file(const std::string& path, std::string* store_bytes);

/// Delete snapshots/WALs of epochs below `keep_epoch`, plus any leftover
/// .tmp files. Best effort — failures leave stragglers recovery ignores.
void remove_stale_epochs(const std::string& dir, std::uint64_t keep_epoch);

}  // namespace lce::persist
