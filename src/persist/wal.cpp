#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace lce::persist {

namespace {

std::string file_header() {
  ByteWriter w;
  w.raw(kWalMagic);
  w.u32(kFormatVersion);
  return w.take();
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

WalScan read_wal(const std::string& path) {
  WalScan scan;
  std::string bytes;
  if (!read_file(path, &bytes)) return scan;
  scan.file_bytes = bytes.size();
  // Header: magic + version. A defect here voids the whole file.
  if (bytes.size() < kFileHeaderBytes ||
      std::string_view(bytes).substr(0, kWalMagic.size()) != kWalMagic) {
    scan.torn_tail = bytes.size() > 0;
    return scan;
  }
  {
    ByteReader r(std::string_view(bytes).substr(kWalMagic.size(), 4));
    if (r.u32() != kFormatVersion) {
      scan.torn_tail = true;
      scan.version_mismatch = true;
      return scan;
    }
  }
  scan.header_ok = true;
  std::size_t pos = kFileHeaderBytes;
  std::string_view payload;
  while (scan_framed(bytes, &pos, &payload)) {
    LogRecord rec;
    if (!decode_record(payload, &rec)) break;  // framed but semantically bad
    scan.records.push_back(std::move(rec));
    scan.valid_bytes = pos;  // only after full validation of the record
  }
  if (scan.valid_bytes == 0) scan.valid_bytes = kFileHeaderBytes;
  scan.torn_tail = scan.valid_bytes < scan.file_bytes;
  return scan;
}

bool write_wal_file(const std::string& path,
                    const std::vector<LogRecord>& records, std::string* error) {
  std::string bytes = file_header();
  for (const auto& rec : records) append_framed(bytes, encode_record(rec));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    if (error != nullptr) *error = strf("write ", path, " failed");
    return false;
  }
  return true;
}

WalWriter::WalWriter(std::string path, int fd, WalSync sync,
                     std::uint64_t records, std::uint64_t bytes)
    : path_(std::move(path)), fd_(fd), sync_(sync), records_(records),
      bytes_(bytes) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<WalWriter> WalWriter::open(const std::string& path, WalSync sync,
                                           std::string* error) {
  WalScan scan = read_wal(path);
  if (scan.version_mismatch) {
    // Not ours to repair: truncating would silently destroy a log a newer
    // binary version could have read.
    if (error != nullptr) {
      *error = strf(path, ": unsupported WAL format version, refusing to open");
    }
    return nullptr;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = strf("open ", path, ": ", std::strerror(errno));
    return nullptr;
  }
  std::uint64_t start_bytes = 0;
  bool ok = true;
  if (!scan.header_ok) {
    // Missing, empty, or header-corrupt file: start fresh. (Recovery has
    // already decided such a log contributes zero records.)
    ok = ::ftruncate(fd, 0) == 0 && write_all(fd, file_header());
    start_bytes = kFileHeaderBytes;
    scan.records.clear();
  } else {
    // Drop the torn tail so appends extend the valid prefix.
    ok = ::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) == 0 &&
         ::lseek(fd, 0, SEEK_END) >= 0;
    start_bytes = scan.valid_bytes;
  }
  if (!ok) {
    if (error != nullptr) *error = strf("prepare ", path, ": ", std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, sync, scan.records.size(), start_bytes));
}

std::unique_ptr<WalWriter> WalWriter::create_fresh(const std::string& path,
                                                   WalSync sync,
                                                   std::string* error) {
  if (read_wal(path).version_mismatch) {
    if (error != nullptr) {
      *error = strf(path, ": unsupported WAL format version, refusing to truncate");
    }
    return nullptr;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = strf("open ", path, ": ", std::strerror(errno));
    return nullptr;
  }
  if (!write_all(fd, file_header())) {
    if (error != nullptr) *error = strf("write ", path, ": ", std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, sync, 0, kFileHeaderBytes));
}

bool WalWriter::append(const LogRecord& rec) {
  // Serialize outside the lock — group commit's whole point is that the
  // sharded serve path doesn't line up behind each other's encoding work.
  std::string framed;
  append_framed(framed, encode_record(rec));

  std::unique_lock<std::mutex> lk(mu_);
  if (failed_) return false;
  const std::uint64_t ticket = ++last_ticket_;
  pending_ += framed;
  ++pending_records_;

  while (durable_ticket_ < ticket) {
    if (failed_) return false;
    if (!flushing_) {
      // Become the leader: take the whole pending batch (which includes
      // our record and any staged after it) and write it in one syscall.
      flushing_ = true;
      std::string batch = std::move(pending_);
      pending_.clear();
      const std::uint64_t batch_high = last_ticket_;
      const std::uint64_t batch_records = pending_records_;
      pending_records_ = 0;
      lk.unlock();
      bool ok = write_all(fd_, batch);
      if (ok && sync_ == WalSync::kBatch) ok = ::fdatasync(fd_) == 0;
      lk.lock();
      flushing_ = false;
      if (ok) {
        durable_ticket_ = batch_high;
        records_ += batch_records;
        bytes_ += batch.size();
      } else {
        failed_ = true;  // sticky: every waiter and future append fails
      }
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] {
        return durable_ticket_ >= ticket || !flushing_ || failed_;
      });
    }
  }
  return !failed_;
}

bool WalWriter::failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failed_;
}

std::uint64_t WalWriter::record_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

std::uint64_t WalWriter::size_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

}  // namespace lce::persist
