// The durable-state manager and its stack layer.
//
// PersistManager owns a data dir: it recovers state on open, appends
// committed transitions to the epoch's WAL, and rotates epochs via
// snapshots (on demand from POST /admin/snapshot or automatically every N
// records). JournalLayer is the stack seam (config.h order: below
// validate, above record) that routes write invokes through the manager.
//
// The snapshot gate: logged invokes hold `gate()` SHARED across
// inner().invoke() + the WAL append, and a snapshot holds it EXCLUSIVE
// across dump + rotation. That is the whole consistency argument — a
// snapshot can never observe a store mutation whose log record has not
// landed (which replay would then double-apply). Reads bypass the gate
// entirely; the store dump takes shared stripes, which coexists with
// concurrent read invokes.
//
// Lock order (must never be taken in reverse): gate -> store stripes ->
// (released) -> WAL batch mutex. The interpreter takes stripes while the
// caller holds the gate shared; the WAL mutex is only ever taken with no
// stripes held.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "persist/recovery.h"
#include "persist/wal.h"
#include "stack/layer.h"

namespace lce::interp {
class Interpreter;
}  // namespace lce::interp

namespace lce::persist {

class WalFeed;

struct PersistOptions {
  std::string data_dir;
  WalSync sync = WalSync::kNone;
  /// Take a snapshot (rotating the epoch) once the WAL holds this many
  /// records. 0 = only on demand.
  std::uint64_t snapshot_every = 0;
  /// Journal read APIs too (Describe*/Get*/List*). Off by default: reads
  /// don't change state, so logging them only buys replay-time response
  /// verification at the cost of WAL volume.
  bool log_reads = false;
};

/// Introspection for GET /admin/persist and the CLI.
struct PersistStatus {
  std::uint64_t epoch = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshots_taken = 0;
  bool failed = false;  // a WAL append hit a sticky I/O error
};

class PersistManager {
 public:
  /// Recover `interp` from opts.data_dir (creating it when missing) and
  /// open the active epoch's WAL for appending. Returns nullptr with
  /// *error set on unrecoverable state or I/O failure; *recovery (when
  /// non-null) receives the recovery stats either way.
  static std::unique_ptr<PersistManager> open(interp::Interpreter& interp,
                                              PersistOptions opts,
                                              std::string* error,
                                              RecoveryResult* recovery = nullptr);

  /// True when `api` must be journaled under this configuration.
  bool should_log(const std::string& api) const;

  /// Append one invocation (caller holds gate() shared across the inner
  /// invoke AND this call). False after a sticky WAL failure — the caller
  /// must fail the request rather than ack an unlogged write.
  bool journal_call(const ApiRequest& req, const ApiResponse& resp);
  /// Append a reset marker (caller holds gate() exclusive).
  bool journal_reset();

  /// Dump the store and rotate to a fresh epoch (truncating the log).
  /// Quiesces writers via the exclusive gate; safe to call concurrently
  /// with serving. False with *error on failure (serving continues on the
  /// old epoch).
  bool take_snapshot(std::string* error);

  /// Called by JournalLayer after releasing the gate; takes an automatic
  /// snapshot when the cadence threshold is crossed.
  void maybe_auto_snapshot();

  /// Publish every subsequently committed record (journal_call /
  /// journal_reset, after the WAL append succeeds) to `feed` — the
  /// replication hookup (replica.h). One feed per manager; false when one
  /// is already attached. Quiesces writers for the swap, so no committed
  /// record straddles the attachment.
  bool attach_feed(std::shared_ptr<WalFeed> feed);
  std::shared_ptr<WalFeed> feed() const;

  /// The primary interpreter this manager journals for (replica seeding
  /// and promotion dumps; take gate() exclusive to quiesce it first).
  interp::Interpreter& primary() { return interp_; }

  PersistStatus status() const;
  const PersistOptions& options() const { return opts_; }
  std::shared_mutex& gate() { return gate_; }

 private:
  PersistManager(interp::Interpreter& interp, PersistOptions opts,
                 std::uint64_t epoch, std::unique_ptr<WalWriter> wal);

  interp::Interpreter& interp_;
  PersistOptions opts_;

  mutable std::shared_mutex gate_;
  std::uint64_t epoch_;            // guarded by gate_
  std::unique_ptr<WalWriter> wal_; // pointer swaps guarded by gate_ exclusive
  std::shared_ptr<WalFeed> feed_;  // attach guarded by gate_ exclusive
  std::atomic<std::uint64_t> snapshots_taken_{0};
  std::atomic<bool> snapshotting_{false};  // collapses concurrent triggers
};

/// Stack layer wiring invokes into a PersistManager. Writes (and reads,
/// when log_reads) take the shared gate, invoke inward, and journal the
/// response before releasing it; a WAL failure converts the reply into an
/// InternalError so no un-logged mutation is ever acknowledged.
class JournalLayer final : public stack::BackendLayer {
 public:
  /// `manager` may be nullptr: a detached passthrough (what cloned chains
  /// get — a clone journaling into the original's WAL would corrupt it).
  explicit JournalLayer(PersistManager* manager) : manager_(manager) {}

  std::string layer_name() const override { return "journal"; }
  ApiResponse invoke(const ApiRequest& req) override;
  void reset() override;

 protected:
  std::unique_ptr<stack::BackendLayer> clone_detached() const override;

 private:
  PersistManager* manager_;
};

}  // namespace lce::persist
