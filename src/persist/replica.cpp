#include "persist/replica.h"

#include <chrono>
#include <utility>

#include "common/strings.h"
#include "interp/interpreter.h"
#include "persist/journal.h"
#include "persist/recovery.h"

namespace lce::persist {

// ---------------------------------------------------------------- WalFeed --

InProcessWalFeed::InProcessWalFeed(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

std::uint64_t InProcessWalFeed::publish(const LogRecord& rec) {
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(rec);
    seq = ++head_;
    if (ring_.size() > capacity_) {
      // Evict the oldest retained records; a straggler consumer now sees
      // a gap and re-seeds. erase-from-front keeps the structure a plain
      // vector — eviction is rare (appliers normally keep up) and batches.
      const std::size_t drop = ring_.size() - capacity_;
      ring_.erase(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(drop));
      base_ += drop;
    }
  }
  cv_.notify_all();
  return seq;
}

std::uint64_t InProcessWalFeed::published_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

FeedFetch InProcessWalFeed::fetch(std::uint64_t after, std::size_t max_records,
                                  std::vector<LogRecord>* out) {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (after < base_) return FeedFetch::kGap;
  if (after >= head_) return FeedFetch::kEmpty;
  const std::size_t first = static_cast<std::size_t>(after - base_);
  const std::size_t avail = ring_.size() - first;
  const std::size_t n = avail < max_records ? avail : max_records;
  out->assign(ring_.begin() + static_cast<std::ptrdiff_t>(first),
              ring_.begin() + static_cast<std::ptrdiff_t>(first + n));
  return FeedFetch::kRecords;
}

std::uint64_t InProcessWalFeed::wait_published(std::uint64_t after, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
               [&] { return head_ > after || shutdown_; });
  return head_;
}

void InProcessWalFeed::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

// ------------------------------------------------------------- ReplicaSet --

namespace {

/// Clone the primary under the exclusive gate: every committed write has
/// both mutated the store AND published to the feed, so (clone state,
/// published seq) is a consistent seed point. Returns nullptr when the
/// backend's clone seam fails.
std::unique_ptr<interp::Interpreter> quiesced_clone(PersistManager& persist,
                                                    WalFeed& feed,
                                                    std::uint64_t* seq) {
  std::unique_lock<std::shared_mutex> gate(persist.gate());
  std::unique_ptr<CloudBackend> copy = persist.primary().clone();
  auto* interp = dynamic_cast<interp::Interpreter*>(copy.get());
  if (interp == nullptr) return nullptr;
  copy.release();
  *seq = feed.published_seq();
  return std::unique_ptr<interp::Interpreter>(interp);
}

}  // namespace

ReplicaSet::ReplicaSet(PersistManager& persist, std::shared_ptr<WalFeed> feed,
                       ReplicaSetOptions opts)
    : persist_(persist), feed_(std::move(feed)), opts_(opts) {}

std::unique_ptr<ReplicaSet> ReplicaSet::create(PersistManager& persist,
                                               std::size_t n,
                                               ReplicaSetOptions opts,
                                               std::string* error) {
  auto feed = std::make_shared<InProcessWalFeed>(opts.feed_capacity);
  if (!persist.attach_feed(feed)) {
    if (error != nullptr) *error = "persist manager already has a WAL feed";
    return nullptr;
  }
  auto set = std::unique_ptr<ReplicaSet>(
      new ReplicaSet(persist, std::move(feed), opts));
  for (std::size_t i = 0; i < n; ++i) {
    auto rep = std::make_unique<Rep>();
    std::uint64_t seq = 0;
    rep->interp = quiesced_clone(persist, *set->feed_, &seq);
    if (rep->interp == nullptr) {
      if (error != nullptr) *error = strf("replica ", i, ": primary clone failed");
      return nullptr;  // no applier is running yet; ~ReplicaSet is a no-op
    }
    rep->applied.store(seq, std::memory_order_release);
    set->replicas_.push_back(std::move(rep));
  }
  for (auto& rep : set->replicas_) {
    rep->applier = std::thread([set_ptr = set.get(), rep_ptr = rep.get()] {
      set_ptr->applier_loop(*rep_ptr);
    });
  }
  return set;
}

ReplicaSet::~ReplicaSet() {
  stop_.store(true, std::memory_order_release);
  feed_->shutdown();
  for (auto& rep : replicas_) {
    if (rep->applier.joinable()) rep->applier.join();
  }
}

std::uint64_t ReplicaSet::replica_applied_seq(std::size_t i) const {
  return replicas_[i]->applied.load(std::memory_order_acquire);
}

ApiResponse ReplicaSet::invoke_on_replica(std::size_t i, const ApiRequest& req) {
  Rep& rep = *replicas_[i];
  // Shared with the applier (the interpreter's striped locks order reads
  // against applied writes); exclusive only for a re-seed swap.
  std::shared_lock<std::shared_mutex> hold(rep.swap_mu);
  return rep.interp->invoke(req);
}

void ReplicaSet::applier_loop(Rep& rep) {
  std::vector<LogRecord> batch;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t after = rep.applied.load(std::memory_order_relaxed);
    const FeedFetch kind = feed_->fetch(after, opts_.batch_max, &batch);
    if (kind == FeedFetch::kGap) {
      if (!reseed(rep)) return;  // clone seam failed; replica stays stale
      continue;
    }
    if (kind == FeedFetch::kEmpty) {
      feed_->wait_published(after, opts_.poll_ms);
      continue;
    }
    {
      std::shared_lock<std::shared_mutex> hold(rep.swap_mu);
      const ApplyResult applied = apply_records(batch, rep.interp.get());
      if (applied.mismatches != 0) {
        rep.mismatches.fetch_add(applied.mismatches, std::memory_order_relaxed);
      }
    }
    rep.applied.store(after + batch.size(), std::memory_order_release);
  }
}

bool ReplicaSet::reseed(Rep& rep) {
  std::uint64_t seq = 0;
  auto fresh = quiesced_clone(persist_, *feed_, &seq);
  if (fresh == nullptr) return false;
  {
    std::unique_lock<std::shared_mutex> swap(rep.swap_mu);
    rep.interp = std::move(fresh);
  }
  rep.applied.store(seq, std::memory_order_release);
  rep.reseeds.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ReplicaSet::drain(std::uint64_t seq, int timeout_ms) {
  const std::uint64_t target = seq != 0 ? seq : feed_->published_seq();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool all = true;
    for (const auto& rep : replicas_) {
      if (rep->applied.load(std::memory_order_acquire) < target) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

PromoteReport ReplicaSet::promote(std::size_t i, int drain_timeout_ms) {
  PromoteReport report;
  if (i >= replicas_.size()) {
    report.error = strf("no replica ", i);
    return report;
  }
  Rep& rep = *replicas_[i];
  // The exclusive gate freezes commits (everything committed is published,
  // nothing new publishes until release), but a straggler that fell past
  // the feed's retention window needs that same gate to re-seed. So drain
  // gate-free first, then take the gate and re-check: a commit that slips
  // in between is caught by the re-check, which releases and retries.
  std::unique_lock<std::shared_mutex> gate(persist_.gate(), std::defer_lock);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(drain_timeout_ms);
  std::uint64_t target;
  for (;;) {
    target = feed_->published_seq();
    while (rep.applied.load(std::memory_order_acquire) < target) {
      if (std::chrono::steady_clock::now() >= deadline) {
        report.error = strf("drain timed out at ",
                            rep.applied.load(std::memory_order_relaxed), "/",
                            target);
        return report;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      target = feed_->published_seq();
    }
    gate.lock();
    target = feed_->published_seq();
    if (rep.applied.load(std::memory_order_acquire) >= target) break;
    gate.unlock();
    if (std::chrono::steady_clock::now() >= deadline) {
      report.error = strf("drain raced new commits until the deadline (",
                          rep.applied.load(std::memory_order_relaxed), "/",
                          target, ")");
      return report;
    }
  }
  report.applied_seq = rep.applied.load(std::memory_order_acquire);
  report.mismatches = rep.mismatches.load(std::memory_order_relaxed);

  std::string primary_dump;
  {
    auto stripes = persist_.primary().store().locks().lock_shared_all();
    primary_dump = serialize_store(persist_.primary().store());
  }
  {
    std::shared_lock<std::shared_mutex> hold(rep.swap_mu);
    auto stripes = rep.interp->store().locks().lock_shared_all();
    report.canonical_dump = serialize_store(rep.interp->store());
  }
  report.dumps_identical = report.canonical_dump == primary_dump;
  report.ok = report.dumps_identical;
  if (!report.ok) {
    report.error = strf("replica ", i, " dump (", report.canonical_dump.size(),
                        " bytes) differs from primary (", primary_dump.size(),
                        " bytes) after applying ", report.applied_seq,
                        " record(s)");
  }
  return report;
}

std::vector<ReplicaStatus> ReplicaSet::status() const {
  std::vector<ReplicaStatus> out;
  out.reserve(replicas_.size());
  const std::uint64_t head = feed_->published_seq();
  for (const auto& rep : replicas_) {
    ReplicaStatus st;
    st.applied_seq = rep->applied.load(std::memory_order_acquire);
    st.lag = head > st.applied_seq ? head - st.applied_seq : 0;
    st.reseeds = rep->reseeds.load(std::memory_order_relaxed);
    st.mismatches = rep->mismatches.load(std::memory_order_relaxed);
    out.push_back(st);
  }
  return out;
}

}  // namespace lce::persist
