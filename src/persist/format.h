// Binary on-disk format shared by every durable-state artifact (DESIGN.md
// "Durability"): the write-ahead log, snapshots, and exported traces all
// speak one record vocabulary, so a recorded endpoint session and a serve
// WAL are interchangeable inputs to replay and the alignment differ.
//
// Layers of the format, bottom up:
//
//   primitives   little-endian fixed-width ints and length-prefixed
//                strings (ByteWriter / ByteReader)
//   Value codec  tag byte + payload, recursion-depth bounded
//   LogRecord    one committed transition: the normalized call, the
//                released response, and the ids it minted
//   framing      [u32 payload-len][u32 crc32][payload] per record; a
//                record is valid only when fully present AND its checksum
//                matches, which is what makes the torn-tail rule of
//                recovery safe at any kill -9 byte offset
//   store codec  canonical, versioned dump of a ResourceStore: resources
//                in creation (seq) order plus the id counters and the seq
//                clock, so a restored store mints the exact id sequence
//                the original would have (serialize_canonical of equal
//                stores is byte-identical — the determinism contract the
//                replay verifier and the crash-torture suite compare on)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/api.h"
#include "common/value.h"

namespace lce::interp {
class ResourceStore;
}  // namespace lce::interp

namespace lce::persist {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::string_view bytes);

/// File headers: 4 magic bytes + u32 format version.
inline constexpr std::string_view kWalMagic = "LCW1";
inline constexpr std::string_view kSnapshotMagic = "LCS1";
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 8;
/// Sanity cap on a single framed record (malformed length fields must not
/// drive giant allocations during recovery scans).
inline constexpr std::uint32_t kMaxRecordBytes = 64u << 20;
/// Cap on a snapshot's single frame (one whole-store dump, so far larger
/// than any WAL record). write_snapshot_file enforces it at write time:
/// a snapshot that cannot be read back must never be created, because
/// rotation deletes the older epochs that could rebuild the same state.
inline constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 30;

// ------------------------------------------------------------- primitives --

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view s);
  /// Bytes verbatim, no length prefix (file magics).
  void raw(std::string_view s) { out_.append(s.data(), s.size()); }

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader; any out-of-range read latches ok() == false and
/// subsequent reads return zero values.
class ByteReader {
 public:
  explicit ByteReader(std::string_view in) : in_(in) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == in_.size(); }

 private:
  bool take(std::size_t n, const char** out);

  std::string_view in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ------------------------------------------------------------ Value codec --

void encode_value(const Value& v, ByteWriter& w);
/// False on malformed input or nesting beyond the format's depth bound.
bool decode_value(ByteReader& r, Value* out);

// -------------------------------------------------------------- LogRecord --

/// One entry of the write-ahead log / trace-record stream.
struct LogRecord {
  enum class Type : std::uint8_t {
    kCall = 1,   // a state-changing (or, optionally, read) API invocation
    kReset = 2,  // a whole-account reset (POST /reset)
  };

  Type type = Type::kCall;
  /// The call as the journal saw it: already normalized (ids re-tagged as
  /// refs by the validate layer above). Exported traces may instead carry
  /// "$k.id" placeholders; replay resolves both shapes.
  ApiRequest request;
  /// Trace exports built from a request-only Trace have no response.
  bool has_response = false;
  ApiResponse response;
  /// Ids this call minted (the created resource's "id" field), recorded so
  /// replay can pin the id sequence even when concurrent commits landed in
  /// the log out of mint order.
  std::vector<std::string> minted_ids;
};

/// Minted ids of a response: the top-level "id" ref of a successful reply
/// (the interpreter's create contract), empty otherwise.
std::vector<std::string> collect_minted_ids(const ApiResponse& resp);

std::string encode_record(const LogRecord& rec);
bool decode_record(std::string_view payload, LogRecord* out);

// ---------------------------------------------------------------- framing --

/// Append [u32 len][u32 crc32(payload)][payload] to `out`.
void append_framed(std::string& out, std::string_view payload);

/// Scan one framed record at `bytes[pos...]`. Returns true and advances
/// `pos` past the record when a complete, checksum-valid record is
/// present; false for ANY defect (short length field, truncated payload,
/// CRC mismatch, length over `max_payload_bytes`) — the caller treats
/// everything from `pos` on as a torn tail. WAL scans use the per-record
/// cap; snapshot reads pass kMaxSnapshotBytes.
bool scan_framed(std::string_view bytes, std::size_t* pos, std::string_view* payload,
                 std::uint64_t max_payload_bytes = kMaxRecordBytes);

// ------------------------------------------------------------ store codec --

/// Canonical serialization of the full store: version, seq clock, id
/// counters, then resources in creation order. Deterministic — equal
/// stores serialize to identical bytes. Caller holds lock_shared_all (or
/// is serial), matching the store's scan contract.
std::string serialize_store(const interp::ResourceStore& store);

/// Rebuild `store` from serialize_store bytes (clears it first). False on
/// malformed input or version mismatch; the store is left cleared.
bool deserialize_store(std::string_view bytes, interp::ResourceStore* store);

}  // namespace lce::persist
