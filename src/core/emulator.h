// The public entry point: a learned cloud emulator assembled end-to-end
// from documentation text (paper Fig. 2's workflow). Wraps the synthesis
// pipeline, the spec interpreter, and the alignment loop behind one
// object a DevOps-testing harness would instantiate.
//
//   auto docs = lce::docs::render_corpus(lce::docs::build_aws_catalog());
//   auto emu = lce::core::LearnedEmulator::from_docs(docs);
//   emu.backend().invoke({"CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}}, ""});
//   emu.align_against(real_cloud);   // close the loop (§4.3)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "align/engine.h"
#include "interp/decoder.h"
#include "interp/interpreter.h"
#include "stack/config.h"
#include "synth/synthesizer.h"

namespace lce::core {

struct PipelineOptions {
  synth::SynthesisOptions synthesis;
  /// Enrich error messages with root-cause hints (§4.3's "richer" replies).
  bool rich_messages = true;
  /// Serve through the compiled execution plan (InterpreterOptions::
  /// use_plan); off = the tree-walking reference path, for debugging and
  /// differential testing.
  bool use_plan = true;
  std::string name = "learned-emulator";
  /// Defaults for align_against(cloud) — including `workers`, the
  /// differential-pass parallelism (0 = auto, 1 = serial).
  align::AlignmentOptions alignment;
  /// Layer stack installed around the interpreter by layered_backend()
  /// (serving, concurrent harnesses). Defaults: validate + metrics, no
  /// faults; serialize is kAuto and stays OUT for the interpreter (it is
  /// thread_safe() via the sharded store), so the default serve path runs
  /// concurrently.
  stack::StackConfig stack;
};

class LearnedEmulator {
 public:
  /// Run the full synthesis pipeline over rendered documentation.
  static LearnedEmulator from_docs(const docs::DocCorpus& corpus,
                                   PipelineOptions opts = {});

  /// The emulator as a cloud backend (invoke APIs against it).
  interp::Interpreter& backend() { return *backend_; }
  const interp::Interpreter& backend() const { return *backend_; }

  /// The emulator behind the PipelineOptions::stack layer chain — the
  /// production shape: thread-safe, observable, optionally fault-injecting.
  /// The returned stack references this emulator's interpreter; the
  /// emulator must outlive it.
  stack::LayerStack layered_backend() { return stack::build_stack(*backend_, opts_.stack); }

  /// Synthesis provenance: wrangling stats, noise, checks, logs.
  const synth::SynthesisResult& synthesis() const { return synthesis_; }

  /// Run the automated alignment loop against an oracle (§4.3). The
  /// backend's spec is repaired in place. The one-argument form uses
  /// PipelineOptions::alignment as defaults.
  align::AlignmentReport align_against(CloudBackend& cloud);
  align::AlignmentReport align_against(CloudBackend& cloud,
                                       align::AlignmentOptions opts);

  /// Alignment history (empty until align_against ran).
  const std::vector<align::AlignmentReport>& alignment_history() const {
    return alignment_history_;
  }

  /// API coverage against a ground-truth API list: how many of `apis` this
  /// emulator implements (Table 1 accounting).
  std::size_t covered(const std::vector<std::string>& apis) const;

 private:
  LearnedEmulator() = default;

  PipelineOptions opts_;
  synth::SynthesisResult synthesis_;
  std::unique_ptr<interp::Interpreter> backend_;
  std::vector<align::AlignmentReport> alignment_history_;
};

}  // namespace lce::core
