#include "core/scenarios.h"

#include <set>

#include "common/strings.h"

namespace lce::core {

std::vector<std::string> ScenarioSuite::scenario_names() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& e : entries) {
    if (seen.insert(e.scenario).second) out.push_back(e.scenario);
  }
  return out;
}

namespace {

void add(ScenarioSuite& suite, std::string scenario, Trace trace) {
  suite.entries.push_back(ScenarioSuite::Entry{std::move(scenario), std::move(trace)});
}

}  // namespace

ScenarioSuite fig3_aws_suite() {
  ScenarioSuite suite;

  // ---------------------------------------------------- provisioning (4) --
  {
    // The paper's §5 basic-functionality DevOps program.
    Trace t;
    t.label = "provision/vpc-subnet-map-public-ip";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.1.0/24")},
                           {"zone", Value("us-east")}});
    t.add("ModifySubnetAttribute",
          {{"id", Value("$1.id")}, {"map_public_ip_on_launch", Value(true)}});
    t.add("DescribeSubnet", {{"id", Value("$1.id")}});
    add(suite, "provisioning", std::move(t));
  }
  {
    Trace t;
    t.label = "provision/instance-launch";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.1.0/24")},
                           {"zone", Value("us-east")}});
    t.add("RunInstance",
          {{"subnet", Value("$1.id")}, {"instance_type", Value("t3.micro")}});
    t.add("DescribeInstance", {{"id", Value("$2.id")}});
    add(suite, "provisioning", std::move(t));
  }
  {
    Trace t;
    t.label = "provision/network-firewall";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateFirewallPolicy", {});
    t.add("CreateFirewall", {{"vpc", Value("$0.id")}, {"policy", Value("$1.id")}});
    t.add("DescribeFirewall", {{"id", Value("$2.id")}});
    add(suite, "provisioning", std::move(t));
  }
  {
    Trace t;
    t.label = "provision/dynamodb-table";
    t.add("CreateTable",
          {{"table_name", Value("orders")}, {"billing_mode", Value("PROVISIONED")}});
    t.add("PutItem", {{"table", Value("$0.id")},
                      {"item_key", Value("o-1")},
                      {"payload", Value("{\"qty\":3}")}});
    t.add("GetItem", {{"id", Value("$1.id")}});
    t.add("DescribeTable", {{"id", Value("$0.id")}});
    add(suite, "provisioning", std::move(t));
  }

  // --------------------------------------------------- state updates (4) --
  {
    // The InstanceTenancy / CreditSpecification updates the paper calls
    // out as untestable on the D2C emulator.
    Trace t;
    t.label = "state/instance-tenancy-and-credit";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.1.0/24")},
                           {"zone", Value("us-east")}});
    t.add("RunInstance",
          {{"subnet", Value("$1.id")}, {"instance_type", Value("t3.micro")}});
    t.add("ModifyInstanceTenancy", {{"id", Value("$2.id")}, {"value", Value("dedicated")}});
    t.add("ModifyInstanceCreditSpecification",
          {{"id", Value("$2.id")}, {"value", Value("unlimited")}});
    t.add("DescribeInstance", {{"id", Value("$2.id")}});
    add(suite, "state-updates", std::move(t));
  }
  {
    Trace t;
    t.label = "state/vpc-dns-attributes";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("ModifyVpcDnsSupport", {{"id", Value("$0.id")}, {"value", Value(false)}});
    // DNS hostnames on a VPC with DNS support disabled must fail.
    t.add("ModifyVpcDnsHostnames", {{"id", Value("$0.id")}, {"value", Value(true)}});
    t.add("DescribeVpc", {{"id", Value("$0.id")}});
    add(suite, "state-updates", std::move(t));
  }
  {
    Trace t;
    t.label = "state/instance-stop-resize-start";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.1.0/24")},
                           {"zone", Value("us-east")}});
    t.add("RunInstance",
          {{"subnet", Value("$1.id")}, {"instance_type", Value("t3.micro")}});
    t.add("StopInstance", {{"id", Value("$2.id")}});
    t.add("ModifyInstanceType", {{"id", Value("$2.id")}, {"value", Value("m5.large")}});
    t.add("StartInstance", {{"id", Value("$2.id")}});
    t.add("DescribeInstance", {{"id", Value("$2.id")}});
    add(suite, "state-updates", std::move(t));
  }
  {
    Trace t;
    t.label = "state/dynamodb-billing-and-capacity";
    t.add("CreateTable",
          {{"table_name", Value("metrics")}, {"billing_mode", Value("PROVISIONED")}});
    t.add("UpdateTableReadCapacity", {{"id", Value("$0.id")}, {"value", Value(200)}});
    t.add("UpdateTableBillingMode",
          {{"id", Value("$0.id")}, {"value", Value("PAY_PER_REQUEST")}});
    // Capacity updates are invalid in on-demand mode.
    t.add("UpdateTableReadCapacity", {{"id", Value("$0.id")}, {"value", Value(50)}});
    t.add("DescribeTable", {{"id", Value("$0.id")}});
    add(suite, "state-updates", std::move(t));
  }

  // ------------------------------------------------------ edge cases (4) --
  {
    // The Moto bug from §2: DeleteVpc with an attached gateway.
    Trace t;
    t.label = "edge/delete-vpc-with-gateway";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateInternetGateway", {{"vpc", Value("$0.id")}});
    t.add("DeleteVpc", {{"id", Value("$0.id")}});
    add(suite, "edge-cases", std::move(t));
  }
  {
    // The /29 subnet the paper's D2C baseline wrongly accepted.
    Trace t;
    t.label = "edge/subnet-invalid-prefix";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.0.0/29")},
                           {"zone", Value("us-east")}});
    add(suite, "edge-cases", std::move(t));
  }
  {
    // StartInstances on a running instance: the underspecified behaviour
    // ("IncorrectInstanceState") the D2C emulator silently ignored.
    Trace t;
    t.label = "edge/start-running-instance";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.1.0/24")},
                           {"zone", Value("us-east")}});
    t.add("RunInstance",
          {{"subnet", Value("$1.id")}, {"instance_type", Value("t3.micro")}});
    t.add("StartInstance", {{"id", Value("$2.id")}});
    add(suite, "edge-cases", std::move(t));
  }
  {
    // Cross-resource zone coupling on address association.
    Trace t;
    t.label = "edge/zone-mismatch-association";
    t.add("CreateVpc", {{"cidr_block", Value("10.0.0.0/16")}});
    t.add("CreateSubnet", {{"vpc", Value("$0.id")},
                           {"cidr_block", Value("10.0.1.0/24")},
                           {"zone", Value("us-east")}});
    t.add("CreateNetworkInterface",
          {{"subnet", Value("$1.id")}, {"zone", Value("us-west")}});
    t.add("AllocateAddress", {{"zone", Value("us-east")}});
    t.add("AssociateAddress", {{"id", Value("$3.id")}, {"nic", Value("$2.id")}});
    add(suite, "edge-cases", std::move(t));
  }
  return suite;
}

ScenarioSuite fig3_azure_suite() {
  ScenarioSuite suite;
  {
    Trace t;
    t.label = "provision/vnet-subnet";
    t.add("PutVirtualNetwork", {{"address_space", Value("10.0.0.0/16")}});
    t.add("PutVnetSubnet",
          {{"vnet", Value("$0.id")}, {"address_prefix", Value("10.0.1.0/24")}});
    t.add("GetVnetSubnet", {{"id", Value("$1.id")}});
    add(suite, "provisioning", std::move(t));
  }
  {
    Trace t;
    t.label = "provision/vm-launch";
    t.add("PutVirtualNetwork", {{"address_space", Value("10.0.0.0/16")}});
    t.add("PutVnetSubnet",
          {{"vnet", Value("$0.id")}, {"address_prefix", Value("10.0.1.0/24")}});
    t.add("PutVirtualMachine",
          {{"subnet", Value("$1.id")}, {"vm_size", Value("Standard_B1s")}});
    t.add("GetVirtualMachine", {{"id", Value("$2.id")}});
    add(suite, "provisioning", std::move(t));
  }
  {
    Trace t;
    t.label = "state/vm-deallocate-resize";
    t.add("PutVirtualNetwork", {{"address_space", Value("10.0.0.0/16")}});
    t.add("PutVnetSubnet",
          {{"vnet", Value("$0.id")}, {"address_prefix", Value("10.0.1.0/24")}});
    t.add("PutVirtualMachine",
          {{"subnet", Value("$1.id")}, {"vm_size", Value("Standard_B1s")}});
    t.add("ResizeVirtualMachine", {{"id", Value("$2.id")}, {"value", Value("Standard_D2")}});
    t.add("DeallocateVirtualMachine", {{"id", Value("$2.id")}});
    t.add("ResizeVirtualMachine", {{"id", Value("$2.id")}, {"value", Value("Standard_D2")}});
    t.add("GetVirtualMachine", {{"id", Value("$2.id")}});
    add(suite, "state-updates", std::move(t));
  }
  {
    Trace t;
    t.label = "state/nsg-rule-priority";
    t.add("PutVirtualNetwork", {{"address_space", Value("10.0.0.0/16")}});
    t.add("PutNetworkSecurityGroup", {{"vnet", Value("$0.id")}});
    t.add("PutSecurityRule", {{"id", Value("$1.id")}, {"priority", Value(200)}});
    t.add("PutSecurityRule", {{"id", Value("$1.id")}, {"priority", Value(9)}});
    t.add("GetNetworkSecurityGroup", {{"id", Value("$1.id")}});
    add(suite, "state-updates", std::move(t));
  }
  {
    Trace t;
    t.label = "edge/delete-vnet-with-subnet";
    t.add("PutVirtualNetwork", {{"address_space", Value("10.0.0.0/16")}});
    t.add("PutVnetSubnet",
          {{"vnet", Value("$0.id")}, {"address_prefix", Value("10.0.1.0/24")}});
    t.add("DeleteVirtualNetwork", {{"id", Value("$0.id")}});
    add(suite, "edge-cases", std::move(t));
  }
  {
    Trace t;
    t.label = "edge/start-running-vm";
    t.add("PutVirtualNetwork", {{"address_space", Value("10.0.0.0/16")}});
    t.add("PutVnetSubnet",
          {{"vnet", Value("$0.id")}, {"address_prefix", Value("10.0.1.0/24")}});
    t.add("PutVirtualMachine",
          {{"subnet", Value("$1.id")}, {"vm_size", Value("Standard_B1s")}});
    t.add("StartVirtualMachine", {{"id", Value("$2.id")}});
    add(suite, "edge-cases", std::move(t));
  }
  return suite;
}

AccuracyResult score_accuracy(CloudBackend& emulator, CloudBackend& cloud,
                              const ScenarioSuite& suite) {
  AccuracyResult result;
  for (const auto& entry : suite.entries) {
    auto cloud_resp = run_trace(cloud, entry.trace);
    auto emu_resp = run_trace(emulator, entry.trace);
    bool aligned = true;
    for (std::size_t i = 0; i < cloud_resp.size(); ++i) {
      if (!cloud_resp[i].aligned_with(emu_resp[i])) {
        aligned = false;
        result.failures.push_back(
            strf(entry.trace.label, " call #", i, " (", entry.trace.calls[i].api,
                 "): cloud ", cloud_resp[i].to_text(), " | emulator ",
                 emu_resp[i].to_text()));
        break;
      }
    }
    auto& score = result.per_scenario[entry.scenario];
    ++score.total;
    ++result.overall.total;
    if (aligned) {
      ++score.aligned;
      ++result.overall.aligned;
    }
  }
  return result;
}

}  // namespace lce::core
