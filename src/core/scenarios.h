// The Fig. 3 evaluation suite: "we compare the response alignment against
// the cloud for 4 traces across 3 scenarios: provisioning, state updates,
// and edge cases that target subtle underspecified checks" — 12 traces
// total, each scored aligned only when EVERY response matches the cloud's
// (success payloads equivalent; failures with identical error codes).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/api.h"

namespace lce::core {

struct ScenarioSuite {
  struct Entry {
    std::string scenario;  // "provisioning" / "state-updates" / "edge-cases"
    Trace trace;
  };
  std::vector<Entry> entries;

  std::vector<std::string> scenario_names() const;
};

/// The AWS 3x4 suite used by the Fig. 3 bench.
ScenarioSuite fig3_aws_suite();

/// The Azure replication suite (§5 "Multi-cloud").
ScenarioSuite fig3_azure_suite();

struct ScenarioScore {
  int aligned = 0;
  int total = 0;
  double ratio() const { return total == 0 ? 0.0 : static_cast<double>(aligned) / total; }
};

struct AccuracyResult {
  std::map<std::string, ScenarioScore> per_scenario;
  ScenarioScore overall;
  std::vector<std::string> failures;  // per-trace first-divergence notes
};

/// Run every suite trace on both backends and score per-trace alignment.
AccuracyResult score_accuracy(CloudBackend& emulator, CloudBackend& cloud,
                              const ScenarioSuite& suite);

}  // namespace lce::core
