#include "core/emulator.h"

namespace lce::core {

LearnedEmulator LearnedEmulator::from_docs(const docs::DocCorpus& corpus,
                                           PipelineOptions opts) {
  LearnedEmulator e;
  e.opts_ = opts;
  e.synthesis_ = synth::synthesize(corpus, opts.synthesis);
  interp::InterpreterOptions iopts;
  iopts.name = opts.name;
  iopts.use_plan = opts.use_plan;
  if (opts.rich_messages) iopts.decoder = interp::make_rich_decoder();
  e.backend_ = std::make_unique<interp::Interpreter>(e.synthesis_.spec.clone(), iopts);
  return e;
}

align::AlignmentReport LearnedEmulator::align_against(CloudBackend& cloud) {
  return align_against(cloud, opts_.alignment);
}

align::AlignmentReport LearnedEmulator::align_against(CloudBackend& cloud,
                                                      align::AlignmentOptions opts) {
  align::AlignmentEngine engine(*backend_, cloud, opts);
  align::AlignmentReport report = engine.run();
  alignment_history_.push_back(report);
  return report;
}

std::size_t LearnedEmulator::covered(const std::vector<std::string>& apis) const {
  std::size_t n = 0;
  for (const auto& api : apis) {
    if (backend_->supports(api)) ++n;
  }
  return n;
}

}  // namespace lce::core
