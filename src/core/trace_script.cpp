#include "core/trace_script.h"

#include "common/strings.h"

namespace lce::core {

std::string ScriptError::to_text() const {
  return strf("script error at line ", line, ": ", message);
}

namespace {

/// Parse one value token: "str", int, true/false, null, $N.
std::optional<Value> parse_value(const std::string& tok) {
  if (tok == "true") return Value(true);
  if (tok == "false") return Value(false);
  if (tok == "null") return Value();
  if (tok.size() >= 2 && tok.front() == '"' && tok.back() == '"') {
    return Value(tok.substr(1, tok.size() - 2));
  }
  if (tok.size() >= 2 && tok[0] == '$') {
    std::int64_t n = 0;
    if (!parse_int(std::string_view(tok).substr(1), n) || n < 0) return std::nullopt;
    return Value(strf("$", n, ".id"));
  }
  std::int64_t n = 0;
  if (parse_int(tok, n)) return Value(n);
  return std::nullopt;
}

/// Split a line into whitespace-separated tokens, keeping quoted strings
/// (with their quotes) intact.
std::optional<std::vector<std::string>> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size()) break;
    std::string tok;
    bool in_quotes = false;
    while (i < line.size() &&
           (in_quotes || !std::isspace(static_cast<unsigned char>(line[i])))) {
      if (line[i] == '"') in_quotes = !in_quotes;
      tok += line[i++];
    }
    if (in_quotes) return std::nullopt;  // unterminated quote
    out.push_back(std::move(tok));
  }
  return out;
}

std::string render_value(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull: return "null";
    case ValueKind::kBool: return v.as_bool() ? "true" : "false";
    case ValueKind::kInt: return std::to_string(v.as_int());
    case ValueKind::kStr:
    case ValueKind::kRef: {
      std::string_view s = v.as_str();
      // "$N.id" placeholders round-trip to $N.
      if (s.size() > 4 && s[0] == '$' && ends_with(s, ".id")) {
        std::int64_t n = 0;
        if (parse_int(std::string_view(s).substr(1, s.size() - 4), n)) {
          return strf("$", n);
        }
      }
      return strf("\"", s, "\"");
    }
    default: return strf("\"", v.to_text(), "\"");
  }
}

}  // namespace

std::optional<Trace> parse_trace_script(const std::string& text, ScriptError* error) {
  auto fail = [&](int line, std::string msg) -> std::optional<Trace> {
    if (error != nullptr) *error = ScriptError{line, std::move(msg)};
    return std::nullopt;
  };
  Trace trace;
  auto lines = split(text, '\n');
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    std::string line = trim(lines[ln]);
    int line_no = static_cast<int>(ln + 1);
    if (line.empty() || line[0] == '#') continue;
    auto toks = tokenize(line);
    if (!toks) return fail(line_no, "unterminated quoted string");
    if (toks->empty()) continue;
    ApiRequest req;
    req.api = (*toks)[0];
    for (std::size_t i = 1; i < toks->size(); ++i) {
      const std::string& tok = (*toks)[i];
      std::size_t eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail(line_no, strf("expected key=value, got '", tok, "'"));
      }
      auto v = parse_value(tok.substr(eq + 1));
      if (!v) return fail(line_no, strf("unparseable value in '", tok, "'"));
      req.args[tok.substr(0, eq)] = std::move(*v);
    }
    // Each call's positional index is what $N refers to, counting only
    // actual calls (comments/blank lines don't shift indices).
    trace.calls.push_back(std::move(req));
  }
  return trace;
}

std::string print_trace_script(const Trace& trace) {
  std::string out;
  if (!trace.label.empty()) out += "# " + trace.label + "\n";
  for (const auto& call : trace.calls) {
    out += call.api;
    for (const auto& [k, v] : call.args) {
      out += strf(" ", k, "=", render_value(v));
    }
    // Targets print under the "id=" alias (both backends accept an "id"
    // arg as the target); render_value keeps "$N.id" placeholders and
    // quotes concrete ids so the line re-parses.
    if (!call.target.empty()) out += strf(" id=", render_value(Value(call.target)));
    out += "\n";
  }
  return out;
}

std::string run_trace_script(CloudBackend& backend, const Trace& trace) {
  auto responses = run_trace(backend, trace);
  std::string out;
  for (std::size_t i = 0; i < trace.calls.size(); ++i) {
    out += strf("[", i, "] ", trace.calls[i].api, " -> ", responses[i].to_text(), "\n");
  }
  return out;
}

}  // namespace lce::core
