// A tiny text format for DevOps programs ("trace scripts"), so traces can
// live in files, be replayed against any backend, and be diffed across
// emulators — the way a testing harness would drive the emulator.
//
//   # provision a network
//   CreateVpc cidr_block="10.0.0.0/16"
//   CreateSubnet vpc=$0 cidr_block="10.0.1.0/24" zone="us-east"
//   ModifySubnetAttribute id=$1 map_public_ip_on_launch=true
//   DescribeSubnet id=$1
//
// Values: "quoted strings", integers, true/false, null, and $N — a
// reference to the id returned by the N-th call (0-based).
#pragma once

#include <optional>
#include <string>

#include "common/api.h"

namespace lce::core {

struct ScriptError {
  int line = 0;
  std::string message;

  std::string to_text() const;
};

/// Parse a trace script; nullopt + error on malformed input.
std::optional<Trace> parse_trace_script(const std::string& text, ScriptError* error);

/// Render a trace back to script text (parse round-trips).
std::string print_trace_script(const Trace& trace);

/// Run a script against a backend and render a human-readable transcript
/// (one line per call: api, args, response).
std::string run_trace_script(CloudBackend& backend, const Trace& trace);

}  // namespace lce::core
