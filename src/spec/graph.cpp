#include "spec/graph.h"

#include <algorithm>
#include <functional>

namespace lce::spec {

namespace {

// Collect the resource types a transition's body references via calls to
// ref-typed expressions. We resolve a call's target type from the ref type
// of the variable at its root, when statically known.
void collect_expr_ref_types(const Expr& e, const StateMachine& m, const Transition& t,
                            std::set<std::string>& out) {
  if (e.kind == ExprKind::kVar) {
    if (const StateVar* sv = m.find_state(e.name)) {
      if (sv->type.kind == TypeKind::kRef && !sv->type.ref_type.empty()) {
        out.insert(sv->type.ref_type);
      }
    }
    for (const auto& p : t.params) {
      if (p.name == e.name && p.type.kind == TypeKind::kRef && !p.type.ref_type.empty()) {
        out.insert(p.type.ref_type);
      }
    }
  }
  for (const auto& k : e.kids) collect_expr_ref_types(*k, m, t, out);
}

void collect_body_call_types(const Body& body, const StateMachine& m, const Transition& t,
                             std::set<std::string>& out) {
  for (const auto& s : body) {
    if (s->kind == StmtKind::kCall && s->expr) {
      collect_expr_ref_types(*s->expr, m, t, out);
    }
    collect_body_call_types(s->then_body, m, t, out);
    collect_body_call_types(s->else_body, m, t, out);
  }
}

}  // namespace

DependencyGraph DependencyGraph::build(const SpecSet& spec) {
  DependencyGraph g;
  for (const auto& m : spec.machines) g.nodes_.insert(m.name);

  auto note_target = [&](const std::string& from, const std::string& to, DepKind kind) {
    if (to.empty() || to == from) return;
    g.edges_.insert(DepEdge{from, to, kind});
    if (g.nodes_.find(to) == g.nodes_.end()) g.dangling_.insert(to);
  };

  for (const auto& m : spec.machines) {
    if (!m.parent_type.empty()) note_target(m.name, m.parent_type, DepKind::kContainment);
    for (const auto& sv : m.states) {
      if (sv.type.kind == TypeKind::kRef) note_target(m.name, sv.type.ref_type, DepKind::kReference);
    }
    for (const auto& t : m.transitions) {
      for (const auto& p : t.params) {
        if (p.type.kind == TypeKind::kRef) {
          note_target(m.name, p.type.ref_type, DepKind::kReference);
        }
      }
      std::set<std::string> call_types;
      collect_body_call_types(t.body, m, t, call_types);
      for (const auto& ct : call_types) note_target(m.name, ct, DepKind::kCall);
    }
  }
  return g;
}

std::set<std::string> DependencyGraph::deps_of(const std::string& name) const {
  std::set<std::string> out;
  for (const auto& e : edges_) {
    if (e.from == name) out.insert(e.to);
  }
  return out;
}

std::set<std::string> DependencyGraph::closure_of(const std::string& name) const {
  std::set<std::string> seen;
  std::vector<std::string> stack{name};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    for (const auto& d : deps_of(cur)) {
      if (seen.insert(d).second) stack.push_back(d);
    }
  }
  seen.erase(name);
  return seen;
}

bool DependencyGraph::reachable(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  auto cl = closure_of(from);
  return cl.find(to) != cl.end();
}

std::vector<std::string> DependencyGraph::creation_order() const {
  // Kahn's algorithm over "A depends on B => B before A"; ties and cycles
  // broken by lexicographic name for determinism.
  std::map<std::string, std::set<std::string>> deps;
  for (const auto& n : nodes_) deps[n];
  for (const auto& e : edges_) {
    if (nodes_.count(e.to) > 0) deps[e.from].insert(e.to);
  }
  std::vector<std::string> order;
  std::set<std::string> emitted;
  while (order.size() < nodes_.size()) {
    std::string next;
    for (const auto& [n, ds] : deps) {
      if (emitted.count(n) > 0) continue;
      bool ready = std::all_of(ds.begin(), ds.end(),
                               [&](const std::string& d) { return emitted.count(d) > 0; });
      if (ready) {
        next = n;
        break;
      }
    }
    if (next.empty()) {
      // Cycle: emit the lexicographically-smallest remaining node.
      for (const auto& [n, ds] : deps) {
        (void)ds;
        if (emitted.count(n) == 0) {
          next = n;
          break;
        }
      }
    }
    order.push_back(next);
    emitted.insert(next);
  }
  return order;
}

double DependencyGraph::edge_density() const {
  std::size_t n = nodes_.size();
  if (n < 2) return 0.0;
  return static_cast<double>(edges_.size()) / static_cast<double>(n * (n - 1));
}

}  // namespace lce::spec
