#include "spec/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace lce::spec {

namespace {

class Lexer {
 public:
  Lexer(std::string_view src, LexError* error) : src_(src), error_(error) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws_and_comments();
      if (pos_ >= src_.size()) break;
      Token t = next_token();
      if (failed_) return {};
      out.push_back(std::move(t));
    }
    Token eof;
    eof.kind = TokKind::kEof;
    eof.line = line_;
    eof.col = col_;
    out.push_back(std::move(eof));
    return out;
  }

 private:
  char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  void fail(std::string msg) {
    if (error_ != nullptr) *error_ = LexError{std::move(msg), line_, col_};
    failed_ = true;
  }

  Token next_token() {
    Token t;
    t.line = line_;
    t.col = col_;
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        ident += advance();
      }
      t.kind = TokKind::kIdent;
      t.text = std::move(ident);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
      t.kind = TokKind::kInt;
      t.text = num;
      (void)parse_int(num, t.int_value);
      return t;
    }
    if (c == '"') {
      advance();
      std::string s;
      while (pos_ < src_.size() && peek() != '"') {
        char d = advance();
        if (d == '\\' && pos_ < src_.size()) {
          char e = advance();
          switch (e) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            default: s += e;
          }
        } else {
          s += d;
        }
      }
      if (pos_ >= src_.size()) {
        fail("unterminated string literal");
        return t;
      }
      advance();  // closing quote
      t.kind = TokKind::kString;
      t.text = std::move(s);
      return t;
    }
    // Two-char operators first.
    static constexpr std::string_view kTwo[] = {"==", "!=", "<=", ">=", "&&",
                                                "||", "->"};
    for (std::string_view op : kTwo) {
      if (c == op[0] && peek(1) == op[1]) {
        advance();
        advance();
        t.kind = TokKind::kSymbol;
        t.text = std::string(op);
        return t;
      }
    }
    static constexpr std::string_view kOne = "{}(),;:.=<>!+-*/";
    if (kOne.find(c) != std::string_view::npos) {
      advance();
      t.kind = TokKind::kSymbol;
      t.text = std::string(1, c);
      return t;
    }
    fail(strf("unexpected character '", c, "'"));
    return t;
  }

  std::string_view src_;
  LexError* error_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool failed_ = false;
};

}  // namespace

std::vector<Token> lex(std::string_view src, LexError* error) {
  return Lexer(src, error).run();
}

}  // namespace lce::spec
