// Pretty-printer: AST -> canonical spec text. `parse_spec(print(s))`
// round-trips (tested), which is how the synthesizer's "constrained
// generation" is validated.
#pragma once

#include <string>

#include "spec/ast.h"

namespace lce::spec {

std::string print_machine(const StateMachine& m);
std::string print_spec(const SpecSet& s);
std::string print_transition(const Transition& t, int indent = 0);

}  // namespace lce::spec
