// Abstract syntax for the state-machine specification language of paper
// Fig. 1. A spec is a set of SMs; each SM has typed state variables and
// transitions whose bodies are sequences of the grammar's primitives
// (read / write / assert / call) plus if/else, with our practical
// extensions: assert→error-code mapping (§4.2 "mapping failed assertions
// to error codes"), containment declarations (the SM *hierarchy* of §1),
// and a small builtin-function vocabulary for CIDR and hierarchy checks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace lce::spec {

// ---------------------------------------------------------------- types --

enum class TypeKind { kBool, kInt, kStr, kEnum, kRef, kList };

std::string to_string(TypeKind k);

/// A state-variable / parameter type. Enums carry their member set; refs
/// carry the target resource-type name ("" = any resource).
struct Type {
  TypeKind kind = TypeKind::kStr;
  std::vector<std::string> enum_members;  // kEnum only
  std::string ref_type;                   // kRef only; may be empty

  static Type boolean() { return {TypeKind::kBool, {}, {}}; }
  static Type integer() { return {TypeKind::kInt, {}, {}}; }
  static Type str() { return {TypeKind::kStr, {}, {}}; }
  static Type enumeration(std::vector<std::string> members) {
    return {TypeKind::kEnum, std::move(members), {}};
  }
  static Type ref(std::string target = "") { return {TypeKind::kRef, {}, std::move(target)}; }
  static Type list() { return {TypeKind::kList, {}, {}}; }

  bool operator==(const Type&) const = default;

  /// True when `v` inhabits this type (null is allowed for ref/list/str).
  bool admits(const Value& v) const;

  std::string to_text() const;
};

/// A delayed transition attached to a state variable (Fig. 1 extension):
/// `status: enum(pending, running) = pending after 3 -> Promote;` arms a
/// virtual-clock timer whenever the variable holds the trigger value and
/// fires `transition` on the owning resource `delay` ticks later. The
/// trigger defaults to the variable's initial value; an explicit
/// `when <literal>` overrides it (has_trigger distinguishes the two so the
/// printer round-trips byte-identically).
struct TimerClause {
  std::int64_t delay = 1;
  std::string transition;
  Value trigger;
  bool has_trigger = false;
};

struct StateVar {
  std::string name;
  Type type;
  Value initial;  // default value; Value() (null) when unspecified
  std::vector<TimerClause> timers;
};

/// The value of `sv` that arms `tc`: the explicit `when` literal, or the
/// variable's initial value when the clause omits one.
inline const Value& timer_trigger(const StateVar& sv, const TimerClause& tc) {
  return tc.has_trigger ? tc.trigger : sv.initial;
}

struct Param {
  std::string name;
  Type type;
};

// ---------------------------------------------------------- expressions --

enum class ExprKind {
  kLiteral,   // literal Value
  kVar,       // state var or parameter by name
  kSelf,      // the resource executing the transition
  kField,     // kids[0] . field  (attribute of a referenced resource)
  kUnary,     // op kids[0]
  kBinary,    // kids[0] op kids[1]
  kBuiltin,   // name(kids...)
};

enum class UnaryOp { kNot, kNeg };
enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kAdd, kSub,
};

std::string to_string(UnaryOp op);
std::string to_string(BinaryOp op);

/// Builtin predicate/function vocabulary available to specs. The
/// interpreter binds these to the resource store.
///   is_null(x)                null test
///   len(x)                    list/string length
///   in_list(x, a, b, ...)     membership among literals
///   cidr_valid(s)             parses as IPv4 CIDR
///   cidr_prefix_len(s)        prefix length (or -1)
///   cidr_within(inner, outer) containment
///   cidr_overlaps(a, b)       overlap
///   child_count(TypeName)     # children of self with given resource type
///   sibling_cidr_conflict(s)  any same-type sibling whose `cidr_block`
///                             overlaps s
///   exists(ref)               the referenced resource is live
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  Value literal;               // kLiteral
  std::string name;            // kVar: var name; kField: field; kBuiltin: fn
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;
  std::vector<std::unique_ptr<Expr>> kids;

  std::unique_ptr<Expr> clone() const;
  std::string to_text() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr make_literal(Value v);
ExprPtr make_var(std::string name);
ExprPtr make_self();
ExprPtr make_field(ExprPtr base, std::string field);
ExprPtr make_unary(UnaryOp op, ExprPtr e);
ExprPtr make_binary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr make_builtin(std::string fn, std::vector<ExprPtr> args);

// ----------------------------------------------------------- statements --

enum class StmtKind {
  kWrite,         // write(var, expr)
  kRead,          // read(var): include var in the response payload
  kAssert,        // assert(pred) else ErrorCode ["message template"]
  kCall,          // call(target_expr, TransitionName, args...)
  kIf,            // if pred { ... } else { ... }
  kAttachParent,  // attach_parent(expr): link self under a parent resource
};

struct Stmt {
  StmtKind kind = StmtKind::kWrite;
  std::string var;           // kWrite/kRead target state variable
  ExprPtr expr;              // kWrite value; kAssert predicate; kIf condition;
                             // kCall target; kAttachParent parent ref
  std::string error_code;    // kAssert
  std::string error_note;    // kAssert optional message template
  std::string callee;        // kCall transition name
  std::vector<ExprPtr> args; // kCall arguments
  std::vector<std::unique_ptr<Stmt>> then_body;  // kIf
  std::vector<std::unique_ptr<Stmt>> else_body;  // kIf

  std::unique_ptr<Stmt> clone() const;
};

using StmtPtr = std::unique_ptr<Stmt>;
using Body = std::vector<StmtPtr>;

Body clone_body(const Body& b);

// ---------------------------------------------------------- transitions --

/// The four API categories of §3 plus `action` for verbs that neither
/// create/destroy nor set a single attribute (StartInstances, ...).
enum class TransitionKind { kCreate, kDestroy, kDescribe, kModify, kAction };

std::string to_string(TransitionKind k);

struct Transition {
  std::string name;  // the public API name, e.g. "CreateVpc"
  TransitionKind kind = TransitionKind::kModify;
  std::vector<Param> params;
  Body body;

  Transition clone() const;
};

// -------------------------------------------------------------- machine --

/// One resource type's state machine.
struct StateMachine {
  std::string name;         // resource type, e.g. "Vpc"
  std::string service;      // owning service, e.g. "ec2"
  std::string id_prefix;    // id prefix, e.g. "vpc"
  std::string parent_type;  // containment parent ("" = top-level)
  std::vector<StateVar> states;
  std::vector<Transition> transitions;

  const StateVar* find_state(std::string_view n) const;
  const Transition* find_transition(std::string_view n) const;
  Transition* find_transition(std::string_view n);

  /// Any state variable carries an `after` clause (the interpreter's
  /// timer-reconciliation fast path keys off this).
  bool has_timers() const;

  StateMachine clone() const;
};

struct SpecSet;

/// Sorted api-name -> (machine, transition) index replacing find_api's
/// machines×transitions linear scan. Entries store indices, not pointers,
/// so an index stays valid across SpecSet moves and applies to any
/// structurally identical copy (Interpreter::clone shares one this way).
/// Ties on duplicate API names resolve to the first (machine, transition)
/// in declaration order — the exact answer the linear scan gives.
class ApiIndex {
 public:
  ApiIndex() = default;
  explicit ApiIndex(const SpecSet& spec);

  std::pair<const StateMachine*, const Transition*> find(const SpecSet& spec,
                                                         std::string_view api) const;

 private:
  struct Entry {
    std::string name;
    std::uint32_t machine = 0;
    std::uint32_t transition = 0;
  };
  std::vector<Entry> entries_;  // sorted by (name, machine, transition)
};

/// A full specification: the hierarchy of state machines for one provider
/// (or one service). Also memoizes the api-name -> SM index.
struct SpecSet {
  std::vector<StateMachine> machines;

  /// Lazily built dispatch index consulted by find_api(). Built by
  /// ensure_api_index() (NOT thread-safe; call from a single thread before
  /// concurrent find_api/supports traffic — Interpreter construction and
  /// replace_spec do). Anyone mutating `machines` on a spec that may carry
  /// an index must call invalidate_api_index() afterwards; clone() never
  /// copies the index, so freshly cloned specs are always safe to edit.
  mutable std::shared_ptr<const ApiIndex> api_index;

  const StateMachine* find_machine(std::string_view name) const;
  StateMachine* find_machine(std::string_view name);

  /// Locate the SM and transition owning a public API name; nullptrs when
  /// unknown. O(log n) through the api_index when one has been built,
  /// linear scan otherwise.
  std::pair<const StateMachine*, const Transition*> find_api(std::string_view api) const;

  /// Build the sorted dispatch index if absent (see api_index).
  const ApiIndex& ensure_api_index() const;
  void invalidate_api_index() const { api_index.reset(); }

  std::vector<std::string> all_api_names() const;

  SpecSet clone() const;
};

}  // namespace lce::spec
