// Recursive-descent parser for the SM spec language. Concrete syntax
// (paper Fig. 1 grammar with the practical extensions noted in ast.h):
//
//   sm PublicIp {
//     service "ec2";
//     id_prefix "eip";
//     contained_in Vpc;
//     states {
//       status: enum(ASSIGNED, IDLE) = "IDLE";
//       zone: str;
//       nic: ref NetworkInterface;
//     }
//     transitions {
//       create CreatePublicIp(region: str) {
//         assert(in_list(region, "us-east", "us-west")) else InvalidParameterValue;
//         write(status, ASSIGNED);
//         write(zone, region);
//       }
//       modify AssociateNic(nic_ref: ref NetworkInterface) {
//         assert(nic_ref.zone == zone) else InvalidZone.Mismatch;
//         call(nic_ref, AttachPublicIp, self);
//         write(nic, nic_ref);
//       }
//       destroy DeletePublicIp() {
//         assert(is_null(nic)) else DependencyViolation;
//       }
//     }
//   }
//
// Name resolution: a bare identifier inside a transition body that is a
// declared state variable, parameter, or `self` is a variable reference;
// any other bare identifier is an enum-member string literal (matching the
// paper's `write(status, ASSIGNED)` style).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "spec/ast.h"

namespace lce::spec {

struct ParseError {
  std::string message;
  int line = 0;
  int col = 0;

  std::string to_text() const;
};

/// Parse a whole spec (zero or more `sm` definitions).
std::optional<SpecSet> parse_spec(std::string_view src, ParseError* error);

/// Parse exactly one `sm` definition.
std::optional<StateMachine> parse_machine(std::string_view src, ParseError* error);

}  // namespace lce::spec
