#include "spec/parser.h"

#include <set>

#include "common/strings.h"
#include "spec/lexer.h"

namespace lce::spec {

std::string ParseError::to_text() const {
  return strf("parse error at ", line, ":", col, ": ", message);
}

namespace {

const std::set<std::string, std::less<>> kBuiltins = {
    "is_null", "len", "in_list", "cidr_valid", "cidr_prefix_len",
    "cidr_within", "cidr_overlaps", "child_count",
    "sibling_cidr_conflict",  // sibling_cidr_conflict(cidr[, "attr_name"])
    "exists",  // exists(ref) or exists(ref, "Type") for a typed check
};

class Parser {
 public:
  Parser(std::vector<Token> toks, ParseError* error)
      : toks_(std::move(toks)), error_(error) {}

  std::optional<SpecSet> spec() {
    SpecSet out;
    while (!at_eof()) {
      auto m = machine();
      if (!m) return std::nullopt;
      out.machines.push_back(std::move(*m));
    }
    return out;
  }

  std::optional<StateMachine> machine() {
    if (!expect_ident("sm")) return std::nullopt;
    StateMachine m;
    if (!take_ident(m.name)) return std::nullopt;
    if (!expect_symbol("{")) return std::nullopt;
    while (!peek().is_symbol("}")) {
      if (failed_ || at_eof()) {
        fail("unterminated sm block");
        return std::nullopt;
      }
      if (peek().is_ident("service")) {
        next();
        if (!take_string(m.service) || !expect_symbol(";")) return std::nullopt;
      } else if (peek().is_ident("id_prefix")) {
        next();
        if (!take_string(m.id_prefix) || !expect_symbol(";")) return std::nullopt;
      } else if (peek().is_ident("contained_in")) {
        next();
        if (!take_ident(m.parent_type) || !expect_symbol(";")) return std::nullopt;
      } else if (peek().is_ident("states")) {
        next();
        if (!states_block(m)) return std::nullopt;
      } else if (peek().is_ident("transitions")) {
        next();
        if (!transitions_block(m)) return std::nullopt;
      } else {
        fail(strf("unexpected token '", peek().text, "' in sm body"));
        return std::nullopt;
      }
    }
    next();  // consume '}'
    if (m.id_prefix.empty()) m.id_prefix = to_lower(m.name);
    return m;
  }

 private:
  // ---------------------------------------------------------- plumbing --
  const Token& peek(std::size_t off = 0) const {
    std::size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool at_eof() const { return peek().kind == TokKind::kEof; }

  void fail(std::string msg) {
    if (!failed_ && error_ != nullptr) {
      *error_ = ParseError{std::move(msg), peek().line, peek().col};
    }
    failed_ = true;
  }

  bool expect_symbol(std::string_view s) {
    if (peek().is_symbol(s)) {
      next();
      return true;
    }
    fail(strf("expected '", s, "', got '", peek().text, "'"));
    return false;
  }

  bool expect_ident(std::string_view s) {
    if (peek().is_ident(s)) {
      next();
      return true;
    }
    fail(strf("expected '", s, "', got '", peek().text, "'"));
    return false;
  }

  bool take_ident(std::string& out) {
    if (peek().kind == TokKind::kIdent) {
      out = next().text;
      return true;
    }
    fail(strf("expected identifier, got '", peek().text, "'"));
    return false;
  }

  bool take_string(std::string& out) {
    if (peek().kind == TokKind::kString) {
      out = next().text;
      return true;
    }
    fail(strf("expected string literal, got '", peek().text, "'"));
    return false;
  }

  // ------------------------------------------------------------- types --
  std::optional<Type> type() {
    if (peek().is_ident("bool")) { next(); return Type::boolean(); }
    if (peek().is_ident("int")) { next(); return Type::integer(); }
    if (peek().is_ident("str")) { next(); return Type::str(); }
    if (peek().is_ident("list")) { next(); return Type::list(); }
    if (peek().is_ident("enum")) {
      next();
      if (!expect_symbol("(")) return std::nullopt;
      std::vector<std::string> members;
      while (true) {
        // Members are idents or string literals (values like "us-east" or
        // "1.29" are not lexable as identifiers).
        std::string m;
        if (peek().kind == TokKind::kString) {
          m = next().text;
        } else if (!take_ident(m)) {
          return std::nullopt;
        }
        members.push_back(std::move(m));
        if (peek().is_symbol(",")) { next(); continue; }
        break;
      }
      if (!expect_symbol(")")) return std::nullopt;
      return Type::enumeration(std::move(members));
    }
    if (peek().is_ident("ref")) {
      next();
      std::string target;
      // Optional target type; "ref" followed by a non-type identifier that
      // is a resource type name.
      if (peek().kind == TokKind::kIdent && !peek().is_ident("ref")) {
        target = next().text;
      }
      return Type::ref(std::move(target));
    }
    fail(strf("expected type, got '", peek().text, "'"));
    return std::nullopt;
  }

  std::optional<Value> literal_value() {
    if (peek().kind == TokKind::kInt) return Value(next().int_value);
    if (peek().kind == TokKind::kString) return Value(next().text);
    if (peek().is_ident("true")) { next(); return Value(true); }
    if (peek().is_ident("false")) { next(); return Value(false); }
    if (peek().is_ident("null")) { next(); return Value(); }
    if (peek().is_symbol("-") && peek(1).kind == TokKind::kInt) {
      next();
      return Value(-next().int_value);
    }
    // Bare identifier literal == enum member string.
    if (peek().kind == TokKind::kIdent) return Value(next().text);
    fail(strf("expected literal, got '", peek().text, "'"));
    return std::nullopt;
  }

  bool states_block(StateMachine& m) {
    if (!expect_symbol("{")) return false;
    while (!peek().is_symbol("}")) {
      if (failed_ || at_eof()) { fail("unterminated states block"); return false; }
      StateVar sv;
      if (!take_ident(sv.name)) return false;
      if (!expect_symbol(":")) return false;
      auto ty = type();
      if (!ty) return false;
      sv.type = std::move(*ty);
      if (peek().is_symbol("=")) {
        next();
        auto v = literal_value();
        if (!v) return false;
        sv.initial = std::move(*v);
      }
      // Delayed transitions: `after <ticks> -> <Transition> [when <literal>]`,
      // repeatable. Omitting `when` means "while the variable holds its
      // initial value".
      while (peek().is_ident("after")) {
        next();
        TimerClause tc;
        if (peek().kind != TokKind::kInt) {
          fail(strf("expected tick count after 'after', got '", peek().text, "'"));
          return false;
        }
        tc.delay = next().int_value;
        if (!expect_symbol("->")) return false;
        if (!take_ident(tc.transition)) return false;
        if (peek().is_ident("when")) {
          next();
          auto trig = literal_value();
          if (!trig) return false;
          tc.trigger = std::move(*trig);
          tc.has_trigger = true;
        }
        sv.timers.push_back(std::move(tc));
      }
      if (!expect_symbol(";")) return false;
      m.states.push_back(std::move(sv));
    }
    next();
    return true;
  }

  // ------------------------------------------------------- transitions --
  bool transitions_block(StateMachine& m) {
    if (!expect_symbol("{")) return false;
    while (!peek().is_symbol("}")) {
      if (failed_ || at_eof()) { fail("unterminated transitions block"); return false; }
      auto t = transition(m);
      if (!t) return false;
      m.transitions.push_back(std::move(*t));
    }
    next();
    return true;
  }

  std::optional<TransitionKind> transition_kind() {
    if (peek().is_ident("create")) { next(); return TransitionKind::kCreate; }
    if (peek().is_ident("destroy")) { next(); return TransitionKind::kDestroy; }
    if (peek().is_ident("describe")) { next(); return TransitionKind::kDescribe; }
    if (peek().is_ident("modify")) { next(); return TransitionKind::kModify; }
    if (peek().is_ident("action")) { next(); return TransitionKind::kAction; }
    fail(strf("expected transition kind, got '", peek().text, "'"));
    return std::nullopt;
  }

  std::optional<Transition> transition(const StateMachine& m) {
    auto kind = transition_kind();
    if (!kind) return std::nullopt;
    Transition t;
    t.kind = *kind;
    if (!take_ident(t.name)) return std::nullopt;
    if (!expect_symbol("(")) return std::nullopt;
    if (!peek().is_symbol(")")) {
      while (true) {
        Param p;
        if (!take_ident(p.name)) return std::nullopt;
        if (!expect_symbol(":")) return std::nullopt;
        auto ty = type();
        if (!ty) return std::nullopt;
        p.type = std::move(*ty);
        t.params.push_back(std::move(p));
        if (peek().is_symbol(",")) { next(); continue; }
        break;
      }
    }
    if (!expect_symbol(")")) return std::nullopt;

    // Build the name scope for bare-identifier resolution.
    scope_.clear();
    for (const auto& sv : m.states) scope_.insert(sv.name);
    for (const auto& p : t.params) scope_.insert(p.name);

    if (!block(t.body)) return std::nullopt;
    return t;
  }

  bool block(Body& out) {
    if (!expect_symbol("{")) return false;
    while (!peek().is_symbol("}")) {
      if (failed_ || at_eof()) { fail("unterminated block"); return false; }
      auto s = statement();
      if (!s) return false;
      out.push_back(std::move(*s));
    }
    next();
    return true;
  }

  // Parses dotted error codes: InvalidSubnet.Range
  bool dotted_code(std::string& out) {
    if (!take_ident(out)) return false;
    while (peek().is_symbol(".")) {
      next();
      std::string part;
      if (!take_ident(part)) return false;
      out += "." + part;
    }
    return true;
  }

  std::optional<StmtPtr> statement() {
    auto s = std::make_unique<Stmt>();
    if (peek().is_ident("write")) {
      next();
      s->kind = StmtKind::kWrite;
      if (!expect_symbol("(")) return std::nullopt;
      if (!take_ident(s->var)) return std::nullopt;
      if (!expect_symbol(",")) return std::nullopt;
      s->expr = expression();
      if (!s->expr) return std::nullopt;
      if (!expect_symbol(")") || !expect_symbol(";")) return std::nullopt;
      return s;
    }
    if (peek().is_ident("read")) {
      next();
      s->kind = StmtKind::kRead;
      if (!expect_symbol("(")) return std::nullopt;
      if (!take_ident(s->var)) return std::nullopt;
      if (!expect_symbol(")") || !expect_symbol(";")) return std::nullopt;
      return s;
    }
    if (peek().is_ident("assert")) {
      next();
      s->kind = StmtKind::kAssert;
      if (!expect_symbol("(")) return std::nullopt;
      s->expr = expression();
      if (!s->expr) return std::nullopt;
      if (!expect_symbol(")")) return std::nullopt;
      if (peek().is_ident("else")) {
        next();
        if (!dotted_code(s->error_code)) return std::nullopt;
        if (peek().kind == TokKind::kString) s->error_note = next().text;
      } else {
        s->error_code = "ValidationError";
      }
      if (!expect_symbol(";")) return std::nullopt;
      return s;
    }
    if (peek().is_ident("call")) {
      next();
      s->kind = StmtKind::kCall;
      if (!expect_symbol("(")) return std::nullopt;
      s->expr = expression();  // target
      if (!s->expr) return std::nullopt;
      if (!expect_symbol(",")) return std::nullopt;
      if (!take_ident(s->callee)) return std::nullopt;
      while (peek().is_symbol(",")) {
        next();
        auto arg = expression();
        if (!arg) return std::nullopt;
        s->args.push_back(std::move(arg));
      }
      if (!expect_symbol(")") || !expect_symbol(";")) return std::nullopt;
      return s;
    }
    if (peek().is_ident("attach_parent")) {
      next();
      s->kind = StmtKind::kAttachParent;
      if (!expect_symbol("(")) return std::nullopt;
      s->expr = expression();
      if (!s->expr) return std::nullopt;
      if (!expect_symbol(")") || !expect_symbol(";")) return std::nullopt;
      return s;
    }
    if (peek().is_ident("if")) {
      next();
      s->kind = StmtKind::kIf;
      if (!expect_symbol("(")) return std::nullopt;
      s->expr = expression();
      if (!s->expr) return std::nullopt;
      if (!expect_symbol(")")) return std::nullopt;
      if (!block(s->then_body)) return std::nullopt;
      if (peek().is_ident("else")) {
        next();
        if (!block(s->else_body)) return std::nullopt;
      }
      return s;
    }
    fail(strf("expected statement, got '", peek().text, "'"));
    return std::nullopt;
  }

  // ------------------------------------------------------- expressions --
  ExprPtr expression() { return or_expr(); }

  ExprPtr or_expr() {
    auto l = and_expr();
    if (!l) return nullptr;
    while (peek().is_symbol("||")) {
      next();
      auto r = and_expr();
      if (!r) return nullptr;
      l = make_binary(BinaryOp::kOr, std::move(l), std::move(r));
    }
    return l;
  }

  ExprPtr and_expr() {
    auto l = cmp_expr();
    if (!l) return nullptr;
    while (peek().is_symbol("&&")) {
      next();
      auto r = cmp_expr();
      if (!r) return nullptr;
      l = make_binary(BinaryOp::kAnd, std::move(l), std::move(r));
    }
    return l;
  }

  ExprPtr cmp_expr() {
    auto l = add_expr();
    if (!l) return nullptr;
    static const std::pair<std::string_view, BinaryOp> kOps[] = {
        {"==", BinaryOp::kEq}, {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (peek().is_symbol(sym)) {
        next();
        auto r = add_expr();
        if (!r) return nullptr;
        return make_binary(op, std::move(l), std::move(r));
      }
    }
    return l;
  }

  ExprPtr add_expr() {
    auto l = unary_expr();
    if (!l) return nullptr;
    while (peek().is_symbol("+") || peek().is_symbol("-")) {
      BinaryOp op = peek().is_symbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      next();
      auto r = unary_expr();
      if (!r) return nullptr;
      l = make_binary(op, std::move(l), std::move(r));
    }
    return l;
  }

  ExprPtr unary_expr() {
    if (peek().is_symbol("!")) {
      next();
      auto e = unary_expr();
      if (!e) return nullptr;
      return make_unary(UnaryOp::kNot, std::move(e));
    }
    if (peek().is_symbol("-")) {
      next();
      auto e = unary_expr();
      if (!e) return nullptr;
      return make_unary(UnaryOp::kNeg, std::move(e));
    }
    return postfix_expr();
  }

  ExprPtr postfix_expr() {
    auto e = primary_expr();
    if (!e) return nullptr;
    while (peek().is_symbol(".")) {
      next();
      std::string field;
      if (!take_ident(field)) return nullptr;
      e = make_field(std::move(e), std::move(field));
    }
    return e;
  }

  ExprPtr primary_expr() {
    const Token& t = peek();
    if (t.kind == TokKind::kInt) return make_literal(Value(next().int_value));
    if (t.kind == TokKind::kString) return make_literal(Value(next().text));
    if (t.is_ident("true")) { next(); return make_literal(Value(true)); }
    if (t.is_ident("false")) { next(); return make_literal(Value(false)); }
    if (t.is_ident("null")) { next(); return make_literal(Value()); }
    if (t.is_ident("self")) { next(); return make_self(); }
    if (t.is_symbol("(")) {
      next();
      auto e = expression();
      if (!e) return nullptr;
      if (!expect_symbol(")")) return nullptr;
      return e;
    }
    if (t.kind == TokKind::kIdent) {
      std::string name = next().text;
      if (peek().is_symbol("(")) {
        // Builtin function call.
        next();
        std::vector<ExprPtr> args;
        if (!peek().is_symbol(")")) {
          while (true) {
            auto a = expression();
            if (!a) return nullptr;
            args.push_back(std::move(a));
            if (peek().is_symbol(",")) { next(); continue; }
            break;
          }
        }
        if (!expect_symbol(")")) return nullptr;
        if (kBuiltins.find(name) == kBuiltins.end()) {
          fail(strf("unknown builtin function '", name, "'"));
          return nullptr;
        }
        return make_builtin(std::move(name), std::move(args));
      }
      if (scope_.count(name) > 0) return make_var(std::move(name));
      // Bare identifier not in scope: enum-member literal.
      return make_literal(Value(std::move(name)));
    }
    fail(strf("expected expression, got '", t.text, "'"));
    return nullptr;
  }

  std::vector<Token> toks_;
  ParseError* error_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::set<std::string> scope_;
};

std::optional<std::vector<Token>> lex_or_fail(std::string_view src, ParseError* error) {
  LexError lex_err;
  auto toks = lex(src, &lex_err);
  if (toks.empty()) {
    if (error != nullptr) *error = ParseError{lex_err.message, lex_err.line, lex_err.col};
    return std::nullopt;
  }
  return toks;
}

}  // namespace

std::optional<SpecSet> parse_spec(std::string_view src, ParseError* error) {
  auto toks = lex_or_fail(src, error);
  if (!toks) return std::nullopt;
  return Parser(std::move(*toks), error).spec();
}

std::optional<StateMachine> parse_machine(std::string_view src, ParseError* error) {
  auto toks = lex_or_fail(src, error);
  if (!toks) return std::nullopt;
  return Parser(std::move(*toks), error).machine();
}

}  // namespace lce::spec
