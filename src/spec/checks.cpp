#include "spec/checks.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/errors.h"
#include "common/strings.h"

namespace lce::spec {

std::string to_string(CheckKind k) {
  switch (k) {
    case CheckKind::kDanglingType: return "dangling-type";
    case CheckKind::kDescribeWrites: return "describe-writes";
    case CheckKind::kUnknownStateVar: return "unknown-state-var";
    case CheckKind::kEnumViolation: return "enum-violation";
    case CheckKind::kUnknownCallee: return "unknown-callee";
    case CheckKind::kUnreachableCall: return "unreachable-call";
    case CheckKind::kCreateMutatesParent: return "create-mutates-parent";
    case CheckKind::kMissingParentAttach: return "missing-parent-attach";
    case CheckKind::kOrphanParentAttach: return "orphan-parent-attach";
    case CheckKind::kUnknownErrorCode: return "unknown-error-code";
    case CheckKind::kMissingDestroyGuard: return "missing-destroy-guard";
    case CheckKind::kDuplicateApi: return "duplicate-api";
    case CheckKind::kMissingCreate: return "missing-create";
    case CheckKind::kSilentTransition: return "silent-transition";
    case CheckKind::kBadBuiltinArity: return "bad-builtin-arity";
    case CheckKind::kBadTimerDelay: return "bad-timer-delay";
    case CheckKind::kUnknownTimerTarget: return "unknown-timer-target";
    case CheckKind::kBadTimerTarget: return "bad-timer-target";
    case CheckKind::kBadTimerTrigger: return "bad-timer-trigger";
  }
  return "?";
}

std::string CheckIssue::to_text() const {
  return strf(severity == Severity::kError ? "error" : "warning", " [", to_string(kind), "] ",
              machine, transition.empty() ? "" : strf("::", transition), ": ", detail);
}

bool CheckReport::ok() const { return error_count() == 0; }

std::size_t CheckReport::error_count() const {
  return static_cast<std::size_t>(std::count_if(
      issues.begin(), issues.end(),
      [](const CheckIssue& i) { return i.severity == Severity::kError; }));
}

std::size_t CheckReport::warning_count() const { return issues.size() - error_count(); }

std::vector<std::string> CheckReport::machines_with_errors() const {
  std::set<std::string> names;
  for (const auto& i : issues) {
    if (i.severity == Severity::kError && !i.machine.empty()) names.insert(i.machine);
  }
  return {names.begin(), names.end()};
}

namespace {

const std::map<std::string, std::pair<int, int>>& builtin_arity() {
  // fn -> {min_args, max_args}; -1 = unbounded.
  static const std::map<std::string, std::pair<int, int>> kArity = {
      {"is_null", {1, 1}},         {"len", {1, 1}},
      {"in_list", {2, -1}},        {"cidr_valid", {1, 1}},
      {"cidr_prefix_len", {1, 1}}, {"cidr_within", {2, 2}},
      {"cidr_overlaps", {2, 2}},   {"child_count", {1, 1}},
      {"sibling_cidr_conflict", {1, 2}}, {"exists", {1, 2}},
  };
  return kArity;
}

class MachineChecker {
 public:
  MachineChecker(const SpecSet& spec, const StateMachine& m, const DependencyGraph& graph,
                 std::vector<CheckIssue>& out)
      : spec_(spec), m_(m), graph_(graph), out_(out) {}

  void run() {
    check_hierarchy_types();
    bool has_create = false;
    for (const auto& t : m_.transitions) {
      if (t.kind == TransitionKind::kCreate) has_create = true;
      check_transition(t);
    }
    if (!has_create) {
      add(CheckKind::kMissingCreate, Severity::kWarning, "",
          "state machine has no create() transition");
    }
    check_destroy_guard();
  }

 private:
  void add(CheckKind kind, Severity sev, const std::string& transition, std::string detail) {
    out_.push_back(CheckIssue{kind, sev, m_.name, transition, std::move(detail)});
  }

  void check_hierarchy_types() {
    auto require_type = [&](const std::string& ty, const std::string& where) {
      if (!ty.empty() && spec_.find_machine(ty) == nullptr) {
        add(CheckKind::kDanglingType, Severity::kError, "",
            strf(where, " references undefined resource type '", ty, "'"));
      }
    };
    require_type(m_.parent_type, "contained_in");
    for (const auto& sv : m_.states) {
      if (sv.type.kind == TypeKind::kRef) require_type(sv.type.ref_type, strf("state '", sv.name, "'"));
      if (sv.type.kind == TypeKind::kEnum && !sv.initial.is_null() &&
          !sv.type.admits(sv.initial)) {
        add(CheckKind::kEnumViolation, Severity::kError, "",
            strf("initial value ", sv.initial.to_text(), " not in enum for '", sv.name, "'"));
      }
      check_timers(sv);
    }
  }

  void check_timers(const StateVar& sv) {
    for (const auto& tc : sv.timers) {
      if (tc.delay < 1) {
        add(CheckKind::kBadTimerDelay, Severity::kError, "",
            strf("state '", sv.name, "': after-delay ", tc.delay, " must be >= 1 tick"));
      }
      const Transition* target = m_.find_transition(tc.transition);
      if (target == nullptr) {
        add(CheckKind::kUnknownTimerTarget, Severity::kError, "",
            strf("state '", sv.name, "': after-clause targets unknown transition '",
                 tc.transition, "'"));
      } else {
        // A timer fire is synthesized as `Transition(id)` with no other
        // arguments, so the target must be parameter-free; creates cannot
        // run on an existing resource and describes are read-only.
        if (target->kind == TransitionKind::kCreate ||
            target->kind == TransitionKind::kDescribe) {
          add(CheckKind::kBadTimerTarget, Severity::kError, "",
              strf("state '", sv.name, "': after-clause targets ", to_string(target->kind),
                   " transition '", tc.transition, "'"));
        } else if (!target->params.empty()) {
          add(CheckKind::kBadTimerTarget, Severity::kError, "",
              strf("state '", sv.name, "': after-target '", tc.transition,
                   "' takes parameters; timer fires pass only the resource id"));
        }
      }
      if (tc.has_trigger && !sv.type.admits(tc.trigger)) {
        add(CheckKind::kBadTimerTrigger, Severity::kError, "",
            strf("state '", sv.name, "': when-literal ", tc.trigger.to_text(),
                 " not admitted by type ", sv.type.to_text()));
      }
    }
  }

  // Resolve the static ref-target type of an expression, when known.
  std::string ref_target(const Expr& e, const Transition& t) const {
    if (e.kind == ExprKind::kSelf) return m_.name;
    if (e.kind == ExprKind::kVar) {
      if (const StateVar* sv = m_.find_state(e.name)) {
        return sv->type.kind == TypeKind::kRef ? sv->type.ref_type : "";
      }
      for (const auto& p : t.params) {
        if (p.name == e.name) return p.type.kind == TypeKind::kRef ? p.type.ref_type : "";
      }
    }
    return "";
  }

  void check_expr(const Expr& e, const Transition& t) {
    if (e.kind == ExprKind::kBuiltin) {
      auto it = builtin_arity().find(e.name);
      if (it != builtin_arity().end()) {
        int n = static_cast<int>(e.kids.size());
        auto [lo, hi] = it->second;
        if (n < lo || (hi >= 0 && n > hi)) {
          add(CheckKind::kBadBuiltinArity, Severity::kError, t.name,
              strf(e.name, "() called with ", n, " args"));
        }
      }
    }
    for (const auto& k : e.kids) check_expr(*k, t);
  }

  bool writes_anything(const Body& body) const {
    for (const auto& s : body) {
      switch (s->kind) {
        case StmtKind::kWrite:
        case StmtKind::kCall:
        case StmtKind::kAttachParent:
          return true;
        case StmtKind::kIf:
          if (writes_anything(s->then_body) || writes_anything(s->else_body)) return true;
          break;
        default:
          break;
      }
    }
    return false;
  }

  void check_body(const Body& body, const Transition& t) {
    for (const auto& s : body) {
      if (s->expr) check_expr(*s->expr, t);
      for (const auto& a : s->args) check_expr(*a, t);
      switch (s->kind) {
        case StmtKind::kWrite: {
          const StateVar* sv = m_.find_state(s->var);
          if (sv == nullptr) {
            add(CheckKind::kUnknownStateVar, Severity::kError, t.name,
                strf("write to undeclared state '", s->var, "'"));
          } else if (sv->type.kind == TypeKind::kEnum && s->expr &&
                     s->expr->kind == ExprKind::kLiteral &&
                     !sv->type.admits(s->expr->literal)) {
            add(CheckKind::kEnumViolation, Severity::kError, t.name,
                strf("writes ", s->expr->literal.to_text(), " to enum state '", s->var, "'"));
          }
          break;
        }
        case StmtKind::kRead: {
          if (m_.find_state(s->var) == nullptr) {
            add(CheckKind::kUnknownStateVar, Severity::kError, t.name,
                strf("read of undeclared state '", s->var, "'"));
          }
          break;
        }
        case StmtKind::kAssert: {
          if (s->error_code.empty() || !ErrorRegistry::instance().known(s->error_code)) {
            add(CheckKind::kUnknownErrorCode, Severity::kError, t.name,
                strf("assert maps to unregistered error code '", s->error_code, "'"));
          }
          break;
        }
        case StmtKind::kCall: {
          std::string target_type = s->expr ? ref_target(*s->expr, t) : "";
          if (!target_type.empty()) {
            const StateMachine* target = spec_.find_machine(target_type);
            if (target == nullptr) {
              add(CheckKind::kDanglingType, Severity::kError, t.name,
                  strf("call targets undefined type '", target_type, "'"));
            } else {
              const Transition* callee = target->find_transition(s->callee);
              if (callee == nullptr) {
                add(CheckKind::kUnknownCallee, Severity::kError, t.name,
                    strf("call to unknown transition '", target_type, ".", s->callee, "'"));
              } else {
                if (t.kind == TransitionKind::kCreate && target_type == m_.parent_type &&
                    callee->kind != TransitionKind::kDescribe &&
                    callee->kind != TransitionKind::kModify) {
                  // Paper §1: "resource creation APIs should not be allowed
                  // to delete their parent resources".
                  add(CheckKind::kCreateMutatesParent, Severity::kError, t.name,
                      strf("create() invokes ", to_string(callee->kind), " on parent '",
                           target_type, "'"));
                }
                if (!graph_.reachable(m_.name, target_type)) {
                  add(CheckKind::kUnreachableCall, Severity::kError, t.name,
                      strf("call into '", target_type,
                           "' which is unreachable in the dependency hierarchy"));
                }
              }
            }
          }
          break;
        }
        case StmtKind::kAttachParent: {
          if (m_.parent_type.empty()) {
            add(CheckKind::kOrphanParentAttach, Severity::kError, t.name,
                "attach_parent() in a top-level (uncontained) SM");
          }
          break;
        }
        case StmtKind::kIf:
          check_body(s->then_body, t);
          check_body(s->else_body, t);
          break;
      }
    }
  }

  bool has_parent_attach(const Body& body) const {
    for (const auto& s : body) {
      if (s->kind == StmtKind::kAttachParent) return true;
      if (s->kind == StmtKind::kIf &&
          (has_parent_attach(s->then_body) || has_parent_attach(s->else_body))) {
        return true;
      }
    }
    return false;
  }

  void check_transition(const Transition& t) {
    check_body(t.body, t);
    if (t.kind == TransitionKind::kDescribe && writes_anything(t.body)) {
      // Paper §4.2: "a describe() API will be flagged if it inadvertently
      // modifies some state".
      add(CheckKind::kDescribeWrites, Severity::kError, t.name,
          "describe() transition mutates state");
    }
    if (t.kind == TransitionKind::kCreate && !m_.parent_type.empty() &&
        !has_parent_attach(t.body)) {
      add(CheckKind::kMissingParentAttach, Severity::kError, t.name,
          strf("create() never attaches to containment parent '", m_.parent_type, "'"));
    }
    if ((t.kind == TransitionKind::kModify || t.kind == TransitionKind::kAction) &&
        t.body.empty()) {
      add(CheckKind::kSilentTransition, Severity::kWarning, t.name,
          "modify/action transition has an empty body (silent success)");
    }
  }

  void check_destroy_guard() {
    // If some other SM names this one as containment parent, this SM's
    // destroy() should guard on child_count (paper §1: "resource deletion
    // must ensure that all children have been reclaimed"). The interpreter
    // enforces this dynamically regardless; statically it is a warning.
    bool has_children = std::any_of(
        spec_.machines.begin(), spec_.machines.end(),
        [&](const StateMachine& other) { return other.parent_type == m_.name; });
    if (!has_children) return;
    for (const auto& t : m_.transitions) {
      if (t.kind != TransitionKind::kDestroy) continue;
      bool guarded = false;
      std::function<void(const Body&)> scan = [&](const Body& body) {
        for (const auto& s : body) {
          if (s->kind == StmtKind::kAssert && s->expr) {
            std::function<bool(const Expr&)> uses_child_count = [&](const Expr& e) {
              if (e.kind == ExprKind::kBuiltin && e.name == "child_count") return true;
              return std::any_of(e.kids.begin(), e.kids.end(),
                                 [&](const ExprPtr& k) { return uses_child_count(*k); });
            };
            if (uses_child_count(*s->expr)) guarded = true;
          }
          if (s->kind == StmtKind::kIf) {
            scan(s->then_body);
            scan(s->else_body);
          }
        }
      };
      scan(t.body);
      if (!guarded) {
        add(CheckKind::kMissingDestroyGuard, Severity::kWarning, t.name,
            "destroy() lacks a child_count() reclamation guard");
      }
    }
  }

  const SpecSet& spec_;
  const StateMachine& m_;
  const DependencyGraph& graph_;
  std::vector<CheckIssue>& out_;
};

}  // namespace

std::vector<CheckIssue> check_machine(const SpecSet& spec, const StateMachine& m,
                                      const DependencyGraph& graph) {
  std::vector<CheckIssue> out;
  MachineChecker(spec, m, graph, out).run();
  return out;
}

CheckReport run_checks(const SpecSet& spec) {
  CheckReport report;
  DependencyGraph graph = DependencyGraph::build(spec);

  // Spec-level: duplicate public API names across machines.
  std::map<std::string, std::string> owner;
  for (const auto& m : spec.machines) {
    for (const auto& t : m.transitions) {
      auto [it, inserted] = owner.emplace(t.name, m.name);
      if (!inserted) {
        report.issues.push_back(CheckIssue{
            CheckKind::kDuplicateApi, Severity::kError, m.name, t.name,
            strf("API name already owned by '", it->second, "'")});
      }
    }
  }

  for (const auto& m : spec.machines) {
    auto issues = check_machine(spec, m, graph);
    report.issues.insert(report.issues.end(), std::make_move_iterator(issues.begin()),
                         std::make_move_iterator(issues.end()));
  }
  return report;
}

}  // namespace lce::spec
