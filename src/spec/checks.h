// Static consistency checks over a SpecSet (paper §4.2): *completeness* on
// resource-type coverage (via the dependency graph's transitive closure)
// and *soundness* against semantically invalid SMs through template-based
// checks. The synthesizer runs these after generation and re-generates any
// SM that trips one (the paper's "targeted correction" loop); alignment
// later catches what these cannot.
#pragma once

#include <string>
#include <vector>

#include "spec/ast.h"
#include "spec/graph.h"

namespace lce::spec {

enum class CheckKind {
  // Completeness.
  kDanglingType,          // ref/containment/call targets a type not in spec
  // Soundness templates.
  kDescribeWrites,        // a describe() transition mutates state
  kUnknownStateVar,       // write/read of an undeclared state variable
  kEnumViolation,         // writes a literal outside the enum's members
  kUnknownCallee,         // call() to a transition that no target SM has
  kUnreachableCall,       // call() to an SM outside the caller's dep graph
  kCreateMutatesParent,   // create() calls a destroy/modify on its parent
  kMissingParentAttach,   // contained SM whose create() never attaches parent
  kOrphanParentAttach,    // top-level SM attaches a parent
  kUnknownErrorCode,      // assert maps to an unregistered error code
  kMissingDestroyGuard,   // SM with children lacks child_count guard in destroy
  kDuplicateApi,          // two transitions share one public API name
  kMissingCreate,         // SM with no create transition
  kSilentTransition,      // action/modify with empty body (silent success)
  kBadBuiltinArity,       // builtin called with wrong argument count
  // Delayed-transition (timer) clauses.
  kBadTimerDelay,         // `after` delay below 1 tick
  kUnknownTimerTarget,    // `after` names a transition the SM lacks
  kBadTimerTarget,        // timer target takes params or is create/describe
  kBadTimerTrigger,       // `when` literal not admitted by the var's type
};

std::string to_string(CheckKind k);

enum class Severity { kError, kWarning };

struct CheckIssue {
  CheckKind kind;
  Severity severity = Severity::kError;
  std::string machine;     // offending SM ("" for spec-level issues)
  std::string transition;  // offending transition ("" for SM-level issues)
  std::string detail;

  std::string to_text() const;
};

struct CheckReport {
  std::vector<CheckIssue> issues;

  bool ok() const;  // no errors (warnings allowed)
  std::size_t error_count() const;
  std::size_t warning_count() const;
  /// Machines with at least one error — the re-generation worklist.
  std::vector<std::string> machines_with_errors() const;
};

/// Run every check against `spec`.
CheckReport run_checks(const SpecSet& spec);

/// Run checks for a single machine in the context of `spec` (used by the
/// synthesizer's targeted-correction loop).
std::vector<CheckIssue> check_machine(const SpecSet& spec, const StateMachine& m,
                                      const DependencyGraph& graph);

}  // namespace lce::spec
