#include "spec/printer.h"

#include "common/strings.h"

namespace lce::spec {

namespace {

std::string ind(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string print_literal(const Value& v) {
  // Uses the spec literal syntax (strings quoted, refs unsupported as
  // literals so they degrade to strings).
  switch (v.kind()) {
    case ValueKind::kNull: return "null";
    case ValueKind::kBool: return v.as_bool() ? "true" : "false";
    case ValueKind::kInt: return std::to_string(v.as_int());
    case ValueKind::kStr:
    case ValueKind::kRef: return quote(v.as_str());
    default: return quote(v.to_text());
  }
}

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral: return print_literal(e.literal);
    case ExprKind::kVar: return e.name;
    case ExprKind::kSelf: return "self";
    case ExprKind::kField: return strf(print_expr(*e.kids[0]), ".", e.name);
    case ExprKind::kUnary: return strf(to_string(e.unary_op), print_expr(*e.kids[0]));
    case ExprKind::kBinary:
      return strf("(", print_expr(*e.kids[0]), " ", to_string(e.binary_op), " ",
                  print_expr(*e.kids[1]), ")");
    case ExprKind::kBuiltin: {
      std::vector<std::string> parts;
      parts.reserve(e.kids.size());
      for (const auto& k : e.kids) parts.push_back(print_expr(*k));
      return strf(e.name, "(", join(parts, ", "), ")");
    }
  }
  return "null";
}

void print_body(const Body& body, int indent, std::string& out);

void print_stmt(const Stmt& s, int indent, std::string& out) {
  switch (s.kind) {
    case StmtKind::kWrite:
      out += strf(ind(indent), "write(", s.var, ", ", print_expr(*s.expr), ");\n");
      return;
    case StmtKind::kRead:
      out += strf(ind(indent), "read(", s.var, ");\n");
      return;
    case StmtKind::kAssert: {
      out += strf(ind(indent), "assert(", print_expr(*s.expr), ") else ", s.error_code);
      if (!s.error_note.empty()) out += " " + quote(s.error_note);
      out += ";\n";
      return;
    }
    case StmtKind::kCall: {
      out += strf(ind(indent), "call(", print_expr(*s.expr), ", ", s.callee);
      for (const auto& a : s.args) out += ", " + print_expr(*a);
      out += ");\n";
      return;
    }
    case StmtKind::kAttachParent:
      out += strf(ind(indent), "attach_parent(", print_expr(*s.expr), ");\n");
      return;
    case StmtKind::kIf: {
      out += strf(ind(indent), "if (", print_expr(*s.expr), ") {\n");
      print_body(s.then_body, indent + 1, out);
      out += ind(indent) + "}";
      if (!s.else_body.empty()) {
        out += " else {\n";
        print_body(s.else_body, indent + 1, out);
        out += ind(indent) + "}";
      }
      out += "\n";
      return;
    }
  }
}

void print_body(const Body& body, int indent, std::string& out) {
  for (const auto& s : body) print_stmt(*s, indent, out);
}

}  // namespace

std::string print_transition(const Transition& t, int indent) {
  std::string out = strf(ind(indent), to_string(t.kind), " ", t.name, "(");
  for (std::size_t i = 0; i < t.params.size(); ++i) {
    if (i != 0) out += ", ";
    out += t.params[i].name + ": " + t.params[i].type.to_text();
  }
  out += ") {\n";
  print_body(t.body, indent + 1, out);
  out += ind(indent) + "}\n";
  return out;
}

std::string print_machine(const StateMachine& m) {
  std::string out = strf("sm ", m.name, " {\n");
  if (!m.service.empty()) out += strf(ind(1), "service ", quote(m.service), ";\n");
  out += strf(ind(1), "id_prefix ", quote(m.id_prefix), ";\n");
  if (!m.parent_type.empty()) out += strf(ind(1), "contained_in ", m.parent_type, ";\n");
  out += ind(1) + "states {\n";
  for (const auto& sv : m.states) {
    out += strf(ind(2), sv.name, ": ", sv.type.to_text());
    if (!sv.initial.is_null()) out += strf(" = ", print_literal(sv.initial));
    for (const auto& tc : sv.timers) {
      out += strf(" after ", tc.delay, " -> ", tc.transition);
      if (tc.has_trigger) out += strf(" when ", print_literal(tc.trigger));
    }
    out += ";\n";
  }
  out += ind(1) + "}\n";
  out += ind(1) + "transitions {\n";
  for (const auto& t : m.transitions) out += print_transition(t, 2);
  out += ind(1) + "}\n}\n";
  return out;
}

std::string print_spec(const SpecSet& s) {
  std::string out;
  for (const auto& m : s.machines) {
    out += print_machine(m);
    out += "\n";
  }
  return out;
}

}  // namespace lce::spec
