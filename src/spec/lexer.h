// Tokenizer for the SM specification language (paper Fig. 1 grammar, in
// the concrete syntax documented in parser.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lce::spec {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kSymbol,  // one of: { } ( ) , ; : . = == != <= >= < > && || ! + -
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  std::int64_t int_value = 0;
  int line = 0;
  int col = 0;

  bool is_symbol(std::string_view s) const { return kind == TokKind::kSymbol && text == s; }
  bool is_ident(std::string_view s) const { return kind == TokKind::kIdent && text == s; }
};

struct LexError {
  std::string message;
  int line = 0;
  int col = 0;
};

/// Tokenize `src`. On failure, fills `error` and returns an empty vector.
/// Comments run from "//" to end of line.
std::vector<Token> lex(std::string_view src, LexError* error);

}  // namespace lce::spec
