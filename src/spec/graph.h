// Resource-level dependency graph extracted symbolically from a SpecSet
// (paper §4.2: "we first symbolically extract a resource-level dependency
// graph from API input/output dependencies"). Used for:
//  - completeness checking (transitive closure: every referenced type is
//    in the spec),
//  - creation ordering (parents and referenced resources first),
//  - complexity metrics (§4.4 "Quantifying cloud complexity").
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "spec/ast.h"

namespace lce::spec {

enum class DepKind {
  kContainment,  // A contained_in B
  kReference,    // A has a ref-typed state/param targeting B
  kCall,         // A transition calls into B
};

struct DepEdge {
  std::string from;
  std::string to;
  DepKind kind;

  bool operator<(const DepEdge& o) const {
    return std::tie(from, to, kind) < std::tie(o.from, o.to, o.kind);
  }
};

class DependencyGraph {
 public:
  /// Build from a spec, recording one node per machine plus any *dangling*
  /// target names referenced but not defined.
  static DependencyGraph build(const SpecSet& spec);

  const std::set<std::string>& nodes() const { return nodes_; }
  const std::set<std::string>& dangling() const { return dangling_; }
  const std::set<DepEdge>& edges() const { return edges_; }

  /// Types directly depended on by `name` (outgoing edges).
  std::set<std::string> deps_of(const std::string& name) const;

  /// Transitive closure of dependencies starting at `name` (not incl. name).
  std::set<std::string> closure_of(const std::string& name) const;

  /// True when `from` can reach `to` via edges.
  bool reachable(const std::string& from, const std::string& to) const;

  /// Creation order: containment parents before children, referenced types
  /// before referers (best-effort topological order; cycles broken by name).
  std::vector<std::string> creation_order() const;

  /// §4.4 metrics.
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  double edge_density() const;

 private:
  std::set<std::string> nodes_;
  std::set<std::string> dangling_;
  std::set<DepEdge> edges_;
};

}  // namespace lce::spec
