#include "spec/ast.h"

#include <algorithm>
#include <cctype>
#include <tuple>

#include "common/strings.h"

namespace lce::spec {

std::string to_string(TypeKind k) {
  switch (k) {
    case TypeKind::kBool: return "bool";
    case TypeKind::kInt: return "int";
    case TypeKind::kStr: return "str";
    case TypeKind::kEnum: return "enum";
    case TypeKind::kRef: return "ref";
    case TypeKind::kList: return "list";
  }
  return "?";
}

bool Type::admits(const Value& v) const {
  switch (kind) {
    case TypeKind::kBool: return v.is_bool();
    case TypeKind::kInt: return v.is_int();
    case TypeKind::kStr: return v.is_str() || v.is_null();
    case TypeKind::kEnum: {
      if (!v.is_str()) return false;
      for (const auto& m : enum_members) {
        if (m == v.as_str()) return true;
      }
      return false;
    }
    case TypeKind::kRef: return v.is_ref() || v.is_null();
    case TypeKind::kList: return v.is_list() || v.is_null();
  }
  return false;
}

namespace {
bool is_ident_like(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}
}  // namespace

std::string Type::to_text() const {
  switch (kind) {
    case TypeKind::kEnum: {
      std::vector<std::string> rendered;
      rendered.reserve(enum_members.size());
      for (const auto& m : enum_members) {
        rendered.push_back(is_ident_like(m) ? m : strf("\"", m, "\""));
      }
      return strf("enum(", join(rendered, ", "), ")");
    }
    case TypeKind::kRef: return ref_type.empty() ? "ref" : strf("ref ", ref_type);
    default: return to_string(kind);
  }
}

std::string to_string(UnaryOp op) { return op == UnaryOp::kNot ? "!" : "-"; }

std::string to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->name = name;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->kids.reserve(kids.size());
  for (const auto& k : kids) e->kids.push_back(k->clone());
  return e;
}

std::string Expr::to_text() const {
  switch (kind) {
    case ExprKind::kLiteral: return literal.to_text();
    case ExprKind::kVar: return name;
    case ExprKind::kSelf: return "self";
    case ExprKind::kField: return strf(kids[0]->to_text(), ".", name);
    case ExprKind::kUnary: return strf(to_string(unary_op), kids[0]->to_text());
    case ExprKind::kBinary:
      return strf("(", kids[0]->to_text(), " ", to_string(binary_op), " ",
                  kids[1]->to_text(), ")");
    case ExprKind::kBuiltin: {
      std::vector<std::string> parts;
      parts.reserve(kids.size());
      for (const auto& k : kids) parts.push_back(k->to_text());
      return strf(name, "(", join(parts, ", "), ")");
    }
  }
  return "?";
}

ExprPtr make_literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr make_var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVar;
  e->name = std::move(name);
  return e;
}

ExprPtr make_self() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kSelf;
  return e;
}

ExprPtr make_field(ExprPtr base, std::string field) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kField;
  e->name = std::move(field);
  e->kids.push_back(std::move(base));
  return e;
}

ExprPtr make_unary(UnaryOp op, ExprPtr inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->kids.push_back(std::move(inner));
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->kids.push_back(std::move(l));
  e->kids.push_back(std::move(r));
  return e;
}

ExprPtr make_builtin(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBuiltin;
  e->name = std::move(fn);
  e->kids = std::move(args);
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->var = var;
  s->expr = expr ? expr->clone() : nullptr;
  s->error_code = error_code;
  s->error_note = error_note;
  s->callee = callee;
  s->args.reserve(args.size());
  for (const auto& a : args) s->args.push_back(a->clone());
  s->then_body = clone_body(then_body);
  s->else_body = clone_body(else_body);
  return s;
}

Body clone_body(const Body& b) {
  Body out;
  out.reserve(b.size());
  for (const auto& s : b) out.push_back(s->clone());
  return out;
}

std::string to_string(TransitionKind k) {
  switch (k) {
    case TransitionKind::kCreate: return "create";
    case TransitionKind::kDestroy: return "destroy";
    case TransitionKind::kDescribe: return "describe";
    case TransitionKind::kModify: return "modify";
    case TransitionKind::kAction: return "action";
  }
  return "?";
}

Transition Transition::clone() const {
  Transition t;
  t.name = name;
  t.kind = kind;
  t.params = params;
  t.body = clone_body(body);
  return t;
}

const StateVar* StateMachine::find_state(std::string_view n) const {
  for (const auto& s : states) {
    if (s.name == n) return &s;
  }
  return nullptr;
}

const Transition* StateMachine::find_transition(std::string_view n) const {
  for (const auto& t : transitions) {
    if (t.name == n) return &t;
  }
  return nullptr;
}

Transition* StateMachine::find_transition(std::string_view n) {
  for (auto& t : transitions) {
    if (t.name == n) return &t;
  }
  return nullptr;
}

bool StateMachine::has_timers() const {
  for (const auto& s : states) {
    if (!s.timers.empty()) return true;
  }
  return false;
}

StateMachine StateMachine::clone() const {
  StateMachine m;
  m.name = name;
  m.service = service;
  m.id_prefix = id_prefix;
  m.parent_type = parent_type;
  m.states = states;
  m.transitions.reserve(transitions.size());
  for (const auto& t : transitions) m.transitions.push_back(t.clone());
  return m;
}

const StateMachine* SpecSet::find_machine(std::string_view name) const {
  for (const auto& m : machines) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

StateMachine* SpecSet::find_machine(std::string_view name) {
  for (auto& m : machines) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

ApiIndex::ApiIndex(const SpecSet& spec) {
  for (std::uint32_t mi = 0; mi < spec.machines.size(); ++mi) {
    const auto& ts = spec.machines[mi].transitions;
    for (std::uint32_t ti = 0; ti < ts.size(); ++ti) {
      entries_.push_back(Entry{ts[ti].name, mi, ti});
    }
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.name, a.machine, a.transition) <
           std::tie(b.name, b.machine, b.transition);
  });
}

std::pair<const StateMachine*, const Transition*> ApiIndex::find(
    const SpecSet& spec, std::string_view api) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), api,
                             [](const Entry& e, std::string_view key) { return e.name < key; });
  if (it == entries_.end() || it->name != api) return {nullptr, nullptr};
  // A stale index (mutation without invalidate) must never read out of
  // bounds; report the api unknown rather than crash.
  if (it->machine >= spec.machines.size() ||
      it->transition >= spec.machines[it->machine].transitions.size()) {
    return {nullptr, nullptr};
  }
  const StateMachine& m = spec.machines[it->machine];
  return {&m, &m.transitions[it->transition]};
}

std::pair<const StateMachine*, const Transition*> SpecSet::find_api(
    std::string_view api) const {
  if (api_index != nullptr) return api_index->find(*this, api);
  for (const auto& m : machines) {
    if (const Transition* t = m.find_transition(api)) return {&m, t};
  }
  return {nullptr, nullptr};
}

const ApiIndex& SpecSet::ensure_api_index() const {
  if (api_index == nullptr) api_index = std::make_shared<const ApiIndex>(*this);
  return *api_index;
}

std::vector<std::string> SpecSet::all_api_names() const {
  std::vector<std::string> out;
  for (const auto& m : machines) {
    for (const auto& t : m.transitions) out.push_back(t.name);
  }
  return out;
}

SpecSet SpecSet::clone() const {
  SpecSet s;
  s.machines.reserve(machines.size());
  for (const auto& m : machines) s.machines.push_back(m.clone());
  return s;
}

}  // namespace lce::spec
