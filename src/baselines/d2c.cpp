#include "baselines/d2c.h"

#include "synth/synthesizer.h"

namespace lce::baselines {

std::unique_ptr<interp::Interpreter> make_d2c_backend(const docs::DocCorpus& corpus,
                                                      std::uint64_t seed) {
  auto result = synth::synthesize_d2c(corpus, seed);
  interp::InterpreterOptions opts;
  opts.hierarchy_guards = false;  // no framework safety net in direct code
  opts.name = "d2c-emulator";
  return std::make_unique<interp::Interpreter>(std::move(result.spec), opts);
}

}  // namespace lce::baselines
