// The manually-engineered emulator baseline ("Moto-like"). Reproduces the
// two limitations the paper measures in §2:
//
//  * Coverage (Table 1): only a prioritized subset of each service's APIs
//    is implemented — EC2 177/571, DynamoDB 39/57, Network Firewall 5/45,
//    EKS 15/58 — everything else returns NotImplemented. Priority order
//    is create < describe < destroy < modify < action, then catalog
//    order, which reproduces the paper's anecdote that Network Firewall
//    has CreateFirewall() but not DeleteFirewall().
//
//  * Correctness: known Moto bugs are present — DeleteVpc() succeeds even
//    when an InternetGateway is attached ("DependencyViolation" expected),
//    and StartInstances() on a running instance silently succeeds.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "cloud/reference_cloud.h"
#include "common/api.h"
#include "docs/model.h"

namespace lce::baselines {

struct MotoLikeOptions {
  /// Per-service API budget (service name -> implemented API count).
  std::map<std::string, std::size_t> coverage = {
      {"ec2", 177}, {"dynamodb", 39}, {"network-firewall", 5}, {"eks", 15}};
  /// Known behavioural bugs (on by default; the real Moto has them).
  bool delete_vpc_dependency_bug = true;
  bool start_instance_silent_bug = true;
  std::string name = "moto-like";
};

class MotoLike final : public CloudBackend {
 public:
  explicit MotoLike(docs::CloudCatalog catalog, MotoLikeOptions opts = {});

  std::string name() const override { return opts_.name; }
  ApiResponse invoke(const ApiRequest& req) override;
  void reset() override;
  bool supports(const std::string& api) const override;
  Value snapshot() const override { return inner_.snapshot(); }

  const std::set<std::string>& implemented_apis() const { return implemented_; }

 private:
  MotoLikeOptions opts_;
  cloud::ReferenceCloud inner_;
  std::set<std::string> implemented_;
};

}  // namespace lce::baselines
