#include "baselines/moto_like.h"

#include <algorithm>
#include <vector>

#include "common/errors.h"
#include "common/strings.h"

namespace lce::baselines {

namespace {

int category_priority(docs::ApiCategory c) {
  // Lifecycle and action verbs land before the long tail of per-attribute
  // modifies — matching how manual emulators actually grow (and Table 1's
  // anecdote: within a small budget, only the create/describe wave of a
  // service makes it in).
  switch (c) {
    case docs::ApiCategory::kCreate: return 0;
    case docs::ApiCategory::kDescribe: return 1;
    case docs::ApiCategory::kDestroy: return 2;
    case docs::ApiCategory::kAction: return 3;
    case docs::ApiCategory::kModify: return 4;
  }
  return 5;
}

/// Strip the bug-relevant checks from a copy of the catalog, mirroring the
/// manual emulator's missing logic.
docs::CloudCatalog degrade_catalog(docs::CloudCatalog catalog, const MotoLikeOptions& opts) {
  if (opts.delete_vpc_dependency_bug) {
    if (docs::ResourceModel* vpc = catalog.find_resource("Vpc")) {
      if (docs::ApiModel* del = vpc->find_api("DeleteVpc")) {
        del->constraints.clear();
      }
    }
  }
  if (opts.start_instance_silent_bug) {
    if (docs::ResourceModel* instance = catalog.find_resource("Instance")) {
      if (docs::ApiModel* start = instance->find_api("StartInstance")) {
        start->constraints.clear();
      }
    }
  }
  return catalog;
}

}  // namespace

MotoLike::MotoLike(docs::CloudCatalog catalog, MotoLikeOptions opts)
    : opts_(std::move(opts)),
      inner_(degrade_catalog(std::move(catalog), opts_),
             cloud::ReferenceCloudOptions{
                 .name = "moto-inner",
                 // Moto does not enforce containment reclamation globally.
                 .universal_reclaim_guard = false,
             }) {
  ErrorRegistry::instance().add("NotImplemented",
                                "The {api} action has not been implemented.");
  // Select the per-service implemented subset by priority.
  for (const auto& service : inner_.catalog().services) {
    std::size_t budget = SIZE_MAX;
    auto it = opts_.coverage.find(service.name);
    if (it != opts_.coverage.end()) budget = it->second;

    struct Entry {
      int priority;
      std::size_t resource_idx;
      std::size_t api_idx;
      const std::string* name;
    };
    std::vector<Entry> entries;
    for (std::size_t ri = 0; ri < service.resources.size(); ++ri) {
      const auto& r = service.resources[ri];
      for (std::size_t ai = 0; ai < r.apis.size(); ++ai) {
        entries.push_back(
            Entry{category_priority(r.apis[ai].category), ri, ai, &r.apis[ai].name});
      }
    }
    std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (a.priority != b.priority) return a.priority < b.priority;
      if (a.resource_idx != b.resource_idx) return a.resource_idx < b.resource_idx;
      return a.api_idx < b.api_idx;
    });
    for (std::size_t i = 0; i < entries.size() && i < budget; ++i) {
      implemented_.insert(*entries[i].name);
    }
  }
}

ApiResponse MotoLike::invoke(const ApiRequest& req) {
  if (implemented_.find(req.api) == implemented_.end()) {
    return ApiResponse::failure(
        "NotImplemented",
        ErrorRegistry::instance().render_message("NotImplemented", {{"api", req.api}}));
  }
  return inner_.invoke(req);
}

void MotoLike::reset() { inner_.reset(); }

bool MotoLike::supports(const std::string& api) const {
  return implemented_.find(api) != implemented_.end();
}

}  // namespace lce::baselines
