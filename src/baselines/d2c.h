// The direct-to-code (D2C) baseline backend (paper §5): an emulator
// generated straight from the docs without the SM grammar's protections.
// The spec comes from synth::synthesize_d2c(); the interpreter runs it with
// the built-in hierarchy guards DISABLED (unconstrained generated code has
// no such framework net).
#pragma once

#include <cstdint>
#include <memory>

#include "docs/render.h"
#include "interp/interpreter.h"

namespace lce::baselines {

/// Build the D2C emulator backend from rendered documentation.
std::unique_ptr<interp::Interpreter> make_d2c_backend(const docs::DocCorpus& corpus,
                                                      std::uint64_t seed = 1);

}  // namespace lce::baselines
