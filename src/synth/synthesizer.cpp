#include "synth/synthesizer.h"

#include <algorithm>
#include <set>

#include "common/errors.h"
#include "common/strings.h"

namespace lce::synth {

namespace {

/// Find the wrangled resource model by machine name.
const docs::ResourceModel* find_doc_resource(const docs::CloudCatalog& catalog,
                                             const std::string& name) {
  return catalog.find_resource(name);
}

}  // namespace

SynthesisResult synthesize(const docs::DocCorpus& corpus, const SynthesisOptions& opts) {
  SynthesisResult result;
  Rng rng(opts.seed);

  // 1. Documentation wrangling (§4.1): symbolic template parsing.
  result.wrangled = docs::wrangle(corpus);
  result.log.push_back(strf("wrangled ", corpus.pages.size(), " pages into ",
                            result.wrangled.catalog.resource_count(), " resources (",
                            result.wrangled.issues.size(), " unparseable lines)"));

  // 2. Incremental extraction (§4.2): per-resource SM generation with
  //    stubs for not-yet-generated dependencies, plus LLM noise.
  std::vector<Stub> stubs;
  for (const auto& service : result.wrangled.catalog.services) {
    for (const auto& r : service.resources) {
      spec::StateMachine m = translate_resource(r, stubs);
      apply_noise(m, opts.noise_rate, rng, result.noise);
      result.spec.machines.push_back(std::move(m));
    }
  }
  result.log.push_back(strf("generated ", result.spec.machines.size(), " machines, ",
                            stubs.size(), " cross-machine stubs, ",
                            result.noise.size(), " injected LLM errors"));

  // 3. Specification linking (§4.2): patch stubs into target machines.
  result.unlinked_stubs = link_stubs(result.spec, stubs);
  if (!result.unlinked_stubs.empty()) {
    result.log.push_back(strf(result.unlinked_stubs.size(), " stubs could not be linked"));
  }

  // 4. Consistency checks with targeted correction: re-generate flagged
  //    machines from their documentation (noise-free — the "re-prompt with
  //    the checker's complaint" step always converges here because the
  //    translator is deterministic).
  if (opts.consistency_checks) {
    for (int round = 0; round < opts.max_regeneration_rounds; ++round) {
      spec::CheckReport report = spec::run_checks(result.spec);
      auto offenders = report.machines_with_errors();
      if (offenders.empty()) break;
      ++result.regeneration_rounds;
      result.log.push_back(strf("round ", round + 1, ": ", report.error_count(),
                                " check errors across ", offenders.size(),
                                " machines; regenerating"));
      for (const auto& name : offenders) {
        const docs::ResourceModel* r = find_doc_resource(result.wrangled.catalog, name);
        if (r == nullptr) continue;  // stub-only machine; nothing to regenerate
        std::vector<Stub> regen_stubs;
        spec::StateMachine fresh = translate_resource(*r, regen_stubs);
        // Re-apply linking obligations that target this machine.
        for (const auto& stub : stubs) {
          if (stub.target_machine != name) continue;
          if (fresh.find_transition(stub.callee) != nullptr) continue;
          spec::Transition t;
          t.name = stub.callee;
          t.kind = spec::TransitionKind::kModify;
          t.params.push_back(spec::Param{"peer", spec::Type::ref(stub.source_machine)});
          auto w = std::make_unique<spec::Stmt>();
          w->kind = spec::StmtKind::kWrite;
          w->var = stub.target_attr;
          w->expr = spec::make_var("peer");
          t.body.push_back(std::move(w));
          fresh.transitions.push_back(std::move(t));
        }
        if (spec::StateMachine* old = result.spec.find_machine(name)) {
          *old = std::move(fresh);
        }
      }
    }
  }
  result.final_checks = spec::run_checks(result.spec);

  // 5. Which injected noise survived the static net? (Semantically wrong
  //    but grammatically valid mutations — alignment's job, §4.3.) A
  //    machine is compared structurally against its clean re-translation;
  //    if it still differs yet passes the checks, its mutations survive.
  if (opts.consistency_checks) {
    std::set<std::string> still_bad(result.final_checks.machines_with_errors().begin(),
                                    result.final_checks.machines_with_errors().end());
    for (const auto& ev : result.noise) {
      const docs::ResourceModel* r = find_doc_resource(result.wrangled.catalog, ev.machine);
      if (r == nullptr) continue;
      std::vector<Stub> tmp;
      spec::StateMachine clean = translate_resource(*r, tmp);
      const spec::StateMachine* current = result.spec.find_machine(ev.machine);
      if (current == nullptr) continue;
      // If the current machine is statically clean but not identical to
      // the noise-free translation, its surviving mutations live on.
      bool differs = false;
      if (clean.states.size() != current->states.size() ||
          clean.transitions.size() != current->transitions.size()) {
        differs = true;
      } else {
        for (std::size_t i = 0; i < clean.transitions.size() && !differs; ++i) {
          if (clean.transitions[i].body.size() != current->transitions[i].body.size()) {
            differs = true;
          }
        }
      }
      if (differs && still_bad.count(ev.machine) == 0) {
        result.surviving_noise.push_back(ev);
      }
    }
  } else {
    result.surviving_noise = result.noise;
  }

  result.log.push_back(strf("final: ", result.final_checks.error_count(), " errors, ",
                            result.final_checks.warning_count(), " warnings, ",
                            result.surviving_noise.size(), " noise events survived checks"));
  return result;
}

SynthesisResult synthesize_d2c(const docs::DocCorpus& corpus, std::uint64_t seed) {
  SynthesisOptions opts;
  opts.noise_rate = 0.15;  // unconstrained generation is noisier
  opts.seed = seed;
  opts.consistency_checks = false;  // no grammar/checker protections
  SynthesisResult result = synthesize(corpus, opts);

  auto log_bug = [&](std::string what) {
    result.log.push_back("d2c characteristic bug: " + what);
  };

  // Direct code models attributes as plain strings — no typed enum domains
  // anywhere, so drifted values are silently *stored* instead of rejected
  // (the "state errors" of §5(i)).
  for (auto& m : result.spec.machines) {
    for (auto& sv : m.states) {
      if (sv.type.kind == spec::TypeKind::kEnum) sv.type = spec::Type::str();
    }
  }

  // (i) State errors.
  if (spec::StateMachine* instance = result.spec.find_machine("Instance")) {
    auto drop_state = [&](const std::string& name) {
      auto it = std::find_if(instance->states.begin(), instance->states.end(),
                             [&](const spec::StateVar& sv) { return sv.name == name; });
      if (it != instance->states.end()) {
        instance->states.erase(it);
        log_bug("Instance lost state '" + name + "'");
      }
      // Also drop transitions whose writes now dangle (D2C code simply
      // never modelled the attribute).
      instance->transitions.erase(
          std::remove_if(instance->transitions.begin(), instance->transitions.end(),
                         [&](const spec::Transition& t) {
                           for (const auto& s : t.body) {
                             if (s->kind == spec::StmtKind::kWrite && s->var == name) {
                               return true;
                             }
                           }
                           return false;
                         }),
          instance->transitions.end());
    };
    drop_state("instance_tenancy");
    drop_state("credit_specification");
  }
  if (spec::StateMachine* vpc = result.spec.find_machine("Vpc")) {
    if (spec::Transition* del = vpc->find_transition("DeleteVpc")) {
      del->body.clear();  // no dependency checking at all
      log_bug("DeleteVpc lost its dependency check");
    }
    if (spec::Transition* dns = vpc->find_transition("ModifyVpcDnsHostnames")) {
      spec::Body kept;
      for (auto& s : dns->body) {
        if (s->kind != spec::StmtKind::kAssert) kept.push_back(std::move(s));
      }
      dns->body = std::move(kept);
      log_bug("ModifyVpcDnsHostnames lost the dns_support coupling check");
    }
  }
  // (ii) Transition errors.
  if (spec::StateMachine* instance = result.spec.find_machine("Instance")) {
    if (spec::Transition* start = instance->find_transition("StartInstance")) {
      start->body.clear();  // silent success on a running instance
      log_bug("StartInstance fails silently (returns success)");
    }
  }
  if (spec::StateMachine* subnet = result.spec.find_machine("Subnet")) {
    if (spec::Transition* create = subnet->find_transition("CreateSubnet")) {
      spec::Body kept;
      for (auto& s : create->body) {
        bool is_prefix_check =
            s->kind == spec::StmtKind::kAssert && s->expr &&
            contains(s->expr->to_text(), "cidr_prefix_len");
        if (!is_prefix_check) kept.push_back(std::move(s));
      }
      create->body = std::move(kept);
      log_bug("CreateSubnet accepts invalid prefix sizes (e.g. /29)");
    }
  }
  // Specific error codes degrade to a generic one on roughly half of the
  // remaining asserts ("failure to return the specific error codes
  // required by client-side tooling").
  Rng degrade_rng(seed + 1);
  int degraded = 0;
  for (auto& m : result.spec.machines) {
    for (auto& t : m.transitions) {
      for (auto& s : t.body) {
        if (s->kind == spec::StmtKind::kAssert &&
            s->error_code != errc::kValidationError && degrade_rng.chance(0.5)) {
          s->error_code = std::string(errc::kValidationError);
          ++degraded;
        }
      }
    }
  }
  log_bug(strf(degraded, " asserts degraded to generic ValidationError"));
  return result;
}

}  // namespace lce::synth
