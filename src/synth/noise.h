// The LLM noise model: a seeded mutator that injects the error classes the
// paper observed in LLM-generated emulation code (§5): missing state
// variables, missing/shallow checks, wrong error codes, silent transitions,
// describe()s that mutate state, out-of-domain enum writes. This stands in
// for the stochastic misbehaviour of a real LLM (see DESIGN.md); the
// grammar + consistency checks + alignment phases must catch what they can,
// exactly as the paper argues.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "spec/ast.h"

namespace lce::synth {

enum class NoiseKind {
  kDropStateVar,      // state error: attribute lost (InstanceTenancy, ...)
  kDropAssert,        // missing semantic check (DeleteVpc dependency, ...)
  kWrongErrorCode,    // registered-but-wrong code on an assert
  kSilentTransition,  // action/modify body emptied (StartInstances bug)
  kDescribeWrites,    // describe() gains a state mutation
  kEnumLiteralDrift,  // const write drifts outside the enum domain
  kDropParentAttach,  // create() loses its attach_parent
};

std::string to_string(NoiseKind k);

struct NoiseEvent {
  NoiseKind kind;
  std::string machine;
  std::string transition;  // "" for machine-level noise
  std::string detail;

  std::string to_text() const;
};

/// Mutate `m` in place with per-site probability `rate`; appends a record
/// of every mutation to `events`.
void apply_noise(spec::StateMachine& m, double rate, Rng& rng,
                 std::vector<NoiseEvent>& events);

}  // namespace lce::synth
