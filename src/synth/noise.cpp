#include "synth/noise.h"

#include "common/errors.h"
#include <algorithm>

#include "common/strings.h"

namespace lce::synth {

std::string to_string(NoiseKind k) {
  switch (k) {
    case NoiseKind::kDropStateVar: return "drop-state-var";
    case NoiseKind::kDropAssert: return "drop-assert";
    case NoiseKind::kWrongErrorCode: return "wrong-error-code";
    case NoiseKind::kSilentTransition: return "silent-transition";
    case NoiseKind::kDescribeWrites: return "describe-writes";
    case NoiseKind::kEnumLiteralDrift: return "enum-literal-drift";
    case NoiseKind::kDropParentAttach: return "drop-parent-attach";
  }
  return "?";
}

std::string NoiseEvent::to_text() const {
  return strf("[", to_string(kind), "] ", machine,
              transition.empty() ? "" : strf("::", transition), ": ", detail);
}

namespace {

using spec::Stmt;
using spec::StmtKind;
using spec::Transition;
using spec::TransitionKind;

void note(std::vector<NoiseEvent>& events, NoiseKind kind, const std::string& machine,
          const std::string& transition, std::string detail) {
  events.push_back(NoiseEvent{kind, machine, transition, std::move(detail)});
}

}  // namespace

void apply_noise(spec::StateMachine& m, double rate, Rng& rng,
                 std::vector<NoiseEvent>& events) {
  if (rate <= 0.0) return;

  // Machine-level: drop a state variable (paper: "fails to capture the
  // important state variables, such as the InstanceTenancy or
  // CreditSpecification attributes").
  if (m.states.size() > 1 && rng.chance(rate)) {
    std::size_t idx = rng.uniform(m.states.size());
    std::string lost = m.states[idx].name;
    note(events, NoiseKind::kDropStateVar, m.name, "",
         strf("hallucination lost state '", lost, "'"));
    m.states.erase(m.states.begin() + static_cast<std::ptrdiff_t>(idx));
    // Code that never modelled the attribute has no writes to it either;
    // the loss shows up as missing payload keys, not as crashes.
    for (auto& t : m.transitions) {
      t.body.erase(std::remove_if(t.body.begin(), t.body.end(),
                                  [&](const std::unique_ptr<Stmt>& s) {
                                    return s->kind == StmtKind::kWrite && s->var == lost;
                                  }),
                   t.body.end());
    }
  }

  for (auto& t : m.transitions) {
    // Transition-level mutations; at most one per transition to keep the
    // error distribution comparable across rates.
    if (!rng.chance(rate)) continue;
    switch (rng.uniform(5)) {
      case 0: {  // drop an assert
        for (std::size_t i = 0; i < t.body.size(); ++i) {
          if (t.body[i]->kind == StmtKind::kAssert) {
            note(events, NoiseKind::kDropAssert, m.name, t.name,
                 strf("lost check mapped to '", t.body[i]->error_code, "'"));
            t.body.erase(t.body.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        break;
      }
      case 1: {  // wrong (but registered) error code
        for (auto& s : t.body) {
          if (s->kind == StmtKind::kAssert) {
            std::string old = s->error_code;
            s->error_code = std::string(errc::kValidationError);
            if (s->error_code == old) s->error_code = std::string(errc::kInvalidParameterValue);
            note(events, NoiseKind::kWrongErrorCode, m.name, t.name,
                 strf("'", old, "' -> '", s->error_code, "'"));
            break;
          }
        }
        break;
      }
      case 2: {  // silent transition
        if ((t.kind == TransitionKind::kModify || t.kind == TransitionKind::kAction) &&
            !t.body.empty()) {
          note(events, NoiseKind::kSilentTransition, m.name, t.name,
               strf("emptied ", t.body.size(), "-statement body"));
          t.body.clear();
        }
        break;
      }
      case 3: {  // describe that writes
        if (t.kind == TransitionKind::kDescribe && !m.states.empty()) {
          auto s = std::make_unique<Stmt>();
          s->kind = StmtKind::kWrite;
          s->var = m.states[rng.uniform(m.states.size())].name;
          s->expr = spec::make_literal(Value("corrupted"));
          note(events, NoiseKind::kDescribeWrites, m.name, t.name,
               strf("describe now writes '", s->var, "'"));
          t.body.push_back(std::move(s));
        }
        break;
      }
      case 4: {  // enum literal drift or dropped attach_parent
        bool mutated = false;
        for (auto& s : t.body) {
          if (s->kind != StmtKind::kWrite || !s->expr ||
              s->expr->kind != spec::ExprKind::kLiteral) {
            continue;
          }
          const spec::StateVar* sv = m.find_state(s->var);
          if (sv == nullptr || sv->type.kind != spec::TypeKind::kEnum) continue;
          note(events, NoiseKind::kEnumLiteralDrift, m.name, t.name,
               strf("write(", s->var, ") drifted to 'hallucinated'"));
          s->expr = spec::make_literal(Value("hallucinated"));
          mutated = true;
          break;
        }
        if (!mutated && t.kind == TransitionKind::kCreate) {
          for (std::size_t i = 0; i < t.body.size(); ++i) {
            if (t.body[i]->kind == StmtKind::kAttachParent) {
              note(events, NoiseKind::kDropParentAttach, m.name, t.name,
                   "create() lost its attach_parent");
              t.body.erase(t.body.begin() + static_cast<std::ptrdiff_t>(i));
              break;
            }
          }
        }
        break;
      }
    }
  }
}

}  // namespace lce::synth
