// The learned-emulator synthesis pipeline (paper Fig. 2, §4.1-§4.2):
//
//   documentation text --wrangle--> per-resource info --translate--> SMs
//        (with seeded LLM noise)  --consistency checks--> targeted
//        re-generation of flagged machines --> executable SpecSet
//
// The pipeline consumes ONLY rendered documentation text, never the truth
// catalog, so everything the emulator knows came through the docs (with
// their defects and omissions). The real system's LLM is replaced by the
// deterministic translator + the noise model (DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "docs/render.h"
#include "docs/wrangler.h"
#include "spec/checks.h"
#include "synth/noise.h"
#include "synth/translate.h"

namespace lce::synth {

struct SynthesisOptions {
  /// Per-site probability of an LLM-style generation error.
  double noise_rate = 0.0;
  std::uint64_t seed = 1;
  /// Run §4.2 consistency checks with targeted re-generation.
  bool consistency_checks = true;
  /// Re-generation rounds before giving up on a machine.
  int max_regeneration_rounds = 3;
};

struct SynthesisResult {
  spec::SpecSet spec;
  docs::WrangleResult wrangled;         // what the symbolic parser recovered
  std::vector<NoiseEvent> noise;        // every injected LLM error
  std::vector<NoiseEvent> surviving_noise;  // noise NOT fixed by checks
  std::vector<Stub> unlinked_stubs;     // spec-linking failures
  spec::CheckReport final_checks;
  int regeneration_rounds = 0;
  std::vector<std::string> log;

  bool ok() const { return final_checks.ok() && unlinked_stubs.empty(); }
};

/// Run the full pipeline over rendered documentation.
SynthesisResult synthesize(const docs::DocCorpus& corpus, const SynthesisOptions& opts);

/// Direct-to-code baseline (paper §5 "Versus direct-to-code"): the same
/// documentation, but *without* the SM grammar's protections — no
/// consistency checks, no targeted correction — plus the characteristic
/// D2C error classes reported in the paper, injected deterministically:
///   (i) state errors: drops instance_tenancy / credit_specification,
///       drops DeleteVpc's dependency check, drops the DNS coupling check;
///  (ii) transition errors: StartInstance succeeds silently, the subnet
///       prefix-size check disappears (CIDR *conflict* checking remains),
///       specific error codes degrade to ValidationError.
/// Returns the buggy spec to be run with hierarchy guards disabled.
SynthesisResult synthesize_d2c(const docs::DocCorpus& corpus, std::uint64_t seed = 1);

}  // namespace lce::synth
