// Deterministic translation of wrangled documentation into the SM grammar
// of paper Fig. 1. This is the "knowledge articulation" step the paper
// constrains the LLM to perform: every documented constraint becomes an
// assert with its error code, every documented effect a write / call /
// attach_parent, so the output is by construction inside the grammar.
//
// Cross-resource bidirectional associations (docs EffectKind::kSetRef with
// a target_attr) become a call() to a back-reference transition on the
// TARGET machine. When the target machine has not been generated yet the
// call is recorded as a *stub* (paper §4.2 incremental extraction); the
// specification-linking pass later materializes the back-reference
// transitions on the targets.
#pragma once

#include <string>
#include <vector>

#include "docs/model.h"
#include "spec/ast.h"

namespace lce::synth {

/// A pending cross-machine obligation produced while translating one SM.
struct Stub {
  std::string source_machine;     // who needs the callee
  std::string source_transition;  // transition containing the call
  std::string target_machine;     // machine that must grow a transition
  std::string callee;             // transition name to materialize
  std::string target_attr;        // back-reference attribute to write
};

/// Name of the generated back-reference transition for an API's set-ref
/// effect, e.g. "AssociateAddressBackRef".
std::string backref_transition_name(const std::string& api_name);

/// Translate a single documented resource into a state machine. Appends
/// any cross-machine stubs to `stubs`.
spec::StateMachine translate_resource(const docs::ResourceModel& r,
                                      std::vector<Stub>& stubs);

/// Specification linking (paper §4.2): materialize every stub as a modify
/// transition on its target machine. Stubs whose target machine is absent
/// are returned (they surface as completeness errors downstream).
std::vector<Stub> link_stubs(spec::SpecSet& spec, const std::vector<Stub>& stubs);

/// Translate a whole wrangled catalog: per-resource translation in
/// dependency order followed by linking. `unlinked` (optional) receives
/// stubs that could not be linked.
spec::SpecSet translate_catalog(const docs::CloudCatalog& catalog,
                                std::vector<Stub>* unlinked = nullptr);

}  // namespace lce::synth
