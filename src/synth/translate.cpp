#include "synth/translate.h"

#include "common/errors.h"
#include "common/strings.h"
#include "docs/literals.h"

namespace lce::synth {

namespace {

using docs::ApiCategory;
using docs::ApiModel;
using docs::ConstraintKind;
using docs::ConstraintModel;
using docs::EffectKind;
using docs::EffectModel;
using docs::FieldType;
using docs::ResourceModel;
using spec::BinaryOp;
using spec::ExprPtr;
using spec::StmtKind;
using spec::StmtPtr;
using spec::TransitionKind;

spec::Type to_spec_type(FieldType t, const std::vector<std::string>& enum_members,
                        const std::string& ref_type, bool param_position) {
  switch (t) {
    case FieldType::kBool: return spec::Type::boolean();
    case FieldType::kInt: return spec::Type::integer();
    case FieldType::kStr: return spec::Type::str();
    case FieldType::kEnum:
      // Parameters stay string-typed: domain membership is an explicit
      // assert (matching the cloud's behaviour of a *documented* error
      // code rather than a transport-level type failure).
      return param_position ? spec::Type::str()
                            : spec::Type::enumeration(enum_members);
    case FieldType::kRef: return spec::Type::ref(ref_type);
    case FieldType::kList: return spec::Type::list();
  }
  return spec::Type::str();
}

TransitionKind to_kind(ApiCategory c) {
  switch (c) {
    case ApiCategory::kCreate: return TransitionKind::kCreate;
    case ApiCategory::kDestroy: return TransitionKind::kDestroy;
    case ApiCategory::kDescribe: return TransitionKind::kDescribe;
    case ApiCategory::kModify: return TransitionKind::kModify;
    case ApiCategory::kAction: return TransitionKind::kAction;
  }
  return TransitionKind::kModify;
}

StmtPtr make_assert(ExprPtr pred, std::string code) {
  auto s = std::make_unique<spec::Stmt>();
  s->kind = StmtKind::kAssert;
  s->expr = std::move(pred);
  s->error_code = std::move(code);
  return s;
}

StmtPtr make_write(std::string var, ExprPtr value) {
  auto s = std::make_unique<spec::Stmt>();
  s->kind = StmtKind::kWrite;
  s->var = std::move(var);
  s->expr = std::move(value);
  return s;
}

std::vector<ExprPtr> vec(ExprPtr a) {
  std::vector<ExprPtr> v;
  v.push_back(std::move(a));
  return v;
}
std::vector<ExprPtr> vec(ExprPtr a, ExprPtr b) {
  std::vector<ExprPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}

ExprPtr null_or(ExprPtr guard_var, ExprPtr pred) {
  return spec::make_binary(BinaryOp::kOr,
                           spec::make_builtin("is_null", vec(std::move(guard_var))),
                           std::move(pred));
}

/// The expected-value literal for self-attribute preconditions, typed by
/// the attribute's declared type.
Value typed_literal(const ResourceModel& r, const std::string& attr,
                    const std::string& text) {
  const docs::AttrModel* am = r.find_attr(attr);
  return docs::parse_literal(text, am != nullptr ? am->type : FieldType::kStr);
}

/// Translate one documented constraint into an assert statement. Returns
/// nullptr for constraints without a spec-level encoding.
StmtPtr translate_constraint(const ResourceModel& r, const ConstraintModel& c) {
  using spec::make_binary;
  using spec::make_builtin;
  using spec::make_literal;
  using spec::make_var;
  switch (c.kind) {
    case ConstraintKind::kEnumDomain: {
      std::vector<ExprPtr> args;
      args.push_back(make_var(c.param));
      for (const auto& v : c.str_vals) args.push_back(make_literal(Value(v)));
      return make_assert(
          null_or(make_var(c.param), make_builtin("in_list", std::move(args))),
          c.error_code);
    }
    case ConstraintKind::kCidrValid:
      return make_assert(make_builtin("cidr_valid", vec(make_var(c.param))),
                         c.error_code);
    case ConstraintKind::kCidrPrefixRange: {
      auto lo = make_binary(BinaryOp::kGe,
                            make_builtin("cidr_prefix_len", vec(make_var(c.param))),
                            make_literal(Value(c.int_lo)));
      auto hi = make_binary(BinaryOp::kLe,
                            make_builtin("cidr_prefix_len", vec(make_var(c.param))),
                            make_literal(Value(c.int_hi)));
      return make_assert(make_binary(BinaryOp::kAnd, std::move(lo), std::move(hi)),
                         c.error_code);
    }
    case ConstraintKind::kCidrWithinParent: {
      // Resolved against the create's parent parameter by the caller; the
      // caller rewrites `__parent__` to the actual link param.
      return make_assert(
          make_builtin("cidr_within",
                       vec(make_var(c.param),
                           spec::make_field(make_var("__parent__"), c.attr))),
          c.error_code);
    }
    case ConstraintKind::kNoSiblingOverlap:
      return make_assert(
          spec::make_unary(spec::UnaryOp::kNot,
                           make_builtin("sibling_cidr_conflict",
                                        vec(make_var(c.param),
                                            make_literal(Value(c.attr))))),
          c.error_code);
    case ConstraintKind::kAttrEquals:
      return make_assert(
          make_binary(BinaryOp::kEq, spec::make_field(spec::make_self(), c.attr),
                      make_literal(typed_literal(
                          r, c.attr, c.str_vals.empty() ? "" : c.str_vals[0]))),
          c.error_code);
    case ConstraintKind::kAttrNotEquals:
      return make_assert(
          make_binary(BinaryOp::kNe, spec::make_field(spec::make_self(), c.attr),
                      make_literal(typed_literal(
                          r, c.attr, c.str_vals.empty() ? "" : c.str_vals[0]))),
          c.error_code);
    case ConstraintKind::kRefAttrMatchesSelf:
      return make_assert(
          null_or(make_var(c.param),
                  make_binary(BinaryOp::kEq,
                              spec::make_field(make_var(c.param), c.attr),
                              spec::make_field(spec::make_self(), c.attr))),
          c.error_code);
    case ConstraintKind::kAttrNull:
      return make_assert(
          make_builtin("is_null", vec(spec::make_field(spec::make_self(), c.attr))),
          c.error_code);
    case ConstraintKind::kAttrTrueRequires:
      return make_assert(
          make_binary(BinaryOp::kOr,
                      spec::make_unary(spec::UnaryOp::kNot, make_var(c.param)),
                      spec::make_field(spec::make_self(), c.attr)),
          c.error_code);
    case ConstraintKind::kChildrenReclaimed:
      return make_assert(
          make_binary(BinaryOp::kEq, make_builtin("child_count", vec(make_literal(Value("")))),
                      make_literal(Value(0))),
          c.error_code);
    case ConstraintKind::kIntRange: {
      auto in_range = make_binary(
          BinaryOp::kAnd,
          make_binary(BinaryOp::kGe, make_var(c.param), make_literal(Value(c.int_lo))),
          make_binary(BinaryOp::kLe, make_var(c.param), make_literal(Value(c.int_hi))));
      return make_assert(null_or(make_var(c.param), std::move(in_range)), c.error_code);
    }
  }
  return nullptr;
}

/// Rewrite the `__parent__` placeholder var to `param` inside an expr tree.
void rewrite_parent_placeholder(spec::Expr& e, const std::string& param) {
  if (e.kind == spec::ExprKind::kVar && e.name == "__parent__") e.name = param;
  for (auto& k : e.kids) rewrite_parent_placeholder(*k, param);
}

}  // namespace

std::string backref_transition_name(const std::string& api_name) {
  return api_name + "BackRef";
}

spec::StateMachine translate_resource(const ResourceModel& r, std::vector<Stub>& stubs) {
  spec::StateMachine m;
  m.name = r.name;
  m.service = r.service;
  m.id_prefix = r.id_prefix;
  m.parent_type = r.parent_type;

  for (const auto& a : r.attrs) {
    spec::StateVar sv;
    sv.name = a.name;
    sv.type = to_spec_type(a.type, a.enum_members, a.ref_type, /*param_position=*/false);
    sv.initial = docs::parse_literal(a.initial, a.type);
    m.states.push_back(std::move(sv));
  }

  for (const auto& api : r.apis) {
    spec::Transition t;
    t.name = api.name;
    t.kind = to_kind(api.category);
    for (const auto& p : api.params) {
      t.params.push_back(spec::Param{
          p.name, to_spec_type(p.type, p.enum_members, p.ref_type, /*param_position=*/true)});
    }

    // (a) Typed existence asserts for every ref parameter.
    for (const auto& p : api.params) {
      if (p.type != FieldType::kRef) continue;
      auto check = p.ref_type.empty()
                       ? spec::make_builtin("exists", vec(spec::make_var(p.name)))
                       : spec::make_builtin(
                             "exists", vec(spec::make_var(p.name),
                                           spec::make_literal(Value(p.ref_type))));
      t.body.push_back(make_assert(
          null_or(spec::make_var(p.name), std::move(check)),
          std::string(errc::kResourceNotFound)));
    }

    // The parent-link parameter (for within-parent constraint rewriting).
    std::string link_param;
    for (const auto& e : api.effects) {
      if (e.kind == EffectKind::kLinkParent) link_param = e.param;
    }

    // (b) Documented constraints in order; sibling-overlap checks are
    // deferred until after attach_parent so the hierarchy is in place.
    std::vector<StmtPtr> deferred_sibling;
    for (const auto& c : api.constraints) {
      // Undocumented behaviour never reaches the synthesizer in the real
      // pipeline (it is absent from the rendered text); skipping it here
      // keeps direct-from-catalog translation equivalent to docs-trained
      // translation.
      if (!c.documented) continue;
      StmtPtr s = translate_constraint(r, c);
      if (!s) continue;
      if (!link_param.empty() && s->expr) {
        rewrite_parent_placeholder(*s->expr, link_param);
      }
      if (c.kind == ConstraintKind::kNoSiblingOverlap && !link_param.empty()) {
        deferred_sibling.push_back(std::move(s));
      } else {
        t.body.push_back(std::move(s));
      }
    }

    // (c) Effects in documented order; sibling asserts right after the
    // parent attach.
    for (const auto& e : api.effects) {
      switch (e.kind) {
        case EffectKind::kLinkParent: {
          auto s = std::make_unique<spec::Stmt>();
          s->kind = StmtKind::kAttachParent;
          s->expr = spec::make_var(e.param);
          t.body.push_back(std::move(s));
          for (auto& d : deferred_sibling) t.body.push_back(std::move(d));
          deferred_sibling.clear();
          break;
        }
        case EffectKind::kWriteParam:
          t.body.push_back(make_write(e.attr, spec::make_var(e.param)));
          break;
        case EffectKind::kWriteConst:
          t.body.push_back(make_write(
              e.attr, spec::make_literal(docs::parse_literal(e.literal, e.literal_type))));
          break;
        case EffectKind::kSetRef: {
          t.body.push_back(make_write(e.attr, spec::make_var(e.param)));
          if (!e.target_attr.empty()) {
            // Cross-machine back-reference: call a (possibly not yet
            // generated) transition on the target machine. Guarded against
            // null refs — the cloud treats a null optional ref as a no-op.
            std::string target_type;
            for (const auto& p : api.params) {
              if (p.name == e.param) target_type = p.ref_type;
            }
            auto call = std::make_unique<spec::Stmt>();
            call->kind = StmtKind::kCall;
            call->expr = spec::make_var(e.param);
            call->callee = backref_transition_name(api.name);
            call->args.push_back(spec::make_self());
            auto guard = std::make_unique<spec::Stmt>();
            guard->kind = StmtKind::kIf;
            guard->expr = spec::make_unary(
                spec::UnaryOp::kNot,
                spec::make_builtin("is_null", vec(spec::make_var(e.param))));
            guard->then_body.push_back(std::move(call));
            t.body.push_back(std::move(guard));
            stubs.push_back(Stub{r.name, api.name, target_type,
                                 backref_transition_name(api.name), e.target_attr});
          }
          break;
        }
        case EffectKind::kClearAttr:
          t.body.push_back(make_write(e.attr, spec::make_literal(Value())));
          break;
      }
    }
    // Sibling asserts with no parent link (top-level siblings).
    for (auto& d : deferred_sibling) t.body.push_back(std::move(d));

    m.transitions.push_back(std::move(t));
  }
  return m;
}

std::vector<Stub> link_stubs(spec::SpecSet& spec, const std::vector<Stub>& stubs) {
  std::vector<Stub> unlinked;
  for (const auto& stub : stubs) {
    spec::StateMachine* target = spec.find_machine(stub.target_machine);
    if (target == nullptr) {
      unlinked.push_back(stub);
      continue;
    }
    if (target->find_transition(stub.callee) != nullptr) continue;  // already linked
    spec::Transition t;
    t.name = stub.callee;
    t.kind = spec::TransitionKind::kModify;
    t.params.push_back(spec::Param{"peer", spec::Type::ref(stub.source_machine)});
    t.body.push_back(make_write(stub.target_attr, spec::make_var("peer")));
    target->transitions.push_back(std::move(t));
  }
  return unlinked;
}

spec::SpecSet translate_catalog(const docs::CloudCatalog& catalog,
                                std::vector<Stub>* unlinked_out) {
  spec::SpecSet spec;
  std::vector<Stub> stubs;
  for (const auto& s : catalog.services) {
    for (const auto& r : s.resources) {
      spec.machines.push_back(translate_resource(r, stubs));
    }
  }
  auto unlinked = link_stubs(spec, stubs);
  if (unlinked_out != nullptr) *unlinked_out = std::move(unlinked);
  return spec;
}

}  // namespace lce::synth
