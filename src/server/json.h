// JSON codec for the wire format of the HTTP endpoint: parse JSON text
// into `Value` and serialize back. Resource references serialize as plain
// strings (the way real cloud APIs put ids on the wire); the service layer
// re-tags strings shaped like resource ids (see service.h).
#pragma once

#include <optional>
#include <string>

#include "common/value.h"

namespace lce::server {

struct JsonError {
  std::size_t offset = 0;
  std::string message;

  std::string to_text() const;
};

/// Parse one JSON document (object/array/scalar). Supports the full JSON
/// grammar except non-integer numbers, which are rejected (the cloud API
/// surface is integer-only).
std::optional<Value> parse_json(const std::string& text, JsonError* error = nullptr);

/// Serialize a Value as compact JSON. Refs become plain strings.
std::string to_json(const Value& v);

}  // namespace lce::server
