// JSON codec for the wire format of the HTTP endpoint: parse JSON text
// into `Value` and serialize back. Resource references serialize as plain
// strings (the way real cloud APIs put ids on the wire); the service layer
// re-tags strings shaped like resource ids (see service.h).
//
// Two decoders share one scanner (identical acceptance, error offsets and
// messages — pinned by the WireFastpathJson differential suite):
//
//   parse_json            builds the tree directly via Value::set/append
//                         with KeyTable-interned object keys. While an
//                         ArenaScope is active every rep block comes from
//                         the request arena, so steady-state decode does
//                         zero heap allocations (DESIGN.md "Wire fast
//                         path"). This is the serving path.
//   parse_json_reference  the historical builder path (Value::Map /
//                         Value::List, std::string keys) — the oracle the
//                         fast decoder is differenced against, and the
//                         decoder behind --no-wire-fastpath.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/value.h"

namespace lce::server {

struct JsonError {
  std::size_t offset = 0;
  std::string message;

  std::string to_text() const;
};

/// Parse one JSON document (object/array/scalar). Supports the full JSON
/// grammar except non-integer numbers, which are rejected (the cloud API
/// surface is integer-only). Arena-aware: see the header comment.
std::optional<Value> parse_json(std::string_view text, JsonError* error = nullptr);

/// The historical builder-based decoder; byte-identical semantics to
/// parse_json, always heap-owning construction forms.
std::optional<Value> parse_json_reference(std::string_view text,
                                          JsonError* error = nullptr);

/// Serialize a Value as compact JSON. Refs become plain strings.
std::string to_json(const Value& v);

/// Same rendering appended to `out` — the single-buffer response path
/// threads one reusable buffer through head and body instead of a
/// temporary string per response.
void append_json(const Value& v, std::string& out);

}  // namespace lce::server
