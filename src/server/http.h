// A deliberately small HTTP/1.1 implementation over loopback TCP — enough
// to serve the emulator the way LocalStack serves DevOps tools, with no
// external dependencies. The server is a multi-threaded epoll event loop
// (DESIGN.md "Serving front end"): N io threads each own an epoll
// instance, accepted connections are distributed across them, and each
// connection runs an incremental parser state machine, so keep-alive
// clients pay one TCP handshake for thousands of requests. Content-Length
// framing only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace lce::server {

struct HttpRequest {
  std::string method;  // "GET" / "POST"
  std::string path;    // "/invoke"
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
  int version_minor = 1;  // HTTP/1.0 vs 1.1 (keep-alive default differs)
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Borrowed view of one parsed request: method/path/header/body views point
/// into the connection parser's input buffer and stay valid only until the
/// parser's next feed()/reset() (DESIGN.md "Wire fast path"). Header names
/// are lower-cased (in place in the buffer); pairs keep arrival order. The
/// vector is the only owning member, so a reused RequestView parses with
/// zero allocations once its capacity has warmed up.
struct RequestView {
  std::string_view method;
  std::string_view path;
  std::string_view body;
  std::vector<std::pair<std::string_view, std::string_view>> headers;
  int version_minor = 1;

  /// Last occurrence wins, matching the historical map's duplicate-header
  /// overwrite; nullptr when absent (distinct from present-but-empty).
  const std::string_view* find_header(std::string_view name) const {
    const std::string_view* found = nullptr;
    for (const auto& [k, v] : headers) {
      if (k == name) found = &v;
    }
    return found;
  }
};

/// Renders one response directly into a connection's reusable output
/// buffer: head in place, body appended behind it, Content-Length
/// backpatched to minimal digits in finish(). The digit field is reserved
/// at the connection's predicted width (`cl_width_hint`, fed back after
/// every response), so a steady stream of similar-sized responses patches
/// the digits in place without moving a single byte. Byte-identical to
/// serialize_http_response for the header sets the service emits (none, or
/// exactly content-type: application/json) — pinned by the differential
/// suite.
class ResponseWriter {
 public:
  ResponseWriter(std::string& out, int& cl_width_hint)
      : out_(out), hint_(cl_width_hint) {}

  /// Emit the head. `json_body` adds the content-type header. Call once,
  /// then append the body to body(), then finish().
  void begin(int status, bool keep_alive, bool json_body);
  /// The buffer to append body bytes to; valid between begin() and finish().
  std::string& body() { return out_; }
  void finish();

 private:
  std::string& out_;
  int& hint_;
  std::size_t cl_pos_ = 0;   // offset of the first Content-Length digit
  std::size_t body_pos_ = 0; // offset of the first body byte
  int reserved_ = 0;         // digits reserved at begin()
};

/// Parse a full HTTP/1.1 request out of `raw` (headers + body). Returns
/// nullopt on malformed input or when the body is shorter than
/// Content-Length (callers accumulate and retry). One-shot convenience
/// over HttpParser (server/http_parser.h), which is the incremental form
/// the event loop uses.
std::optional<HttpRequest> parse_http_request(const std::string& raw);

/// Serialize a response with Content-Length and a Connection header
/// matching `keep_alive`. The one-argument form closes (the historical
/// contract every one-shot caller relies on).
std::string serialize_http_response(const HttpResponse& resp, bool keep_alive);
std::string serialize_http_response(const HttpResponse& resp);

/// Reason phrase for the handful of statuses the service uses.
std::string_view status_text(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Zero-copy handler form: reads the borrowed request, renders the
/// response through the writer (begin/body/finish). `keep_alive` is the
/// server's verdict (client wish ∩ server policy) and must be passed to
/// ResponseWriter::begin unchanged.
using WireHandler = std::function<void(const RequestView&, bool keep_alive,
                                       ResponseWriter&)>;

struct HttpServerOptions {
  /// Event-loop threads; 0 = one per core, capped at 8.
  int io_threads = 0;
  /// A connection is reaped when no REQUEST COMPLETES on it for this long
  /// — receiving bytes does not extend the deadline, so both silent and
  /// one-byte-per-interval slow-loris connections die on schedule while
  /// genuinely idle keep-alive connections get the full window. 0 = never.
  int idle_timeout_ms = 30000;
  /// Close (Connection: close on the final response) after this many
  /// requests on one connection; 0 = unlimited.
  int max_requests_per_conn = 0;
  /// Parser limits: oversized headers draw 431, oversized bodies 413.
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 16 * 1024 * 1024;
  /// Serve through the zero-copy wire path (borrowed request views, arena
  /// JSON decode, single-buffer rendering) when the service installed a
  /// wire handler. Off (`--no-wire-fastpath`) falls back to the heap
  /// HttpRequest/HttpResponse path — the byte-identical reference.
  bool wire_fastpath = true;
};

/// Monotonic counters for the life of the server (across start/stop
/// cycles). Exposed under "server" in the endpoint's /metrics.
struct HttpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t requests_served = 0;
  /// Requests beyond the first on their connection — the keep-alive win.
  std::uint64_t keepalive_reuses = 0;
  std::uint64_t idle_reaped = 0;
  std::uint64_t rejected_400 = 0;
  std::uint64_t rejected_413 = 0;
  std::uint64_t rejected_431 = 0;
  /// Successful write() syscalls. A pipelined burst that corks N responses
  /// into one flush counts 1 here (what the corking tests assert). Not
  /// exported via /metrics: kernel read chunking makes it nondeterministic
  /// across runs.
  std::uint64_t write_calls = 0;
};

/// Loopback HTTP server. start() binds 127.0.0.1 (port 0 = ephemeral),
/// spawns the io threads, and returns the bound port. stop() is
/// deterministic: it closes the listen socket, wakes every event loop,
/// aborts in-flight connections, and joins — no detached threads survive.
class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler, HttpServerOptions opts = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Install the zero-copy handler; served instead of the HttpHandler when
  /// opts.wire_fastpath holds. Call before start() — the event loops read
  /// it unsynchronized.
  void set_wire_handler(WireHandler handler) { wire_handler_ = std::move(handler); }

  /// Returns the bound port, or 0 on failure.
  std::uint16_t start(std::uint16_t port = 0);
  void stop();
  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }
  int io_threads() const { return static_cast<int>(loops_.size()); }
  HttpServerStats stats() const;

 private:
  struct Loop;

  void run_loop(Loop& loop);
  void accept_new(Loop& loop);
  void handle_conn_event(Loop& loop, int fd, std::uint32_t events);
  void reap_idle(Loop& loop);

  HttpHandler handler_;
  WireHandler wire_handler_;
  HttpServerOptions opts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<Loop>> loops_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> reaped_{0};
  std::atomic<std::uint64_t> rej400_{0};
  std::atomic<std::uint64_t> rej413_{0};
  std::atomic<std::uint64_t> rej431_{0};
  std::atomic<std::uint64_t> writes_{0};
};

/// Client side of keep-alive: one persistent loopback connection, one
/// request at a time. Reconnects transparently when the server closed the
/// previous connection (idle reap, max-requests, Connection: close), so
/// callers just see request() succeed.
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port) : port_(port) {}
  ~HttpClient() { disconnect(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Send one request; with keep_alive the connection is reused for the
  /// next call. Returns nullopt on connection or protocol failure.
  std::optional<HttpResponse> request(const std::string& method, const std::string& path,
                                      const std::string& body = "",
                                      bool keep_alive = true);

  /// Pipelining split of request(): queue a request without waiting, then
  /// collect responses in order with read_response(). No transparent
  /// retry — a pipelined caller owns the failure handling (the load
  /// generator re-dials). Mixing with request() is fine as long as every
  /// sent request has been read back first.
  bool send_request(const std::string& method, const std::string& path,
                    const std::string& body = "", bool keep_alive = true);
  std::optional<HttpResponse> read_response();

  /// Dial now instead of lazily on the first request, so connection setup
  /// happens outside a measured phase. No-op when already connected.
  bool preconnect() { return ensure_connected(); }

  void disconnect();
  bool connected() const { return fd_ >= 0; }
  /// TCP connections dialed over this client's lifetime (1 = full reuse).
  int connections_opened() const { return opens_; }

 private:
  bool ensure_connected();
  std::optional<HttpResponse> read_response_internal(bool* got_bytes);

  std::uint16_t port_;
  int fd_ = -1;
  int opens_ = 0;
  /// Receive buffer: responses are consumed by advancing `inpos_` and the
  /// dead prefix is compacted periodically — front-erasing per response is
  /// quadratic at high pipelining depth.
  std::string inbuf_;
  std::size_t inpos_ = 0;
};

/// Blocking HTTP client for tests/examples: one request over a fresh
/// Connection: close socket. Returns nullopt on failure.
std::optional<HttpResponse> http_request(std::uint16_t port, const std::string& method,
                                         const std::string& path,
                                         const std::string& body = "");

}  // namespace lce::server
