// A deliberately small HTTP/1.1 implementation over loopback TCP — enough
// to serve the emulator the way LocalStack serves DevOps tools, with no
// external dependencies. Single acceptor thread, one request per
// connection (Connection: close), Content-Length framing only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <thread>

namespace lce::server {

struct HttpRequest {
  std::string method;  // "GET" / "POST"
  std::string path;    // "/invoke"
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Parse a full HTTP/1.1 request out of `raw` (headers + body). Returns
/// nullopt on malformed input or when the body is shorter than
/// Content-Length (callers accumulate and retry).
std::optional<HttpRequest> parse_http_request(const std::string& raw);

/// Serialize a response with Content-Length and Connection: close.
std::string serialize_http_response(const HttpResponse& resp);

/// Reason phrase for the handful of statuses the service uses.
std::string status_text(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Loopback HTTP server. start() binds 127.0.0.1 (port 0 = ephemeral),
/// spawns the accept loop, and returns the bound port. stop() joins it.
class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Returns the bound port, or 0 on failure.
  std::uint16_t start(std::uint16_t port = 0);
  void stop();
  bool running() const { return running_.load(); }
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// Blocking HTTP client for tests/examples: one request, one response.
/// Returns nullopt on connection or protocol failure.
std::optional<HttpResponse> http_request(std::uint16_t port, const std::string& method,
                                         const std::string& path,
                                         const std::string& body = "");

}  // namespace lce::server
