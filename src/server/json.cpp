#include "server/json.h"

#include <cctype>

#include "common/strings.h"

namespace lce::server {

std::string JsonError::to_text() const {
  return strf("json error at offset ", offset, ": ", message);
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, JsonError* error) : text_(text), error_(error) {}

  std::optional<Value> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(std::string msg) {
    if (error_ != nullptr && error_->message.empty()) {
      *error_ = JsonError{pos_, std::move(msg)};
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> string_body() {
    // Caller consumed the opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // Basic-plane UTF-8 encoding (surrogates unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(strf("unknown escape '\\", e, "'"));
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      Value::Map map;
      skip_ws();
      if (consume('}')) return Value(std::move(map));
      while (true) {
        skip_ws();
        if (!consume('"')) {
          fail("expected object key");
          return std::nullopt;
        }
        auto key = string_body();
        if (!key) return std::nullopt;
        if (!consume(':')) {
          fail("expected ':'");
          return std::nullopt;
        }
        auto v = value();
        if (!v) return std::nullopt;
        map[std::move(*key)] = std::move(*v);
        if (consume(',')) continue;
        if (consume('}')) return Value(std::move(map));
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      Value::List list;
      skip_ws();
      if (consume(']')) return Value(std::move(list));
      while (true) {
        auto v = value();
        if (!v) return std::nullopt;
        list.push_back(std::move(*v));
        if (consume(',')) continue;
        if (consume(']')) return Value(std::move(list));
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '"') {
      ++pos_;
      auto s = string_body();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (literal("true")) return Value(true);
    if (literal("false")) return Value(false);
    if (literal("null")) return Value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                  text_[pos_] == 'E')) {
        fail("non-integer numbers unsupported");
        return std::nullopt;
      }
      std::int64_t n = 0;
      if (!parse_int(std::string_view(text_).substr(start, pos_ - start), n)) {
        fail("bad number");
        return std::nullopt;
      }
      return Value(n);
    }
    fail(strf("unexpected character '", c, "'"));
    return std::nullopt;
  }

  const std::string& text_;
  JsonError* error_;
  std::size_t pos_ = 0;
};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void serialize(const Value& v, std::string& out) {
  switch (v.kind()) {
    case ValueKind::kNull: out += "null"; return;
    case ValueKind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case ValueKind::kInt: out += std::to_string(v.as_int()); return;
    case ValueKind::kStr:
    case ValueKind::kRef: append_json_string(out, v.as_str()); return;
    case ValueKind::kList: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_list()) {
        if (!first) out += ',';
        first = false;
        serialize(e, out);
      }
      out += ']';
      return;
    }
    case ValueKind::kMap: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_map()) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, k);
        out += ':';
        serialize(e, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::optional<Value> parse_json(const std::string& text, JsonError* error) {
  return Parser(text, error).run();
}

std::string to_json(const Value& v) {
  std::string out;
  serialize(v, out);
  return out;
}

}  // namespace lce::server
