#include "server/json.h"

#include <cctype>

#include "common/strings.h"

namespace lce::server {

std::string JsonError::to_text() const {
  return strf("json error at offset ", offset, ": ", message);
}

namespace {

// One scanner, two build modes. `direct` constructs the tree in place via
// Value::set/append with interned keys (arena-backed while an ArenaScope is
// active); the reference mode goes through the historical Value::Map /
// Value::List builders. Both modes share every branch of the scanner so
// acceptance, error offsets, and error messages cannot diverge — the
// WireFastpathJson suite differences them anyway.
class Parser {
 public:
  Parser(std::string_view text, JsonError* error, bool direct)
      : text_(text), error_(error), direct_(direct) {}

  std::optional<Value> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(std::string msg) {
    if (error_ != nullptr && error_->message.empty()) {
      *error_ = JsonError{pos_, std::move(msg)};
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  // Scans a string body (caller consumed the opening quote) and leaves the
  // decoded bytes in `out`. Escape-free strings borrow straight from the
  // input; anything with an escape is decoded into `scratch_`, which stays
  // valid only until the next string_body call — callers must consume the
  // view (intern it / wrap it in a Value) before parsing further.
  bool string_body(std::string_view& out) {
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        out = text_.substr(start, pos_ - start);
        ++pos_;
        return true;
      }
      if (c == '\\') return string_body_escaped(start, out);
      ++pos_;
    }
    pos_ = text_.size();
    fail("unterminated string");
    return false;
  }

  // Slow path once the first backslash is seen: replay the escape-free
  // prefix into scratch_ and decode the rest byte by byte.
  bool string_body_escaped(std::size_t start, std::string_view& out) {
    scratch_.assign(text_.substr(start, pos_ - start));
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        out = scratch_;
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': scratch_ += '"'; break;
          case '\\': scratch_ += '\\'; break;
          case '/': scratch_ += '/'; break;
          case 'n': scratch_ += '\n'; break;
          case 't': scratch_ += '\t'; break;
          case 'r': scratch_ += '\r'; break;
          case 'b': scratch_ += '\b'; break;
          case 'f': scratch_ += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            // Basic-plane UTF-8 encoding (surrogates unsupported).
            if (code < 0x80) {
              scratch_ += static_cast<char>(code);
            } else if (code < 0x800) {
              scratch_ += static_cast<char>(0xC0 | (code >> 6));
              scratch_ += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              scratch_ += static_cast<char>(0xE0 | (code >> 12));
              scratch_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              scratch_ += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(strf("unknown escape '\\", e, "'"));
            return false;
        }
      } else {
        scratch_ += c;
      }
    }
    pos_ = text_.size();
    fail("unterminated string");
    return false;
  }

  std::optional<Value> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      // Duplicate keys: last one wins in both modes (std::map assignment
      // vs Value::set overwrite).
      Value direct = Value::empty_map();
      Value::Map map;
      skip_ws();
      if (consume('}')) return direct_ ? std::move(direct) : Value(std::move(map));
      while (true) {
        skip_ws();
        if (!consume('"')) {
          fail("expected object key");
          return std::nullopt;
        }
        std::string_view key_view;
        if (!string_body(key_view)) return std::nullopt;
        // Pin the key before the value parse reuses scratch_. The direct
        // mode interns it (the heap builder interns the same spelling when
        // Value(Map) converts, so the table sees identical traffic).
        KeyId key_id = kNoKey;
        std::string key;
        if (direct_) {
          key_id = intern_key(key_view);
        } else {
          key.assign(key_view);
        }
        if (!consume(':')) {
          fail("expected ':'");
          return std::nullopt;
        }
        auto v = value();
        if (!v) return std::nullopt;
        if (direct_) {
          direct.set(key_id, std::move(*v));
        } else {
          map[std::move(key)] = std::move(*v);
        }
        if (consume(',')) continue;
        if (consume('}')) return direct_ ? std::move(direct) : Value(std::move(map));
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      Value direct = Value::empty_list();
      Value::List list;
      skip_ws();
      if (consume(']')) return direct_ ? std::move(direct) : Value(std::move(list));
      while (true) {
        auto v = value();
        if (!v) return std::nullopt;
        if (direct_) {
          direct.append(std::move(*v));
        } else {
          list.push_back(std::move(*v));
        }
        if (consume(',')) continue;
        if (consume(']')) return direct_ ? std::move(direct) : Value(std::move(list));
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
    if (c == '"') {
      ++pos_;
      std::string_view s;
      if (!string_body(s)) return std::nullopt;
      return Value(s);
    }
    if (literal("true")) return Value(true);
    if (literal("false")) return Value(false);
    if (literal("null")) return Value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                  text_[pos_] == 'E')) {
        fail("non-integer numbers unsupported");
        return std::nullopt;
      }
      std::int64_t n = 0;
      if (!parse_int(text_.substr(start, pos_ - start), n)) {
        fail("bad number");
        return std::nullopt;
      }
      return Value(n);
    }
    fail(strf("unexpected character '", c, "'"));
    return std::nullopt;
  }

  std::string_view text_;
  JsonError* error_;
  std::size_t pos_ = 0;
  bool direct_;
  std::string scratch_;  // decoded bytes of the last escaped string
};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void serialize(const Value& v, std::string& out) {
  switch (v.kind()) {
    case ValueKind::kNull: out += "null"; return;
    case ValueKind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case ValueKind::kInt: out += std::to_string(v.as_int()); return;
    case ValueKind::kStr:
    case ValueKind::kRef: append_json_string(out, v.as_str()); return;
    case ValueKind::kList: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_list()) {
        if (!first) out += ',';
        first = false;
        serialize(e, out);
      }
      out += ']';
      return;
    }
    case ValueKind::kMap: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_map()) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, k);
        out += ':';
        serialize(e, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::optional<Value> parse_json(std::string_view text, JsonError* error) {
  return Parser(text, error, /*direct=*/true).run();
}

std::optional<Value> parse_json_reference(std::string_view text, JsonError* error) {
  return Parser(text, error, /*direct=*/false).run();
}

std::string to_json(const Value& v) {
  std::string out;
  serialize(v, out);
  return out;
}

void append_json(const Value& v, std::string& out) { serialize(v, out); }

}  // namespace lce::server
