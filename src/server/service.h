// The emulator as a network service (the way DevOps tooling consumes
// LocalStack): any CloudBackend behind a small JSON-over-HTTP protocol.
//
//   POST /invoke    {"Action": "CreateVpc", "Params": {"cidr_block": "..."}}
//     -> 200 {"Data": {...}}                     on success
//     -> 400 {"Error": {"Code": ..., "Message": ...}}  on API failure
//   GET  /health    -> {"status":"ok","backend":"learned-emulator"}
//   GET  /snapshot  -> full mock-cloud state
//   POST /reset     -> fresh account
//
// Wire convention: resource ids travel as plain JSON strings; incoming
// strings shaped like ids ("<prefix>-<8 digits>") are re-tagged as
// references before dispatch, mirroring how real cloud SDKs pass ids.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "common/api.h"
#include "server/http.h"

namespace lce::server {

/// Translate one HTTP request into a backend call (exposed separately so
/// tests can exercise routing without sockets).
HttpResponse handle_emulator_request(CloudBackend& backend, const HttpRequest& req);

/// True when `s` has our resource-id shape ("vpc-00000001").
bool looks_like_resource_id(const std::string& s);

/// Thread-safety adapter: serializes every CloudBackend operation behind a
/// mutex, so single-threaded backends (the interpreter, the reference
/// cloud) can sit behind the concurrent HTTP server.
class SerializedBackend final : public CloudBackend {
 public:
  explicit SerializedBackend(CloudBackend& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  ApiResponse invoke(const ApiRequest& req) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.invoke(req);
  }
  void reset() override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.reset();
  }
  bool supports(const std::string& api) const override { return inner_.supports(api); }
  Value snapshot() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.snapshot();
  }

 private:
  CloudBackend& inner_;
  mutable std::mutex mu_;
};

/// A running emulator endpoint; owns the server thread (and a serializing
/// wrapper around the backend), not the backend itself.
class EmulatorEndpoint {
 public:
  explicit EmulatorEndpoint(CloudBackend& backend);

  /// Bind and serve; returns the port (0 = failure).
  std::uint16_t start(std::uint16_t port = 0);
  void stop();
  std::uint16_t port() const { return server_.port(); }

 private:
  SerializedBackend backend_;
  HttpServer server_;
};

/// Client-side helper: invoke an action over HTTP and decode the reply
/// into an ApiResponse (for driving a remote emulator from tests).
ApiResponse invoke_over_http(std::uint16_t port, const std::string& action,
                             const Value::Map& params);

}  // namespace lce::server
