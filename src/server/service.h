// The emulator as a network service (the way DevOps tooling consumes
// LocalStack): any CloudBackend behind a small JSON-over-HTTP protocol.
//
//   POST /invoke    {"Action": "CreateVpc", "Params": {"cidr_block": "..."}}
//     -> 200 {"Data": {...}}                     on success
//     -> 400 {"Error": {"Code": ..., "Message": ...}}  on API failure
//   GET  /health    -> {"status":"ok","backend":...,"layers":[...]}
//   GET  /metrics   -> MetricsLayer counters/histograms (404 when the
//                      backend stack has no metrics layer)
//   GET  /snapshot  -> full mock-cloud state
//   POST /reset     -> fresh account
//   POST /admin/snapshot -> durable snapshot + epoch rotation (404 when
//                      the endpoint runs without a data dir)
//   GET  /admin/persist  -> durability status: epoch, WAL records/bytes
//
// Cross-cutting invoke-path concerns (thread-safety, id re-tagging,
// metrics, fault injection, recording, read caching) live in lce::stack;
// the endpoint just builds a LayerStack from a StackConfig and routes HTTP
// onto it. The "layers" health field and /metrics are served whenever the
// backend IS a LayerStack (which EmulatorEndpoint guarantees).
#pragma once

#include <memory>
#include <string>

#include "common/api.h"
#include "server/http.h"
#include "stack/config.h"

namespace lce::persist {
class PersistManager;
class ReplicaSet;
}  // namespace lce::persist

namespace lce::server {

/// Wire-format id heuristic, re-exported from the stack's validate layer
/// (ids travel as plain JSON strings and are re-tagged before dispatch).
using stack::looks_like_resource_id;

/// Translate one HTTP request into a backend call (exposed separately so
/// tests can exercise routing without sockets). When `backend` is a
/// stack::LayerStack the chain-aware endpoints (/metrics, the /health
/// "layers" field) light up. `persist` (may be null) serves the
/// /admin/snapshot and /admin/persist durability routes. `server` (may be
/// null) adds the front-end counters — accepted connections, keep-alive
/// reuses, reaps, rejections — under "server" in the /metrics body.
/// `replicas` (may be null) serves GET /admin/replicas (per-replica
/// applied-seq/lag) and POST /admin/promote (drain + byte-identity
/// verification against the primary) and, with a RouteLayer in the
/// stack, the "route" section of /metrics. `virtual_time` lights up
/// POST /admin/tick ({"Ticks": N}, default 1), which pushes an
/// _AdvanceClock call through the stack so the journal logs the advance
/// like any other write.
HttpResponse handle_emulator_request(CloudBackend& backend, const HttpRequest& req,
                                     persist::PersistManager* persist = nullptr,
                                     const HttpServer* server = nullptr,
                                     persist::ReplicaSet* replicas = nullptr,
                                     bool virtual_time = false);

/// A running emulator endpoint; owns the server thread and the layer stack
/// built around the backend (default: serialize + validate + metrics), not
/// the backend itself.
class EmulatorEndpoint {
 public:
  /// `persist` (optional, caller-owned, must outlive the endpoint) makes
  /// the endpoint durable: a JournalLayer is installed in the stack (the
  /// config's journal hook is overwritten) and the /admin routes light up.
  /// `http` tunes the serving front end (io threads, idle timeout,
  /// per-connection request cap, parser limits).
  /// `replicas` (optional, caller-owned, must outlive the endpoint)
  /// lights up the /admin/replicas and /admin/promote routes; the
  /// RouteLayer itself is installed via config.route (the CLI wires
  /// both from --replicas). `virtual_time` lights up POST /admin/tick
  /// (the CLI wires it from --virtual-time).
  explicit EmulatorEndpoint(CloudBackend& backend, stack::StackConfig config = {},
                            persist::PersistManager* persist = nullptr,
                            HttpServerOptions http = {},
                            persist::ReplicaSet* replicas = nullptr,
                            bool virtual_time = false);

  /// Bind and serve; returns the port (0 = failure).
  std::uint16_t start(std::uint16_t port = 0);
  void stop();
  std::uint16_t port() const { return server_.port(); }

  /// The layer stack requests flow through (for pulling metrics, recorded
  /// traces, or fault counters out of a live endpoint).
  stack::LayerStack& stack() { return stack_; }

  /// Front-end counters (also served under "server" in /metrics).
  HttpServerStats server_stats() const { return server_.stats(); }
  int io_threads() const { return server_.io_threads(); }

 private:
  stack::LayerStack stack_;
  persist::PersistManager* persist_;
  persist::ReplicaSet* replicas_;
  bool virtual_time_;
  HttpServer server_;
};

/// Client-side helper: invoke an action over HTTP and decode the reply
/// into an ApiResponse (for driving a remote emulator from tests). Opens
/// a fresh Connection: close socket per call.
ApiResponse invoke_over_http(std::uint16_t port, const std::string& action,
                             const Value::Map& params);

/// Same decode over a persistent keep-alive client — the load generator's
/// fast path, where one TCP connection carries the whole request stream.
ApiResponse invoke_over_client(HttpClient& client, const std::string& action,
                               const Value::Map& params, bool keep_alive = true);

/// Pipelining split of invoke_over_client: queue the invoke without
/// waiting, then collect replies in order. The load generator keeps a
/// window of these in flight per connection so the server's corked
/// single-write drain actually gets bursts to cork.
bool send_invoke(HttpClient& client, const std::string& action,
                 const Value::Map& params, bool keep_alive = true);
ApiResponse read_invoke_response(HttpClient& client);

}  // namespace lce::server
