#include "server/service.h"

#include <utility>

#include "common/arena.h"
#include "common/strings.h"
#include "interp/timers.h"
#include "persist/journal.h"
#include "persist/replica.h"
#include "server/json.h"
#include "stack/layer.h"
#include "stack/layers.h"
#include "stack/route.h"

namespace lce::server {

namespace {

/// Route-core result: every emulator route answers a status plus a JSON
/// Value. Rendering happens in the caller — the heap path serializes into
/// an HttpResponse, the wire path appends straight into the connection's
/// output buffer — so both paths share one routing brain and stay
/// byte-identical by construction.
struct RouteReply {
  int status = 200;
  Value body;
};

RouteReply error_reply(int status, std::string_view code, std::string_view message) {
  Value err = Value::empty_map();
  err.set("Code", Value(code));
  err.set("Message", Value(message));
  Value body = Value::empty_map();
  body.set("Error", std::move(err));
  return RouteReply{status, std::move(body)};
}

Value server_stats_value(const HttpServerStats& s) {
  // write_calls is deliberately absent: kernel read chunking makes it
  // nondeterministic run to run, and /metrics bodies are compared verbatim
  // by the differential suites.
  Value m = Value::empty_map();
  m.set("connections_accepted", Value(static_cast<std::int64_t>(s.connections_accepted)));
  m.set("connections_closed", Value(static_cast<std::int64_t>(s.connections_closed)));
  m.set("requests_served", Value(static_cast<std::int64_t>(s.requests_served)));
  m.set("keepalive_reuses", Value(static_cast<std::int64_t>(s.keepalive_reuses)));
  m.set("idle_reaped", Value(static_cast<std::int64_t>(s.idle_reaped)));
  m.set("rejected_400", Value(static_cast<std::int64_t>(s.rejected_400)));
  m.set("rejected_413", Value(static_cast<std::int64_t>(s.rejected_413)));
  m.set("rejected_431", Value(static_cast<std::int64_t>(s.rejected_431)));
  return m;
}

Value route_stats_value(const stack::RouteStats& s) {
  Value m = Value::empty_map();
  m.set("replica_reads", Value(static_cast<std::int64_t>(s.replica_reads)));
  m.set("primary_reads", Value(static_cast<std::int64_t>(s.primary_reads)));
  m.set("lag_fallbacks", Value(static_cast<std::int64_t>(s.lag_fallbacks)));
  m.set("writes", Value(static_cast<std::int64_t>(s.writes)));
  Value hits = Value::empty_list();
  for (std::uint64_t h : s.replica_hits) {
    hits.append(Value(static_cast<std::int64_t>(h)));
  }
  m.set("replica_hits", std::move(hits));
  return m;
}

Value replica_status_value(const persist::ReplicaStatus& st) {
  Value m = Value::empty_map();
  m.set("applied_seq", Value(static_cast<std::int64_t>(st.applied_seq)));
  m.set("lag", Value(static_cast<std::int64_t>(st.lag)));
  m.set("reseeds", Value(static_cast<std::int64_t>(st.reseeds)));
  m.set("mismatches", Value(static_cast<std::int64_t>(st.mismatches)));
  return m;
}

/// The routing brain behind both handler forms. `fast_decode` selects the
/// arena/direct JSON decoder (the serving path) vs the historical builder
/// (the --no-wire-fastpath reference); both accept the same texts with the
/// same errors. Backend/persist/replica calls run under ArenaPause so any
/// Value a layer retains (trace records, read-cache entries, store writes)
/// lands on the heap even when the wire path has a request arena active —
/// the request's own scratch (decoded doc, response body) stays
/// arena-backed and dies with the returned RouteReply.
RouteReply route_emulator_request(CloudBackend& backend, std::string_view method,
                                  std::string_view path, std::string_view body,
                                  persist::PersistManager* persist,
                                  const HttpServer* server,
                                  persist::ReplicaSet* replicas, bool virtual_time,
                                  bool fast_decode) {
  auto parse_body = [&](JsonError* jerr) {
    return fast_decode ? parse_json(body, jerr) : parse_json_reference(body, jerr);
  };
  auto* layered = dynamic_cast<stack::LayerStack*>(&backend);
  if (path == "/admin/tick") {
    if (!virtual_time) {
      return error_reply(404, "VirtualTimeDisabled",
                         "endpoint is not running with --virtual-time");
    }
    if (method != "POST") {
      return error_reply(405, "MethodNotAllowed",
                         strf(method, " not supported on ", path));
    }
    // Tick count from the body ({"Ticks": N}); default 1.
    std::int64_t ticks = 1;
    if (!body.empty()) {
      JsonError jerr;
      auto doc = parse_body(&jerr);
      if (!doc || !doc->is_map()) {
        return error_reply(400, "MalformedRequest",
                           doc ? "request body must be a JSON object" : jerr.to_text());
      }
      if (const Value* t = doc->get("Ticks")) {
        if (!t->is_int() || t->as_int() < 1) {
          return error_reply(400, "MalformedRequest",
                             "\"Ticks\" must be a positive integer");
        }
        ticks = t->as_int();
      }
    }
    // Through the stack, not a direct clock poke: the journal layer logs
    // the advance as an ordinary call record, so recovery, replay and
    // replicas re-fire the same timer sequence.
    ApiRequest api_req;
    api_req.api = std::string(interp::timers::kAdvanceClockApi);
    api_req.args["ticks"] = Value(ticks);
    ApiResponse result;
    {
      ArenaPause pause;
      result = backend.invoke(api_req);
    }
    if (result.ok) {
      Value reply = Value::empty_map();
      reply.set("Data", std::move(result.data));
      return RouteReply{200, std::move(reply)};
    }
    int status = result.code == "InternalError" ? 500 : 400;
    return error_reply(status, result.code, result.message);
  }
  if (path == "/admin/replicas" || path == "/admin/promote") {
    if (replicas == nullptr) {
      return error_reply(404, "ReplicationUnavailable",
                         "endpoint is not running with replicas");
    }
    if (method == "GET" && path == "/admin/replicas") {
      Value reply = Value::empty_map();
      reply.set("published_seq", Value(static_cast<std::int64_t>(replicas->primary_seq())));
      Value list = Value::empty_list();
      for (const auto& st : replicas->status()) {
        list.append(replica_status_value(st));
      }
      reply.set("replicas", std::move(list));
      return RouteReply{200, std::move(reply)};
    }
    if (method == "POST" && path == "/admin/promote") {
      // Replica index from the body ({"Replica": N}); default 0.
      std::size_t index = 0;
      if (!body.empty()) {
        JsonError jerr;
        auto doc = parse_body(&jerr);
        if (!doc || !doc->is_map()) {
          return error_reply(400, "MalformedRequest",
                             doc ? "request body must be a JSON object" : jerr.to_text());
        }
        if (const Value* idx = doc->get("Replica")) {
          if (!idx->is_int() || idx->as_int() < 0) {
            return error_reply(400, "MalformedRequest",
                               "\"Replica\" must be a non-negative integer");
          }
          index = static_cast<std::size_t>(idx->as_int());
        }
      }
      persist::PromoteReport report;
      {
        ArenaPause pause;
        report = replicas->promote(index);
      }
      Value reply = Value::empty_map();
      reply.set("ok", Value(report.ok));
      reply.set("applied_seq", Value(static_cast<std::int64_t>(report.applied_seq)));
      reply.set("dumps_identical", Value(report.dumps_identical));
      reply.set("mismatches", Value(static_cast<std::int64_t>(report.mismatches)));
      if (!report.error.empty()) reply.set("error", Value(report.error));
      return RouteReply{report.ok ? 200 : 500, std::move(reply)};
    }
    return error_reply(405, "MethodNotAllowed",
                       strf(method, " not supported on ", path));
  }
  if (path == "/admin/snapshot" || path == "/admin/persist") {
    if (persist == nullptr) {
      return error_reply(404, "PersistenceUnavailable",
                         "endpoint is not running with a data dir");
    }
    if (method == "POST" && path == "/admin/snapshot") {
      std::string error;
      bool ok;
      {
        ArenaPause pause;
        ok = persist->take_snapshot(&error);
      }
      if (!ok) return error_reply(500, "SnapshotFailed", error);
      persist::PersistStatus st = persist->status();
      Value reply = Value::empty_map();
      reply.set("status", Value("snapshotted"));
      reply.set("epoch", Value(static_cast<std::int64_t>(st.epoch)));
      return RouteReply{200, std::move(reply)};
    }
    if (method == "GET" && path == "/admin/persist") {
      persist::PersistStatus st = persist->status();
      Value reply = Value::empty_map();
      reply.set("data_dir", Value(persist->options().data_dir));
      reply.set("epoch", Value(static_cast<std::int64_t>(st.epoch)));
      reply.set("wal_records", Value(static_cast<std::int64_t>(st.wal_records)));
      reply.set("wal_bytes", Value(static_cast<std::int64_t>(st.wal_bytes)));
      reply.set("snapshots_taken", Value(static_cast<std::int64_t>(st.snapshots_taken)));
      reply.set("failed", Value(st.failed));
      return RouteReply{200, std::move(reply)};
    }
    return error_reply(405, "MethodNotAllowed",
                       strf(method, " not supported on ", path));
  }
  if (method == "GET" && path == "/health") {
    Value health = Value::empty_map();
    health.set("status", Value("ok"));
    health.set("backend", Value(backend.name()));
    if (layered != nullptr) {
      Value layers = Value::empty_list();
      for (const auto& l : layered->layer_names()) layers.append(Value(l));
      health.set("layers", std::move(layers));
    }
    return RouteReply{200, std::move(health)};
  }
  if (method == "GET" && path == "/metrics") {
    auto* metrics =
        layered != nullptr ? layered->find<stack::MetricsLayer>() : nullptr;
    if (metrics == nullptr) {
      return error_reply(404, "MetricsUnavailable",
                         "no metrics layer installed on this endpoint");
    }
    Value reply = metrics->metrics();
    if (server != nullptr) reply.set("server", server_stats_value(server->stats()));
    auto* route =
        layered != nullptr ? layered->find<stack::RouteLayer>() : nullptr;
    if (route != nullptr) reply.set("route", route_stats_value(route->stats()));
    return RouteReply{200, std::move(reply)};
  }
  if (method == "GET" && path == "/snapshot") {
    Value snap;
    {
      ArenaPause pause;
      snap = backend.snapshot();
    }
    return RouteReply{200, std::move(snap)};
  }
  if (method == "POST" && path == "/reset") {
    bool failed_wal = false;
    {
      ArenaPause pause;
      backend.reset();
      failed_wal = persist != nullptr && persist->status().failed;
    }
    if (failed_wal) {
      // The reset happened in memory but its marker never reached the WAL
      // (the failure is sticky), so recovery would resurrect the pre-reset
      // state — don't ack it, matching the invoke path's no-unlogged-ack
      // rule.
      return error_reply(500, "InternalError",
                         "write-ahead log append failed; reset is not durable");
    }
    Value reply = Value::empty_map();
    reply.set("status", Value("reset"));
    return RouteReply{200, std::move(reply)};
  }
  if (method == "POST" && path == "/invoke") {
    JsonError jerr;
    auto doc = parse_body(&jerr);
    if (!doc || !doc->is_map()) {
      return error_reply(400, "MalformedRequest",
                         doc ? "request body must be a JSON object" : jerr.to_text());
    }
    const Value* action = doc->get("Action");
    if (action == nullptr || !action->is_str() || action->as_str().empty()) {
      return error_reply(400, "MalformedRequest", "missing \"Action\"");
    }
    ApiRequest api_req;
    api_req.api = action->as_str();
    if (const Value* params = doc->get("Params")) {
      if (!params->is_map()) {
        return error_reply(400, "MalformedRequest", "\"Params\" must be an object");
      }
      // Id re-tagging happens in the stack's validate layer, not here.
      api_req.args = params->as_map();
    }
    ApiResponse result;
    {
      ArenaPause pause;
      result = backend.invoke(api_req);
    }
    if (result.ok) {
      Value reply = Value::empty_map();
      reply.set("Data", std::move(result.data));
      return RouteReply{200, std::move(reply)};
    }
    int status = result.code == "RequestLimitExceeded" ? 429
                 : result.code == "InternalError"      ? 500
                                                       : 400;
    return error_reply(status, result.code, result.message);
  }
  if (path == "/invoke" || path == "/reset" || path == "/health" ||
      path == "/snapshot" || path == "/metrics") {
    return error_reply(405, "MethodNotAllowed",
                       strf(method, " not supported on ", path));
  }
  return error_reply(404, "NoSuchEndpoint", strf("unknown path ", path));
}

}  // namespace

HttpResponse handle_emulator_request(CloudBackend& backend, const HttpRequest& req,
                                     persist::PersistManager* persist,
                                     const HttpServer* server,
                                     persist::ReplicaSet* replicas,
                                     bool virtual_time) {
  RouteReply reply =
      route_emulator_request(backend, req.method, req.path, req.body, persist, server,
                             replicas, virtual_time, /*fast_decode=*/false);
  HttpResponse resp;
  resp.status = reply.status;
  resp.headers["content-type"] = "application/json";
  resp.body = to_json(reply.body);
  return resp;
}

namespace {

stack::StackConfig with_journal(stack::StackConfig config,
                                persist::PersistManager* persist) {
  if (persist != nullptr) {
    config.journal = [persist] {
      return std::make_unique<persist::JournalLayer>(persist);
    };
  }
  return config;
}

}  // namespace

EmulatorEndpoint::EmulatorEndpoint(CloudBackend& backend, stack::StackConfig config,
                                   persist::PersistManager* persist,
                                   HttpServerOptions http,
                                   persist::ReplicaSet* replicas,
                                   bool virtual_time)
    : stack_(stack::build_stack(backend, with_journal(std::move(config), persist))),
      persist_(persist),
      replicas_(replicas),
      virtual_time_(virtual_time),
      server_(
          [this](const HttpRequest& req) {
            return handle_emulator_request(stack_, req, persist_, &server_,
                                           replicas_, virtual_time_);
          },
          http) {
  // Zero-copy serving path (gated at runtime by http.wire_fastpath): route
  // under a per-io-thread request arena, render head + JSON body straight
  // into the connection's output buffer. The RouteReply must die before
  // the arena rewinds — hence the inner scope.
  server_.set_wire_handler(
      [this](const RequestView& req, bool keep_alive, ResponseWriter& writer) {
        static thread_local Arena arena;
        {
          ArenaScope scope(arena);
          RouteReply reply =
              route_emulator_request(stack_, req.method, req.path, req.body, persist_,
                                     &server_, replicas_, virtual_time_,
                                     /*fast_decode=*/true);
          writer.begin(reply.status, keep_alive, /*json_body=*/true);
          append_json(reply.body, writer.body());
          writer.finish();
        }
        arena.reset();
      });
}

std::uint16_t EmulatorEndpoint::start(std::uint16_t port) { return server_.start(port); }

void EmulatorEndpoint::stop() { server_.stop(); }

namespace {

ApiResponse decode_invoke_response(const HttpResponse& resp) {
  JsonError jerr;
  auto body = parse_json(resp.body, &jerr);
  if (!body || !body->is_map()) {
    return ApiResponse::failure("TransportError", jerr.to_text());
  }
  if (const Value* data = body->get("Data")) {
    // Re-tag ids so client-side alignment comparisons keep working.
    Value tagged = [&] {
      Value::Map out;
      for (const auto& [k, v] : data->as_map()) {
        out.emplace(k, v.is_str() && looks_like_resource_id(v.as_str())
                           ? Value::ref(v.as_str())
                           : v);
      }
      return Value(std::move(out));
    }();
    return ApiResponse::success(std::move(tagged));
  }
  if (const Value* err = body->get("Error")) {
    return ApiResponse::failure(
        std::string(err->get_or("Code", Value("UnknownError")).as_str()),
        std::string(err->get_or("Message", Value("")).as_str()));
  }
  return ApiResponse::failure("TransportError", "response had neither Data nor Error");
}

std::string invoke_request_body(const std::string& action, const Value::Map& params) {
  Value::Map doc;
  doc["Action"] = Value(action);
  doc["Params"] = Value(params);
  return to_json(Value(std::move(doc)));
}

}  // namespace

ApiResponse invoke_over_client(HttpClient& client, const std::string& action,
                               const Value::Map& params, bool keep_alive) {
  auto resp = client.request("POST", "/invoke", invoke_request_body(action, params),
                             keep_alive);
  if (!resp) return ApiResponse::failure("TransportError", "no response from endpoint");
  return decode_invoke_response(*resp);
}

bool send_invoke(HttpClient& client, const std::string& action,
                 const Value::Map& params, bool keep_alive) {
  return client.send_request("POST", "/invoke", invoke_request_body(action, params),
                             keep_alive);
}

ApiResponse read_invoke_response(HttpClient& client) {
  auto resp = client.read_response();
  if (!resp) return ApiResponse::failure("TransportError", "no response from endpoint");
  return decode_invoke_response(*resp);
}

ApiResponse invoke_over_http(std::uint16_t port, const std::string& action,
                             const Value::Map& params) {
  HttpClient client(port);
  return invoke_over_client(client, action, params, /*keep_alive=*/false);
}

}  // namespace lce::server
