#include "server/service.h"

#include <utility>

#include "common/strings.h"
#include "interp/timers.h"
#include "persist/journal.h"
#include "persist/replica.h"
#include "server/json.h"
#include "stack/layer.h"
#include "stack/layers.h"
#include "stack/route.h"

namespace lce::server {

namespace {

HttpResponse json_response(int status, Value body) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = "application/json";
  resp.body = to_json(body);
  return resp;
}

HttpResponse error_response(int status, std::string code, std::string message) {
  Value::Map err;
  err["Code"] = Value(std::move(code));
  err["Message"] = Value(std::move(message));
  return json_response(status, Value(Value::Map{{"Error", Value(std::move(err))}}));
}

Value server_stats_value(const HttpServerStats& s) {
  Value::Map m;
  m["connections_accepted"] = Value(static_cast<std::int64_t>(s.connections_accepted));
  m["connections_closed"] = Value(static_cast<std::int64_t>(s.connections_closed));
  m["requests_served"] = Value(static_cast<std::int64_t>(s.requests_served));
  m["keepalive_reuses"] = Value(static_cast<std::int64_t>(s.keepalive_reuses));
  m["idle_reaped"] = Value(static_cast<std::int64_t>(s.idle_reaped));
  m["rejected_400"] = Value(static_cast<std::int64_t>(s.rejected_400));
  m["rejected_413"] = Value(static_cast<std::int64_t>(s.rejected_413));
  m["rejected_431"] = Value(static_cast<std::int64_t>(s.rejected_431));
  return Value(std::move(m));
}

Value route_stats_value(const stack::RouteStats& s) {
  Value::Map m;
  m["replica_reads"] = Value(static_cast<std::int64_t>(s.replica_reads));
  m["primary_reads"] = Value(static_cast<std::int64_t>(s.primary_reads));
  m["lag_fallbacks"] = Value(static_cast<std::int64_t>(s.lag_fallbacks));
  m["writes"] = Value(static_cast<std::int64_t>(s.writes));
  Value::List hits;
  for (std::uint64_t h : s.replica_hits) {
    hits.push_back(Value(static_cast<std::int64_t>(h)));
  }
  m["replica_hits"] = Value(std::move(hits));
  return Value(std::move(m));
}

Value replica_status_value(const persist::ReplicaStatus& st) {
  Value::Map m;
  m["applied_seq"] = Value(static_cast<std::int64_t>(st.applied_seq));
  m["lag"] = Value(static_cast<std::int64_t>(st.lag));
  m["reseeds"] = Value(static_cast<std::int64_t>(st.reseeds));
  m["mismatches"] = Value(static_cast<std::int64_t>(st.mismatches));
  return Value(std::move(m));
}

}  // namespace

HttpResponse handle_emulator_request(CloudBackend& backend, const HttpRequest& req,
                                     persist::PersistManager* persist,
                                     const HttpServer* server,
                                     persist::ReplicaSet* replicas,
                                     bool virtual_time) {
  auto* layered = dynamic_cast<stack::LayerStack*>(&backend);
  if (req.path == "/admin/tick") {
    if (!virtual_time) {
      return error_response(404, "VirtualTimeDisabled",
                            "endpoint is not running with --virtual-time");
    }
    if (req.method != "POST") {
      return error_response(405, "MethodNotAllowed",
                            strf(req.method, " not supported on ", req.path));
    }
    // Tick count from the body ({"Ticks": N}); default 1.
    std::int64_t ticks = 1;
    if (!req.body.empty()) {
      JsonError jerr;
      auto doc = parse_json(req.body, &jerr);
      if (!doc || !doc->is_map()) {
        return error_response(400, "MalformedRequest",
                              doc ? "request body must be a JSON object"
                                  : jerr.to_text());
      }
      if (const Value* t = doc->get("Ticks")) {
        if (!t->is_int() || t->as_int() < 1) {
          return error_response(400, "MalformedRequest",
                                "\"Ticks\" must be a positive integer");
        }
        ticks = t->as_int();
      }
    }
    // Through the stack, not a direct clock poke: the journal layer logs
    // the advance as an ordinary call record, so recovery, replay and
    // replicas re-fire the same timer sequence.
    ApiRequest api_req;
    api_req.api = std::string(interp::timers::kAdvanceClockApi);
    api_req.args["ticks"] = Value(ticks);
    ApiResponse result = backend.invoke(api_req);
    if (result.ok) {
      return json_response(200, Value(Value::Map{{"Data", result.data}}));
    }
    int status = result.code == "InternalError" ? 500 : 400;
    return error_response(status, result.code, result.message);
  }
  if (req.path == "/admin/replicas" || req.path == "/admin/promote") {
    if (replicas == nullptr) {
      return error_response(404, "ReplicationUnavailable",
                            "endpoint is not running with replicas");
    }
    if (req.method == "GET" && req.path == "/admin/replicas") {
      Value::Map body;
      body["published_seq"] =
          Value(static_cast<std::int64_t>(replicas->primary_seq()));
      Value::List list;
      for (const auto& st : replicas->status()) {
        list.push_back(replica_status_value(st));
      }
      body["replicas"] = Value(std::move(list));
      return json_response(200, Value(std::move(body)));
    }
    if (req.method == "POST" && req.path == "/admin/promote") {
      // Replica index from the body ({"Replica": N}); default 0.
      std::size_t index = 0;
      if (!req.body.empty()) {
        JsonError jerr;
        auto doc = parse_json(req.body, &jerr);
        if (!doc || !doc->is_map()) {
          return error_response(400, "MalformedRequest",
                                doc ? "request body must be a JSON object"
                                    : jerr.to_text());
        }
        if (const Value* idx = doc->get("Replica")) {
          if (!idx->is_int() || idx->as_int() < 0) {
            return error_response(400, "MalformedRequest",
                                  "\"Replica\" must be a non-negative integer");
          }
          index = static_cast<std::size_t>(idx->as_int());
        }
      }
      persist::PromoteReport report = replicas->promote(index);
      Value::Map body;
      body["ok"] = Value(report.ok);
      body["applied_seq"] = Value(static_cast<std::int64_t>(report.applied_seq));
      body["dumps_identical"] = Value(report.dumps_identical);
      body["mismatches"] = Value(static_cast<std::int64_t>(report.mismatches));
      if (!report.error.empty()) body["error"] = Value(report.error);
      return json_response(report.ok ? 200 : 500, Value(std::move(body)));
    }
    return error_response(405, "MethodNotAllowed",
                          strf(req.method, " not supported on ", req.path));
  }
  if (req.path == "/admin/snapshot" || req.path == "/admin/persist") {
    if (persist == nullptr) {
      return error_response(404, "PersistenceUnavailable",
                            "endpoint is not running with a data dir");
    }
    if (req.method == "POST" && req.path == "/admin/snapshot") {
      std::string error;
      if (!persist->take_snapshot(&error)) {
        return error_response(500, "SnapshotFailed", error);
      }
      persist::PersistStatus st = persist->status();
      Value::Map body;
      body["status"] = Value("snapshotted");
      body["epoch"] = Value(static_cast<std::int64_t>(st.epoch));
      return json_response(200, Value(std::move(body)));
    }
    if (req.method == "GET" && req.path == "/admin/persist") {
      persist::PersistStatus st = persist->status();
      Value::Map body;
      body["data_dir"] = Value(persist->options().data_dir);
      body["epoch"] = Value(static_cast<std::int64_t>(st.epoch));
      body["wal_records"] = Value(static_cast<std::int64_t>(st.wal_records));
      body["wal_bytes"] = Value(static_cast<std::int64_t>(st.wal_bytes));
      body["snapshots_taken"] =
          Value(static_cast<std::int64_t>(st.snapshots_taken));
      body["failed"] = Value(st.failed);
      return json_response(200, Value(std::move(body)));
    }
    return error_response(405, "MethodNotAllowed",
                          strf(req.method, " not supported on ", req.path));
  }
  if (req.method == "GET" && req.path == "/health") {
    Value::Map health;
    health["status"] = Value("ok");
    health["backend"] = Value(backend.name());
    if (layered != nullptr) {
      Value::List layers;
      for (const auto& l : layered->layer_names()) layers.push_back(Value(l));
      health["layers"] = Value(std::move(layers));
    }
    return json_response(200, Value(std::move(health)));
  }
  if (req.method == "GET" && req.path == "/metrics") {
    auto* metrics =
        layered != nullptr ? layered->find<stack::MetricsLayer>() : nullptr;
    if (metrics == nullptr) {
      return error_response(404, "MetricsUnavailable",
                            "no metrics layer installed on this endpoint");
    }
    Value::Map body = metrics->metrics().as_map();
    if (server != nullptr) body["server"] = server_stats_value(server->stats());
    auto* route =
        layered != nullptr ? layered->find<stack::RouteLayer>() : nullptr;
    if (route != nullptr) body["route"] = route_stats_value(route->stats());
    return json_response(200, Value(std::move(body)));
  }
  if (req.method == "GET" && req.path == "/snapshot") {
    return json_response(200, backend.snapshot());
  }
  if (req.method == "POST" && req.path == "/reset") {
    backend.reset();
    if (persist != nullptr && persist->status().failed) {
      // The reset happened in memory but its marker never reached the WAL
      // (the failure is sticky), so recovery would resurrect the pre-reset
      // state — don't ack it, matching the invoke path's no-unlogged-ack
      // rule.
      return error_response(500, "InternalError",
                            "write-ahead log append failed; reset is not durable");
    }
    return json_response(200, Value(Value::Map{{"status", Value("reset")}}));
  }
  if (req.method == "POST" && req.path == "/invoke") {
    JsonError jerr;
    auto doc = parse_json(req.body, &jerr);
    if (!doc || !doc->is_map()) {
      return error_response(400, "MalformedRequest",
                            doc ? "request body must be a JSON object" : jerr.to_text());
    }
    const Value* action = doc->get("Action");
    if (action == nullptr || !action->is_str() || action->as_str().empty()) {
      return error_response(400, "MalformedRequest", "missing \"Action\"");
    }
    ApiRequest api_req;
    api_req.api = action->as_str();
    if (const Value* params = doc->get("Params")) {
      if (!params->is_map()) {
        return error_response(400, "MalformedRequest", "\"Params\" must be an object");
      }
      // Id re-tagging happens in the stack's validate layer, not here.
      api_req.args = params->as_map();
    }
    ApiResponse result = backend.invoke(api_req);
    if (result.ok) {
      return json_response(200, Value(Value::Map{{"Data", result.data}}));
    }
    int status = result.code == "RequestLimitExceeded" ? 429
                 : result.code == "InternalError"      ? 500
                                                       : 400;
    return error_response(status, result.code, result.message);
  }
  if (req.path == "/invoke" || req.path == "/reset" || req.path == "/health" ||
      req.path == "/snapshot" || req.path == "/metrics") {
    return error_response(405, "MethodNotAllowed",
                          strf(req.method, " not supported on ", req.path));
  }
  return error_response(404, "NoSuchEndpoint", strf("unknown path ", req.path));
}

namespace {

stack::StackConfig with_journal(stack::StackConfig config,
                                persist::PersistManager* persist) {
  if (persist != nullptr) {
    config.journal = [persist] {
      return std::make_unique<persist::JournalLayer>(persist);
    };
  }
  return config;
}

}  // namespace

EmulatorEndpoint::EmulatorEndpoint(CloudBackend& backend, stack::StackConfig config,
                                   persist::PersistManager* persist,
                                   HttpServerOptions http,
                                   persist::ReplicaSet* replicas,
                                   bool virtual_time)
    : stack_(stack::build_stack(backend, with_journal(std::move(config), persist))),
      persist_(persist),
      replicas_(replicas),
      virtual_time_(virtual_time),
      server_(
          [this](const HttpRequest& req) {
            return handle_emulator_request(stack_, req, persist_, &server_,
                                           replicas_, virtual_time_);
          },
          http) {}

std::uint16_t EmulatorEndpoint::start(std::uint16_t port) { return server_.start(port); }

void EmulatorEndpoint::stop() { server_.stop(); }

ApiResponse invoke_over_client(HttpClient& client, const std::string& action,
                               const Value::Map& params, bool keep_alive) {
  Value::Map doc;
  doc["Action"] = Value(action);
  doc["Params"] = Value(params);
  auto resp = client.request("POST", "/invoke", to_json(Value(doc)), keep_alive);
  if (!resp) return ApiResponse::failure("TransportError", "no response from endpoint");
  JsonError jerr;
  auto body = parse_json(resp->body, &jerr);
  if (!body || !body->is_map()) {
    return ApiResponse::failure("TransportError", jerr.to_text());
  }
  if (const Value* data = body->get("Data")) {
    // Re-tag ids so client-side alignment comparisons keep working.
    Value tagged = [&] {
      Value::Map out;
      for (const auto& [k, v] : data->as_map()) {
        out.emplace(k, v.is_str() && looks_like_resource_id(v.as_str())
                           ? Value::ref(v.as_str())
                           : v);
      }
      return Value(std::move(out));
    }();
    return ApiResponse::success(std::move(tagged));
  }
  if (const Value* err = body->get("Error")) {
    return ApiResponse::failure(
        std::string(err->get_or("Code", Value("UnknownError")).as_str()),
        std::string(err->get_or("Message", Value("")).as_str()));
  }
  return ApiResponse::failure("TransportError", "response had neither Data nor Error");
}

ApiResponse invoke_over_http(std::uint16_t port, const std::string& action,
                             const Value::Map& params) {
  HttpClient client(port);
  return invoke_over_client(client, action, params, /*keep_alive=*/false);
}

}  // namespace lce::server
