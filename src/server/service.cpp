#include "server/service.h"

#include <cctype>

#include "common/strings.h"
#include "server/json.h"

namespace lce::server {

bool looks_like_resource_id(const std::string& s) {
  std::size_t dash = s.rfind('-');
  if (dash == std::string::npos || dash == 0 || dash + 9 != s.size()) return false;
  for (std::size_t i = 0; i < dash; ++i) {
    char c = s[i];
    if (!std::islower(static_cast<unsigned char>(c)) && c != '-' && c != '_') return false;
  }
  for (std::size_t i = dash + 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

namespace {

/// Re-tag id-shaped strings as references, recursively.
Value retag_refs(const Value& v) {
  if (v.is_str() && looks_like_resource_id(v.as_str())) return Value::ref(v.as_str());
  if (v.is_list()) {
    Value::List out;
    for (const auto& e : v.as_list()) out.push_back(retag_refs(e));
    return Value(std::move(out));
  }
  if (v.is_map()) {
    Value::Map out;
    for (const auto& [k, e] : v.as_map()) out.emplace(k, retag_refs(e));
    return Value(std::move(out));
  }
  return v;
}

HttpResponse json_response(int status, Value body) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = "application/json";
  resp.body = to_json(body);
  return resp;
}

HttpResponse error_response(int status, std::string code, std::string message) {
  Value::Map err;
  err["Code"] = Value(std::move(code));
  err["Message"] = Value(std::move(message));
  return json_response(status, Value(Value::Map{{"Error", Value(std::move(err))}}));
}

}  // namespace

HttpResponse handle_emulator_request(CloudBackend& backend, const HttpRequest& req) {
  if (req.method == "GET" && req.path == "/health") {
    return json_response(200, Value(Value::Map{{"status", Value("ok")},
                                               {"backend", Value(backend.name())}}));
  }
  if (req.method == "GET" && req.path == "/snapshot") {
    return json_response(200, backend.snapshot());
  }
  if (req.method == "POST" && req.path == "/reset") {
    backend.reset();
    return json_response(200, Value(Value::Map{{"status", Value("reset")}}));
  }
  if (req.method == "POST" && req.path == "/invoke") {
    JsonError jerr;
    auto doc = parse_json(req.body, &jerr);
    if (!doc || !doc->is_map()) {
      return error_response(400, "MalformedRequest",
                            doc ? "request body must be a JSON object" : jerr.to_text());
    }
    const Value* action = doc->get("Action");
    if (action == nullptr || !action->is_str() || action->as_str().empty()) {
      return error_response(400, "MalformedRequest", "missing \"Action\"");
    }
    ApiRequest api_req;
    api_req.api = action->as_str();
    if (const Value* params = doc->get("Params")) {
      if (!params->is_map()) {
        return error_response(400, "MalformedRequest", "\"Params\" must be an object");
      }
      for (const auto& [k, v] : params->as_map()) api_req.args[k] = retag_refs(v);
    }
    ApiResponse result = backend.invoke(api_req);
    if (result.ok) {
      return json_response(200, Value(Value::Map{{"Data", result.data}}));
    }
    return error_response(400, result.code, result.message);
  }
  if (req.path == "/invoke" || req.path == "/reset" || req.path == "/health" ||
      req.path == "/snapshot") {
    return error_response(405, "MethodNotAllowed",
                          strf(req.method, " not supported on ", req.path));
  }
  return error_response(404, "NoSuchEndpoint", strf("unknown path ", req.path));
}

EmulatorEndpoint::EmulatorEndpoint(CloudBackend& backend)
    : backend_(backend),
      server_([this](const HttpRequest& req) {
        return handle_emulator_request(backend_, req);
      }) {}

std::uint16_t EmulatorEndpoint::start(std::uint16_t port) { return server_.start(port); }

void EmulatorEndpoint::stop() { server_.stop(); }

ApiResponse invoke_over_http(std::uint16_t port, const std::string& action,
                             const Value::Map& params) {
  Value::Map doc;
  doc["Action"] = Value(action);
  doc["Params"] = Value(params);
  auto resp = http_request(port, "POST", "/invoke", to_json(Value(doc)));
  if (!resp) return ApiResponse::failure("TransportError", "no response from endpoint");
  JsonError jerr;
  auto body = parse_json(resp->body, &jerr);
  if (!body || !body->is_map()) {
    return ApiResponse::failure("TransportError", jerr.to_text());
  }
  if (const Value* data = body->get("Data")) {
    // Re-tag ids so client-side alignment comparisons keep working.
    Value tagged = [&] {
      Value::Map out;
      for (const auto& [k, v] : data->as_map()) {
        out.emplace(k, v.is_str() && looks_like_resource_id(v.as_str())
                           ? Value::ref(v.as_str())
                           : v);
      }
      return Value(std::move(out));
    }();
    return ApiResponse::success(std::move(tagged));
  }
  if (const Value* err = body->get("Error")) {
    return ApiResponse::failure(err->get_or("Code", Value("UnknownError")).as_str(),
                                err->get_or("Message", Value("")).as_str());
  }
  return ApiResponse::failure("TransportError", "response had neither Data nor Error");
}

}  // namespace lce::server
