#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "common/strings.h"

namespace lce::server {

namespace {

/// Read until the predicate says the buffer is complete or the peer closes.
bool read_until(int fd, std::string& buf,
                const std::function<bool(const std::string&)>& complete) {
  char chunk[4096];
  while (!complete(buf)) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return complete(buf);
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > (16u << 20)) return false;  // 16 MiB request cap
  }
  return true;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// True when `raw` holds a complete request (headers + body).
bool request_complete(const std::string& raw) {
  std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return false;
  std::size_t content_length = 0;
  std::string lower = to_lower(raw.substr(0, hdr_end));
  std::size_t cl = lower.find("content-length:");
  if (cl != std::string::npos) {
    std::int64_t n = 0;
    std::size_t eol = lower.find("\r\n", cl);
    std::string v = trim(lower.substr(cl + 15, eol - cl - 15));
    if (parse_int(v, n) && n >= 0) content_length = static_cast<std::size_t>(n);
  }
  return raw.size() >= hdr_end + 4 + content_length;
}

}  // namespace

std::optional<HttpRequest> parse_http_request(const std::string& raw) {
  std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return std::nullopt;
  auto lines = split(raw.substr(0, hdr_end), '\n');
  if (lines.empty()) return std::nullopt;
  auto request_line = split_ws(trim(lines[0]));
  if (request_line.size() < 3) return std::nullopt;
  HttpRequest req;
  req.method = request_line[0];
  req.path = request_line[1];
  if (!starts_with(request_line[2], "HTTP/1.")) return std::nullopt;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = trim(lines[i]);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    req.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  std::size_t content_length = 0;
  auto it = req.headers.find("content-length");
  if (it != req.headers.end()) {
    std::int64_t n = 0;
    if (!parse_int(it->second, n) || n < 0) return std::nullopt;
    content_length = static_cast<std::size_t>(n);
  }
  if (raw.size() < hdr_end + 4 + content_length) return std::nullopt;
  req.body = raw.substr(hdr_end + 4, content_length);
  return req;
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string serialize_http_response(const HttpResponse& resp) {
  std::string out = strf("HTTP/1.1 ", resp.status, " ", status_text(resp.status), "\r\n");
  for (const auto& [k, v] : resp.headers) out += strf(k, ": ", v, "\r\n");
  out += strf("content-length: ", resp.body.size(), "\r\n");
  out += "connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

HttpServer::HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

std::uint16_t HttpServer::start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return 0;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return port_;
}

void HttpServer::serve_loop() {
  // Thread per connection: concurrent DevOps tools hammer real emulators,
  // so the endpoint must not serialize at the accept loop. Backends that
  // are not thread-safe go behind stack::SerializeLayer (stack/layers.h).
  std::vector<std::thread> workers;
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    workers.emplace_back([this, client] {
      std::string raw;
      HttpResponse resp;
      if (read_until(client, raw, request_complete)) {
        auto req = parse_http_request(raw);
        if (req) {
          resp = handler_(*req);
        } else {
          resp = HttpResponse{400, {}, "malformed request"};
        }
      } else {
        resp = HttpResponse{400, {}, "truncated request"};
      }
      write_all(client, serialize_http_response(resp));
      ::shutdown(client, SHUT_RDWR);
      ::close(client);
    });
    // Opportunistically reap finished workers to bound the vector.
    if (workers.size() > 64) {
      for (auto& w : workers) w.join();
      workers.clear();
    }
  }
  for (auto& w : workers) w.join();
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::optional<HttpResponse> http_request(std::uint16_t port, const std::string& method,
                                         const std::string& path,
                                         const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::string req = strf(method, " ", path, " HTTP/1.1\r\nhost: 127.0.0.1\r\n",
                         "content-type: application/json\r\n", "content-length: ",
                         body.size(), "\r\nconnection: close\r\n\r\n", body);
  if (!write_all(fd, req)) {
    ::close(fd);
    return std::nullopt;
  }
  // Read to EOF (the server closes after one response).
  std::string raw;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t hdr_end = raw.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return std::nullopt;
  auto lines = split(raw.substr(0, hdr_end), '\n');
  auto status_line = split_ws(trim(lines[0]));
  if (status_line.size() < 2 || !starts_with(status_line[0], "HTTP/1.")) {
    return std::nullopt;
  }
  HttpResponse resp;
  std::int64_t status = 0;
  if (!parse_int(status_line[1], status)) return std::nullopt;
  resp.status = static_cast<int>(status);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = trim(lines[i]);
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    resp.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  resp.body = raw.substr(hdr_end + 4);
  return resp;
}

}  // namespace lce::server
