#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "common/strings.h"
#include "server/http_parser.h"

namespace lce::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Blocking write of the whole buffer; MSG_NOSIGNAL so a peer that went
/// away yields EPIPE instead of killing the process.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int status_for(ParseStatus st) {
  switch (st) {
    case ParseStatus::kHeadersTooLarge: return 431;
    case ParseStatus::kBodyTooLarge: return 413;
    default: return 400;
  }
}

/// Parse one complete Content-Length-framed response out of `buf` starting
/// at `pos`. Returns nullopt while incomplete; on success advances `pos`
/// past the consumed bytes (the caller compacts the dead prefix when it
/// grows large — a per-response front-erase is quadratic under deep
/// pipelining). `malformed` is set when the bytes can never become a
/// response.
std::optional<HttpResponse> pop_http_response(const std::string& buf, std::size_t& pos,
                                              bool* malformed) {
  *malformed = false;
  std::size_t hdr_end = buf.find("\r\n\r\n", pos);
  if (hdr_end == std::string::npos) return std::nullopt;
  auto lines = split(buf.substr(pos, hdr_end - pos), '\n');
  auto status_line = split_ws(trim(lines[0]));
  if (status_line.size() < 2 || !starts_with(status_line[0], "HTTP/1.")) {
    *malformed = true;
    return std::nullopt;
  }
  HttpResponse resp;
  std::int64_t status = 0;
  if (!parse_int(status_line[1], status)) {
    *malformed = true;
    return std::nullopt;
  }
  resp.status = static_cast<int>(status);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string line = trim(lines[i]);
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    resp.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
  }
  std::size_t content_length = 0;
  if (auto it = resp.headers.find("content-length"); it != resp.headers.end()) {
    std::int64_t n = 0;
    if (!parse_int(it->second, n) || n < 0) {
      *malformed = true;
      return std::nullopt;
    }
    content_length = static_cast<std::size_t>(n);
  }
  if (buf.size() < hdr_end + 4 + content_length) return std::nullopt;
  resp.body = buf.substr(hdr_end + 4, content_length);
  pos = hdr_end + 4 + content_length;
  return resp;
}

int connect_loopback(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound the wait for a wedged server so tests and the load generator
  // fail instead of hanging.
  timeval tv{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

}  // namespace

std::optional<HttpRequest> parse_http_request(const std::string& raw) {
  HttpParser parser;
  parser.feed(raw);
  HttpRequest req;
  if (parser.next(req) != ParseStatus::kRequest) return std::nullopt;
  return req;
}

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string serialize_http_response(const HttpResponse& resp, bool keep_alive) {
  std::string out = strf("HTTP/1.1 ", resp.status, " ", status_text(resp.status), "\r\n");
  for (const auto& [k, v] : resp.headers) out += strf(k, ": ", v, "\r\n");
  out += strf("content-length: ", resp.body.size(), "\r\n");
  out += keep_alive ? "connection: keep-alive\r\n\r\n" : "connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

std::string serialize_http_response(const HttpResponse& resp) {
  return serialize_http_response(resp, /*keep_alive=*/false);
}

void ResponseWriter::begin(int status, bool keep_alive, bool json_body) {
  out_ += "HTTP/1.1 ";
  char sbuf[16];
  int sn = std::snprintf(sbuf, sizeof(sbuf), "%d", status);
  out_.append(sbuf, static_cast<std::size_t>(sn));
  out_ += ' ';
  out_ += status_text(status);
  out_ += "\r\n";
  if (json_body) out_ += "content-type: application/json\r\n";
  out_ += "content-length: ";
  cl_pos_ = out_.size();
  // Reserve at the predicted width (clamped to a plausible digit count);
  // finish() fixes any misprediction by shifting only the short tail of
  // the head plus the body.
  reserved_ = hint_ < 1 ? 1 : hint_ > 19 ? 19 : hint_;
  out_.append(static_cast<std::size_t>(reserved_), '0');
  out_ += "\r\n";
  out_ += keep_alive ? "connection: keep-alive\r\n\r\n" : "connection: close\r\n\r\n";
  body_pos_ = out_.size();
}

void ResponseWriter::finish() {
  std::size_t body_len = out_.size() - body_pos_;
  char dbuf[24];
  int digits = std::snprintf(dbuf, sizeof(dbuf), "%zu", body_len);
  // Backpatch with minimal digits — the wire bytes must match
  // serialize_http_response exactly, padding included (i.e. none).
  if (digits > reserved_) {
    out_.insert(cl_pos_, static_cast<std::size_t>(digits - reserved_), '0');
  } else if (digits < reserved_) {
    out_.erase(cl_pos_, static_cast<std::size_t>(reserved_ - digits));
  }
  std::memcpy(&out_[cl_pos_], dbuf, static_cast<std::size_t>(digits));
  hint_ = digits;
}

// ---------------------------------------------------------------------------
// Event-loop server

namespace {

/// Per-connection state machine: the parser accumulates fragments, `out`
/// holds response bytes the kernel has not yet accepted, and `deadline`
/// implements the reap policy (refreshed only when a request completes).
/// `out` drains by cursor (`out_pos`) instead of front-erase, so a
/// pipelined burst renders every response into one contiguous buffer and
/// corks them into a single write.
struct ConnState {
  HttpParser parser;
  std::string out;
  std::size_t out_pos = 0;  // bytes before this are already sent
  RequestView view;         // reused across requests (warm header capacity)
  int cl_hint = 3;          // predicted Content-Length digit width
  Clock::time_point deadline;
  std::uint64_t requests = 0;
  bool close_after_flush = false;
  bool rd_done = false;  // peer sent FIN; stop watching EPOLLIN
  std::uint32_t armed = 0;  // epoll event mask currently registered

  explicit ConnState(ParserLimits limits) : parser(limits) {}

  std::size_t pending() const { return out.size() - out_pos; }
};

}  // namespace

struct HttpServer::Loop {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, ConnState> conns;
};

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions opts)
    : handler_(std::move(handler)), opts_(opts) {}

HttpServer::~HttpServer() { stop(); }

std::uint16_t HttpServer::start(std::uint16_t port) {
  if (running_.load()) return port_;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return 0;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 256) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  int n = opts_.io_threads;
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(hw == 0 ? 1 : hw > 8 ? 8 : hw);
  }
  // Every loop polls the listen socket; EPOLLEXCLUSIVE (where available)
  // wakes one loop per pending connection instead of the whole herd, which
  // is also what spreads accepted connections across the loops.
  std::uint32_t listen_events = EPOLLIN;
#ifdef EPOLLEXCLUSIVE
  listen_events |= EPOLLEXCLUSIVE;
#endif
  for (int i = 0; i < n; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      continue;
    }
    epoll_event wev{};
    wev.events = EPOLLIN;
    wev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &wev);
    epoll_event lev{};
    lev.events = listen_events;
    lev.data.fd = listen_fd_;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    loops_.push_back(std::move(loop));
  }
  if (loops_.empty()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return 0;
  }
  running_.store(true);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, l = loop.get()] { run_loop(*l); });
  }
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    // start() may have failed half-way or never run; nothing to join.
    loops_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  std::uint64_t one = 1;
  for (auto& loop : loops_) {
    [[maybe_unused]] ssize_t n = ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    ::close(loop->wake_fd);
    ::close(loop->epoll_fd);
  }
  loops_.clear();
  // Closed after the join so a recycled descriptor number can never be
  // mistaken for the listen socket by a loop still draining events.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_closed = closed_.load(std::memory_order_relaxed);
  s.requests_served = served_.load(std::memory_order_relaxed);
  s.keepalive_reuses = reused_.load(std::memory_order_relaxed);
  s.idle_reaped = reaped_.load(std::memory_order_relaxed);
  s.rejected_400 = rej400_.load(std::memory_order_relaxed);
  s.rejected_413 = rej413_.load(std::memory_order_relaxed);
  s.rejected_431 = rej431_.load(std::memory_order_relaxed);
  s.write_calls = writes_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::run_loop(Loop& loop) {
  std::array<epoll_event, 64> events;
  while (running_.load(std::memory_order_acquire)) {
    // Short tick while connections are live so idle deadlines are enforced
    // promptly; a longer one when the loop is empty.
    int timeout_ms = loop.conns.empty() ? 200 : 25;
    int n = ::epoll_wait(loop.epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == listen_fd_) {
        accept_new(loop);
      } else if (fd == loop.wake_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(loop.wake_fd, &drained, sizeof(drained));
      } else {
        handle_conn_event(loop, fd, events[static_cast<std::size_t>(i)].events);
      }
    }
    reap_idle(loop);
  }
  // Deterministic shutdown: abort every connection this loop owns.
  for (auto& [fd, conn] : loop.conns) {
    ::close(fd);
    closed_.fetch_add(1, std::memory_order_relaxed);
  }
  loop.conns.clear();
}

void HttpServer::accept_new(Loop& loop) {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN (another loop won the race) or shutdown
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    ConnState conn{ParserLimits{opts_.max_header_bytes, opts_.max_body_bytes}};
    conn.armed = EPOLLIN;
    conn.deadline = Clock::now() + std::chrono::milliseconds(
                                       opts_.idle_timeout_ms > 0 ? opts_.idle_timeout_ms
                                                                 : 0);
    loop.conns.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

/// Flush as much of conn.out as the kernel will take without blocking.
/// Returns false when the connection is dead (write error). Drains by
/// cursor; the buffer is recycled whole once empty (keeping its capacity)
/// and compacted only when a slow reader leaves a large dead prefix.
bool flush_some(int fd, ConnState& conn, std::atomic<std::uint64_t>& writes) {
  while (conn.pending() > 0) {
    // Count the write BEFORE the syscall (rolled back when it moves no
    // bytes): a peer that has read the response must observe the counter
    // already bumped, so tests can assert on write_calls the moment the
    // bytes arrive instead of racing the event loop.
    writes.fetch_add(1, std::memory_order_relaxed);
    ssize_t n = ::send(fd, conn.out.data() + conn.out_pos, conn.pending(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    writes.fetch_sub(1, std::memory_order_relaxed);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;
  }
  if (conn.pending() == 0) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos > 64 * 1024) {
    conn.out.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
  return true;
}

}  // namespace

void HttpServer::handle_conn_event(Loop& loop, int fd, std::uint32_t ev) {
  auto it = loop.conns.find(fd);
  if (it == loop.conns.end()) return;
  ConnState& conn = it->second;

  auto close_conn = [&] {
    ::close(fd);  // also deregisters from epoll
    loop.conns.erase(it);
    closed_.fetch_add(1, std::memory_order_relaxed);
  };

  if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn();
    return;
  }

  bool peer_closed = false;
  if ((ev & EPOLLIN) != 0 && conn.close_after_flush) {
    // Already committed to closing: discard further input so level-
    // triggered readiness cannot spin while the final response drains.
    char sink[4096];
    for (;;) {
      ssize_t n = ::read(fd, sink, sizeof(sink));
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) conn.rd_done = true;
      break;
    }
  } else if ((ev & EPOLLIN) != 0) {
    char chunk[16384];
    for (;;) {
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn.parser.feed({chunk, static_cast<std::size_t>(n)});
      } else if (n == 0) {
        peer_closed = true;
        break;
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        close_conn();
        return;
      }

      // Drain every complete pipelined request before reading again, so
      // response order matches arrival order on the connection. The whole
      // burst renders into conn.out back to back and flushes as one write
      // below (corking). Views borrowed from the parser stay valid through
      // the handler call because nothing feeds the parser until this loop
      // finishes.
      bool wire = wire_handler_ != nullptr && opts_.wire_fastpath;
      for (;;) {
        HttpRequest req;
        ParseStatus st =
            wire ? conn.parser.next_view(conn.view) : conn.parser.next(req);
        if (st == ParseStatus::kNeedMore) break;
        if (st == ParseStatus::kRequest) {
          ++conn.requests;
          served_.fetch_add(1, std::memory_order_relaxed);
          if (conn.requests > 1) reused_.fetch_add(1, std::memory_order_relaxed);
          bool keep = (wire ? wants_keep_alive(conn.view) : wants_keep_alive(req)) &&
                      running_.load(std::memory_order_acquire);
          if (opts_.max_requests_per_conn > 0 &&
              conn.requests >= static_cast<std::uint64_t>(opts_.max_requests_per_conn)) {
            keep = false;
          }
          if (wire) {
            ResponseWriter writer(conn.out, conn.cl_hint);
            wire_handler_(conn.view, keep, writer);
          } else {
            conn.out += serialize_http_response(handler_(req), keep);
          }
          if (opts_.idle_timeout_ms > 0) {
            conn.deadline =
                Clock::now() + std::chrono::milliseconds(opts_.idle_timeout_ms);
          }
          if (!keep) {
            conn.close_after_flush = true;
            break;
          }
        } else {
          int status = status_for(st);
          (status == 431   ? rej431_
           : status == 413 ? rej413_
                           : rej400_)
              .fetch_add(1, std::memory_order_relaxed);
          if (wire) {
            ResponseWriter writer(conn.out, conn.cl_hint);
            writer.begin(status, /*keep_alive=*/false, /*json_body=*/false);
            writer.body() += "malformed request";
            writer.finish();
          } else {
            conn.out += serialize_http_response(
                HttpResponse{status, {}, "malformed request"}, /*keep_alive=*/false);
          }
          conn.close_after_flush = true;
          break;
        }
      }
      if (conn.close_after_flush) break;  // discard any remaining input
    }
  }

  if (peer_closed) {
    conn.rd_done = true;
    if (conn.parser.buffered() > 0 && conn.pending() == 0) {
      // The peer half-closed mid-request; it can still read the verdict.
      rej400_.fetch_add(1, std::memory_order_relaxed);
      if (wire_handler_ != nullptr && opts_.wire_fastpath) {
        ResponseWriter writer(conn.out, conn.cl_hint);
        writer.begin(400, /*keep_alive=*/false, /*json_body=*/false);
        writer.body() += "truncated request";
        writer.finish();
      } else {
        conn.out += serialize_http_response(HttpResponse{400, {}, "truncated request"},
                                            /*keep_alive=*/false);
      }
    }
    conn.close_after_flush = true;
  }

  if (!flush_some(fd, conn, writes_)) {
    close_conn();
    return;
  }
  if (conn.pending() == 0 && conn.close_after_flush) {
    close_conn();
    return;
  }
  // Re-arm: EPOLLOUT only while a write is pending; drop EPOLLIN once the
  // peer sent FIN (a half-closed socket is permanently read-ready and
  // would otherwise spin the level-triggered loop).
  std::uint32_t want = (conn.pending() == 0 ? 0u : static_cast<std::uint32_t>(EPOLLOUT)) |
                       (conn.rd_done ? 0u : static_cast<std::uint32_t>(EPOLLIN));
  if (want != conn.armed) {
    conn.armed = want;
    epoll_event mod{};
    mod.events = want;
    mod.data.fd = fd;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, fd, &mod);
  }
}

void HttpServer::reap_idle(Loop& loop) {
  if (opts_.idle_timeout_ms <= 0) return;
  auto now = Clock::now();
  for (auto it = loop.conns.begin(); it != loop.conns.end();) {
    if (now >= it->second.deadline) {
      // Counters before close(): a client observing our FIN must already
      // see the reap reflected in stats().
      closed_.fetch_add(1, std::memory_order_relaxed);
      reaped_.fetch_add(1, std::memory_order_relaxed);
      ::close(it->first);
      it = loop.conns.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Clients

bool HttpClient::ensure_connected() {
  if (fd_ >= 0) return true;
  fd_ = connect_loopback(port_);
  if (fd_ < 0) return false;
  ++opens_;
  return true;
}

void HttpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
  inpos_ = 0;
}

bool HttpClient::send_request(const std::string& method, const std::string& path,
                              const std::string& body, bool keep_alive) {
  if (!ensure_connected()) return false;
  std::string req = strf(method, " ", path, " HTTP/1.1\r\nhost: 127.0.0.1\r\n",
                         "content-type: application/json\r\n",
                         "content-length: ", body.size(), "\r\nconnection: ",
                         keep_alive ? "keep-alive" : "close", "\r\n\r\n", body);
  if (!send_all(fd_, req)) {
    disconnect();
    return false;
  }
  return true;
}

std::optional<HttpResponse> HttpClient::read_response_internal(bool* got_bytes) {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    bool malformed = false;
    auto resp = pop_http_response(inbuf_, inpos_, &malformed);
    if (resp) {
      // Compact once the dead prefix dominates — amortized O(1) per
      // response even at high pipelining depth.
      if (inpos_ == inbuf_.size()) {
        inbuf_.clear();
        inpos_ = 0;
      } else if (inpos_ > 64 * 1024 && inpos_ > inbuf_.size() / 2) {
        inbuf_.erase(0, inpos_);
        inpos_ = 0;
      }
      return resp;
    }
    if (malformed) return std::nullopt;
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      if (got_bytes != nullptr) *got_bytes = true;
      inbuf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;  // EOF or error
  }
}

std::optional<HttpResponse> HttpClient::read_response() {
  auto resp = read_response_internal(nullptr);
  if (!resp) disconnect();
  return resp;
}

std::optional<HttpResponse> HttpClient::request(const std::string& method,
                                                const std::string& path,
                                                const std::string& body,
                                                bool keep_alive) {
  // A reused connection may have been reaped server-side between requests
  // (idle timeout, max-requests) — that surfaces as a send failure or an
  // immediate EOF, and one reconnect-and-retry is always safe because
  // nothing of this request was processed.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool fresh = fd_ < 0;
    if (!ensure_connected()) return std::nullopt;
    if (!send_request(method, path, body, keep_alive)) {
      if (fresh) return std::nullopt;
      continue;
    }
    bool got_bytes = false;
    auto resp = read_response_internal(&got_bytes);
    if (!resp) {
      disconnect();
      if (!fresh && !got_bytes) continue;  // stale keep-alive connection
      return std::nullopt;
    }
    bool server_keeps = keep_alive;
    if (auto itc = resp->headers.find("connection"); itc != resp->headers.end()) {
      server_keeps = !contains(to_lower(itc->second), "close");
    }
    if (!keep_alive || !server_keeps) disconnect();
    return resp;
  }
  return std::nullopt;
}

std::optional<HttpResponse> http_request(std::uint16_t port, const std::string& method,
                                         const std::string& path,
                                         const std::string& body) {
  HttpClient client(port);
  return client.request(method, path, body, /*keep_alive=*/false);
}

}  // namespace lce::server
