// Incremental, resumable HTTP/1.1 request parser for the epoll front end
// (DESIGN.md "Serving front end"). Bytes arrive in arbitrary fragments —
// a header split mid-name, a body trickling one byte at a time, or three
// pipelined requests in one read — and the parser carries state across
// feed() calls so the event loop never blocks waiting for a complete
// request. next_view() pops one request at a time, which is what makes
// pipelining work: the connection keeps calling it until the buffer runs
// dry.
//
// Zero-copy contract (DESIGN.md "Wire fast path"): next_view() emits a
// `RequestView` that BORROWS the parser's input buffer — method, path,
// header names/values, and body are string_views into bytes the socket
// already delivered; nothing is copied out. Consumed bytes are tracked by
// an offset and reclaimed lazily: feed() compacts the buffer, so every
// outstanding view is invalidated by the next feed() (or reset()). The
// event loop honors this by fully handling each request before reading
// again. next() is the materializing wrapper (owning HttpRequest) for
// one-shot callers and tests.
//
// Framing is Content-Length only (Transfer-Encoding is rejected — the
// emulator protocol never chunks). Both CRLF and bare-LF line endings are
// accepted; header names are lower-cased in place in the buffer. Limits
// are enforced while parsing, so a connection spraying unbounded header
// bytes is rejected after `max_header_bytes`, not buffered forever.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "server/http.h"

namespace lce::server {

enum class ParseStatus {
  kNeedMore,         // no complete request buffered yet — feed more bytes
  kRequest,          // `out` holds the next parsed request
  kBadRequest,       // malformed request line / header (HTTP 400)
  kHeadersTooLarge,  // header section exceeds max_header_bytes (HTTP 431)
  kBodyTooLarge,     // declared Content-Length exceeds max_body_bytes (HTTP 413)
};

struct ParserLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 16 * 1024 * 1024;
};

class HttpParser {
 public:
  HttpParser() = default;
  explicit HttpParser(ParserLimits limits) : limits_(limits) {}

  /// Append raw bytes from the socket. Cheap; all parsing happens in
  /// next_view(). Compacts the already-consumed prefix, INVALIDATING any
  /// RequestView handed out earlier.
  void feed(std::string_view bytes);

  /// Pop the next complete request as borrowed views into the parser's
  /// buffer (valid until the next feed()/reset()). Error statuses are
  /// sticky: once a connection has produced garbage its remaining bytes
  /// cannot be trusted, so the caller responds and closes. reset()
  /// re-arms the parser for a fresh connection.
  ParseStatus next_view(RequestView& out);

  /// Materializing wrapper over next_view(): same acceptance and statuses,
  /// copies into an owning HttpRequest (duplicate headers keep the last
  /// occurrence, matching the historical map behavior).
  ParseStatus next(HttpRequest& out);

  void reset();

  /// Bytes buffered but not yet consumed by a completed request — nonzero
  /// at peer close means the final request was truncated.
  std::size_t buffered() const { return buf_.size() - base_; }

 private:
  ParseStatus fail(ParseStatus status);
  bool next_line(std::size_t& pos, std::string_view& line);

  std::string buf_;
  std::size_t base_ = 0;  // bytes before base_ are consumed, reclaimed by feed()
  ParserLimits limits_;
  ParseStatus error_ = ParseStatus::kNeedMore;  // sticky once != kNeedMore
};

/// HTTP keep-alive negotiation: "Connection: close" always closes,
/// "Connection: keep-alive" always holds, otherwise HTTP/1.1 defaults to
/// keep-alive and HTTP/1.0 to close.
bool wants_keep_alive(const HttpRequest& req);
bool wants_keep_alive(const RequestView& req);

}  // namespace lce::server
