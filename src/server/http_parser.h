// Incremental, resumable HTTP/1.1 request parser for the epoll front end
// (DESIGN.md "Serving front end"). Bytes arrive in arbitrary fragments —
// a header split mid-name, a body trickling one byte at a time, or three
// pipelined requests in one read — and the parser carries state across
// feed() calls so the event loop never blocks waiting for a complete
// request. next() pops one request at a time, which is what makes
// pipelining work: the connection keeps calling next() until the buffer
// runs dry.
//
// Framing is Content-Length only (Transfer-Encoding is rejected — the
// emulator protocol never chunks). Both CRLF and bare-LF line endings are
// accepted; header names are lower-cased. Limits are enforced while
// parsing, so a connection spraying unbounded header bytes is rejected
// after `max_header_bytes`, not buffered forever.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "server/http.h"

namespace lce::server {

enum class ParseStatus {
  kNeedMore,         // no complete request buffered yet — feed more bytes
  kRequest,          // `out` holds the next parsed request
  kBadRequest,       // malformed request line / header (HTTP 400)
  kHeadersTooLarge,  // header section exceeds max_header_bytes (HTTP 431)
  kBodyTooLarge,     // declared Content-Length exceeds max_body_bytes (HTTP 413)
};

struct ParserLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 16 * 1024 * 1024;
};

class HttpParser {
 public:
  HttpParser() = default;
  explicit HttpParser(ParserLimits limits) : limits_(limits) {}

  /// Append raw bytes from the socket. Cheap; all parsing happens in next().
  void feed(std::string_view bytes);

  /// Pop the next complete request into `out`. Error statuses are sticky:
  /// once a connection has produced garbage its remaining bytes cannot be
  /// trusted, so the caller responds and closes. reset() re-arms the
  /// parser for a fresh connection.
  ParseStatus next(HttpRequest& out);

  void reset();

  /// Bytes buffered but not yet consumed by a completed request — nonzero
  /// at peer close means the final request was truncated.
  std::size_t buffered() const { return buf_.size(); }

 private:
  ParseStatus fail(ParseStatus status);

  std::string buf_;
  ParserLimits limits_;
  ParseStatus error_ = ParseStatus::kNeedMore;  // sticky once != kNeedMore
};

/// HTTP keep-alive negotiation: "Connection: close" always closes,
/// "Connection: keep-alive" always holds, otherwise HTTP/1.1 defaults to
/// keep-alive and HTTP/1.0 to close.
bool wants_keep_alive(const HttpRequest& req);

}  // namespace lce::server
