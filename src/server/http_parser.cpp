#include "server/http_parser.h"

#include <cctype>

#include "common/strings.h"

namespace lce::server {

namespace {

bool is_ws(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::string_view trim_view(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

/// Exactly-three tokenization of the request line, where a token is a
/// maximal non-whitespace run — the view-borrowing equivalent of
/// `split_ws(trim(line)).size() == 3`.
bool split3_ws(std::string_view s, std::string_view out[3]) {
  int n = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_ws(s[i])) ++i;
    if (i >= s.size()) break;
    std::size_t start = i;
    while (i < s.size() && !is_ws(s[i])) ++i;
    if (n == 3) return false;
    out[n++] = s.substr(start, i - start);
  }
  return n == 3;
}

/// Case-insensitive substring search; `needle` must already be lower-case.
/// Replaces the allocating `contains(to_lower(value), needle)` on the
/// zero-copy path.
bool contains_icase(std::string_view hay, std::string_view needle) {
  if (hay.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    std::size_t j = 0;
    while (j < needle.size() &&
           std::tolower(static_cast<unsigned char>(hay[i + j])) == needle[j]) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

}  // namespace

void HttpParser::feed(std::string_view bytes) {
  // Reclaim the consumed prefix before appending — this is the moment any
  // previously returned RequestView dies (header comment contract).
  if (base_ > 0) {
    if (base_ == buf_.size()) {
      buf_.clear();  // common keep-alive steady state: nothing to move
    } else {
      buf_.erase(0, base_);
    }
    base_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

void HttpParser::reset() {
  buf_.clear();
  base_ = 0;
  error_ = ParseStatus::kNeedMore;
}

ParseStatus HttpParser::fail(ParseStatus status) {
  error_ = status;
  return status;
}

/// Pop one LF-terminated line starting at `pos`, stripping the optional
/// preceding CR. Returns false when no full line is buffered.
bool HttpParser::next_line(std::size_t& pos, std::string_view& line) {
  std::size_t nl = buf_.find('\n', pos);
  if (nl == std::string::npos) return false;
  std::size_t end = nl;
  if (end > pos && buf_[end - 1] == '\r') --end;
  line = std::string_view(buf_).substr(pos, end - pos);
  pos = nl + 1;
  return true;
}

ParseStatus HttpParser::next_view(RequestView& out) {
  if (error_ != ParseStatus::kNeedMore) return error_;

  // RFC 9112 §2.2: tolerate stray blank lines before the request line
  // (clients that end the previous body with an extra CRLF). Consume them
  // permanently so a blank-line flood cannot grow the buffer unboundedly.
  for (;;) {
    if (base_ + 1 < buf_.size() && buf_[base_] == '\r' && buf_[base_ + 1] == '\n') {
      base_ += 2;
    } else if (base_ < buf_.size() && buf_[base_] == '\n') {
      base_ += 1;
    } else {
      break;
    }
  }

  std::size_t pos = base_;
  std::string_view line;
  if (!next_line(pos, line)) {
    if (buf_.size() - base_ > limits_.max_header_bytes) {
      return fail(ParseStatus::kHeadersTooLarge);
    }
    return ParseStatus::kNeedMore;
  }
  std::string_view parts[3];
  if (!split3_ws(line, parts) || !starts_with(parts[2], "HTTP/1.")) {
    return fail(ParseStatus::kBadRequest);
  }
  out.method = parts[0];
  out.path = parts[1];
  out.version_minor = parts[2] == "HTTP/1.0" ? 0 : 1;
  out.headers.clear();
  out.body = {};

  for (;;) {
    if (!next_line(pos, line)) {
      if (buf_.size() - base_ > limits_.max_header_bytes) {
        return fail(ParseStatus::kHeadersTooLarge);
      }
      return ParseStatus::kNeedMore;
    }
    if (line.empty()) break;  // blank line: end of headers
    if (pos - base_ > limits_.max_header_bytes) return fail(ParseStatus::kHeadersTooLarge);
    // Obsolete line folding (a continuation line starting with whitespace)
    // is a smuggling vector; RFC 7230 §3.2.4 lets servers reject it.
    if (line[0] == ' ' || line[0] == '\t') return fail(ParseStatus::kBadRequest);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return fail(ParseStatus::kBadRequest);
    std::string_view key = trim_view(line.substr(0, colon));
    // Whitespace inside a header name means the request line bled into the
    // header block (or vice versa) — unparseable, not just unusual.
    if (key.find(' ') != std::string_view::npos ||
        key.find('\t') != std::string_view::npos) {
      return fail(ParseStatus::kBadRequest);
    }
    // Lower-case the name in place in the buffer — idempotent, so a
    // kNeedMore reparse over the same bytes is harmless.
    std::size_t key_off = static_cast<std::size_t>(key.data() - buf_.data());
    for (std::size_t i = 0; i < key.size(); ++i) {
      buf_[key_off + i] =
          static_cast<char>(std::tolower(static_cast<unsigned char>(buf_[key_off + i])));
    }
    out.headers.emplace_back(key, trim_view(line.substr(colon + 1)));
  }

  if (out.find_header("transfer-encoding") != nullptr) {
    // Content-Length framing only; chunked bodies are rejected rather than
    // mis-framed (request-smuggling hygiene).
    return fail(ParseStatus::kBadRequest);
  }
  std::size_t content_length = 0;
  if (const std::string_view* cl = out.find_header("content-length"); cl != nullptr) {
    std::int64_t n = 0;
    if (!parse_int(*cl, n) || n < 0) return fail(ParseStatus::kBadRequest);
    if (static_cast<std::size_t>(n) > limits_.max_body_bytes) {
      return fail(ParseStatus::kBodyTooLarge);
    }
    content_length = static_cast<std::size_t>(n);
  }
  if (buf_.size() - pos < content_length) return ParseStatus::kNeedMore;
  out.body = std::string_view(buf_).substr(pos, content_length);
  base_ = pos + content_length;
  return ParseStatus::kRequest;
}

ParseStatus HttpParser::next(HttpRequest& out) {
  RequestView view;
  ParseStatus st = next_view(view);
  if (st != ParseStatus::kRequest) return st;
  out.method.assign(view.method);
  out.path.assign(view.path);
  out.version_minor = view.version_minor;
  out.headers.clear();
  for (const auto& [k, v] : view.headers) {
    // operator[] assignment: duplicate names keep the last occurrence,
    // exactly like the historical in-loop map insert.
    out.headers[std::string(k)] = std::string(v);
  }
  out.body.assign(view.body);
  return ParseStatus::kRequest;
}

bool wants_keep_alive(const HttpRequest& req) {
  if (auto it = req.headers.find("connection"); it != req.headers.end()) {
    std::string v = to_lower(it->second);
    if (contains(v, "close")) return false;
    if (contains(v, "keep-alive")) return true;
  }
  return req.version_minor >= 1;
}

bool wants_keep_alive(const RequestView& req) {
  if (const std::string_view* v = req.find_header("connection"); v != nullptr) {
    if (contains_icase(*v, "close")) return false;
    if (contains_icase(*v, "keep-alive")) return true;
  }
  return req.version_minor >= 1;
}

}  // namespace lce::server
