#include "server/http_parser.h"

#include "common/strings.h"

namespace lce::server {

namespace {

/// Pop one LF-terminated line out of `buf` starting at `pos`, stripping
/// the optional preceding CR. Returns false when no full line is buffered.
bool next_line(const std::string& buf, std::size_t& pos, std::string& line) {
  std::size_t nl = buf.find('\n', pos);
  if (nl == std::string::npos) return false;
  std::size_t end = nl;
  if (end > pos && buf[end - 1] == '\r') --end;
  line.assign(buf, pos, end - pos);
  pos = nl + 1;
  return true;
}

}  // namespace

void HttpParser::feed(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

void HttpParser::reset() {
  buf_.clear();
  error_ = ParseStatus::kNeedMore;
}

ParseStatus HttpParser::fail(ParseStatus status) {
  error_ = status;
  return status;
}

ParseStatus HttpParser::next(HttpRequest& out) {
  if (error_ != ParseStatus::kNeedMore) return error_;

  // RFC 9112 §2.2: tolerate stray blank lines before the request line
  // (clients that end the previous body with an extra CRLF). Erase them so
  // a blank-line flood cannot grow the buffer unboundedly.
  for (;;) {
    if (starts_with(buf_, "\r\n")) {
      buf_.erase(0, 2);
    } else if (!buf_.empty() && buf_[0] == '\n') {
      buf_.erase(0, 1);
    } else {
      break;
    }
  }

  std::size_t pos = 0;
  std::string line;
  if (!next_line(buf_, pos, line)) {
    if (buf_.size() > limits_.max_header_bytes) return fail(ParseStatus::kHeadersTooLarge);
    return ParseStatus::kNeedMore;
  }
  auto parts = split_ws(trim(line));
  if (parts.size() != 3 || !starts_with(parts[2], "HTTP/1.")) {
    return fail(ParseStatus::kBadRequest);
  }
  HttpRequest req;
  req.method = parts[0];
  req.path = parts[1];
  req.version_minor = parts[2] == "HTTP/1.0" ? 0 : 1;

  for (;;) {
    if (!next_line(buf_, pos, line)) {
      if (buf_.size() > limits_.max_header_bytes) return fail(ParseStatus::kHeadersTooLarge);
      return ParseStatus::kNeedMore;
    }
    if (line.empty()) break;  // blank line: end of headers
    if (pos > limits_.max_header_bytes) return fail(ParseStatus::kHeadersTooLarge);
    // Obsolete line folding (a continuation line starting with whitespace)
    // is a smuggling vector; RFC 7230 §3.2.4 lets servers reject it.
    if (line[0] == ' ' || line[0] == '\t') return fail(ParseStatus::kBadRequest);
    std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return fail(ParseStatus::kBadRequest);
    std::string key = trim(line.substr(0, colon));
    // Whitespace inside a header name means the request line bled into the
    // header block (or vice versa) — unparseable, not just unusual.
    if (key.find(' ') != std::string::npos || key.find('\t') != std::string::npos) {
      return fail(ParseStatus::kBadRequest);
    }
    req.headers[to_lower(key)] = trim(line.substr(colon + 1));
  }

  if (req.headers.count("transfer-encoding") != 0) {
    // Content-Length framing only; chunked bodies are rejected rather than
    // mis-framed (request-smuggling hygiene).
    return fail(ParseStatus::kBadRequest);
  }
  std::size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    std::int64_t n = 0;
    if (!parse_int(it->second, n) || n < 0) return fail(ParseStatus::kBadRequest);
    if (static_cast<std::size_t>(n) > limits_.max_body_bytes) {
      return fail(ParseStatus::kBodyTooLarge);
    }
    content_length = static_cast<std::size_t>(n);
  }
  if (buf_.size() - pos < content_length) return ParseStatus::kNeedMore;
  req.body.assign(buf_, pos, content_length);
  buf_.erase(0, pos + content_length);
  out = std::move(req);
  return ParseStatus::kRequest;
}

bool wants_keep_alive(const HttpRequest& req) {
  if (auto it = req.headers.find("connection"); it != req.headers.end()) {
    std::string v = to_lower(it->second);
    if (contains(v, "close")) return false;
    if (contains(v, "keep-alive")) return true;
  }
  return req.version_minor >= 1;
}

}  // namespace lce::server
