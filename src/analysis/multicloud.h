// Multi-cloud comparison (paper §4.4): "formal, automated comparisons of
// equivalent services — e.g., whether Azure's CreateVM() requires the same
// dependency checks as AWS's RunInstance()". Works at the documented-model
// level: for each equivalent resource pair, compare the constraint kinds
// (and numeric bounds) of the matching lifecycle APIs.
#pragma once

#include <string>
#include <vector>

#include "docs/model.h"

namespace lce::analysis {

struct CheckDelta {
  std::string api_pair;                 // "CreateSubnet vs PutVnetSubnet"
  std::vector<std::string> shared;      // constraint kinds both enforce
  std::vector<std::string> a_only;      // provider A enforces, B does not
  std::vector<std::string> b_only;
  std::vector<std::string> bound_diffs; // same kind, different numeric bounds
};

struct ResourceComparison {
  std::string a_resource;
  std::string b_resource;
  std::vector<CheckDelta> deltas;

  /// Portability score in [0,1]: shared checks / all checks across pairs.
  double portability() const;
};

struct MultiCloudReport {
  std::string provider_a;
  std::string provider_b;
  std::vector<ResourceComparison> comparisons;

  double mean_portability() const;
};

/// Compare equivalent resources across two catalogs. `pairs` maps A-side
/// resource names to B-side ones.
MultiCloudReport compare_providers(
    const docs::CloudCatalog& a, const docs::CloudCatalog& b,
    const std::vector<std::pair<std::string, std::string>>& pairs);

}  // namespace lce::analysis
