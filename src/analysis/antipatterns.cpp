#include "analysis/antipatterns.h"

#include <functional>
#include <map>
#include <set>

#include "common/strings.h"

namespace lce::analysis {

std::string to_string(AntiPatternKind k) {
  switch (k) {
    case AntiPatternKind::kLongModifyChain: return "long-modify-chain";
    case AntiPatternKind::kDeepContainment: return "deep-containment";
    case AntiPatternKind::kWideCreate: return "wide-create";
    case AntiPatternKind::kAmbiguousDoc: return "ambiguous-doc";
    case AntiPatternKind::kAsymmetricLifecycle: return "asymmetric-lifecycle";
    case AntiPatternKind::kOverloadedErrorCode: return "overloaded-error-code";
  }
  return "?";
}

std::string AntiPattern::to_text() const {
  return strf("[", to_string(kind), "] ", subject, ": ", detail);
}

std::vector<AntiPattern> find_anti_patterns(const spec::SpecSet& spec,
                                            const std::vector<docs::WrangleIssue>& doc_issues,
                                            const AntiPatternOptions& opts) {
  std::vector<AntiPattern> out;
  std::map<std::string, std::size_t> code_uses;

  for (const auto& m : spec.machines) {
    bool has_destroy = false;
    bool has_describe = false;
    for (const auto& t : m.transitions) {
      if (t.kind == spec::TransitionKind::kDestroy) has_destroy = true;
      if (t.kind == spec::TransitionKind::kDescribe) has_describe = true;

      std::size_t writes = 0;
      std::size_t calls = 0;
      std::function<void(const spec::Body&)> scan = [&](const spec::Body& body) {
        for (const auto& s : body) {
          if (s->kind == spec::StmtKind::kWrite) ++writes;
          if (s->kind == spec::StmtKind::kCall) ++calls;
          if (s->kind == spec::StmtKind::kAssert) ++code_uses[s->error_code];
          scan(s->then_body);
          scan(s->else_body);
        }
      };
      scan(t.body);
      if (t.kind == spec::TransitionKind::kModify &&
          writes + calls > opts.modify_chain_threshold) {
        out.push_back(AntiPattern{
            AntiPatternKind::kLongModifyChain, strf(m.name, "::", t.name),
            strf(writes, " writes + ", calls, " cross-machine calls in one modify()")});
      }
      if (t.kind == spec::TransitionKind::kCreate &&
          t.params.size() > opts.create_param_threshold) {
        out.push_back(AntiPattern{AntiPatternKind::kWideCreate, strf(m.name, "::", t.name),
                                  strf(t.params.size(), " creation parameters")});
      }
    }
    if ((!has_destroy || !has_describe) && !ends_with(m.name, "BackRef")) {
      out.push_back(AntiPattern{
          AntiPatternKind::kAsymmetricLifecycle, m.name,
          strf("missing ", !has_destroy ? "destroy()" : "describe()", " API")});
    }

    // Containment depth.
    std::size_t depth = 0;
    const spec::StateMachine* cur = &m;
    std::set<std::string> seen;
    while (cur != nullptr && !cur->parent_type.empty() && seen.insert(cur->name).second) {
      ++depth;
      cur = spec.find_machine(cur->parent_type);
    }
    if (depth > opts.containment_depth_threshold) {
      out.push_back(AntiPattern{AntiPatternKind::kDeepContainment, m.name,
                                strf("containment chain of depth ", depth)});
    }
  }

  for (const auto& [code, uses] : code_uses) {
    if (uses > opts.error_code_reuse_threshold) {
      out.push_back(AntiPattern{
          AntiPatternKind::kOverloadedErrorCode, code,
          strf("one error code mapped from ", uses,
               " distinct checks (hard for client tooling to branch on)")});
    }
  }

  std::map<std::string, std::size_t> issues_per_page;
  for (const auto& i : doc_issues) ++issues_per_page[i.page_resource];
  for (const auto& [page, n] : issues_per_page) {
    out.push_back(AntiPattern{
        AntiPatternKind::kAmbiguousDoc, page,
        strf(n, " documentation lines the symbolic parser could not interpret")});
  }
  return out;
}

}  // namespace lce::analysis
