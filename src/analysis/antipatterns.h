// Documentation engineering (paper §4.4): "detect potential design flaws
// and anti-patterns. For instance, a modify() call that requires a long and
// complex chain of actions updating multiple dependencies across resources
// may indicate a poorly designed API; or, documentation that consistently
// leads the AI to generate incorrect logic may be flagged as ambiguous."
#pragma once

#include <string>
#include <vector>

#include "docs/wrangler.h"
#include "spec/ast.h"

namespace lce::analysis {

enum class AntiPatternKind {
  kLongModifyChain,     // modify touching many attrs / cross-machine calls
  kDeepContainment,     // containment chains deeper than 3
  kWideCreate,          // create() with an oversized parameter list
  kAmbiguousDoc,        // pages the symbolic wrangler could not fully parse
  kAsymmetricLifecycle, // resource lacking a destroy or describe
  kOverloadedErrorCode, // one error code reused across many distinct checks
};

std::string to_string(AntiPatternKind k);

struct AntiPattern {
  AntiPatternKind kind;
  std::string subject;  // machine / page
  std::string detail;

  std::string to_text() const;
};

struct AntiPatternOptions {
  std::size_t modify_chain_threshold = 3;   // writes+calls per modify
  std::size_t containment_depth_threshold = 3;
  std::size_t create_param_threshold = 5;
  std::size_t error_code_reuse_threshold = 12;
};

/// Scan a learned spec (plus optional wrangler issues) for anti-patterns.
std::vector<AntiPattern> find_anti_patterns(
    const spec::SpecSet& spec, const std::vector<docs::WrangleIssue>& doc_issues = {},
    const AntiPatternOptions& opts = {});

}  // namespace lce::analysis
