// Quantifying cloud complexity (paper §4.4 / Fig. 4): "the number of state
// variables and transitions for a given state machine" plus graph-level
// metrics over the extracted specification.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spec/ast.h"
#include "spec/graph.h"

namespace lce::analysis {

struct SmComplexity {
  std::string machine;
  std::string service;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t asserts = 0;
  std::size_t cross_machine_calls = 0;

  std::size_t total() const { return states + transitions; }
};

/// Per-machine complexity for the whole spec.
std::vector<SmComplexity> measure_complexity(const spec::SpecSet& spec);

/// Group complexity totals by service name.
std::map<std::string, std::vector<SmComplexity>> by_service(
    const std::vector<SmComplexity>& rows);

/// Empirical CDF of the given values: points (x, P[X <= x]), x ascending.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> values);

/// Graph-level metrics (§4.4: "number of nodes, edge density").
struct GraphMetrics {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double density = 0.0;
  std::size_t containment_depth = 0;  // deepest parent chain
};

GraphMetrics measure_graph(const spec::SpecSet& spec);

}  // namespace lce::analysis
