#include "analysis/multicloud.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace lce::analysis {

namespace {

using docs::ApiCategory;
using docs::ApiModel;
using docs::ConstraintKind;
using docs::ResourceModel;

const ApiModel* api_of_category(const ResourceModel& r, ApiCategory c) {
  for (const auto& a : r.apis) {
    if (a.category == c) return &a;
  }
  return nullptr;
}

CheckDelta compare_apis(const ApiModel& a, const ApiModel& b) {
  CheckDelta d;
  d.api_pair = strf(a.name, " vs ", b.name);
  std::map<ConstraintKind, std::pair<int, int>> a_bounds;
  std::map<ConstraintKind, std::pair<int, int>> b_bounds;
  std::set<ConstraintKind> a_kinds;
  std::set<ConstraintKind> b_kinds;
  for (const auto& c : a.constraints) {
    a_kinds.insert(c.kind);
    a_bounds[c.kind] = {c.int_lo, c.int_hi};
  }
  for (const auto& c : b.constraints) {
    b_kinds.insert(c.kind);
    b_bounds[c.kind] = {c.int_lo, c.int_hi};
  }
  for (ConstraintKind k : a_kinds) {
    if (b_kinds.count(k) != 0) {
      d.shared.push_back(to_string(k));
      if (a_bounds[k] != b_bounds[k] &&
          (k == ConstraintKind::kCidrPrefixRange || k == ConstraintKind::kIntRange)) {
        d.bound_diffs.push_back(strf(to_string(k), ": [", a_bounds[k].first, ",",
                                     a_bounds[k].second, "] vs [", b_bounds[k].first, ",",
                                     b_bounds[k].second, "]"));
      }
    } else {
      d.a_only.push_back(to_string(k));
    }
  }
  for (ConstraintKind k : b_kinds) {
    if (a_kinds.count(k) == 0) d.b_only.push_back(to_string(k));
  }
  return d;
}

}  // namespace

double ResourceComparison::portability() const {
  std::size_t shared = 0;
  std::size_t total = 0;
  for (const auto& d : deltas) {
    shared += d.shared.size();
    total += d.shared.size() + d.a_only.size() + d.b_only.size();
  }
  if (total == 0) return 1.0;
  return static_cast<double>(shared) / static_cast<double>(total);
}

double MultiCloudReport::mean_portability() const {
  if (comparisons.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& c : comparisons) sum += c.portability();
  return sum / static_cast<double>(comparisons.size());
}

MultiCloudReport compare_providers(
    const docs::CloudCatalog& a, const docs::CloudCatalog& b,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  MultiCloudReport report;
  report.provider_a = a.provider;
  report.provider_b = b.provider;
  for (const auto& [an, bn] : pairs) {
    const ResourceModel* ra = a.find_resource(an);
    const ResourceModel* rb = b.find_resource(bn);
    if (ra == nullptr || rb == nullptr) continue;
    ResourceComparison cmp;
    cmp.a_resource = an;
    cmp.b_resource = bn;
    for (ApiCategory cat : {ApiCategory::kCreate, ApiCategory::kDestroy,
                            ApiCategory::kModify}) {
      const ApiModel* aa = api_of_category(*ra, cat);
      const ApiModel* bb = api_of_category(*rb, cat);
      if (aa != nullptr && bb != nullptr) cmp.deltas.push_back(compare_apis(*aa, *bb));
    }
    report.comparisons.push_back(std::move(cmp));
  }
  return report;
}

}  // namespace lce::analysis
