#include "analysis/complexity.h"

#include <algorithm>
#include <functional>

namespace lce::analysis {

namespace {

void count_body(const spec::Body& body, std::size_t& asserts, std::size_t& calls) {
  for (const auto& s : body) {
    if (s->kind == spec::StmtKind::kAssert) ++asserts;
    if (s->kind == spec::StmtKind::kCall) ++calls;
    count_body(s->then_body, asserts, calls);
    count_body(s->else_body, asserts, calls);
  }
}

}  // namespace

std::vector<SmComplexity> measure_complexity(const spec::SpecSet& spec) {
  std::vector<SmComplexity> out;
  for (const auto& m : spec.machines) {
    SmComplexity c;
    c.machine = m.name;
    c.service = m.service;
    c.states = m.states.size();
    c.transitions = m.transitions.size();
    for (const auto& t : m.transitions) count_body(t.body, c.asserts, c.cross_machine_calls);
    out.push_back(std::move(c));
  }
  return out;
}

std::map<std::string, std::vector<SmComplexity>> by_service(
    const std::vector<SmComplexity>& rows) {
  std::map<std::string, std::vector<SmComplexity>> out;
  for (const auto& r : rows) out[r.service].push_back(r);
  return out;
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> values) {
  std::vector<std::pair<double, double>> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Collapse ties: emit a point only at the last occurrence of a value.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

GraphMetrics measure_graph(const spec::SpecSet& spec) {
  GraphMetrics gm;
  auto graph = spec::DependencyGraph::build(spec);
  gm.nodes = graph.node_count();
  gm.edges = graph.edge_count();
  gm.density = graph.edge_density();
  // Deepest containment chain.
  std::function<std::size_t(const std::string&, std::size_t)> depth_of =
      [&](const std::string& name, std::size_t guard) -> std::size_t {
    if (guard > spec.machines.size()) return 0;  // cycle safety
    const spec::StateMachine* m = spec.find_machine(name);
    if (m == nullptr || m->parent_type.empty()) return 1;
    return 1 + depth_of(m->parent_type, guard + 1);
  };
  for (const auto& m : spec.machines) {
    gm.containment_depth = std::max(gm.containment_depth, depth_of(m.name, 0));
  }
  return gm;
}

}  // namespace lce::analysis
