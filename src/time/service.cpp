#include "time/service.h"

namespace lce::vtime {

TimerService::TimerService(const TimerService& other) { *this = other; }

TimerService& TimerService::operator=(const TimerService& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  wheel_ = other.wheel_;
  next_seq_ = other.next_seq_;
  live_ = other.live_;
  by_resource_ = other.by_resource_;
  return *this;
}

std::uint64_t TimerService::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wheel_.now();
}

std::size_t TimerService::armed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

std::uint64_t TimerService::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void TimerService::ensure(const std::string& resource_id, const std::string& clause_key,
                          const std::string& transition, std::int64_t delay, bool want) {
  std::lock_guard<std::mutex> lock(mu_);
  auto res_it = by_resource_.find(resource_id);
  bool armed = res_it != by_resource_.end() && res_it->second.count(clause_key) != 0;
  if (want == armed) return;
  if (want) {
    if (delay < 1) delay = 1;
    TimerInfo ti;
    ti.seq = next_seq_++;
    ti.deadline = wheel_.now() + static_cast<std::uint64_t>(delay);
    ti.resource_id = resource_id;
    ti.transition = transition;
    ti.clause_key = clause_key;
    wheel_.schedule(ti.deadline, ti.seq);
    by_resource_[resource_id][clause_key] = ti.seq;
    live_.emplace(ti.seq, std::move(ti));
  } else {
    std::uint64_t seq = res_it->second.at(clause_key);
    res_it->second.erase(clause_key);
    if (res_it->second.empty()) by_resource_.erase(res_it);
    live_.erase(seq);  // wheel entry goes stale; pop_due skips it
  }
}

void TimerService::cancel_resource(const std::string& resource_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_resource_.find(resource_id);
  if (it == by_resource_.end()) return;
  for (const auto& [key, seq] : it->second) live_.erase(seq);
  by_resource_.erase(it);
}

std::optional<TimerInfo> TimerService::pop_due(std::uint64_t target) {
  std::lock_guard<std::mutex> lock(mu_);
  while (true) {
    auto e = wheel_.pop_due(target);
    if (!e) return std::nullopt;
    auto it = live_.find(e->seq);
    if (it == live_.end()) continue;  // cancelled after scheduling
    TimerInfo ti = std::move(it->second);
    live_.erase(it);
    index_erase(ti);
    return ti;
  }
}

void TimerService::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  wheel_.reset(0);
  next_seq_ = 1;
  live_.clear();
  by_resource_.clear();
}

std::vector<TimerInfo> TimerService::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimerInfo> out;
  out.reserve(live_.size());
  for (const auto& [seq, ti] : live_) out.push_back(ti);
  return out;
}

void TimerService::restore(std::uint64_t now, std::uint64_t next_seq,
                           std::vector<TimerInfo> timers) {
  std::lock_guard<std::mutex> lock(mu_);
  wheel_.reset(now);
  next_seq_ = next_seq;
  live_.clear();
  by_resource_.clear();
  for (auto& ti : timers) {
    wheel_.schedule(ti.deadline, ti.seq);
    by_resource_[ti.resource_id][ti.clause_key] = ti.seq;
    live_.emplace(ti.seq, std::move(ti));
  }
}

void TimerService::index_erase(const TimerInfo& ti) {
  auto it = by_resource_.find(ti.resource_id);
  if (it == by_resource_.end()) return;
  it->second.erase(ti.clause_key);
  if (it->second.empty()) by_resource_.erase(it);
}

}  // namespace lce::vtime
