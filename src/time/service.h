// TimerService: the store-facing face of the virtual-time subsystem. It
// pairs the deterministic TimerWheel with payloads (which transition to
// fire on which resource), a per-resource index for cancel-on-destroy, and
// a leaf mutex so both executors can reconcile timers at commit time.
//
// Cancellation is lazy: the wheel cannot remove an entry cheaply, so
// cancelled seqs simply vanish from `live_` and pop_due() skips the stale
// wheel entries when they surface. Lock order: store stripe locks first,
// then this mutex (never the reverse; the service calls nothing back).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "time/wheel.h"

namespace lce::vtime {

/// One armed delayed transition. `clause_key` identifies the spec clause
/// that armed it ("<state-var>#<clause-index>") so reconciliation can tell
/// "already armed" from "needs arming" per clause.
struct TimerInfo {
  std::uint64_t seq = 0;       // creation order; the deterministic tiebreak
  std::uint64_t deadline = 0;  // virtual tick at which the timer fires
  std::string resource_id;
  std::string transition;  // parameter-free transition invoked on fire
  std::string clause_key;
};

class TimerService {
 public:
  TimerService() = default;
  TimerService(const TimerService& other);
  TimerService& operator=(const TimerService& other);

  /// Current virtual time.
  std::uint64_t now() const;

  /// Number of armed (live) timers.
  std::size_t armed_count() const;

  /// Next seq the service will mint (persisted so recovery keeps the
  /// deterministic tiebreak sequence).
  std::uint64_t next_seq() const;

  /// Reconcile one clause against its desired state: arm at now+delay when
  /// `want` and the clause is unarmed; cancel when `!want` and it is armed;
  /// leave an already-armed timer running otherwise (arming is edge-
  /// triggered, so a variable that stays on its trigger value does not
  /// reset the countdown).
  void ensure(const std::string& resource_id, const std::string& clause_key,
              const std::string& transition, std::int64_t delay, bool want);

  /// Cancel every timer armed on `resource_id` (resource destroyed).
  void cancel_resource(const std::string& resource_id);

  /// Advance toward `target` and return the next due timer (clock rests at
  /// its deadline), or nullopt with the clock at `target`. Fired timers are
  /// disarmed; the caller re-arms via ensure() if the clause still wants
  /// one (periodic behaviour).
  std::optional<TimerInfo> pop_due(std::uint64_t target);

  /// Drop all timers and reset the clock to 0 (store reset).
  void clear();

  /// Live timers in seq order — the canonical serialization for snapshots
  /// and byte-identical store dumps.
  std::vector<TimerInfo> snapshot() const;

  /// Rebuild from a snapshot (recovery / replica bootstrap). Replaces all
  /// state; `timers` need not be sorted.
  void restore(std::uint64_t now, std::uint64_t next_seq, std::vector<TimerInfo> timers);

 private:
  void index_erase(const TimerInfo& ti);

  mutable std::mutex mu_;
  TimerWheel wheel_;
  std::uint64_t next_seq_ = 1;
  // seq -> payload; iteration order == seq order, which snapshot() relies on.
  std::map<std::uint64_t, TimerInfo> live_;
  // resource id -> clause_key -> seq, for ensure() lookups and cancels.
  std::map<std::string, std::map<std::string, std::uint64_t>> by_resource_;
};

}  // namespace lce::vtime
