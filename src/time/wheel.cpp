#include "time/wheel.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace lce::vtime {

namespace {

// Distance (in slots) from `cur` to set bit `s`, walking forward cyclically.
// rotr aligns `cur` onto bit 0, so countr_zero of the rotated map is the
// distance to the nearest set slot at or ahead of `cur`.
std::uint64_t forward_distance(std::uint64_t bitmap, std::uint64_t cur) {
  return static_cast<std::uint64_t>(std::countr_zero(std::rotr(bitmap, static_cast<int>(cur))));
}

// Level-0 slots are min-heaps on seq (all entries in one level-0 slot share
// a deadline, so seq alone decides pop order). Upper-level slots stay
// unordered — cascade consumes them wholesale.
struct SeqAfter {
  bool operator()(const TimerWheel::Entry& a, const TimerWheel::Entry& b) const {
    return a.seq > b.seq;
  }
};

}  // namespace

void TimerWheel::schedule(std::uint64_t deadline, std::uint64_t seq) {
  if (deadline < now_) deadline = now_;
  place(Entry{deadline, seq});
  ++count_;
}

void TimerWheel::place(Entry e) {
  std::uint64_t delta = e.deadline - now_;
  for (int level = 0; level < kLevels; ++level) {
    if (delta < span(level)) {
      std::uint64_t slot = (e.deadline >> (kBits * level)) & kMask;
      auto& entries = slots_[static_cast<std::size_t>(level)][slot];
      entries.push_back(e);
      // Keeping the heap property on insert makes a bulk advance over N
      // same-deadline timers O(N log N); a min-scan per pop would be O(N^2).
      if (level == 0) std::push_heap(entries.begin(), entries.end(), SeqAfter{});
      bitmap_[static_cast<std::size_t>(level)] |= 1ull << slot;
      return;
    }
  }
  overflow_.push_back(e);
}

void TimerWheel::cascade(int level, std::uint64_t slot) {
  auto& lv = slots_[static_cast<std::size_t>(level)];
  if (lv[slot].empty()) return;
  std::vector<Entry> moved;
  moved.swap(lv[slot]);
  bitmap_[static_cast<std::size_t>(level)] &= ~(1ull << slot);
  for (const Entry& e : moved) place(e);
}

void TimerWheel::drain_overflow() {
  if (overflow_.empty()) return;
  std::vector<Entry> keep;
  keep.reserve(overflow_.size());
  for (const Entry& e : overflow_) {
    if (e.deadline - now_ < span(kLevels - 1)) {
      place(e);
    } else {
      keep.push_back(e);
    }
  }
  overflow_.swap(keep);
}

std::uint64_t TimerWheel::next_event_hint() const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  // Level 0 entries always live within 64 ticks of now_, so the forward
  // slot distance IS the delta to their deadline. Bit (now_ & kMask) is
  // clear here — pop_due drains that slot before hopping.
  if (bitmap_[0] != 0) {
    best = now_ + forward_distance(bitmap_[0], now_ & kMask);
  }
  // Upper levels release entries at their cascade boundary: the first time
  // t > now_, t a multiple of 64^L, whose level-L slot index matches the
  // occupied slot. distance 0 means "same slot, next full cycle" (a
  // wrapped placement), hence the promotion to a whole revolution.
  for (int level = 1; level < kLevels; ++level) {
    std::uint64_t bm = bitmap_[static_cast<std::size_t>(level)];
    if (bm == 0) continue;
    int shift = kBits * level;
    std::uint64_t cur = (now_ >> shift) & kMask;
    std::uint64_t d = forward_distance(bm, cur);
    if (d == 0) {
      // The current slot holds wrapped next-cycle entries. Its boundary is a
      // full revolution away — but occupied slots at distances 1..63 come
      // first, so look for the nearest strictly-ahead bit before settling on
      // the whole cycle.
      std::uint64_t ahead = std::rotr(bm, static_cast<int>(cur)) & ~1ull;
      d = ahead != 0 ? static_cast<std::uint64_t>(std::countr_zero(ahead)) : kSlots;
    }
    std::uint64_t boundary = ((now_ >> shift) + d) << shift;
    if (boundary < best) best = boundary;
  }
  if (!overflow_.empty()) {
    // Overflow drains when the clock crosses a 2^24-tick boundary.
    std::uint64_t top = span(kLevels - 1);
    std::uint64_t boundary = ((now_ / top) + 1) * top;
    if (boundary < best) best = boundary;
  }
  return best;
}

std::optional<TimerWheel::Entry> TimerWheel::pop_due(std::uint64_t target) {
  if (target < now_) target = now_;
  if (count_ == 0) {  // O(1) advance across an empty wheel
    now_ = target;
    return std::nullopt;
  }
  while (true) {
    // Every entry in the level-0 slot indexed by now_ is due exactly now
    // (level-0 deltas are < 64, so slot index determines the deadline).
    std::uint64_t cur0 = now_ & kMask;
    if ((bitmap_[0] >> cur0) & 1u) {
      auto& slot = slots_[0][cur0];
      std::pop_heap(slot.begin(), slot.end(), SeqAfter{});
      Entry out = slot.back();
      slot.pop_back();
      if (slot.empty()) bitmap_[0] &= ~(1ull << cur0);
      --count_;
      return out;
    }
    std::uint64_t next = next_event_hint();
    if (next > target) {
      if (now_ == target) return std::nullopt;
      // Still release boundaries at `target` itself: landing exactly on a
      // cascade boundary must trickle that slot down now, or the next call's
      // hint would read the occupied current slot as "next full revolution"
      // and fire its entries a whole cycle late.
      now_ = target;
    } else {
      now_ = next;
    }
    // Crossing a boundary releases the matching slot at each level whose
    // period divides the new time, top-down so entries trickle toward
    // level 0; the loop then re-checks the level-0 slot for entries that
    // just became due.
    if (now_ % span(kLevels - 1) == 0) drain_overflow();
    for (int level = kLevels - 1; level >= 1; --level) {
      if (now_ % span(level - 1) == 0) {
        cascade(level, (now_ >> (kBits * level)) & kMask);
      }
    }
  }
}

void TimerWheel::reset(std::uint64_t now) {
  for (auto& level : slots_) {
    for (auto& slot : level) slot.clear();
  }
  bitmap_.fill(0);
  overflow_.clear();
  now_ = now;
  count_ = 0;
}

}  // namespace lce::vtime
