// Hierarchical timer wheel over a deterministic virtual clock (§4.3's
// delayed-transition machinery). The wheel owns virtual "now"; ticks are
// dimensionless — the emulator maps them onto API-visible delays and,
// optionally, wall time (serve --tick-ms). Four levels of 64 slots cover
// deltas up to 2^24 ticks with O(1) placement; anything farther sits in an
// overflow list that drains as the clock crosses 2^24-tick boundaries.
// Per-level occupancy bitmaps let an advance skip empty stretches in O(1)
// per occupied region instead of walking tick-by-tick, and an empty wheel
// advances in O(1) outright.
//
// Determinism contract: entries pop in strict (deadline, seq) order, so two
// replicas that schedule the same (deadline, seq) pairs observe the same
// fire sequence byte-for-byte. The wheel never blocks and knows nothing of
// wall clocks or threads; TimerService adds payloads and locking.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace lce::vtime {

class TimerWheel {
 public:
  struct Entry {
    std::uint64_t deadline = 0;  // virtual tick at which the entry is due
    std::uint64_t seq = 0;       // creation sequence; ties break low-first
  };

  /// Current virtual time. Starts at 0; only pop_due()/reset() move it.
  std::uint64_t now() const { return now_; }

  /// Number of scheduled (not yet popped) entries, including overflow.
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Schedule `seq` to fire at `deadline`. Deadlines in the past clamp to
  /// `now` (the entry pops on the next advance).
  void schedule(std::uint64_t deadline, std::uint64_t seq);

  /// Advance toward `target`, stopping at the earliest due entry. Returns
  /// that entry with the clock resting at its deadline, or nullopt with the
  /// clock at `target` when nothing is due on (now, target]. Successive
  /// calls with the same target therefore drain all due entries in
  /// (deadline, seq) order.
  std::optional<Entry> pop_due(std::uint64_t target);

  /// Drop every entry and reset the clock to `now`.
  void reset(std::uint64_t now = 0);

 private:
  static constexpr int kLevels = 4;
  static constexpr int kBits = 6;                    // 64 slots per level
  static constexpr std::uint64_t kSlots = 1ull << kBits;
  static constexpr std::uint64_t kMask = kSlots - 1;
  // Level L holds entries whose delta-from-now fits in 64^(L+1) ticks.
  static constexpr std::uint64_t span(int level) {
    return 1ull << (kBits * (level + 1));
  }

  void place(Entry e);
  void cascade(int level, std::uint64_t slot);
  void drain_overflow();
  /// Earliest virtual time > now_ at which an entry may become due (a
  /// level-0 deadline or a cascade boundary for an occupied upper slot);
  /// UINT64_MAX when the wheel holds nothing beyond now_.
  std::uint64_t next_event_hint() const;

  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> slots_;
  std::array<std::uint64_t, kLevels> bitmap_{};  // bit s set <=> slot non-empty
  std::vector<Entry> overflow_;                  // delta >= 2^24 at placement
  std::uint64_t now_ = 0;
  std::size_t count_ = 0;
};

}  // namespace lce::vtime
