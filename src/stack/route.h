// Read routing over a replica tier (DESIGN.md "Replication"): the serve
// stack's seam between "one store answers everything" and "a primary
// handles mutations while a fan-out tier absorbs Describe traffic" — the
// front-door shape the serve bench's 70%-describe mix exists to model.
//
// RouteLayer classifies each request with a caller-supplied read-only
// predicate (sourced from the interpreter's compiled lock plans — exactly
// the transitions whose lock classification is read-shared, so a routed
// call provably cannot mutate) and sends reads to a replica under a
// bounded-staleness contract:
//
//   eligible(replica) := primary_seq() - applied_seq(replica) <= lag_max
//
// where both sequences count committed WAL records. Reads rotate round-
// robin across eligible replicas; when none is within the bound the read
// falls back to the primary chain, so the client never observes state
// older than `lag_max` committed writes. lag_max = 0 degenerates to
// strict routing: a replica serves only when fully caught up, which keeps
// serial histories byte-identical to an unreplicated endpoint. Mutations
// (and unclassifiable APIs) always continue inward to the primary.
//
// The tier itself lives behind the ReplicaTier interface: the stack knows
// nothing about WAL feeds or applier threads (src/persist/replica.h
// provides the in-process implementation; a network hop would slot in
// behind the same four methods).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stack/layer.h"

namespace lce::stack {

/// What the router needs from a replication tier, and nothing more.
/// Implementations must be internally synchronized: invoke_on_replica and
/// the sequence reads race freely across serving threads.
class ReplicaTier {
 public:
  virtual ~ReplicaTier() = default;

  virtual std::size_t replica_count() const = 0;
  /// Committed records published by the primary (the feed high-water mark).
  virtual std::uint64_t primary_seq() const = 0;
  /// Records replica `i` has applied (monotonic).
  virtual std::uint64_t replica_applied_seq(std::size_t i) const = 0;
  /// Serve a (validated, read-only) request from replica `i`'s store.
  virtual ApiResponse invoke_on_replica(std::size_t i, const ApiRequest& req) = 0;
};

struct RouteOptions {
  /// Maximum tolerated replica lag, in committed-WAL-record terms. Reads
  /// that would exceed it fall back to the primary. 0 = serve from a
  /// replica only when it has applied everything published.
  std::uint64_t lag_max = 64;
  /// True for APIs safe to serve from a replica (read-shared lock plans).
  /// An empty predicate routes nothing — every call stays on the primary.
  std::function<bool(const std::string&)> read_only;
};

/// Router counters for /metrics ("route" section).
struct RouteStats {
  std::uint64_t replica_reads = 0;   // served by some replica
  std::uint64_t primary_reads = 0;   // read-only but served by the primary
  std::uint64_t lag_fallbacks = 0;   // subset of primary_reads: bound exceeded
  std::uint64_t writes = 0;          // non-read calls passed inward
  std::vector<std::uint64_t> replica_hits;  // per-replica served count
};

class RouteLayer final : public BackendLayer {
 public:
  /// `tier` is caller-owned and must outlive the layer; nullptr (or zero
  /// replicas) makes the layer a counting passthrough.
  RouteLayer(ReplicaTier* tier, RouteOptions opts);

  std::string layer_name() const override { return "route"; }
  ApiResponse invoke(const ApiRequest& req) override;

  RouteStats stats() const;
  const RouteOptions& options() const { return opts_; }

 protected:
  /// Clones detach from the tier: a cloned chain (parallel alignment
  /// workers) owns a private backend whose state the shared replicas do
  /// not track, so routing its reads elsewhere would answer from the
  /// wrong store. Same discipline as JournalLayer.
  std::unique_ptr<BackendLayer> clone_detached() const override;

 private:
  ReplicaTier* tier_;
  RouteOptions opts_;

  std::atomic<std::uint64_t> rr_{0};  // round-robin cursor
  std::atomic<std::uint64_t> replica_reads_{0};
  std::atomic<std::uint64_t> primary_reads_{0};
  std::atomic<std::uint64_t> lag_fallbacks_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> hits_;  // replica_count() wide
  std::size_t hit_slots_ = 0;
};

}  // namespace lce::stack
