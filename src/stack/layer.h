// The composable backend layer stack: cross-cutting concerns of the invoke
// path — serialization, validation, metrics, fault injection, recording,
// read caching — factored into decorators over `CloudBackend` instead of
// being hard-wired into the HTTP service or scattered across consumers.
//
//   lce::stack::StackConfig cfg;           // see config.h
//   auto stack = lce::stack::build_stack(backend, cfg);
//   stack.invoke(req);                     // flows through every layer
//
// Two pieces:
//  - `BackendLayer`: a decorator base that forwards the whole CloudBackend
//    interface to an inner backend and clones the entire chain (layer state
//    AND inner backend) so layered backends keep working with the parallel
//    alignment executor's clone()-per-worker scheme.
//  - `LayerStack`: owns an ordered set of layers around a base backend and
//    is itself a CloudBackend, so a fully-layered emulator drops into any
//    harness (HTTP endpoint, alignment engine, benches) unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/api.h"

namespace lce::stack {

/// Decorator base over CloudBackend. Every operation forwards to the inner
/// backend by default; concrete layers override the operations they
/// intercept. A layer is attached to exactly one inner backend (non-owning
/// inside a LayerStack; owning after a clone()).
class BackendLayer : public CloudBackend {
 public:
  /// Short identity for /health chain reporting, e.g. "serialize".
  virtual std::string layer_name() const = 0;

  std::string name() const override { return inner().name(); }
  ApiResponse invoke(const ApiRequest& req) override { return inner().invoke(req); }
  void reset() override { inner().reset(); }
  bool supports(const std::string& api) const override { return inner().supports(api); }
  Value snapshot() const override { return inner().snapshot(); }
  /// A chain is as thread-safe as what it wraps: stock layers are all
  /// internally synchronized, so safety is decided by the base (or by a
  /// SerializeLayer, which overrides this to true for anything below it).
  bool thread_safe() const override { return inner().thread_safe(); }

  /// Clones the whole chain: the inner backend first (nullptr propagates,
  /// degrading callers to serial execution exactly like an uncloneable
  /// backend), then this layer's own state via clone_detached(). This is
  /// the fix for the old SerializedBackend silently forcing the parallel
  /// alignment executor into serial fallback by not forwarding clone().
  std::unique_ptr<CloudBackend> clone() const override;

  /// Attach to an inner backend the caller keeps alive (LayerStack does
  /// this for every pushed layer).
  void attach(CloudBackend& inner);
  /// Attach to an inner backend this layer now owns (clone chains).
  void attach_owned(std::unique_ptr<CloudBackend> inner);
  bool attached() const { return inner_ != nullptr; }

 protected:
  CloudBackend& inner();
  const CloudBackend& inner() const;

  /// Copy this layer's own state (counters, RNG position, cache, recorded
  /// trace) into a fresh, unattached layer. Non-copyable state is rebuilt:
  /// SerializeLayer returns a layer with a fresh mutex.
  virtual std::unique_ptr<BackendLayer> clone_detached() const = 0;

  friend class LayerStack;  // clones layers without re-cloning the chain

 private:
  CloudBackend* inner_ = nullptr;
  std::unique_ptr<CloudBackend> owned_;  // engaged only on cloned chains
};

/// An ordered pile of layers around a base backend; push() wraps the
/// current outermost, so the LAST pushed layer sees requests FIRST.
/// The stack is itself a CloudBackend and forwards every operation to the
/// outermost layer (or straight to the base when empty).
class LayerStack final : public CloudBackend {
 public:
  /// Wrap a base backend the caller keeps alive.
  explicit LayerStack(CloudBackend& base);
  /// Wrap and own the base backend (clone chains, handed-off backends).
  explicit LayerStack(std::unique_ptr<CloudBackend> base);

  LayerStack(LayerStack&&) = default;
  LayerStack& operator=(LayerStack&&) = default;
  LayerStack(const LayerStack&) = delete;
  LayerStack& operator=(const LayerStack&) = delete;

  /// Add `layer` as the new outermost; returns *this for chaining.
  LayerStack& push(std::unique_ptr<BackendLayer> layer);

  std::string name() const override { return outer().name(); }
  ApiResponse invoke(const ApiRequest& req) override { return outer().invoke(req); }
  void reset() override { outer().reset(); }
  bool supports(const std::string& api) const override { return outer().supports(api); }
  Value snapshot() const override { return outer().snapshot(); }
  bool thread_safe() const override { return outer().thread_safe(); }

  /// Clones base + every layer's state into an independent stack. Returns
  /// nullptr when the base cannot clone (same contract as CloudBackend).
  std::unique_ptr<CloudBackend> clone() const override;

  /// Layer identities, outermost first (the order a request traverses) —
  /// served in /health as the installed chain.
  std::vector<std::string> layer_names() const;

  std::size_t depth() const { return layers_.size(); }
  CloudBackend& base() { return *base_; }

  /// Outermost layer of concrete type L, nullptr when absent (how the
  /// HTTP service finds the MetricsLayer behind GET /metrics).
  template <typename L>
  L* find() {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      if (auto* hit = dynamic_cast<L*>(it->get())) return hit;
    }
    return nullptr;
  }
  template <typename L>
  const L* find() const {
    return const_cast<LayerStack*>(this)->find<L>();
  }

 private:
  CloudBackend& outer();
  const CloudBackend& outer() const;

  CloudBackend* base_;
  std::unique_ptr<CloudBackend> owned_base_;       // engaged when owning
  std::vector<std::unique_ptr<BackendLayer>> layers_;  // [0] = innermost
};

}  // namespace lce::stack
