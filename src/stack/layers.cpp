#include "stack/layers.h"

#include <cctype>
#include <chrono>
#include <thread>
#include <utility>

#include "common/errors.h"
#include "common/strings.h"

namespace lce::stack {

bool looks_like_resource_id(std::string_view s) {
  std::size_t dash = s.rfind('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 9 != s.size()) return false;
  for (std::size_t i = 0; i < dash; ++i) {
    char c = s[i];
    if (!std::islower(static_cast<unsigned char>(c)) && c != '-' && c != '_') return false;
  }
  for (std::size_t i = dash + 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

Value retag_refs(const Value& v) {
  if (v.is_str() && looks_like_resource_id(v.as_str())) return Value::ref(v.as_str());
  if (v.is_list()) {
    Value::List out;
    for (const auto& e : v.as_list()) out.push_back(retag_refs(e));
    return Value(std::move(out));
  }
  if (v.is_map()) {
    Value::Map out;
    for (const auto& [k, e] : v.as_map()) out.emplace(k, retag_refs(e));
    return Value(std::move(out));
  }
  return v;
}

ApiRequest normalize_request(const ApiRequest& req) {
  ApiRequest out;
  out.api = req.api;
  out.target = req.target;
  for (const auto& [k, v] : req.args) out.args[k] = retag_refs(v);
  return out;
}

// ---------------------------------------------------------------- serialize

std::string SerializeLayer::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner().name();
}

ApiResponse SerializeLayer::invoke(const ApiRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  return inner().invoke(req);
}

void SerializeLayer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  inner().reset();
}

bool SerializeLayer::supports(const std::string& api) const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner().supports(api);
}

Value SerializeLayer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inner().snapshot();
}

std::unique_ptr<BackendLayer> SerializeLayer::clone_detached() const {
  return std::make_unique<SerializeLayer>();  // fresh mutex, no shared state
}

// ----------------------------------------------------------------- validate

ApiResponse ValidateLayer::invoke(const ApiRequest& req) {
  return inner().invoke(normalize_request(req));
}

std::unique_ptr<BackendLayer> ValidateLayer::clone_detached() const {
  return std::make_unique<ValidateLayer>();
}

// ------------------------------------------------------------------ metrics

void ApiMetrics::record(bool ok, std::uint64_t us) {
  ++calls;
  if (!ok) ++errors;
  total_us += us;
  std::size_t bucket = 0;
  for (std::uint64_t bound = 100; bucket + 1 < kBuckets && us >= bound;
       bound *= 10) {
    ++bucket;  // 100us, 1ms, 10ms, 100ms, 1s boundaries
  }
  ++histogram[bucket];
}

void ApiMetrics::merge(const ApiMetrics& o) {
  calls += o.calls;
  errors += o.errors;
  total_us += o.total_us;
  for (std::size_t i = 0; i < kBuckets; ++i) histogram[i] += o.histogram[i];
}

Value ApiMetrics::to_value() const {
  static constexpr const char* kBucketNames[kBuckets] = {
      "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "inf"};
  Value::Map hist;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    hist[kBucketNames[i]] = Value(static_cast<std::int64_t>(histogram[i]));
  }
  Value::Map out;
  out["calls"] = Value(static_cast<std::int64_t>(calls));
  out["errors"] = Value(static_cast<std::int64_t>(errors));
  out["total_us"] = Value(static_cast<std::int64_t>(total_us));
  out["latency_histogram"] = Value(std::move(hist));
  return Value(std::move(out));
}

ApiResponse MetricsLayer::invoke(const ApiRequest& req) {
  auto t0 = std::chrono::steady_clock::now();
  ApiResponse resp = inner().invoke(req);
  auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  std::lock_guard<std::mutex> lock(mu_);
  total_.record(resp.ok, us);
  by_api_[req.api].record(resp.ok, us);
  return resp;
}

Value MetricsLayer::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  Value::Map per_api;
  for (const auto& [api, m] : by_api_) per_api[api] = m.to_value();
  Value::Map out;
  out["total"] = total_.to_value();
  out["per_api"] = Value(std::move(per_api));
  return Value(std::move(out));
}

std::uint64_t MetricsLayer::calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.calls;
}

std::uint64_t MetricsLayer::errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_.errors;
}

void MetricsLayer::merge_from(const MetricsLayer& other) {
  // Copy out first: locking both in one scope risks deadlock by ordering.
  ApiMetrics other_total;
  std::map<std::string, ApiMetrics> other_by_api;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_total = other.total_;
    other_by_api = other.by_api_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  total_.merge(other_total);
  for (const auto& [api, m] : other_by_api) by_api_[api].merge(m);
}

std::unique_ptr<BackendLayer> MetricsLayer::clone_detached() const {
  auto copy = std::make_unique<MetricsLayer>();
  std::lock_guard<std::mutex> lock(mu_);
  copy->total_ = total_;
  copy->by_api_ = by_api_;
  return copy;
}

// -------------------------------------------------------------------- fault

FaultLayer::FaultLayer(std::uint64_t seed, FaultConfig cfg)
    : seed_(seed), cfg_(cfg), rng_(seed) {}

ApiResponse FaultLayer::invoke(const ApiRequest& req) {
  // Exactly one draw per invoke: the fault sequence is indexed by invoke
  // count, independent of API name or argument content.
  double u;
  {
    std::lock_guard<std::mutex> lock(mu_);
    u = rng_.unit();
    if (u < cfg_.throttle_rate + cfg_.error_rate) ++injected_;
  }
  if (u < cfg_.throttle_rate) {
    return ApiResponse::failure(
        std::string(errc::kRequestLimitExceeded),
        ErrorRegistry::instance().render_message(errc::kRequestLimitExceeded,
                                                 {{"api", req.api}}));
  }
  if (u < cfg_.throttle_rate + cfg_.error_rate) {
    return ApiResponse::failure(
        std::string(errc::kInternalError),
        ErrorRegistry::instance().render_message(errc::kInternalError, {}));
  }
  if (u < cfg_.throttle_rate + cfg_.error_rate + cfg_.delay_rate) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.delay_ms));
  }
  return inner().invoke(req);
}

void FaultLayer::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    rng_ = Rng(seed_);
    injected_ = 0;
  }
  inner().reset();
}

std::uint64_t FaultLayer::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

std::unique_ptr<BackendLayer> FaultLayer::clone_detached() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto copy = std::make_unique<FaultLayer>(seed_, cfg_);
  copy->rng_ = rng_;
  copy->injected_ = injected_;
  return copy;
}

// ------------------------------------------------------------------- record

namespace {

/// Replace every string/ref matching a previously minted id with that
/// call's "$k.id" placeholder (recursively through lists and maps).
Value portabilize(const Value& v,
                  const std::map<std::string, std::size_t, std::less<>>& minted) {
  if (v.is_str() || v.is_ref()) {
    auto it = minted.find(v.as_str());
    if (it != minted.end()) return Value(strf("$", it->second, ".id"));
    return v;
  }
  if (v.is_list()) {
    Value::List out;
    for (const auto& e : v.as_list()) out.push_back(portabilize(e, minted));
    return Value(std::move(out));
  }
  if (v.is_map()) {
    Value::Map out;
    for (const auto& [k, e] : v.as_map()) out.emplace(k, portabilize(e, minted));
    return Value(std::move(out));
  }
  return v;
}

}  // namespace

ApiResponse RecordLayer::invoke(const ApiRequest& req) {
  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ApiRequest recorded = req;
    for (auto& [k, v] : recorded.args) v = portabilize(v, minted_ids_);
    if (auto it = minted_ids_.find(recorded.target); it != minted_ids_.end()) {
      recorded.target = strf("$", it->second, ".id");
    }
    index = trace_.calls.size();
    trace_.calls.push_back(std::move(recorded));
    responses_.emplace_back();  // slot filled once the call completes
  }
  ApiResponse resp = inner().invoke(req);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A concurrent reset()/clear_trace() may have dropped our slot.
    if (index < responses_.size()) responses_[index] = resp;
    if (resp.ok) {
      const Value* id = resp.data.get("id");
      if (id != nullptr && (id->is_str() || id->is_ref())) {
        minted_ids_.emplace(id->as_str(), index);
      }
    }
  }
  return resp;
}

void RecordLayer::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trace_.calls.clear();
    responses_.clear();
    minted_ids_.clear();
  }
  inner().reset();
}

Trace RecordLayer::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

std::size_t RecordLayer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.calls.size();
}

void RecordLayer::clear_trace() {
  std::lock_guard<std::mutex> lock(mu_);
  trace_.calls.clear();
  responses_.clear();
  minted_ids_.clear();
}

std::vector<ApiResponse> RecordLayer::responses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return responses_;
}

std::unique_ptr<BackendLayer> RecordLayer::clone_detached() const {
  auto copy = std::make_unique<RecordLayer>();
  std::lock_guard<std::mutex> lock(mu_);
  copy->trace_ = trace_;
  copy->responses_ = responses_;
  copy->minted_ids_ = minted_ids_;
  return copy;
}

// --------------------------------------------------------------- read cache

bool ReadCacheLayer::is_read_api(const std::string& api) {
  return api.rfind("Describe", 0) == 0 || api.rfind("Get", 0) == 0 ||
         api.rfind("List", 0) == 0;
}

namespace {

std::string cache_key(const ApiRequest& req) {
  // Value::Map is ordered, so to_text() is a canonical rendering.
  return strf(req.api, "\x1f", req.target, "\x1f", Value(req.args).to_text());
}

}  // namespace

ApiResponse ReadCacheLayer::invoke(const ApiRequest& req) {
  if (!is_read_api(req.api)) {
    ApiResponse resp = inner().invoke(req);
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    ++generation_;
    return resp;
  }
  std::string key = cache_key(req);
  std::uint64_t gen_at_lookup;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    gen_at_lookup = generation_;
  }
  ApiResponse resp = inner().invoke(req);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Install only if no write invalidated the cache while we were reading;
    // otherwise this reply may describe pre-write state.
    if (generation_ == gen_at_lookup) cache_.emplace(key, resp);
  }
  return resp;
}

void ReadCacheLayer::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    ++generation_;
  }
  inner().reset();
}

std::uint64_t ReadCacheLayer::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ReadCacheLayer::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::unique_ptr<BackendLayer> ReadCacheLayer::clone_detached() const {
  auto copy = std::make_unique<ReadCacheLayer>();
  std::lock_guard<std::mutex> lock(mu_);
  copy->cache_ = cache_;
  copy->generation_ = generation_;
  copy->hits_ = hits_;
  copy->misses_ = misses_;
  return copy;
}

}  // namespace lce::stack
