#include "stack/layer.h"

#include <cassert>
#include <utility>

namespace lce::stack {

void BackendLayer::attach(CloudBackend& inner) {
  inner_ = &inner;
  owned_.reset();
}

void BackendLayer::attach_owned(std::unique_ptr<CloudBackend> inner) {
  inner_ = inner.get();
  owned_ = std::move(inner);
}

CloudBackend& BackendLayer::inner() {
  assert(inner_ != nullptr && "layer used before attach()");
  return *inner_;
}

const CloudBackend& BackendLayer::inner() const {
  assert(inner_ != nullptr && "layer used before attach()");
  return *inner_;
}

std::unique_ptr<CloudBackend> BackendLayer::clone() const {
  std::unique_ptr<CloudBackend> inner_clone = inner().clone();
  if (!inner_clone) return nullptr;
  std::unique_ptr<BackendLayer> layer = clone_detached();
  layer->attach_owned(std::move(inner_clone));
  return layer;
}

LayerStack::LayerStack(CloudBackend& base) : base_(&base) {}

LayerStack::LayerStack(std::unique_ptr<CloudBackend> base)
    : base_(base.get()), owned_base_(std::move(base)) {}

LayerStack& LayerStack::push(std::unique_ptr<BackendLayer> layer) {
  layer->attach(outer());
  layers_.push_back(std::move(layer));
  return *this;
}

CloudBackend& LayerStack::outer() {
  return layers_.empty() ? *base_ : *layers_.back();
}

const CloudBackend& LayerStack::outer() const {
  return layers_.empty() ? *base_ : *layers_.back();
}

std::unique_ptr<CloudBackend> LayerStack::clone() const {
  std::unique_ptr<CloudBackend> base_clone = base_->clone();
  if (!base_clone) return nullptr;
  auto copy = std::make_unique<LayerStack>(std::move(base_clone));
  for (const auto& layer : layers_) copy->push(layer->clone_detached());
  return copy;
}

std::vector<std::string> LayerStack::layer_names() const {
  std::vector<std::string> names;
  names.reserve(layers_.size());
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    names.push_back((*it)->layer_name());
  }
  return names;
}

}  // namespace lce::stack
