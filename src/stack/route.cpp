#include "stack/route.h"

#include <utility>

namespace lce::stack {

RouteLayer::RouteLayer(ReplicaTier* tier, RouteOptions opts)
    : tier_(tier), opts_(std::move(opts)) {
  hit_slots_ = tier_ != nullptr ? tier_->replica_count() : 0;
  if (hit_slots_ != 0) {
    hits_ = std::make_unique<std::atomic<std::uint64_t>[]>(hit_slots_);
    for (std::size_t i = 0; i < hit_slots_; ++i) hits_[i].store(0);
  }
}

ApiResponse RouteLayer::invoke(const ApiRequest& req) {
  const bool routable = tier_ != nullptr && hit_slots_ != 0 && opts_.read_only &&
                        opts_.read_only(req.api);
  if (!routable) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    return inner().invoke(req);
  }
  // Sample the high-water mark once; replicas only catch UP afterwards,
  // so the bound stays conservative under concurrent publication.
  const std::uint64_t head = tier_->primary_seq();
  const std::size_t n = hit_slots_;
  const std::size_t start =
      static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) % n;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    const std::uint64_t applied = tier_->replica_applied_seq(i);
    if (head - std::min(head, applied) <= opts_.lag_max) {
      hits_[i].fetch_add(1, std::memory_order_relaxed);
      replica_reads_.fetch_add(1, std::memory_order_relaxed);
      return tier_->invoke_on_replica(i, req);
    }
  }
  lag_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  primary_reads_.fetch_add(1, std::memory_order_relaxed);
  return inner().invoke(req);
}

RouteStats RouteLayer::stats() const {
  RouteStats s;
  s.replica_reads = replica_reads_.load(std::memory_order_relaxed);
  s.primary_reads = primary_reads_.load(std::memory_order_relaxed);
  s.lag_fallbacks = lag_fallbacks_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.replica_hits.reserve(hit_slots_);
  for (std::size_t i = 0; i < hit_slots_; ++i) {
    s.replica_hits.push_back(hits_[i].load(std::memory_order_relaxed));
  }
  return s;
}

std::unique_ptr<BackendLayer> RouteLayer::clone_detached() const {
  return std::make_unique<RouteLayer>(nullptr, opts_);
}

}  // namespace lce::stack
