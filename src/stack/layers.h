// The six stock layers (see layer.h for the decorator machinery and
// config.h for the canonical ordering):
//
//   SerializeLayer  mutex gate so single-threaded backends survive
//                   concurrent callers (replaces server::SerializedBackend)
//   ValidateLayer   wire-format normalization: id-shaped strings re-tagged
//                   as refs (moved out of server/service.cpp)
//   MetricsLayer    per-API call/error counters + latency histograms,
//                   snapshotable as a Value (GET /metrics)
//   FaultLayer      seeded, deterministic injection of throttling, internal
//                   errors and delays — cloud-realistic chaos for clients
//   RecordLayer     captures live calls into a replayable Trace (corpus
//                   growth from real traffic)
//   ReadCacheLayer  memoizes read-only describe calls, invalidated by any
//                   write — repeated describes skip the backend entirely
//
// Every stateful layer is internally thread-safe (its own mutex), because
// layers above SerializeLayer see concurrent callers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "stack/layer.h"

namespace lce::stack {

/// True when `s` has our resource-id shape ("vpc-00000001"): a lowercase
/// dashed prefix followed by exactly 8 digits.
bool looks_like_resource_id(std::string_view s);

/// Re-tag id-shaped strings as refs, recursively through lists and maps.
Value retag_refs(const Value& v);

/// The normalization ValidateLayer applies: every id-shaped string in the
/// args (and the target) becomes a ref, mirroring how real cloud SDKs pass
/// ids as plain strings on the wire.
ApiRequest normalize_request(const ApiRequest& req);

/// Serializes every CloudBackend operation — including supports(), which
/// the old server::SerializedBackend left unlocked — behind one mutex.
class SerializeLayer final : public BackendLayer {
 public:
  std::string layer_name() const override { return "serialize"; }

  std::string name() const override;
  ApiResponse invoke(const ApiRequest& req) override;
  void reset() override;
  bool supports(const std::string& api) const override;
  Value snapshot() const override;
  /// The gate's whole point: everything below it is serialized, so the
  /// chain from here down is safe for concurrent callers.
  bool thread_safe() const override { return true; }

 protected:
  std::unique_ptr<BackendLayer> clone_detached() const override;

 private:
  mutable std::mutex mu_;
};

/// Stateless arg normalization (see normalize_request above).
class ValidateLayer final : public BackendLayer {
 public:
  std::string layer_name() const override { return "validate"; }
  ApiResponse invoke(const ApiRequest& req) override;

 protected:
  std::unique_ptr<BackendLayer> clone_detached() const override;
};

/// Per-API counters and latency histogram for one API (or the total row).
struct ApiMetrics {
  static constexpr std::size_t kBuckets = 6;  // le_100us .. le_1s, inf
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;       // responses with !ok (incl. injected faults)
  std::uint64_t total_us = 0;     // summed wall latency
  std::array<std::uint64_t, kBuckets> histogram{};

  void record(bool ok, std::uint64_t us);
  void merge(const ApiMetrics& o);
  Value to_value() const;
};

class MetricsLayer final : public BackendLayer {
 public:
  std::string layer_name() const override { return "metrics"; }
  ApiResponse invoke(const ApiRequest& req) override;

  /// {"total": {...}, "per_api": {"CreateVpc": {...}, ...}} — each entry
  /// carries calls / errors / total_us / histogram{le_100us..inf}.
  Value metrics() const;

  std::uint64_t calls() const;
  std::uint64_t errors() const;

  /// Fold another layer's counters into this one (the parallel alignment
  /// executor aggregates per-worker metrics this way; summed counts are
  /// deterministic even though per-worker interleaving is not).
  void merge_from(const MetricsLayer& other);

 protected:
  std::unique_ptr<BackendLayer> clone_detached() const override;

 private:
  mutable std::mutex mu_;
  ApiMetrics total_;
  std::map<std::string, ApiMetrics> by_api_;
};

/// Fault-injection knobs. With one uniform draw per invoke, the decision
/// sequence is a pure function of (seed, invoke index), which is what the
/// determinism tests pin down.
struct FaultConfig {
  double throttle_rate = 0.05;  // P(RequestLimitExceeded)
  double error_rate = 0.02;     // P(InternalError)
  double delay_rate = 0.0;      // P(response delayed by delay_ms)
  int delay_ms = 5;
};

class FaultLayer final : public BackendLayer {
 public:
  explicit FaultLayer(std::uint64_t seed, FaultConfig cfg = {});

  std::string layer_name() const override { return "fault"; }
  ApiResponse invoke(const ApiRequest& req) override;
  /// reset() rewinds the fault sequence to the seed (a fresh account gets
  /// a fresh, but identical, run of luck) and forwards.
  void reset() override;

  std::uint64_t injected() const;

 protected:
  /// Clones carry the RNG *position*, so a cloned stack continues the
  /// exact fault sequence its original would have produced.
  std::unique_ptr<BackendLayer> clone_detached() const override;

 private:
  std::uint64_t seed_;
  FaultConfig cfg_;
  mutable std::mutex mu_;
  Rng rng_;
  std::uint64_t injected_ = 0;
};

/// Captures every request that reaches it into a Trace replayable via
/// run_trace / print_trace_script. Sits below ValidateLayer (records
/// normalized calls) and above ReadCacheLayer (records cache hits too).
/// Ids of resources created earlier in the recording are rewritten to
/// "$k.id" placeholders, so the captured trace is backend-portable (the
/// script format has no concrete-ref syntax; replays mint their own ids).
class RecordLayer final : public BackendLayer {
 public:
  std::string layer_name() const override { return "record"; }
  ApiResponse invoke(const ApiRequest& req) override;
  /// reset() starts a fresh recording: the captured trace always replays
  /// from a reset backend, which is what run_trace assumes.
  void reset() override;

  Trace trace() const;
  std::size_t recorded() const;
  void clear_trace();

  /// Responses index-aligned with trace().calls (a call that is still in
  /// flight holds a default-constructed slot). Together with the trace
  /// this is everything `lce trace export` writes into a record file.
  std::vector<ApiResponse> responses() const;

 protected:
  std::unique_ptr<BackendLayer> clone_detached() const override;

 private:
  mutable std::mutex mu_;
  Trace trace_;
  std::vector<ApiResponse> responses_;  // index-aligned with trace_.calls
  /// id string -> index of the recorded call whose response minted it.
  std::map<std::string, std::size_t, std::less<>> minted_ids_;
};

/// Memoizes read-only calls (Describe*/Get*/List* by API-name convention,
/// matching the corpus naming). ANY other API is treated as a write and
/// invalidates the whole cache. A generation counter closes the lookup/
/// fill race: a read that raced a write must not install its stale reply.
class ReadCacheLayer final : public BackendLayer {
 public:
  std::string layer_name() const override { return "read_cache"; }
  ApiResponse invoke(const ApiRequest& req) override;
  void reset() override;

  static bool is_read_api(const std::string& api);

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 protected:
  std::unique_ptr<BackendLayer> clone_detached() const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ApiResponse> cache_;
  std::uint64_t generation_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lce::stack
