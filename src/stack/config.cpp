#include "stack/config.h"

#include <utility>

namespace lce::stack {

namespace {

void push_layers(LayerStack& stack, const StackConfig& config,
                 bool base_thread_safe) {
  // push() wraps the current outermost, so push in inner-to-outer order
  // (the reverse of the request path documented in the header).
  bool serialize = config.serialize == SerializeMode::kOn ||
                   (config.serialize == SerializeMode::kAuto && !base_thread_safe);
  if (serialize) stack.push(std::make_unique<SerializeLayer>());
  if (config.read_cache) stack.push(std::make_unique<ReadCacheLayer>());
  if (config.record) stack.push(std::make_unique<RecordLayer>());
  if (config.journal) stack.push(config.journal());
  if (config.route) stack.push(config.route());
  if (config.validate) stack.push(std::make_unique<ValidateLayer>());
  if (config.fault_seed) {
    stack.push(std::make_unique<FaultLayer>(*config.fault_seed, config.fault));
  }
  if (config.metrics) stack.push(std::make_unique<MetricsLayer>());
}

}  // namespace

LayerStack build_stack(CloudBackend& base, const StackConfig& config) {
  bool safe = base.thread_safe();
  LayerStack stack(base);
  push_layers(stack, config, safe);
  return stack;
}

LayerStack build_stack(std::unique_ptr<CloudBackend> base,
                       const StackConfig& config) {
  bool safe = base->thread_safe();
  LayerStack stack(std::move(base));
  push_layers(stack, config, safe);
  return stack;
}

}  // namespace lce::stack
