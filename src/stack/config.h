// Declarative stack construction: which layers to install, in the one
// canonical order. Consumers (the HTTP endpoint, the core pipeline, the
// CLI) carry a StackConfig instead of hand-wiring decorators.
//
// Canonical order, outermost (sees requests first) to innermost:
//
//   metrics -> fault -> validate -> route -> journal -> record
//     -> read_cache -> serialize -> base
//
// Rationale: metrics observes everything including injected faults;
// faults fire at the front door before any real work; validation
// normalizes args so the journal logs (and the recorder captures)
// replayable calls and the cache keys canonical requests; the route
// layer sits below validate (replicas apply normalized WAL records, so
// routed reads must carry the same normalized shape) and above the
// journal (a replica-served read never touches the primary's WAL gate);
// the journal sits below validate so the WAL holds normalized calls but
// above the cache so cache hits are not journaled as writes; the read
// cache sits above serialize so cache hits never take the backend mutex;
// serialize is the innermost gate protecting single-threaded backends.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "stack/layers.h"

namespace lce::stack {

/// Whether to install the SerializeLayer compatibility gate.
///   kAuto  install only when the base backend reports thread_safe() ==
///          false — the sharded interpreter runs gate-free, while plain
///          single-threaded backends (the reference cloud, baselines)
///          keep the old whole-backend mutex. The default.
///   kOn    always install (forced compatibility / benchmarking the
///          serialized path).
///   kOff   never install — the caller guarantees the base is safe or
///          that access is single-threaded.
enum class SerializeMode { kAuto, kOn, kOff };

struct StackConfig {
  SerializeMode serialize = SerializeMode::kAuto;
  bool validate = true;
  bool metrics = true;
  bool read_cache = false;
  bool record = false;
  /// Engaged => install a FaultLayer seeded with this value.
  std::optional<std::uint64_t> fault_seed;
  FaultConfig fault;
  /// Engaged => the factory's layer is installed between validate and
  /// record. The durability subsystem (src/persist) injects its
  /// JournalLayer here, keeping lce_stack free of a persist dependency.
  std::function<std::unique_ptr<BackendLayer>()> journal;
  /// Engaged => the factory's layer is installed between validate and
  /// journal. The replication tier (src/persist/replica.h) injects a
  /// RouteLayer here, keeping lce_stack free of a persist dependency.
  std::function<std::unique_ptr<BackendLayer>()> route;
};

/// Build the configured stack around a base backend the caller keeps
/// alive. An all-false config yields a zero-layer stack that forwards
/// straight to the base.
LayerStack build_stack(CloudBackend& base, const StackConfig& config = {});

/// Owning variant (clone chains, handed-off backends).
LayerStack build_stack(std::unique_ptr<CloudBackend> base,
                       const StackConfig& config = {});

}  // namespace lce::stack
