// Entry point of the compiled-plan execution path. Semantics are defined
// by the tree-walking reference interpreter; the differential equivalence
// suite (tests/interp/plan_equivalence_test.cpp) holds the two paths to
// byte-identical responses, canonical dumps and alignment reports.
#pragma once

#include "common/api.h"
#include "interp/interpreter.h"
#include "interp/plan/plan.h"
#include "interp/store.h"

namespace lce::interp::plan {

/// Execute one request against `store` under `plan`. Takes/releases shard
/// locks per the transition's cached lock plan, rolls back on abort, and
/// fills `site_out` with the failure breadcrumb (origin kNone on success).
ApiResponse run_plan(const ExecutionPlan& plan, const InterpreterOptions& opts,
                     ResourceStore& store, const ApiRequest& req, FailureSite& site_out);

}  // namespace lce::interp::plan
