// Lock-footprint classification for transitions (moved out of the
// interpreter so the plan compiler can cache the result per transition
// while the tree-walk reference path keeps classifying per invoke).
//
//   kReadShared  no writes at all — shared-lock every shard; concurrent
//                describes run fully in parallel.
//   kWriteLocal  all touched state is reachable from ids known up front
//                (the target / preminted id and ref-valued arguments) —
//                exclusively lock just those shards; unrelated resources
//                keep flowing.
//   kWriteAll    the footprint is dynamic (nested call(), destroy's child
//                scan/promotion, sibling scans, derefs of non-parameter
//                refs) — exclusively lock everything. Correct, never
//                fast; the classifier falls back here whenever in doubt.
#include "interp/plan/plan.h"

#include <set>

namespace lce::interp::plan {

namespace {

using spec::Expr;
using spec::ExprKind;
using spec::StmtKind;
using spec::Transition;
using spec::TransitionKind;

struct BodyTraits {
  bool writes = false;
  bool attaches = false;
  bool calls = false;
  bool local = true;
};

using ParamNames = std::set<std::string, std::less<>>;

/// Builtins that never touch the store.
bool pure_builtin(const std::string& name) {
  switch (builtin_from_name(name)) {
    case Builtin::kIsNull:
    case Builtin::kLen:
    case Builtin::kInList:
    case Builtin::kCidrValid:
    case Builtin::kCidrPrefixLen:
    case Builtin::kCidrWithin:
    case Builtin::kCidrOverlaps:
      return true;
    default:
      return false;
  }
}

/// True when evaluating `e` can only dereference resources whose shards a
/// kWriteLocal plan has locked: self (the target / preminted id) and
/// ref-valued declared parameters (every ref in the args is collected
/// into the lockset). Anything else — nested field paths, store scans,
/// refs read out of attributes — is non-local.
bool expr_local(const Expr& e, const ParamNames& params) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kSelf:
    case ExprKind::kVar:  // value read from params or self attrs, no deref
      return true;
    case ExprKind::kField:
      return e.kids[0]->kind == ExprKind::kSelf ||
             (e.kids[0]->kind == ExprKind::kVar &&
              params.contains(e.kids[0]->name));
    case ExprKind::kUnary:
    case ExprKind::kBinary: {
      for (const auto& k : e.kids) {
        if (!expr_local(*k, params)) return false;
      }
      return true;
    }
    case ExprKind::kBuiltin: {
      if (pure_builtin(e.name)) {
        for (const auto& k : e.kids) {
          if (!expr_local(*k, params)) return false;
        }
        return true;
      }
      if (e.name == "exists") {
        // exists(param[, "Type"]) dereferences exactly the param ref.
        if (e.kids.empty()) return true;
        if (e.kids[0]->kind != ExprKind::kVar ||
            !params.contains(e.kids[0]->name)) {
          return false;
        }
        for (std::size_t i = 1; i < e.kids.size(); ++i) {
          if (e.kids[i]->kind != ExprKind::kLiteral) return false;
        }
        return true;
      }
      // child_count, sibling_cidr_conflict, unknown builtins: store scans.
      return false;
    }
  }
  return false;
}

void scan_body(const spec::Body& body, const ParamNames& params, BodyTraits& out) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::kWrite:
        out.writes = true;
        out.local = out.local && expr_local(*s->expr, params);
        break;
      case StmtKind::kRead:
        break;
      case StmtKind::kAssert:
        out.local = out.local && expr_local(*s->expr, params);
        break;
      case StmtKind::kCall:
        out.calls = true;
        break;
      case StmtKind::kAttachParent:
        out.attaches = true;
        // The parent must be a declared param so its shard is locked.
        out.local = out.local && s->expr->kind == ExprKind::kVar &&
                    params.contains(s->expr->name);
        break;
      case StmtKind::kIf:
        out.local = out.local && expr_local(*s->expr, params);
        scan_body(s->then_body, params, out);
        scan_body(s->else_body, params, out);
        break;
    }
  }
}

}  // namespace

LockPlan classify_transition(const Transition& t) {
  ParamNames params;
  for (const auto& p : t.params) params.insert(p.name);
  BodyTraits traits;
  scan_body(t.body, params, traits);
  bool mutates = traits.writes || traits.attaches || traits.calls ||
                 t.kind == TransitionKind::kCreate ||
                 t.kind == TransitionKind::kDestroy;
  if (!mutates) return {LockMode::kReadShared, false};
  // destroy scans children (guard + promotion); call() reaches arbitrary
  // resources; non-local bodies deref refs we cannot enumerate up front.
  // Attaches outside create need the full cycle walk over arbitrary
  // ancestor shards, so they lock everything too — only a CREATE attach
  // has the fresh-child guarantee attach_created() relies on.
  if (traits.calls || t.kind == TransitionKind::kDestroy || !traits.local ||
      (traits.attaches && t.kind != TransitionKind::kCreate)) {
    return {LockMode::kWriteAll, false};
  }
  return {LockMode::kWriteLocal, traits.attaches};
}

}  // namespace lce::interp::plan
