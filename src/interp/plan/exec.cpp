// Executes compiled plans: a mirror of the tree-walking Execution in
// interpreter.cpp with every name already resolved — dispatch and lock
// mode are table lookups, parameters live in a flat slot vector, state
// variables are read and written by interned KeyId straight into the
// Resource's compact attrs map, and expressions run as postorder op
// arrays over a reused value stack. Any behavioral difference from the
// reference path is a bug; see the equivalence suite.
#include "interp/plan/exec.h"

#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/cidr.h"
#include "common/errors.h"
#include "common/strings.h"
#include "interp/exec_internal.h"
#include "interp/timers.h"

namespace lce::interp::plan {

namespace {

using internal::Abort;
using internal::UndoJournal;
using spec::StateMachine;
using spec::TransitionKind;

/// Interned key for the response's "id" field (every payload carries it).
KeyId id_key() {
  static const KeyId k = intern_key("id");
  return k;
}

// Per-request containers draw from the request arena (ArenaAlloc pins
// the active arena at construction; PlanExecution and every PlanFrame
// live strictly inside the invoke's ArenaScope), so steady-state
// requests do no container mallocs at all.
using ValueVec = std::vector<Value, ArenaAlloc<Value>>;

struct PlanFrame {
  const MachinePlan* mp = nullptr;
  const CompiledTransition* ct = nullptr;
  Resource* self = nullptr;
  ValueVec params;  // indexed by the transition's param order
  // read() outputs in execution order; duplicate vars overwrite when
  // merged into the response map, matching the tree-walk's reads map.
  std::vector<std::pair<const std::string*, Value>,
              ArenaAlloc<std::pair<const std::string*, Value>>>
      reads;
};

class PlanExecution {
 public:
  PlanExecution(const ExecutionPlan& plan, const InterpreterOptions& opts,
                ResourceStore& store)
      : plan_(plan), opts_(opts), store_(store) {}

  ApiResponse run(const ApiRequest& req, FailureSite& site_out) {
    site_out = FailureSite{};
    const CompiledTransition* ct = plan_.find_api(req.api);
    if (ct == nullptr) {
      site_out.origin = FailureSite::Origin::kDispatch;
      site_out.error_code = std::string(errc::kInvalidAction);
      return fail("", "", std::string(errc::kInvalidAction), {{"api", req.api}});
    }

    const StateMachine& machine = *ct->machine;
    std::string target = !req.target.empty() ? req.target
                         : req.args.count("id") != 0
                             ? std::string(req.args.at("id").as_str())
                             : "";
    mode_ = ct->lock.mode;
    StripedRwLock::Guard guard;
    switch (mode_) {
      case LockMode::kReadShared:
        // Compile-time locality analysis: a body that provably reads
        // nothing beyond the target needs only the target's shard.
        guard = ct->lock.self_only
                    ? store_.locks().lock_shared_one(store_.shard_of(target))
                    : store_.locks().lock_shared_all();
        break;
      case LockMode::kWriteAll:
        guard = store_.locks().lock_exclusive_all();
        break;
      case LockMode::kWriteLocal: {
        // Mint BEFORE locking so the new resource's shard joins the
        // ordered acquisition set (minting is internally synchronized
        // and journaled for rollback).
        if (ct->kind == TransitionKind::kCreate) {
          preminted_ = store_.mint_id(machine.id_prefix);
          journal_.note_minted(std::string(machine.id_prefix.empty()
                                               ? std::string_view("res")
                                               : std::string_view(machine.id_prefix)),
                               internal::id_suffix_counter(preminted_));
        }
        std::vector<std::size_t> shards;
        shards.reserve(4);  // premint + target + a couple of ref args
        if (!preminted_.empty()) shards.push_back(store_.shard_of(preminted_));
        if (!target.empty()) shards.push_back(store_.shard_of(target));
        for (const auto& [_, v] : req.args) {
          internal::collect_ref_shards(v, store_, shards);
        }
        guard = store_.locks().lock_exclusive(std::move(shards));
        break;
      }
    }

    try {
      ApiResponse resp = run_transition(plan_.machine(ct->machine_index), *ct,
                                        &req.args, nullptr, target);
      commit_timers();
      return resp;
    } catch (const Abort& a) {
      // Transactional semantics: a failed transition must leave no
      // partial writes behind. Undo in reverse under the locks we hold.
      journal_.rollback(store_);
      site_out = a.site;
      return a.response;
    }
  }

 private:
  [[noreturn]] void abort_with(std::string code,
                               const std::vector<std::pair<std::string, std::string>>& fields,
                               const std::string& machine, const std::string& transition,
                               std::string note = "",
                               FailureSite::Origin origin = FailureSite::Origin::kDispatch,
                               std::string assert_text = "") {
    std::string msg = note.empty()
                          ? ErrorRegistry::instance().render_message(code, fields)
                          : note;
    if (opts_.decoder) msg = opts_.decoder(machine, transition, code, msg);
    FailureSite site;
    site.machine = machine;
    site.transition = transition;
    site.error_code = code;
    site.assert_text = std::move(assert_text);
    site.origin = origin;
    throw Abort{ApiResponse::failure(std::move(code), std::move(msg)), std::move(site)};
  }

  ApiResponse fail(const std::string& machine, const std::string& transition, std::string code,
                   const std::vector<std::pair<std::string, std::string>>& fields) {
    std::string msg = ErrorRegistry::instance().render_message(code, fields);
    if (opts_.decoder) msg = opts_.decoder(machine, transition, code, msg);
    return ApiResponse::failure(std::move(code), std::move(msg));
  }

  /// Current value of declared state `slot` on `r` (machine plan `mp`),
  /// nullptr when the attribute is absent: one integer-keyed probe of the
  /// compact attrs map — no string hashing or comparison, no allocation.
  static const Value* state_value(const Resource& r, const MachinePlan& mp,
                                  std::uint32_t slot) {
    return r.attrs.get(mp.slot_key(slot));
  }

  /// Create the target of a kCreate transition. The top-level create of a
  /// kWriteLocal plan consumes the preminted id; everything else (serial
  /// plans, nested creates reached via call() under kWriteAll) mints here.
  Resource& make_resource(const StateMachine& machine) {
    std::string id;
    if (!preminted_.empty()) {
      id = std::move(preminted_);
      preminted_.clear();
    } else {
      id = store_.mint_id(machine.id_prefix);
      journal_.note_minted(std::string(machine.id_prefix.empty()
                                           ? std::string_view("res")
                                           : std::string_view(machine.id_prefix)),
                           internal::id_suffix_counter(id));
    }
    Resource& r = store_.create_with_id(std::move(id), machine.name);
    journal_.note_created(r.id);
    return r;
  }

  /// Mirror of the tree-walk's commit_timers(): reconcile `after` clauses
  /// for every touched resource in touch order (first touch wins) while
  /// the shard locks are still held. Aborts never reach this.
  void commit_timers() {
    for (std::size_t i = 0; i < timer_touched_.size(); ++i) {
      const auto& [id, machine] = timer_touched_[i];
      bool seen = false;
      for (std::size_t j = 0; j < i && !seen; ++j) seen = timer_touched_[j].first == id;
      if (seen) continue;
      if (const Resource* r = store_.find(id)) {
        timers::reconcile(store_, *machine, *r);
      } else {
        store_.timers().cancel_resource(id);
      }
    }
  }

  /// `named` (top-level request args) and `positional` (sub-call argument
  /// values, aligned to the callee's param order) are the two argument
  /// sources; exactly one is non-null. Positional values are moved out.
  ApiResponse run_transition(const MachinePlan& mp, const CompiledTransition& ct,
                             const Value::Map* named, ValueVec* positional,
                             const std::string& target) {
    const StateMachine& machine = *ct.machine;
    const std::string& tname = ct.src->name;
    if (++depth_ > opts_.max_call_depth) {
      abort_with(std::string(errc::kInternalError), {}, machine.name, tname,
                 "call depth limit exceeded", FailureSite::Origin::kFramework);
    }
    PlanFrame frame;
    frame.mp = &mp;
    frame.ct = &ct;

    // Bind parameters into their slots.
    frame.params.resize(ct.params.size());
    for (std::size_t i = 0; i < ct.params.size(); ++i) {
      const auto& p = ct.params[i];
      const Value* src = nullptr;
      if (named != nullptr) {
        auto it = named->find(*p.name);
        if (it != named->end()) src = &it->second;
      } else if (positional != nullptr && i < positional->size()) {
        src = &(*positional)[i];
      }
      if (src == nullptr) {
        if (opts_.validate_params) {
          abort_with(std::string(errc::kMissingParameter), {{"param", *p.name}},
                     machine.name, tname);
        }
        continue;  // slot stays null
      }
      if (opts_.validate_params && !src->is_null() && !p.type->admits(*src)) {
        abort_with(std::string(errc::kInvalidParameterValue),
                   {{"param", *p.name}, {"value", src->to_text()}}, machine.name,
                   tname);
      }
      if (positional != nullptr) {
        frame.params[i] = std::move((*positional)[i]);
      } else {
        frame.params[i] = *src;
      }
    }

    // Resolve or create the target instance.
    if (ct.kind == TransitionKind::kCreate) {
      Resource& r = make_resource(machine);
      {
        // Wholesale copy of the precompiled defaults map — same contents
        // as inserting machine.states one by one, at one compact-rep copy.
        // Store write: pause the arena so the copy is heap-backed.
        ArenaPause pause;
        r.attrs = mp.attr_prototype;
      }
      if (mp.has_timers) timer_touched_.emplace_back(r.id, &machine);
      frame.self = &r;
    } else {
      Resource* r = store_.find(target);
      if (r == nullptr || r->type != machine.name) {
        abort_with(std::string(errc::kResourceNotFound),
                   {{"resource", machine.name}, {"id", target.empty() ? "(none)" : target}},
                   machine.name, tname);
      }
      frame.self = r;
    }
    // A call() in the body can create or destroy arbitrary resources, so
    // the tree-walk defensively re-resolves the target by a copied id
    // after the body runs. Compilation knows whether a call exists: plans
    // without one keep the resolved pointer and borrow the id in place
    // (destroy still copies — the id must outlive store_.destroy()).
    const bool self_stable =
        !ct.body_calls && ct.kind != TransitionKind::kDestroy;
    std::string self_id_storage;
    if (!self_stable) self_id_storage = frame.self->id;
    const std::string& self_id = self_stable ? frame.self->id : self_id_storage;

    exec_body(ct.body, frame);

    // Built-in hierarchy guards (paper §1).
    if (opts_.hierarchy_guards) {
      if (ct.kind == TransitionKind::kDestroy && store_.child_count(self_id) != 0) {
        abort_with(std::string(errc::kDependencyViolation),
                   {{"resource", machine.name}, {"id", self_id}}, machine.name,
                   tname, "", FailureSite::Origin::kFramework);
      }
      if (ct.kind == TransitionKind::kCreate && !machine.parent_type.empty()) {
        Resource* self = self_stable ? frame.self : store_.find(self_id);
        if (self != nullptr && self->parent_id.empty()) {
          abort_with(std::string(errc::kValidationError),
                     {{"param", "parent"}}, machine.name, tname,
                     strf("created ", machine.name,
                          " was never attached to its containment parent (",
                          machine.parent_type, ")"),
                     FailureSite::Origin::kFramework);
        }
      }
    }

    // Build the response payload directly in Value's compact form (rep
    // blocks come from the request arena when one is active; the caller
    // detaches the response). Create/describe emit the target's full
    // state; the precompiled sorted slot order makes every set() hit the
    // flat map's append fast path instead of a search + shift.
    Value data = Value::empty_map();
    Resource* self = self_stable ? frame.self : store_.find(self_id);
    bool full_state = (ct.kind == TransitionKind::kCreate ||
                       ct.kind == TransitionKind::kDescribe) &&
                      self != nullptr;
    if (full_state && mp.sorted_response) {
      for (std::uint32_t i = 0; i <= mp.response_order.size(); ++i) {
        if (i == mp.id_response_pos) data.set(id_key(), Value::ref(self_id));
        if (i == mp.response_order.size()) break;
        std::uint32_t slot = mp.response_order[i];
        const Value* v = state_value(*self, mp, slot);
        data.set(mp.slot_key(slot), v != nullptr ? *v : Value());
      }
    } else {
      data.set(id_key(), Value::ref(self_id));
      if (full_state) {
        for (std::uint32_t slot = 0; slot < mp.slot_count(); ++slot) {
          const Value* v = state_value(*self, mp, slot);
          data.set(mp.slot_key(slot), v != nullptr ? *v : Value());
        }
      }
    }
    for (auto& [k, v] : frame.reads) data.set(*k, std::move(v));
    if (ct.kind == TransitionKind::kDestroy) {
      // Journal the full before-image plus every child whose parent link
      // the promotion pass clears (destroy runs under kWriteAll, so the
      // scan is safe).
      for (const auto& child_id : store_.children_of(self_id)) {
        if (const Resource* child = store_.find(child_id)) {
          journal_.note_modified(*child);
        }
      }
      if (self != nullptr) journal_.note_destroyed(*self);
      store_.destroy(self_id);
      if (mp.has_timers) timer_touched_.emplace_back(self_id, &machine);
    }
    --depth_;
    return ApiResponse::success(std::move(data));
  }

  void exec_body(const std::vector<CompiledStmt>& body, PlanFrame& frame) {
    for (const auto& s : body) exec_stmt(s, frame);
  }

  void exec_stmt(const CompiledStmt& s, PlanFrame& frame) {
    const std::string& mname = frame.ct->machine->name;
    const std::string& tname = frame.ct->src->name;
    switch (s.kind) {
      case spec::StmtKind::kWrite: {
        Value v = eval(s.expr, frame);
        if (s.state == nullptr) {
          abort_with(std::string(errc::kInternalError), {}, mname, tname,
                     strf("write to undeclared state '", *s.var, "'"));
        }
        if (!v.is_null() && !s.state->type.admits(v)) {
          abort_with(std::string(errc::kInvalidParameterValue),
                     {{"param", *s.var}, {"value", v.to_text()}}, mname, tname, "",
                     FailureSite::Origin::kWriteCheck, *s.var);
        }
        if (!s.skip_journal || depth_ != 1) journal_.note_modified(*frame.self);
        v.detach();  // store write: the value outlives the request
        frame.self->attrs.set(frame.mp->slot_key(s.slot), std::move(v));
        if (frame.mp->has_timers) {
          timer_touched_.emplace_back(frame.self->id, frame.ct->machine);
        }
        return;
      }
      case spec::StmtKind::kRead: {
        const Value* v = s.slot != kNoSlot
                             ? state_value(*frame.self, *frame.mp, s.slot)
                             : frame.self->attrs.get(*s.var);
        frame.reads.emplace_back(s.var, v != nullptr ? *v : Value());
        return;
      }
      case spec::StmtKind::kAssert: {
        if (!eval(s.expr, frame).truthy()) {
          // The {value}/{param} message fields name the first variable the
          // predicate mentions and its current value — the argument the
          // caller most likely got wrong. Text pieces were precomputed.
          std::string param = s.has_first_var ? s.first_var_name : *s.var;
          std::string value = s.has_first_var ? eval(s.first_var_prog, frame).to_text()
                                              : s.assert_text;
          abort_with(*s.error_code,
                     {{"resource", mname},
                      {"id", frame.self->id},
                      {"api", tname},
                      {"param", param},
                      {"value", value}},
                     mname, tname, *s.error_note, FailureSite::Origin::kAssert,
                     s.assert_text);
        }
        return;
      }
      case spec::StmtKind::kCall: {
        Value target = eval(s.expr, frame);
        if (!target.is_ref()) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", "resource"}, {"id", target.to_text()}}, mname, tname);
        }
        Resource* callee_res = store_.find(target.as_str());
        if (callee_res == nullptr) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", "resource"}, {"id", std::string(target.as_str())}},
                     mname, tname);
        }
        const MachinePlan* callee_mp = plan_.machine_for_type(callee_res->type);
        const CompiledTransition* callee_ct =
            callee_mp != nullptr ? s.callee_by_machine[callee_mp->index] : nullptr;
        if (callee_ct == nullptr) {
          abort_with(std::string(errc::kInternalError), {}, mname, tname,
                     strf("call to unknown transition '", *s.callee, "' on type '",
                          callee_res->type, "'"));
        }
        // Positional argument binding: evaluate into a flat vector the
        // callee binds by slot — no per-call arg map.
        std::size_t argc = std::min(s.args.size(), callee_ct->params.size());
        ValueVec args;
        args.reserve(argc);
        for (std::size_t i = 0; i < argc; ++i) args.push_back(eval(s.args[i], frame));
        ApiResponse resp = run_transition(*callee_mp, *callee_ct, nullptr, &args,
                                          callee_res->id);
        if (!resp.ok) throw Abort{resp, {}};  // propagate (already decoded)
        return;
      }
      case spec::StmtKind::kAttachParent: {
        Value parent = eval(s.expr, frame);
        const Resource* p = parent.is_ref() ? store_.find(parent.as_str()) : nullptr;
        if (p == nullptr || (!frame.ct->machine->parent_type.empty() &&
                             p->type != frame.ct->machine->parent_type)) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", frame.ct->machine->parent_type},
                      {"id", parent.is_ref() ? std::string(parent.as_str())
                                             : parent.to_text()}},
                     mname, tname);
        }
        journal_.note_modified(*frame.self);
        if (mode_ == LockMode::kWriteLocal) {
          // Write-local implies a create body (classify_transition): self
          // is the freshly minted child, so no cycle walk is needed or
          // legal.
          store_.attach_created(frame.self->id, p->id);
        } else {
          store_.attach(frame.self->id, p->id);
        }
        return;
      }
      case spec::StmtKind::kIf: {
        if (eval(s.expr, frame).truthy()) {
          exec_body(s.then_body, frame);
        } else {
          exec_body(s.else_body, frame);
        }
        return;
      }
    }
  }

  // ----------------------------------------------------------- flat eval --

  Value eval(const ExprProgram& prog, PlanFrame& frame) {
    // Evaluations never nest (builtins do not re-enter eval, and call()
    // finishes each argument before the next), so one reused stack works.
    ValueVec& st = stack_;
    st.clear();
    const std::vector<Op>& ops = prog.ops;
    std::size_t pc = 0;
    while (pc < ops.size()) {
      const Op& op = ops[pc];
      switch (op.code) {
        case OpCode::kPushLiteral:
          st.push_back(*op.lit);
          break;
        case OpCode::kPushSelf:
          st.push_back(Value::ref(frame.self->id));
          break;
        case OpCode::kPushParam:
          st.push_back(frame.params[op.a]);
          break;
        case OpCode::kPushState: {
          const Value* v = state_value(*frame.self, *frame.mp, op.a);
          st.push_back(v != nullptr ? *v : Value());
          break;
        }
        case OpCode::kPushDynamic: {
          const Value* v = frame.self->attrs.get(*op.name);
          st.push_back(v != nullptr ? *v : Value());
          break;
        }
        case OpCode::kSelfField: {
          switch (static_cast<FieldKind>(op.a)) {
            case FieldKind::kId:
              st.push_back(Value::ref(frame.self->id));
              break;
            case FieldKind::kParent:
              st.push_back(frame.self->parent_id.empty()
                               ? Value()
                               : Value::ref(frame.self->parent_id));
              break;
            case FieldKind::kAttr: {
              const Value* v = op.b != kNoSlot
                                   ? state_value(*frame.self, *frame.mp, op.b)
                                   : frame.self->attrs.get(*op.name);
              st.push_back(v != nullptr ? *v : Value());
              break;
            }
          }
          break;
        }
        case OpCode::kField: {
          Value base = std::move(st.back());
          st.pop_back();
          if (!base.is_ref()) {
            st.push_back(Value());
            break;
          }
          if (static_cast<FieldKind>(op.a) == FieldKind::kId) {
            st.push_back(std::move(base));
            break;
          }
          const Resource* r = store_.find(base.as_str());
          if (r == nullptr) {
            st.push_back(Value());
            break;
          }
          if (static_cast<FieldKind>(op.a) == FieldKind::kParent) {
            st.push_back(r->parent_id.empty() ? Value() : Value::ref(r->parent_id));
            break;
          }
          const Value* v = r->attrs.get(*op.name);
          st.push_back(v != nullptr ? *v : Value());
          break;
        }
        case OpCode::kNot:
          st.back() = Value(!st.back().truthy());
          break;
        case OpCode::kNeg:
          st.back() = Value(-st.back().as_int());
          break;
        case OpCode::kEq:
        case OpCode::kNe:
        case OpCode::kLt:
        case OpCode::kLe:
        case OpCode::kGt:
        case OpCode::kGe:
        case OpCode::kAdd:
        case OpCode::kSub: {
          Value r = std::move(st.back());
          st.pop_back();
          Value& l = st.back();
          switch (op.code) {
            case OpCode::kEq: l = Value(l == r); break;
            case OpCode::kNe: l = Value(!(l == r)); break;
            case OpCode::kLt: l = Value(l < r); break;
            case OpCode::kLe: l = Value(l < r || l == r); break;
            case OpCode::kGt: l = Value(r < l); break;
            case OpCode::kGe: l = Value(r < l || l == r); break;
            case OpCode::kAdd: l = Value(l.as_int() + r.as_int()); break;
            case OpCode::kSub: l = Value(l.as_int() - r.as_int()); break;
            default: break;
          }
          break;
        }
        case OpCode::kAndProbe:
          if (!st.back().truthy()) {
            st.back() = Value(false);
            pc = op.a;
            continue;
          }
          st.pop_back();
          break;
        case OpCode::kOrProbe:
          if (st.back().truthy()) {
            st.back() = Value(true);
            pc = op.a;
            continue;
          }
          st.pop_back();
          break;
        case OpCode::kToBool:
          st.back() = Value(st.back().truthy());
          break;
        case OpCode::kBuiltin: {
          std::size_t base = st.size() - op.b;
          Value out = eval_builtin(static_cast<Builtin>(op.a), st, base, op.b, frame);
          st.resize(base);
          st.push_back(std::move(out));
          break;
        }
      }
      ++pc;
    }
    Value out = std::move(st.back());
    st.clear();
    return out;
  }

  Value eval_builtin(Builtin b, const ValueVec& st, std::size_t base,
                     std::size_t argc, PlanFrame& frame) {
    static const Value kNull;
    auto arg = [&](std::size_t i) -> const Value& {
      return i < argc ? st[base + i] : kNull;
    };
    switch (b) {
      case Builtin::kIsNull:
        return Value(arg(0).is_null());
      case Builtin::kLen: {
        const Value& v = arg(0);
        if (v.is_list()) return Value(static_cast<std::int64_t>(v.as_list().size()));
        if (v.is_str()) return Value(static_cast<std::int64_t>(v.as_str().size()));
        return Value(0);
      }
      case Builtin::kInList: {
        const Value& needle = arg(0);
        for (std::size_t i = 1; i < argc; ++i) {
          if (arg(i) == needle) return Value(true);
        }
        return Value(false);
      }
      case Builtin::kCidrValid:
        return Value(Cidr::parse(arg(0).as_str()).has_value());
      case Builtin::kCidrPrefixLen: {
        auto c = Cidr::parse(arg(0).as_str());
        return Value(c ? static_cast<std::int64_t>(c->prefix_len()) : -1);
      }
      case Builtin::kCidrWithin: {
        auto inner = Cidr::parse(arg(0).as_str());
        auto outer = Cidr::parse(arg(1).as_str());
        return Value(inner && outer && outer->contains(*inner));
      }
      case Builtin::kCidrOverlaps: {
        auto a = Cidr::parse(arg(0).as_str());
        auto c = Cidr::parse(arg(1).as_str());
        return Value(a && c && a->overlaps(*c));
      }
      case Builtin::kChildCount:
        return Value(static_cast<std::int64_t>(
            store_.child_count(frame.self->id, arg(0).as_str())));
      case Builtin::kSiblingCidrConflict: {
        auto mine = Cidr::parse(arg(0).as_str());
        if (!mine) return Value(false);
        // Optional second arg: which sibling attribute holds the block
        // (defaults to the AWS-style "cidr_block").
        std::string_view attr =
            argc > 1 ? arg(1).as_str() : std::string_view("cidr_block");
        for (const auto& sid : store_.siblings_of(frame.self->id)) {
          const Resource* sib = store_.find(sid);
          if (sib == nullptr) continue;
          const Value* block = sib->attrs.get(attr);
          if (block == nullptr) continue;
          auto theirs = Cidr::parse(block->as_str());
          if (theirs && mine->overlaps(*theirs)) return Value(true);
        }
        return Value(false);
      }
      case Builtin::kExists: {
        const Value& v = arg(0);
        if (!v.is_ref()) return Value(false);
        const Resource* r = store_.find(v.as_str());
        if (r == nullptr) return Value(false);
        if (argc > 1) return Value(r->type == arg(1).as_str());
        return Value(true);
      }
      case Builtin::kUnknown:
        break;
    }
    return Value();
  }

  const ExecutionPlan& plan_;
  const InterpreterOptions& opts_;
  ResourceStore& store_;
  UndoJournal journal_;
  LockMode mode_ = LockMode::kWriteAll;
  std::string preminted_;  // create id minted before locking (kWriteLocal)
  int depth_ = 0;
  ValueVec stack_;  // reused expression value stack
  // Resources whose timer clauses need commit-time reconciliation, in
  // touch order (empty for machines without `after` clauses). Plain heap
  // vector: entries outlive no request, but ids must survive a destroy.
  std::vector<std::pair<std::string, const StateMachine*>> timer_touched_;
};

}  // namespace

ApiResponse run_plan(const ExecutionPlan& plan, const InterpreterOptions& opts,
                     ResourceStore& store, const ApiRequest& req, FailureSite& site_out) {
  return PlanExecution(plan, opts, store).run(req, site_out);
}

}  // namespace lce::interp::plan
