// Compiled execution plans (DESIGN.md "Compiled execution plans"): the
// spec compiler that turns a SpecSet into a pre-resolved, immutable
// ExecutionPlan shared by an Interpreter and all of its clones. The
// interpreter re-discovered the spec on every request — find_api linear
// scans, per-invoke lock classification, string-keyed attribute maps,
// recursive tree-walking eval. The plan does all of that resolution once:
//
//   - a SymbolTable interning machine / transition / state-var / param /
//     error-code names to dense ids,
//   - a sorted dispatch table over interned API names (invoke/supports
//     become a binary search instead of a machines×transitions scan),
//   - per-transition cached lock plans and body traits (the classifier
//     below runs at compile time; per-invoke it is a field read),
//   - slot-resolved state variables: each machine's declared states get
//     fixed slots (their index in machine.states) with their interned
//     KeyId precomputed (`slot_keys`), so the executor reads and writes a
//     Resource's compact attrs map by integer key — no hashing, no string
//     compares, no per-resource pointer cache to invalidate,
//   - flattened postorder expression programs with pre-resolved slot /
//     param indices and builtin ids, evaluated by a loop over a compact
//     op array instead of recursive eval() on ExprPtr trees,
//   - pre-resolved call() targets: per call statement, a machine-id ->
//     compiled-transition table replaces find_machine + find_transition.
//
// A plan owns a private clone of the spec it compiled (every internal
// pointer aims at that clone), so it is self-contained and safely shared
// across clones via shared_ptr. Invalidation is by replacement: the
// Interpreter rebuilds the plan on construction and on replace_spec()
// (each alignment repair), and each plan carries a process-unique epoch
// that stamps Resource slot caches, so caches built against a dead plan
// are simply ignored.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/value.h"
#include "spec/ast.h"

namespace lce::interp::plan {

// -------------------------------------------------- lock classification --
//
// Shared by both execution paths (the tree-walk reference path classifies
// per invoke; the plan caches the result per transition). See the
// interpreter header for the semantics of the three modes.

enum class LockMode { kReadShared, kWriteLocal, kWriteAll };

struct LockPlan {
  LockMode mode = LockMode::kWriteAll;
  bool attaches = false;
  /// kReadShared only: the body (and the describe response, which reads
  /// just the target's states) provably touches no resource but the
  /// target, so a shared lock on the target's shard alone suffices.
  /// Computed by the compiler's deeper locality analysis — the per-invoke
  /// classifier always leaves it false and the tree-walk path locks every
  /// shard, the coarse-but-safe mode.
  bool self_only = false;
};

/// Classify a transition's shard-locking footprint (see interpreter.h).
LockPlan classify_transition(const spec::Transition& t);

// ---------------------------------------------------------- symbol table --

/// Interns strings to dense ids. Names live in a deque so views handed
/// out stay stable as the table grows.
class SymbolTable {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::uint32_t intern(std::string_view s);
  /// kNone when the symbol was never interned.
  std::uint32_t find(std::string_view s) const;
  const std::string& name(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

// --------------------------------------------------- expression programs --

constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Builtins resolved to an id at compile time (kUnknown evaluates to null,
/// exactly like the tree-walk's fallthrough).
enum class Builtin : std::uint8_t {
  kIsNull,
  kLen,
  kInList,
  kCidrValid,
  kCidrPrefixLen,
  kCidrWithin,
  kCidrOverlaps,
  kChildCount,
  kSiblingCidrConflict,
  kExists,
  kUnknown,
};

Builtin builtin_from_name(std::string_view name);

/// Field access resolved at compile time ("id" and "parent" are virtual
/// fields of every resource; everything else is an attrs lookup).
enum class FieldKind : std::uint8_t { kId, kParent, kAttr };

enum class OpCode : std::uint8_t {
  kPushLiteral,    // push *lit
  kPushSelf,       // push ref(self.id)
  kPushParam,      // push params[a]
  kPushState,      // a = state slot on self; *name is the map fallback
  kPushDynamic,    // *name: undeclared var — self attr lookup or null
  kSelfField,      // a = FieldKind; b = state slot or kNoSlot; *name = field
  kField,          // pops base; a = FieldKind; *name = field
  kNot,            // top = !truthy(top)
  kNeg,            // top = -as_int(top)
  kEq, kNe, kLt, kLe, kGt, kGe, kAdd, kSub,  // pop rhs, fold into lhs
  kAndProbe,       // top falsy ? {top = false; jump a} : pop
  kOrProbe,        // top truthy ? {top = true; jump a} : pop
  kToBool,         // top = truthy(top)
  kBuiltin,        // a = Builtin, b = argc; pops argc args
};

/// One postorder instruction. `name` and `lit` point into the owning
/// plan's private spec clone (stable for the plan's lifetime).
struct Op {
  OpCode code = OpCode::kPushLiteral;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  const std::string* name = nullptr;
  const Value* lit = nullptr;
};

struct ExprProgram {
  std::vector<Op> ops;
  const spec::Expr* src = nullptr;  // diagnostics / to_text parity
};

// ---------------------------------------------------- compiled statements --

struct CompiledTransition;

struct CompiledStmt {
  spec::StmtKind kind = spec::StmtKind::kWrite;

  // kWrite / kRead: target state variable.
  const std::string* var = nullptr;
  std::uint32_t slot = kNoSlot;            // kNoSlot: undeclared variable
  const spec::StateVar* state = nullptr;   // kWrite admits() check

  // kWrite: nothing that can abort runs after this write mutates (its own
  // undeclared/admits checks precede the mutation; only kReads follow it;
  // the transition is a kModify, which has no post-body guards), so the
  // undo journal's before-image — a full copy of the resource's attribute
  // map — is dead weight. Honored only at call depth 1: reached via
  // call(), the *parent* transition can still abort afterwards.
  bool skip_journal = false;

  // kWrite value / kAssert predicate / kIf condition / kCall target /
  // kAttachParent parent ref.
  ExprProgram expr;

  // kAssert: error mapping plus the precomputed failure-message pieces
  // (predicate text and the first mentioned variable) the tree-walk path
  // recomputes on every failure.
  const std::string* error_code = nullptr;
  const std::string* error_note = nullptr;
  std::string assert_text;        // expr->to_text()
  bool has_first_var = false;
  std::string first_var_name;     // first_var->name
  ExprProgram first_var_prog;     // evaluates the first mentioned variable

  // kCall: callee name, argument programs (positional, already truncated
  // to the callee's arity where resolvable), and the machine-id ->
  // compiled-transition table replacing find_machine/find_transition.
  const std::string* callee = nullptr;
  std::vector<ExprProgram> args;
  std::vector<const CompiledTransition*> callee_by_machine;

  // kIf.
  std::vector<CompiledStmt> then_body;
  std::vector<CompiledStmt> else_body;
};

// --------------------------------------------------- compiled transitions --

struct CompiledTransition {
  const spec::StateMachine* machine = nullptr;  // plan's private spec clone
  const spec::Transition* src = nullptr;
  std::uint32_t machine_index = 0;
  spec::TransitionKind kind = spec::TransitionKind::kModify;
  LockPlan lock;

  struct ParamInfo {
    const std::string* name = nullptr;
    const spec::Type* type = nullptr;
  };
  std::vector<ParamInfo> params;

  /// True when the body contains a call() anywhere (including nested if
  /// arms). Without one, no other transition runs mid-body, so the target
  /// pointer resolved up front stays valid through the response build and
  /// the executor skips the defensive re-lookup the tree-walk performs.
  bool body_calls = false;

  std::vector<CompiledStmt> body;
};

/// Per-machine slot layout: declared state var i (its index in
/// machine.states) lives in slot i of a Resource's slot cache.
struct MachinePlan {
  const spec::StateMachine* src = nullptr;
  std::uint32_t index = 0;
  /// src->has_timers() precomputed: the executor's per-write timer-touch
  /// tracking keys off this without rescanning the states.
  bool has_timers = false;
  std::vector<CompiledTransition> transitions;  // aligned with src->transitions

  std::uint32_t slot_count() const { return static_cast<std::uint32_t>(src->states.size()); }
  const std::string& slot_name(std::uint32_t slot) const { return src->states[slot].name; }
  KeyId slot_key(std::uint32_t slot) const { return slot_keys[slot]; }
  /// kNoSlot when the machine declares no such state variable. On
  /// duplicate declarations the first wins (find_state parity).
  std::uint32_t state_slot(std::string_view name) const;

  std::unordered_map<std::string_view, std::uint32_t> state_index;

  /// Interned map key for each slot's state name (aligned with
  /// src->states): attrs reads/writes go through Value::get/set(KeyId).
  std::vector<KeyId> slot_keys;

  /// Slots sorted by state name: create/describe responses emplace their
  /// entries in ascending key order with an end hint, skipping the
  /// per-insert root-down walk of the response map. Unused (and the
  /// executor falls back to the tree-walk's assignment loop) when a state
  /// is itself named "id": the tree path lets that state overwrite the
  /// response's id ref, which first-wins emplace would not reproduce.
  bool sorted_response = true;
  std::vector<std::uint32_t> response_order;
  /// Where "id" belongs in that ascending order (index into
  /// response_order before which it is emplaced).
  std::uint32_t id_response_pos = 0;
  /// Map Value of {state name -> initial value}: creates copy this
  /// wholesale (one compact-rep copy) instead of inserting the defaults
  /// one by one. Identical contents to the insertion loop (duplicate
  /// names: last declaration wins, map-assign parity with the tree-walk).
  Value attr_prototype = Value::empty_map();
};

// -------------------------------------------------------- execution plan --

class ExecutionPlan {
 public:
  /// Compile `spec` (cloning it; the plan keeps no pointer into the
  /// caller's copy).
  static std::shared_ptr<const ExecutionPlan> build(const spec::SpecSet& spec);

  /// O(log n) dispatch over the sorted interned API names; nullptr when
  /// unknown. Duplicate API names resolve to declaration order, matching
  /// SpecSet::find_api.
  const CompiledTransition* find_api(std::string_view api) const;

  /// Machine plan for a resource type; nullptr when unknown.
  const MachinePlan* machine_for_type(std::string_view type) const;

  const spec::SpecSet& spec() const { return spec_; }
  const SymbolTable& symbols() const { return symbols_; }
  std::size_t machine_count() const { return machines_.size(); }
  const MachinePlan& machine(std::size_t i) const { return machines_[i]; }

  /// Process-unique stamp for Resource slot caches: a cache is valid only
  /// while its epoch equals the serving plan's.
  std::uint64_t epoch() const { return epoch_; }

 private:
  friend struct Compiler;
  ExecutionPlan() = default;

  spec::SpecSet spec_;  // frozen private clone; every pointer aims here
  SymbolTable symbols_;
  std::vector<MachinePlan> machines_;
  std::unordered_map<std::string_view, std::uint32_t> machine_by_type_;
  // (api name, owner) sorted by name then declaration order.
  std::vector<std::pair<std::string_view, const CompiledTransition*>> dispatch_;
  std::uint64_t epoch_ = 0;
};

}  // namespace lce::interp::plan
