// The spec compiler: SpecSet -> ExecutionPlan. Runs once per Interpreter
// construction / replace_spec; everything here trades compile-time work
// for per-invoke table lookups.
#include "interp/plan/plan.h"

#include <algorithm>
#include <atomic>

namespace lce::interp::plan {

namespace {

using spec::Expr;
using spec::ExprKind;
using spec::Stmt;
using spec::StmtKind;
using spec::Transition;

/// First variable or self-field reference in a predicate (the argument
/// most error messages should name), or nullptr. Mirrors the tree-walk
/// interpreter's first_var so assert failure messages stay byte-equal.
const Expr* first_var(const Expr& e) {
  if (e.kind == ExprKind::kVar) return &e;
  if (e.kind == ExprKind::kField && e.kids[0]->kind == ExprKind::kSelf) return &e;
  for (const auto& k : e.kids) {
    if (const Expr* found = first_var(*k)) return found;
  }
  return nullptr;
}

std::atomic<std::uint64_t> g_plan_epoch{0};

/// True when evaluating `e` reads nothing outside the target resource:
/// literals, params (values already copied into the frame), self state,
/// and pure builtins over those. Stricter than the classifier's
/// expr_local — even a field access on a ref-valued param dereferences
/// another resource, whose shard a self-only read plan does not lock.
bool expr_self_local(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kSelf:
    case ExprKind::kVar:
      return true;
    case ExprKind::kField:
      return e.kids[0]->kind == ExprKind::kSelf;
    case ExprKind::kUnary:
    case ExprKind::kBinary: {
      for (const auto& k : e.kids) {
        if (!expr_self_local(*k)) return false;
      }
      return true;
    }
    case ExprKind::kBuiltin: {
      switch (builtin_from_name(e.name)) {
        case Builtin::kIsNull:
        case Builtin::kLen:
        case Builtin::kInList:
        case Builtin::kCidrValid:
        case Builtin::kCidrPrefixLen:
        case Builtin::kCidrWithin:
        case Builtin::kCidrOverlaps:
          break;  // pure over their argument values
        default:
          return false;  // exists / child_count / sibling scans: store reads
      }
      for (const auto& k : e.kids) {
        if (!expr_self_local(*k)) return false;
      }
      return true;
    }
  }
  return false;
}

/// True when a kReadShared body touches only the target: read() outputs
/// self state, assert/if predicates are self-local. Any mutating
/// statement disqualifies (and would never classify kReadShared anyway).
bool body_self_local(const spec::Body& body) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::kRead:
        break;
      case StmtKind::kAssert:
      case StmtKind::kIf:
        if (!expr_self_local(*s->expr)) return false;
        if (s->kind == StmtKind::kIf &&
            (!body_self_local(s->then_body) || !body_self_local(s->else_body))) {
          return false;
        }
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

Builtin builtin_from_name(std::string_view name) {
  if (name == "is_null") return Builtin::kIsNull;
  if (name == "len") return Builtin::kLen;
  if (name == "in_list") return Builtin::kInList;
  if (name == "cidr_valid") return Builtin::kCidrValid;
  if (name == "cidr_prefix_len") return Builtin::kCidrPrefixLen;
  if (name == "cidr_within") return Builtin::kCidrWithin;
  if (name == "cidr_overlaps") return Builtin::kCidrOverlaps;
  if (name == "child_count") return Builtin::kChildCount;
  if (name == "sibling_cidr_conflict") return Builtin::kSiblingCidrConflict;
  if (name == "exists") return Builtin::kExists;
  return Builtin::kUnknown;
}

std::uint32_t SymbolTable::intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  names_.emplace_back(s);
  std::uint32_t id = static_cast<std::uint32_t>(names_.size() - 1);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::uint32_t SymbolTable::find(std::string_view s) const {
  auto it = index_.find(s);
  return it != index_.end() ? it->second : kNone;
}

std::uint32_t MachinePlan::state_slot(std::string_view name) const {
  auto it = state_index.find(name);
  return it != state_index.end() ? it->second : kNoSlot;
}

const CompiledTransition* ExecutionPlan::find_api(std::string_view api) const {
  auto it = std::lower_bound(
      dispatch_.begin(), dispatch_.end(), api,
      [](const auto& e, std::string_view key) { return e.first < key; });
  if (it == dispatch_.end() || it->first != api) return nullptr;
  return it->second;
}

const MachinePlan* ExecutionPlan::machine_for_type(std::string_view type) const {
  auto it = machine_by_type_.find(type);
  return it != machine_by_type_.end() ? &machines_[it->second] : nullptr;
}

// --------------------------------------------------------------- compiler --

struct Compiler {
  ExecutionPlan& plan;
  const MachinePlan* mp = nullptr;           // machine being compiled
  const CompiledTransition* ct = nullptr;    // transition being compiled

  FieldKind field_kind(const std::string& field) const {
    if (field == "id") return FieldKind::kId;
    if (field == "parent") return FieldKind::kParent;
    return FieldKind::kAttr;
  }

  std::uint32_t param_index(std::string_view name) const {
    for (std::uint32_t i = 0; i < ct->params.size(); ++i) {
      if (*ct->params[i].name == name) return i;
    }
    return kNoSlot;
  }

  void emit_expr(const Expr& e, std::vector<Op>& out) {
    switch (e.kind) {
      case ExprKind::kLiteral: {
        Op op;
        op.code = OpCode::kPushLiteral;
        op.lit = &e.literal;
        out.push_back(op);
        return;
      }
      case ExprKind::kSelf:
        out.push_back(Op{OpCode::kPushSelf});
        return;
      case ExprKind::kVar: {
        // Tree-walk resolution order: params shadow state vars; unknown
        // names fall through to a dynamic self-attr lookup (null when
        // absent — repairs can leave either side of the declaration out
        // of sync with live resources).
        Op op;
        op.name = &e.name;
        if (std::uint32_t pi = param_index(e.name); pi != kNoSlot) {
          op.code = OpCode::kPushParam;
          op.a = pi;
        } else if (std::uint32_t slot = mp->state_slot(e.name); slot != kNoSlot) {
          op.code = OpCode::kPushState;
          op.a = slot;
        } else {
          op.code = OpCode::kPushDynamic;
        }
        out.push_back(op);
        return;
      }
      case ExprKind::kField: {
        Op op;
        op.name = &e.name;
        op.a = static_cast<std::uint32_t>(field_kind(e.name));
        if (e.kids[0]->kind == ExprKind::kSelf) {
          op.code = OpCode::kSelfField;
          op.b = mp->state_slot(e.name);
        } else {
          emit_expr(*e.kids[0], out);
          op.code = OpCode::kField;
        }
        out.push_back(op);
        return;
      }
      case ExprKind::kUnary:
        emit_expr(*e.kids[0], out);
        out.push_back(Op{e.unary_op == spec::UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg});
        return;
      case ExprKind::kBinary: {
        using spec::BinaryOp;
        if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
          // Short-circuit with the tree-walk's exact result values: a
          // falsy lhs yields false (truthy lhs yields true for Or)
          // without evaluating the rhs; otherwise the result is the
          // rhs's truthiness.
          emit_expr(*e.kids[0], out);
          std::size_t probe = out.size();
          out.push_back(Op{e.binary_op == BinaryOp::kAnd ? OpCode::kAndProbe
                                                         : OpCode::kOrProbe});
          emit_expr(*e.kids[1], out);
          out.push_back(Op{OpCode::kToBool});
          out[probe].a = static_cast<std::uint32_t>(out.size());
          return;
        }
        emit_expr(*e.kids[0], out);
        emit_expr(*e.kids[1], out);
        Op op;
        switch (e.binary_op) {
          case BinaryOp::kEq: op.code = OpCode::kEq; break;
          case BinaryOp::kNe: op.code = OpCode::kNe; break;
          case BinaryOp::kLt: op.code = OpCode::kLt; break;
          case BinaryOp::kLe: op.code = OpCode::kLe; break;
          case BinaryOp::kGt: op.code = OpCode::kGt; break;
          case BinaryOp::kGe: op.code = OpCode::kGe; break;
          case BinaryOp::kAdd: op.code = OpCode::kAdd; break;
          case BinaryOp::kSub: op.code = OpCode::kSub; break;
          default: op.code = OpCode::kEq; break;
        }
        out.push_back(op);
        return;
      }
      case ExprKind::kBuiltin: {
        for (const auto& k : e.kids) emit_expr(*k, out);
        Op op;
        op.code = OpCode::kBuiltin;
        op.a = static_cast<std::uint32_t>(builtin_from_name(e.name));
        op.b = static_cast<std::uint32_t>(e.kids.size());
        op.name = &e.name;
        out.push_back(op);
        return;
      }
    }
  }

  ExprProgram compile_expr(const Expr& e) {
    ExprProgram prog;
    prog.src = &e;
    emit_expr(e, prog.ops);
    return prog;
  }

  CompiledStmt compile_stmt(const Stmt& s) {
    CompiledStmt out;
    out.kind = s.kind;
    switch (s.kind) {
      case StmtKind::kWrite:
        out.var = &s.var;
        out.slot = mp->state_slot(s.var);
        out.state = out.slot != kNoSlot ? &mp->src->states[out.slot] : nullptr;
        out.expr = compile_expr(*s.expr);
        break;
      case StmtKind::kRead:
        out.var = &s.var;
        out.slot = mp->state_slot(s.var);
        break;
      case StmtKind::kAssert: {
        out.var = &s.var;
        out.expr = compile_expr(*s.expr);
        out.error_code = &s.error_code;
        out.error_note = &s.error_note;
        out.assert_text = s.expr->to_text();
        if (const Expr* fv = first_var(*s.expr)) {
          out.has_first_var = true;
          out.first_var_name = fv->name;
          out.first_var_prog = compile_expr(*fv);
        }
        break;
      }
      case StmtKind::kCall: {
        out.expr = compile_expr(*s.expr);
        out.callee = &s.callee;
        out.args.reserve(s.args.size());
        for (const auto& a : s.args) out.args.push_back(compile_expr(*a));
        // Pre-resolve the callee per possible target machine: the actual
        // machine depends on the target resource's runtime type.
        out.callee_by_machine.resize(plan.machines_.size(), nullptr);
        for (std::uint32_t mi = 0; mi < plan.machines_.size(); ++mi) {
          const auto& m = plan.spec_.machines[mi];
          for (std::uint32_t ti = 0; ti < m.transitions.size(); ++ti) {
            if (m.transitions[ti].name == s.callee) {
              out.callee_by_machine[mi] = &plan.machines_[mi].transitions[ti];
              break;
            }
          }
        }
        break;
      }
      case StmtKind::kAttachParent:
        out.expr = compile_expr(*s.expr);
        break;
      case StmtKind::kIf: {
        out.expr = compile_expr(*s.expr);
        out.then_body.reserve(s.then_body.size());
        for (const auto& k : s.then_body) out.then_body.push_back(compile_stmt(*k));
        out.else_body.reserve(s.else_body.size());
        for (const auto& k : s.else_body) out.else_body.push_back(compile_stmt(*k));
        break;
      }
    }
    return out;
  }

  void compile_transition(const MachinePlan& machine, CompiledTransition& out,
                          const Transition& t) {
    mp = &machine;
    out.machine = machine.src;
    out.src = &t;
    out.machine_index = machine.index;
    out.kind = t.kind;
    out.lock = classify_transition(t);
    if (out.lock.mode == LockMode::kReadShared) {
      out.lock.self_only = body_self_local(t.body);
    }
    out.params.reserve(t.params.size());
    for (const auto& p : t.params) {
      plan.symbols_.intern(p.name);
      out.params.push_back(CompiledTransition::ParamInfo{&p.name, &p.type});
    }
    ct = &out;
    out.body.reserve(t.body.size());
    for (const auto& s : t.body) out.body.push_back(compile_stmt(*s));
    out.body_calls = body_has_calls(t.body);
    if (t.kind == spec::TransitionKind::kModify) {
      // Scan the top-level body from the end: the last write followed only
      // by (infallible) reads needs no undo image — every abort path runs
      // before it mutates. Earlier writes keep journaling: that last
      // write's own admits check can still abort after they mutated.
      for (auto it = out.body.rbegin(); it != out.body.rend(); ++it) {
        if (it->kind == StmtKind::kRead) continue;
        if (it->kind == StmtKind::kWrite) it->skip_journal = true;
        break;
      }
    }
  }

  static bool body_has_calls(const spec::Body& body) {
    for (const auto& s : body) {
      if (s->kind == StmtKind::kCall) return true;
      if (s->kind == StmtKind::kIf &&
          (body_has_calls(s->then_body) || body_has_calls(s->else_body))) {
        return true;
      }
    }
    return false;
  }

  void run() {
    const spec::SpecSet& spec = plan.spec_;
    // Machines and transitions are laid out up front so every compiled
    // pointer (callee tables in particular) stays stable while bodies
    // compile in a second pass.
    plan.machines_.resize(spec.machines.size());
    for (std::uint32_t mi = 0; mi < spec.machines.size(); ++mi) {
      const spec::StateMachine& m = spec.machines[mi];
      MachinePlan& machine = plan.machines_[mi];
      machine.src = &m;
      machine.index = mi;
      machine.has_timers = m.has_timers();
      machine.transitions.resize(m.transitions.size());
      plan.symbols_.intern(m.name);
      plan.machine_by_type_.emplace(std::string_view(m.name), mi);
      machine.slot_keys.reserve(m.states.size());
      Value::Map proto;
      for (std::uint32_t si = 0; si < m.states.size(); ++si) {
        plan.symbols_.intern(m.states[si].name);
        // First declaration wins on duplicates (find_state parity).
        machine.state_index.emplace(std::string_view(m.states[si].name), si);
        machine.slot_keys.push_back(intern_key(m.states[si].name));
        // Last declaration wins in the prototype (map-assign parity with
        // the tree-walk's per-state insertion loop).
        proto[m.states[si].name] = m.states[si].initial;
      }
      machine.attr_prototype = Value(std::move(proto));
      // Ascending-key emplace order for create/describe responses, and
      // where "id" slots into it.
      machine.response_order.resize(m.states.size());
      for (std::uint32_t si = 0; si < m.states.size(); ++si) {
        machine.response_order[si] = si;
      }
      std::stable_sort(machine.response_order.begin(), machine.response_order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return m.states[a].name < m.states[b].name;
                       });
      machine.id_response_pos = 0;
      while (machine.id_response_pos < machine.response_order.size() &&
             m.states[machine.response_order[machine.id_response_pos]].name <
                 std::string_view("id")) {
        ++machine.id_response_pos;
      }
      for (const auto& sv : m.states) {
        if (sv.name == "id") machine.sorted_response = false;
      }
    }
    for (std::uint32_t mi = 0; mi < spec.machines.size(); ++mi) {
      MachinePlan& machine = plan.machines_[mi];
      for (std::uint32_t ti = 0; ti < machine.transitions.size(); ++ti) {
        const Transition& t = spec.machines[mi].transitions[ti];
        plan.symbols_.intern(t.name);
        for (const auto& s : t.body) {
          if (s->kind == StmtKind::kAssert) plan.symbols_.intern(s->error_code);
        }
        compile_transition(machine, machine.transitions[ti], t);
        plan.dispatch_.emplace_back(std::string_view(t.name),
                                    &machine.transitions[ti]);
      }
    }
    // Stable sort keeps declaration order for duplicate API names —
    // lower_bound then lands on the same transition find_api picks.
    std::stable_sort(plan.dispatch_.begin(), plan.dispatch_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
  }
};

std::shared_ptr<const ExecutionPlan> ExecutionPlan::build(const spec::SpecSet& spec) {
  auto plan = std::shared_ptr<ExecutionPlan>(new ExecutionPlan());
  plan->spec_ = spec.clone();
  plan->epoch_ = g_plan_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  Compiler{*plan}.run();
  return plan;
}

}  // namespace lce::interp::plan
