// Error-message "decoder" (paper §4.3): error codes must align with the
// cloud exactly, but messages are for developers — the emulator can emit a
// *richer* explanation by decoding the failure context. The real system
// would hand the context to an LLM; here a deterministic template engine
// plays that role (see DESIGN.md substitutions).
#pragma once

#include <string>

#include "interp/interpreter.h"

namespace lce::interp {

/// Returns a MessageDecoder that appends a root-cause hint and a suggested
/// repair to the base message, derived from the (machine, transition, code)
/// failure context.
MessageDecoder make_rich_decoder();

}  // namespace lce::interp
