// Internals shared by the two execution paths — the tree-walking
// reference interpreter (interpreter.cpp) and the compiled-plan executor
// (plan/exec.cpp). Not installed; include only from src/interp.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/api.h"
#include "interp/interpreter.h"
#include "interp/store.h"

namespace lce::interp::internal {

/// Thrown (as a value) to abort a transition; carries the response plus
/// the diagnosis breadcrumb.
struct Abort {
  ApiResponse response;
  FailureSite site;
};

/// Shards of every ref nested anywhere in an argument value.
inline void collect_ref_shards(const Value& v, const ResourceStore& store,
                               std::vector<std::size_t>& out) {
  if (v.is_ref()) {
    out.push_back(store.shard_of(v.as_str()));
  } else if (v.is_list()) {
    for (const auto& item : v.as_list()) collect_ref_shards(item, store, out);
  } else if (v.is_map()) {
    for (const auto& [_, item] : v.as_map()) collect_ref_shards(item, store, out);
  }
}

/// The trailing counter of a minted id ("vpc-00000007" -> 7); 0 when the
/// id has no numeric suffix.
inline std::uint64_t id_suffix_counter(std::string_view id) {
  std::size_t dash = id.rfind('-');
  if (dash == std::string_view::npos) return 0;
  std::uint64_t n = 0;
  for (std::size_t i = dash + 1; i < id.size(); ++i) {
    char c = id[i];
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

/// Transactional rollback under held shard locks: instead of copying the
/// whole store per invoke (the pre-sharded design — O(store) per call and
/// impossible once two transitions run at once), record the first-touch
/// before-image of every mutated resource and undo in reverse on abort.
class UndoJournal {
 public:
  void note_minted(std::string prefix, std::uint64_t minted_counter) {
    Entry e;
    e.kind = Entry::kMinted;
    e.id = std::move(prefix);  // reuse the id slot for the prefix
    e.counter = minted_counter;
    entries_.push_back(std::move(e));
  }

  void note_created(const std::string& id) {
    touched_.insert(id);
    Entry e;
    e.kind = Entry::kCreated;
    e.id = id;
    entries_.push_back(std::move(e));
  }

  /// Record `r`'s before-image unless this transaction already owns it
  /// (created it or captured it earlier).
  void note_modified(const Resource& r) {
    if (!touched_.insert(r.id).second) return;
    Entry e;
    e.kind = Entry::kModified;
    e.id = r.id;
    e.before = r;
    entries_.push_back(std::move(e));
  }

  void note_destroyed(const Resource& r) {
    // A destroy always rolls back to the full before-image, even when
    // earlier statements of the same transaction modified it: the
    // earlier kModified entry (replayed later in the reverse pass)
    // restores the true pre-transaction state.
    Entry e;
    e.kind = Entry::kDestroyed;
    e.id = r.id;
    e.before = r;
    entries_.push_back(std::move(e));
  }

  void rollback(ResourceStore& store) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      switch (it->kind) {
        case Entry::kCreated:
          store.erase_raw(it->id);
          break;
        case Entry::kModified:
        case Entry::kDestroyed:
          store.restore(std::move(it->before));
          break;
        case Entry::kMinted:
          if (it->counter > 0) store.rewind_id(it->id, it->counter - 1);
          break;
      }
    }
    entries_.clear();
    touched_.clear();
  }

 private:
  struct Entry {
    enum Kind { kCreated, kModified, kDestroyed, kMinted } kind = kModified;
    std::string id;          // resource id; mint prefix for kMinted
    Resource before;         // kModified / kDestroyed
    std::uint64_t counter = 0;  // kMinted: the counter the mint produced
  };

  std::vector<Entry> entries_;
  std::set<std::string> touched_;
};

}  // namespace lce::interp::internal
