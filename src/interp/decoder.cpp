#include "interp/decoder.h"

#include "common/errors.h"
#include "common/strings.h"

namespace lce::interp {

MessageDecoder make_rich_decoder() {
  return [](const std::string& machine, const std::string& transition,
            const std::string& code, const std::string& base) {
    std::string hint;
    if (code == errc::kDependencyViolation) {
      hint = strf("Root cause: the ", machine,
                  " still contains dependent resources. Suggested repair: delete or "
                  "detach its children before calling ", transition, "().");
    } else if (code == errc::kIncorrectInstanceState) {
      hint = strf("Root cause: ", transition, "() is only valid from specific ", machine,
                  " states. Suggested repair: Describe the resource first and branch on "
                  "its current state.");
    } else if (code == errc::kResourceNotFound) {
      hint = strf("Root cause: the referenced ", machine,
                  " does not exist (wrong id, or it was deleted earlier in this "
                  "program). Suggested repair: verify creation succeeded before "
                  "invoking ", transition, "().");
    } else if (starts_with(code, "InvalidSubnet") || starts_with(code, "InvalidVpc")) {
      hint = strf("Root cause: the CIDR argument violates the ", machine,
                  " addressing rules. Suggested repair: choose a block between /16 and "
                  "/28 nested inside the parent range, avoiding sibling overlap.");
    } else if (code == errc::kMissingParameter || code == errc::kInvalidParameterValue) {
      hint = strf("Root cause: malformed request to ", transition,
                  "(). Suggested repair: compare the arguments against the ", machine,
                  " API signature.");
    }
    if (hint.empty()) return base;
    return strf(base, " [", hint, "]");
  };
}

}  // namespace lce::interp
