#include "interp/timers.h"

#include "common/strings.h"

namespace lce::interp::timers {

void reconcile(ResourceStore& store, const spec::StateMachine& machine, const Resource& r) {
  static const Value kNull;
  for (const auto& sv : machine.states) {
    if (sv.timers.empty()) continue;
    const Value* v = r.attrs.get(sv.name);
    const Value& cur = v != nullptr ? *v : kNull;
    for (std::size_t i = 0; i < sv.timers.size(); ++i) {
      const auto& tc = sv.timers[i];
      bool want = cur == spec::timer_trigger(sv, tc);
      store.timers().ensure(r.id, strf(sv.name, "#", i), tc.transition, tc.delay, want);
    }
  }
}

}  // namespace lce::interp::timers
