// Timer reconciliation shared by both execution paths. A spec's `after`
// clauses declare *desired* timers as a function of state-variable values;
// the executors call reconcile() at commit time for every resource a
// successful transition created or wrote, and the helper arms/cancels
// through the store's TimerService so the armed set always matches the
// committed attribute values. Aborted transitions reconcile nothing — the
// undo journal restores the attributes and the timer set was never
// touched, so the two stay consistent.
#pragma once

#include <string_view>

#include "interp/store.h"
#include "spec/ast.h"

namespace lce::interp::timers {

/// Built-in pseudo-API advancing the virtual clock ({"ticks": N}); not a
/// spec transition — Interpreter::invoke intercepts it before dispatch.
/// The name deliberately fails ReadCacheLayer::is_read_api, so the persist
/// stack journals every advance as an ordinary kCall record and recovery,
/// replay and replicas re-fire the exact same timer sequence.
inline constexpr std::string_view kAdvanceClockApi = "_AdvanceClock";

/// Bring the timers for `r` in line with its current attribute values:
/// per clause, arm at now+delay when the variable holds the trigger value
/// and no timer for that clause is armed; cancel when it moved off the
/// trigger; leave an already-armed timer counting down otherwise. Caller
/// holds the shard locks covering `r` (the service itself is a leaf lock).
void reconcile(ResourceStore& store, const spec::StateMachine& machine, const Resource& r);

}  // namespace lce::interp::timers
