// The one-time-engineered emulator framework of paper §4.2: an interpreter
// that executes SM specifications ("executable specifications") behind the
// uniform CloudBackend API. All emulation behaviour comes from the SpecSet;
// the interpreter adds only the grammar semantics plus the built-in
// hierarchy guards of §1 (create cannot mutate its parent; destroy requires
// all containment children reclaimed).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/api.h"
#include "interp/store.h"
#include "spec/ast.h"

namespace lce::interp {

namespace plan {
class ExecutionPlan;
}

/// Hook for enriching error messages (paper §4.3: messages are for
/// developer consumption and the emulator may "decode" failures into
/// richer text than the cloud). Receives (machine, transition, error code,
/// base message) and returns the final message.
using MessageDecoder = std::function<std::string(
    const std::string&, const std::string&, const std::string&, const std::string&)>;

struct InterpreterOptions {
  /// Enforce the built-in hierarchy guards even when the spec omits the
  /// corresponding asserts (defence in depth per §1).
  bool hierarchy_guards = true;
  /// Maximum call() nesting before aborting with InternalError.
  int max_call_depth = 16;
  /// Validate argument presence/types against transition signatures.
  bool validate_params = true;
  /// Compile the spec into an immutable ExecutionPlan (src/interp/plan)
  /// at construction and after every replace_spec, and serve invokes
  /// through it: interned-symbol dispatch, cached lock plans, slot-
  /// resolved state and flat expression programs. Off = the tree-walking
  /// reference path; both produce byte-identical responses, dumps and
  /// alignment reports (enforced by the differential equivalence suite).
  bool use_plan = true;
  /// Serve each invoke with a request-scoped bump arena (common/arena.h)
  /// backing every transient Value rep block — parameter copies, eval
  /// temporaries, response assembly. Values escaping the request (store
  /// writes, the returned response) are detached to the heap; the arena
  /// is reset once per invoke. Purely an allocation-count optimization:
  /// responses, dumps and reports are byte-identical either way.
  bool use_arena = true;
  /// Optional message enrichment.
  MessageDecoder decoder;
  /// Backend display name.
  std::string name = "learned-emulator";
};

/// Where inside the spec a failing invocation aborted — the diagnosis
/// breadcrumb the alignment loop uses to localize errors "to a specific SM
/// implementation, a specific interaction" (paper §4.3).
struct FailureSite {
  std::string machine;
  std::string transition;
  std::string error_code;
  std::string assert_text;  // predicate text when an assert fired; "" else
  enum class Origin {
    kNone,         // last invoke succeeded
    kDispatch,     // unknown API / missing target / param validation
    kAssert,       // a spec assert fired
    kWriteCheck,   // a write violated the state variable's type
    kFramework,    // built-in hierarchy guard or internal error
  } origin = Origin::kNone;
};

/// The interpreter is a concurrent backend: every invoke() classifies its
/// transition into a lock plan over the store's shard stripes (read-shared
/// for read-only transitions, exclusive on the statically-known touched
/// shards for local writes, exclusive-all for dynamic footprints), and
/// transactional rollback uses an undo journal applied under the held
/// locks instead of a whole-store copy. thread_safe() therefore reports
/// true and stack::build_stack skips the SerializeLayer gate by default.
/// replace_spec() is the one exception: it must not race in-flight
/// invokes (the alignment loop runs it from a quiescent, serial phase).
class Interpreter final : public CloudBackend {
 public:
  explicit Interpreter(spec::SpecSet spec, InterpreterOptions opts = {});

  std::string name() const override { return opts_.name; }
  ApiResponse invoke(const ApiRequest& req) override;
  void reset() override;
  bool supports(const std::string& api) const override;
  Value snapshot() const override;
  bool thread_safe() const override { return true; }
  /// Independent deep copy (spec, options, resource state, id counters).
  std::unique_ptr<CloudBackend> clone() const override;

  /// True when `api` resolves to a transition whose lock plan is
  /// read-shared — it provably mutates nothing, so a read replica may
  /// serve it (the RouteLayer's classification source). Sourced from the
  /// compiled plan's cached lock plans when use_plan, from the same
  /// classifier run on demand otherwise; both agree by construction.
  /// Unknown APIs are not read-only (they must reach the primary, whose
  /// dispatch produces the canonical InvalidAction reply).
  bool read_only_api(const std::string& api) const;

  const spec::SpecSet& spec() const { return spec_; }
  /// Swap in an updated spec (the alignment loop's repair step), keeping
  /// current resources when possible.
  void replace_spec(spec::SpecSet spec);

  ResourceStore& store() { return store_; }
  const ResourceStore& store() const { return store_; }

  /// Breadcrumb for the most recent invoke(); origin kNone when it
  /// succeeded. Under concurrent invokes "most recent" follows the
  /// internal commit order — diagnosis consumers (the alignment loop)
  /// call serially.
  FailureSite last_failure() const;

 private:
  /// Clone path: shares the already-built plan instead of recompiling.
  Interpreter(spec::SpecSet spec, InterpreterOptions opts,
              std::shared_ptr<const plan::ExecutionPlan> shared_plan);

  /// The `_AdvanceClock` built-in (see interp/timers.h): advances the
  /// virtual clock by args["ticks"] and fires every due timer through the
  /// normal invoke path, in deterministic (deadline, seq) order.
  ApiResponse advance_clock(const ApiRequest& req);

  /// Recompile the execution plan (when use_plan) and the spec's sorted
  /// api dispatch index. Called from construction and replace_spec; must
  /// not race in-flight invokes (see replace_spec).
  void rebuild_dispatch();

  spec::SpecSet spec_;
  InterpreterOptions opts_;
  // Immutable compiled form of spec_ (null when use_plan is off). Shared
  // by clones; swapped wholesale on replace_spec, so a plan's internals
  // never mutate once published.
  std::shared_ptr<const plan::ExecutionPlan> plan_;
  ResourceStore store_;
  FailureSite last_failure_;
  // unique_ptr keeps the Interpreter movable (guaranteed-elision callers
  // and by-value factories in tests stay valid).
  std::unique_ptr<std::mutex> failure_mu_ = std::make_unique<std::mutex>();
};

}  // namespace lce::interp
