#include "interp/interpreter.h"

#include <optional>
#include <set>
#include <vector>

#include "common/cidr.h"
#include "common/errors.h"
#include "common/strings.h"

namespace lce::interp {

namespace {

using spec::BinaryOp;
using spec::Expr;
using spec::ExprKind;
using spec::StateMachine;
using spec::Stmt;
using spec::StmtKind;
using spec::Transition;
using spec::TransitionKind;
using spec::UnaryOp;

/// Thrown (as a value) to abort a transition; carries the response plus
/// the diagnosis breadcrumb.
struct Abort {
  ApiResponse response;
  FailureSite site;
};

// -------------------------------------------------------- lock planning --
//
// Every transition is classified before any shard lock is taken:
//
//   kReadShared  no writes at all — shared-lock every shard; concurrent
//                describes run fully in parallel.
//   kWriteLocal  all touched state is reachable from ids known up front
//                (the target / preminted id and ref-valued arguments) —
//                exclusively lock just those shards; unrelated resources
//                keep flowing.
//   kWriteAll    the footprint is dynamic (nested call(), destroy's child
//                scan/promotion, sibling scans, derefs of non-parameter
//                refs) — exclusively lock everything. Correct, never
//                fast; the classifier falls back here whenever in doubt.

enum class LockMode { kReadShared, kWriteLocal, kWriteAll };

struct BodyTraits {
  bool writes = false;
  bool attaches = false;
  bool calls = false;
  bool local = true;
};

using ParamNames = std::set<std::string, std::less<>>;

/// Builtins that never touch the store.
bool pure_builtin(const std::string& name) {
  return name == "is_null" || name == "len" || name == "in_list" ||
         name == "cidr_valid" || name == "cidr_prefix_len" ||
         name == "cidr_within" || name == "cidr_overlaps";
}

/// True when evaluating `e` can only dereference resources whose shards a
/// kWriteLocal plan has locked: self (the target / preminted id) and
/// ref-valued declared parameters (every ref in the args is collected
/// into the lockset). Anything else — nested field paths, store scans,
/// refs read out of attributes — is non-local.
bool expr_local(const Expr& e, const ParamNames& params) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kSelf:
    case ExprKind::kVar:  // value read from params or self attrs, no deref
      return true;
    case ExprKind::kField:
      return e.kids[0]->kind == ExprKind::kSelf ||
             (e.kids[0]->kind == ExprKind::kVar &&
              params.contains(e.kids[0]->name));
    case ExprKind::kUnary:
    case ExprKind::kBinary: {
      for (const auto& k : e.kids) {
        if (!expr_local(*k, params)) return false;
      }
      return true;
    }
    case ExprKind::kBuiltin: {
      if (pure_builtin(e.name)) {
        for (const auto& k : e.kids) {
          if (!expr_local(*k, params)) return false;
        }
        return true;
      }
      if (e.name == "exists") {
        // exists(param[, "Type"]) dereferences exactly the param ref.
        if (e.kids.empty()) return true;
        if (e.kids[0]->kind != ExprKind::kVar ||
            !params.contains(e.kids[0]->name)) {
          return false;
        }
        for (std::size_t i = 1; i < e.kids.size(); ++i) {
          if (e.kids[i]->kind != ExprKind::kLiteral) return false;
        }
        return true;
      }
      // child_count, sibling_cidr_conflict, unknown builtins: store scans.
      return false;
    }
  }
  return false;
}

void scan_body(const spec::Body& body, const ParamNames& params, BodyTraits& out) {
  for (const auto& s : body) {
    switch (s->kind) {
      case StmtKind::kWrite:
        out.writes = true;
        out.local = out.local && expr_local(*s->expr, params);
        break;
      case StmtKind::kRead:
        break;
      case StmtKind::kAssert:
        out.local = out.local && expr_local(*s->expr, params);
        break;
      case StmtKind::kCall:
        out.calls = true;
        break;
      case StmtKind::kAttachParent:
        out.attaches = true;
        // The parent must be a declared param so its shard is locked.
        out.local = out.local && s->expr->kind == ExprKind::kVar &&
                    params.contains(s->expr->name);
        break;
      case StmtKind::kIf:
        out.local = out.local && expr_local(*s->expr, params);
        scan_body(s->then_body, params, out);
        scan_body(s->else_body, params, out);
        break;
    }
  }
}

struct LockPlan {
  LockMode mode = LockMode::kWriteAll;
  bool attaches = false;
};

LockPlan plan_transition(const Transition& t) {
  ParamNames params;
  for (const auto& p : t.params) params.insert(p.name);
  BodyTraits traits;
  scan_body(t.body, params, traits);
  bool mutates = traits.writes || traits.attaches || traits.calls ||
                 t.kind == TransitionKind::kCreate ||
                 t.kind == TransitionKind::kDestroy;
  if (!mutates) return {LockMode::kReadShared, false};
  // destroy scans children (guard + promotion); call() reaches arbitrary
  // resources; non-local bodies deref refs we cannot enumerate up front.
  // Attaches outside create need the full cycle walk over arbitrary
  // ancestor shards, so they lock everything too — only a CREATE attach
  // has the fresh-child guarantee attach_created() relies on.
  if (traits.calls || t.kind == TransitionKind::kDestroy || !traits.local ||
      (traits.attaches && t.kind != TransitionKind::kCreate)) {
    return {LockMode::kWriteAll, false};
  }
  return {LockMode::kWriteLocal, traits.attaches};
}

/// Shards of every ref nested anywhere in an argument value.
void collect_ref_shards(const Value& v, const ResourceStore& store,
                        std::vector<std::size_t>& out) {
  if (v.is_ref()) {
    out.push_back(store.shard_of(v.as_str()));
  } else if (v.is_list()) {
    for (const auto& item : v.as_list()) collect_ref_shards(item, store, out);
  } else if (v.is_map()) {
    for (const auto& [_, item] : v.as_map()) collect_ref_shards(item, store, out);
  }
}

/// The trailing counter of a minted id ("vpc-00000007" -> 7); 0 when the
/// id has no numeric suffix.
std::uint64_t id_suffix_counter(std::string_view id) {
  std::size_t dash = id.rfind('-');
  if (dash == std::string_view::npos) return 0;
  std::uint64_t n = 0;
  for (std::size_t i = dash + 1; i < id.size(); ++i) {
    char c = id[i];
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

// ---------------------------------------------------------- undo journal --

/// Transactional rollback under held shard locks: instead of copying the
/// whole store per invoke (the pre-sharded design — O(store) per call and
/// impossible once two transitions run at once), record the first-touch
/// before-image of every mutated resource and undo in reverse on abort.
class UndoJournal {
 public:
  void note_minted(std::string prefix, std::uint64_t minted_counter) {
    Entry e;
    e.kind = Entry::kMinted;
    e.id = std::move(prefix);  // reuse the id slot for the prefix
    e.counter = minted_counter;
    entries_.push_back(std::move(e));
  }

  void note_created(const std::string& id) {
    touched_.insert(id);
    Entry e;
    e.kind = Entry::kCreated;
    e.id = id;
    entries_.push_back(std::move(e));
  }

  /// Record `r`'s before-image unless this transaction already owns it
  /// (created it or captured it earlier).
  void note_modified(const Resource& r) {
    if (!touched_.insert(r.id).second) return;
    Entry e;
    e.kind = Entry::kModified;
    e.id = r.id;
    e.before = r;
    entries_.push_back(std::move(e));
  }

  void note_destroyed(const Resource& r) {
    // A destroy always rolls back to the full before-image, even when
    // earlier statements of the same transaction modified it: the
    // earlier kModified entry (replayed later in the reverse pass)
    // restores the true pre-transaction state.
    Entry e;
    e.kind = Entry::kDestroyed;
    e.id = r.id;
    e.before = r;
    entries_.push_back(std::move(e));
  }

  void rollback(ResourceStore& store) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      switch (it->kind) {
        case Entry::kCreated:
          store.erase_raw(it->id);
          break;
        case Entry::kModified:
        case Entry::kDestroyed:
          store.restore(std::move(it->before));
          break;
        case Entry::kMinted:
          if (it->counter > 0) store.rewind_id(it->id, it->counter - 1);
          break;
      }
    }
    entries_.clear();
    touched_.clear();
  }

 private:
  struct Entry {
    enum Kind { kCreated, kModified, kDestroyed, kMinted } kind = kModified;
    std::string id;          // resource id; mint prefix for kMinted
    Resource before;         // kModified / kDestroyed
    std::uint64_t counter = 0;  // kMinted: the counter the mint produced
  };

  std::vector<Entry> entries_;
  std::set<std::string> touched_;
};

class Execution {
 public:
  Execution(const spec::SpecSet& spec, const InterpreterOptions& opts, ResourceStore& store)
      : spec_(spec), opts_(opts), store_(store) {}

  ApiResponse run(const ApiRequest& req, FailureSite& site_out) {
    site_out = FailureSite{};
    auto [machine, transition] = spec_.find_api(req.api);
    if (machine == nullptr || transition == nullptr) {
      site_out.origin = FailureSite::Origin::kDispatch;
      site_out.error_code = std::string(errc::kInvalidAction);
      return fail("", "", std::string(errc::kInvalidAction), {{"api", req.api}});
    }

    LockPlan plan = plan_transition(*transition);
    mode_ = plan.mode;
    StripedRwLock::Guard guard;
    switch (plan.mode) {
      case LockMode::kReadShared:
        guard = store_.locks().lock_shared_all();
        break;
      case LockMode::kWriteAll:
        guard = store_.locks().lock_exclusive_all();
        break;
      case LockMode::kWriteLocal: {
        // Mint BEFORE locking so the new resource's shard joins the
        // ordered acquisition set (minting is internally synchronized
        // and journaled for rollback).
        if (transition->kind == TransitionKind::kCreate) {
          preminted_ = store_.mint_id(machine->id_prefix);
          journal_.note_minted(std::string(machine->id_prefix.empty()
                                               ? std::string_view("res")
                                               : std::string_view(machine->id_prefix)),
                               id_suffix_counter(preminted_));
        }
        std::vector<std::size_t> shards;
        std::string target = !req.target.empty() ? req.target
                             : req.args.count("id") != 0 ? req.args.at("id").as_str()
                                                         : "";
        if (!preminted_.empty()) shards.push_back(store_.shard_of(preminted_));
        if (!target.empty()) shards.push_back(store_.shard_of(target));
        for (const auto& [_, v] : req.args) collect_ref_shards(v, store_, shards);
        guard = store_.locks().lock_exclusive(std::move(shards));
        break;
      }
    }

    try {
      ApiResponse resp = run_transition(*machine, *transition, req);
      return resp;
    } catch (const Abort& a) {
      // Transactional semantics: a failed transition must leave no
      // partial writes behind. Undo in reverse under the locks we hold.
      journal_.rollback(store_);
      site_out = a.site;
      return a.response;
    }
  }

 private:
  struct Frame {
    const StateMachine* machine;
    const Transition* transition;
    Resource* self;
    Value::Map params;
    Value::Map reads;  // read() outputs
  };

  [[noreturn]] void abort_with(std::string code,
                               const std::vector<std::pair<std::string, std::string>>& fields,
                               const std::string& machine, const std::string& transition,
                               std::string note = "",
                               FailureSite::Origin origin = FailureSite::Origin::kDispatch,
                               std::string assert_text = "") {
    std::string msg = note.empty()
                          ? ErrorRegistry::instance().render_message(code, fields)
                          : note;
    if (opts_.decoder) msg = opts_.decoder(machine, transition, code, msg);
    FailureSite site;
    site.machine = machine;
    site.transition = transition;
    site.error_code = code;
    site.assert_text = std::move(assert_text);
    site.origin = origin;
    throw Abort{ApiResponse::failure(std::move(code), std::move(msg)), std::move(site)};
  }

  ApiResponse fail(const std::string& machine, const std::string& transition, std::string code,
                   const std::vector<std::pair<std::string, std::string>>& fields) {
    std::string msg = ErrorRegistry::instance().render_message(code, fields);
    if (opts_.decoder) msg = opts_.decoder(machine, transition, code, msg);
    return ApiResponse::failure(std::move(code), std::move(msg));
  }

  /// Create the target of a kCreate transition. The top-level create of a
  /// kWriteLocal plan consumes the preminted id; everything else (serial
  /// plans, nested creates reached via call() under kWriteAll) mints here.
  Resource& make_resource(const StateMachine& machine) {
    std::string id;
    if (!preminted_.empty()) {
      id = std::move(preminted_);
      preminted_.clear();
    } else {
      id = store_.mint_id(machine.id_prefix);
      journal_.note_minted(std::string(machine.id_prefix.empty()
                                           ? std::string_view("res")
                                           : std::string_view(machine.id_prefix)),
                           id_suffix_counter(id));
    }
    Resource& r = store_.create_with_id(std::move(id), machine.name);
    journal_.note_created(r.id);
    return r;
  }

  ApiResponse run_transition(const StateMachine& machine, const Transition& transition,
                             const ApiRequest& req) {
    if (++depth_ > opts_.max_call_depth) {
      abort_with(std::string(errc::kInternalError), {}, machine.name, transition.name,
                 "call depth limit exceeded", FailureSite::Origin::kFramework);
    }
    Frame frame;
    frame.machine = &machine;
    frame.transition = &transition;

    // Bind parameters.
    for (const auto& p : transition.params) {
      auto it = req.args.find(p.name);
      if (it == req.args.end()) {
        if (opts_.validate_params) {
          abort_with(std::string(errc::kMissingParameter), {{"param", p.name}}, machine.name,
                     transition.name);
        }
        frame.params[p.name] = Value();
        continue;
      }
      if (opts_.validate_params && !it->second.is_null() && !p.type.admits(it->second)) {
        abort_with(std::string(errc::kInvalidParameterValue),
                   {{"param", p.name}, {"value", it->second.to_text()}}, machine.name,
                   transition.name);
      }
      frame.params[p.name] = it->second;
    }

    // Resolve or create the target instance.
    if (transition.kind == TransitionKind::kCreate) {
      Resource& r = make_resource(machine);
      for (const auto& sv : machine.states) r.attrs[sv.name] = sv.initial;
      frame.self = &r;
    } else {
      std::string id = !req.target.empty() ? req.target : req.args.count("id") != 0
          ? req.args.at("id").as_str() : "";
      Resource* r = store_.find(id);
      if (r == nullptr || r->type != machine.name) {
        abort_with(std::string(errc::kResourceNotFound),
                   {{"resource", machine.name}, {"id", id.empty() ? "(none)" : id}},
                   machine.name, transition.name);
      }
      frame.self = r;
    }
    std::string self_id = frame.self->id;

    exec_body(transition.body, frame);

    // Built-in hierarchy guards (paper §1).
    if (opts_.hierarchy_guards) {
      if (transition.kind == TransitionKind::kDestroy &&
          store_.child_count(self_id) != 0) {
        abort_with(std::string(errc::kDependencyViolation),
                   {{"resource", machine.name}, {"id", self_id}}, machine.name,
                   transition.name, "", FailureSite::Origin::kFramework);
      }
      if (transition.kind == TransitionKind::kCreate && !machine.parent_type.empty()) {
        Resource* self = store_.find(self_id);
        if (self != nullptr && self->parent_id.empty()) {
          abort_with(std::string(errc::kValidationError),
                     {{"param", "parent"}}, machine.name, transition.name,
                     strf("created ", machine.name,
                          " was never attached to its containment parent (",
                          machine.parent_type, ")"),
                     FailureSite::Origin::kFramework);
        }
      }
    }

    // Build the response payload.
    Value::Map data;
    data["id"] = Value::ref(self_id);
    Resource* self = store_.find(self_id);
    if (transition.kind == TransitionKind::kCreate ||
        transition.kind == TransitionKind::kDescribe) {
      if (self != nullptr) {
        for (const auto& sv : machine.states) {
          auto it = self->attrs.find(sv.name);
          data[sv.name] = it != self->attrs.end() ? it->second : Value();
        }
      }
    }
    for (auto& [k, v] : frame.reads) data[k] = v;
    if (transition.kind == TransitionKind::kDestroy) {
      // Journal the full before-image plus every child whose parent link
      // the promotion pass clears (destroy runs under kWriteAll, so the
      // scan is safe).
      for (const auto& child_id : store_.children_of(self_id)) {
        if (const Resource* child = store_.find(child_id)) {
          journal_.note_modified(*child);
        }
      }
      if (self != nullptr) journal_.note_destroyed(*self);
      store_.destroy(self_id);
    }
    --depth_;
    return ApiResponse::success(Value(std::move(data)));
  }

  void exec_body(const spec::Body& body, Frame& frame) {
    for (const auto& s : body) exec_stmt(*s, frame);
  }

  void exec_stmt(const Stmt& s, Frame& frame) {
    const std::string& mname = frame.machine->name;
    const std::string& tname = frame.transition->name;
    switch (s.kind) {
      case StmtKind::kWrite: {
        const spec::StateVar* sv = frame.machine->find_state(s.var);
        Value v = eval(*s.expr, frame);
        if (sv == nullptr) {
          abort_with(std::string(errc::kInternalError), {}, mname, tname,
                     strf("write to undeclared state '", s.var, "'"));
        }
        if (!v.is_null() && !sv->type.admits(v)) {
          abort_with(std::string(errc::kInvalidParameterValue),
                     {{"param", s.var}, {"value", v.to_text()}}, mname, tname, "",
                     FailureSite::Origin::kWriteCheck, s.var);
        }
        journal_.note_modified(*frame.self);
        frame.self->attrs[s.var] = std::move(v);
        return;
      }
      case StmtKind::kRead: {
        auto it = frame.self->attrs.find(s.var);
        frame.reads[s.var] = it != frame.self->attrs.end() ? it->second : Value();
        return;
      }
      case StmtKind::kAssert: {
        if (!eval(*s.expr, frame).truthy()) {
          // The {value}/{param} message fields name the first variable the
          // predicate mentions and its current value — the argument the
          // caller most likely got wrong.
          const Expr* var = first_var(*s.expr);
          std::string param = var != nullptr ? var->name : s.var;
          std::string value =
              var != nullptr ? eval(*var, frame).to_text() : s.expr->to_text();
          abort_with(s.error_code,
                     {{"resource", mname},
                      {"id", frame.self->id},
                      {"api", tname},
                      {"param", param},
                      {"value", value}},
                     mname, tname, s.error_note, FailureSite::Origin::kAssert,
                     s.expr->to_text());
        }
        return;
      }
      case StmtKind::kCall: {
        Value target = eval(*s.expr, frame);
        if (!target.is_ref()) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", "resource"}, {"id", target.to_text()}}, mname, tname);
        }
        Resource* callee_res = store_.find(target.as_str());
        if (callee_res == nullptr) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", "resource"}, {"id", target.as_str()}}, mname, tname);
        }
        const StateMachine* callee_m = spec_.find_machine(callee_res->type);
        const Transition* callee_t =
            callee_m != nullptr ? callee_m->find_transition(s.callee) : nullptr;
        if (callee_m == nullptr || callee_t == nullptr) {
          abort_with(std::string(errc::kInternalError), {}, mname, tname,
                     strf("call to unknown transition '", s.callee, "' on type '",
                          callee_res->type, "'"));
        }
        // Positional argument binding.
        ApiRequest sub;
        sub.api = s.callee;
        sub.target = callee_res->id;
        for (std::size_t i = 0; i < s.args.size() && i < callee_t->params.size(); ++i) {
          sub.args[callee_t->params[i].name] = eval(*s.args[i], frame);
        }
        ApiResponse resp = run_transition(*callee_m, *callee_t, sub);
        if (!resp.ok) throw Abort{resp};  // propagate (already decoded)
        return;
      }
      case StmtKind::kAttachParent: {
        Value parent = eval(*s.expr, frame);
        const Resource* p = parent.is_ref() ? store_.find(parent.as_str()) : nullptr;
        if (p == nullptr || (!frame.machine->parent_type.empty() &&
                             p->type != frame.machine->parent_type)) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", frame.machine->parent_type},
                      {"id", parent.is_ref() ? parent.as_str() : parent.to_text()}},
                     mname, tname);
        }
        journal_.note_modified(*frame.self);
        if (mode_ == LockMode::kWriteLocal) {
          // Write-local implies a create body (plan_transition): self is
          // the freshly minted child, so no cycle walk is needed or legal.
          store_.attach_created(frame.self->id, p->id);
        } else {
          store_.attach(frame.self->id, p->id);
        }
        return;
      }
      case StmtKind::kIf: {
        if (eval(*s.expr, frame).truthy()) {
          exec_body(s.then_body, frame);
        } else {
          exec_body(s.else_body, frame);
        }
        return;
      }
    }
  }

  /// First variable or self-field reference in a predicate (the argument
  /// most error messages should name), or nullptr.
  static const Expr* first_var(const Expr& e) {
    if (e.kind == ExprKind::kVar) return &e;
    if (e.kind == ExprKind::kField && e.kids[0]->kind == ExprKind::kSelf) return &e;
    for (const auto& k : e.kids) {
      if (const Expr* found = first_var(*k)) return found;
    }
    return nullptr;
  }

  // ------------------------------------------------------------- eval --
  Value eval(const Expr& e, Frame& frame) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kSelf:
        return Value::ref(frame.self->id);
      case ExprKind::kVar: {
        auto pit = frame.params.find(e.name);
        if (pit != frame.params.end()) return pit->second;
        auto ait = frame.self->attrs.find(e.name);
        if (ait != frame.self->attrs.end()) return ait->second;
        // Unknown name evaluates to null (lenient, like the mock cloud).
        return Value();
      }
      case ExprKind::kField: {
        Value base = eval(*e.kids[0], frame);
        if (!base.is_ref()) return Value();
        if (e.name == "id") return base;
        const Resource* r = store_.find(base.as_str());
        if (r == nullptr) return Value();
        if (e.name == "parent") {
          return r->parent_id.empty() ? Value() : Value::ref(r->parent_id);
        }
        auto it = r->attrs.find(e.name);
        return it != r->attrs.end() ? it->second : Value();
      }
      case ExprKind::kUnary: {
        Value v = eval(*e.kids[0], frame);
        if (e.unary_op == UnaryOp::kNot) return Value(!v.truthy());
        return Value(-v.as_int());
      }
      case ExprKind::kBinary:
        return eval_binary(e, frame);
      case ExprKind::kBuiltin:
        return eval_builtin(e, frame);
    }
    return Value();
  }

  Value eval_binary(const Expr& e, Frame& frame) {
    if (e.binary_op == BinaryOp::kAnd) {
      return Value(eval(*e.kids[0], frame).truthy() && eval(*e.kids[1], frame).truthy());
    }
    if (e.binary_op == BinaryOp::kOr) {
      return Value(eval(*e.kids[0], frame).truthy() || eval(*e.kids[1], frame).truthy());
    }
    Value l = eval(*e.kids[0], frame);
    Value r = eval(*e.kids[1], frame);
    switch (e.binary_op) {
      case BinaryOp::kEq: return Value(l == r);
      case BinaryOp::kNe: return Value(!(l == r));
      case BinaryOp::kLt: return Value(l < r);
      case BinaryOp::kLe: return Value(l < r || l == r);
      case BinaryOp::kGt: return Value(r < l);
      case BinaryOp::kGe: return Value(r < l || l == r);
      case BinaryOp::kAdd: return Value(l.as_int() + r.as_int());
      case BinaryOp::kSub: return Value(l.as_int() - r.as_int());
      default: return Value(false);
    }
  }

  Value eval_builtin(const Expr& e, Frame& frame) {
    auto arg = [&](std::size_t i) {
      return i < e.kids.size() ? eval(*e.kids[i], frame) : Value();
    };
    if (e.name == "is_null") return Value(arg(0).is_null());
    if (e.name == "len") {
      Value v = arg(0);
      if (v.is_list()) return Value(static_cast<std::int64_t>(v.as_list().size()));
      if (v.is_str()) return Value(static_cast<std::int64_t>(v.as_str().size()));
      return Value(0);
    }
    if (e.name == "in_list") {
      Value needle = arg(0);
      for (std::size_t i = 1; i < e.kids.size(); ++i) {
        if (arg(i) == needle) return Value(true);
      }
      return Value(false);
    }
    if (e.name == "cidr_valid") return Value(Cidr::parse(arg(0).as_str()).has_value());
    if (e.name == "cidr_prefix_len") {
      auto c = Cidr::parse(arg(0).as_str());
      return Value(c ? static_cast<std::int64_t>(c->prefix_len()) : -1);
    }
    if (e.name == "cidr_within") {
      auto inner = Cidr::parse(arg(0).as_str());
      auto outer = Cidr::parse(arg(1).as_str());
      return Value(inner && outer && outer->contains(*inner));
    }
    if (e.name == "cidr_overlaps") {
      auto a = Cidr::parse(arg(0).as_str());
      auto b = Cidr::parse(arg(1).as_str());
      return Value(a && b && a->overlaps(*b));
    }
    if (e.name == "child_count") {
      return Value(static_cast<std::int64_t>(
          store_.child_count(frame.self->id, arg(0).as_str())));
    }
    if (e.name == "sibling_cidr_conflict") {
      auto mine = Cidr::parse(arg(0).as_str());
      if (!mine) return Value(false);
      // Optional second arg: which sibling attribute holds the block
      // (defaults to the AWS-style "cidr_block").
      std::string attr = e.kids.size() > 1 ? arg(1).as_str() : "cidr_block";
      for (const auto& sid : store_.siblings_of(frame.self->id)) {
        const Resource* sib = store_.find(sid);
        if (sib == nullptr) continue;
        auto it = sib->attrs.find(attr);
        if (it == sib->attrs.end()) continue;
        auto theirs = Cidr::parse(it->second.as_str());
        if (theirs && mine->overlaps(*theirs)) return Value(true);
      }
      return Value(false);
    }
    if (e.name == "exists") {
      Value v = arg(0);
      if (!v.is_ref()) return Value(false);
      const Resource* r = store_.find(v.as_str());
      if (r == nullptr) return Value(false);
      if (e.kids.size() > 1) {
        Value ty = arg(1);
        return Value(r->type == ty.as_str());
      }
      return Value(true);
    }
    return Value();
  }

  const spec::SpecSet& spec_;
  const InterpreterOptions& opts_;
  ResourceStore& store_;
  UndoJournal journal_;
  LockMode mode_ = LockMode::kWriteAll;
  std::string preminted_;  // create id minted before locking (kWriteLocal)
  int depth_ = 0;
};

}  // namespace

Interpreter::Interpreter(spec::SpecSet spec, InterpreterOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts)) {}

ApiResponse Interpreter::invoke(const ApiRequest& req) {
  FailureSite site;
  ApiResponse resp = Execution(spec_, opts_, store_).run(req, site);
  std::lock_guard<std::mutex> lock(*failure_mu_);
  last_failure_ = std::move(site);
  return resp;
}

void Interpreter::reset() {
  auto guard = store_.locks().lock_exclusive_all();
  store_.clear();
}

Value Interpreter::snapshot() const {
  auto guard = store_.locks().lock_shared_all();
  return store_.snapshot();
}

bool Interpreter::supports(const std::string& api) const {
  return spec_.find_api(api).first != nullptr;
}

FailureSite Interpreter::last_failure() const {
  std::lock_guard<std::mutex> lock(*failure_mu_);
  return last_failure_;
}

void Interpreter::replace_spec(spec::SpecSet spec) { spec_ = std::move(spec); }

std::unique_ptr<CloudBackend> Interpreter::clone() const {
  auto copy = std::make_unique<Interpreter>(spec_.clone(), opts_);
  {
    auto guard = store_.locks().lock_shared_all();
    copy->store_ = store_.clone();
  }
  std::lock_guard<std::mutex> lock(*failure_mu_);
  copy->last_failure_ = last_failure_;
  return copy;
}

}  // namespace lce::interp
