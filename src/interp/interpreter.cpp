#include "interp/interpreter.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/cidr.h"
#include "common/errors.h"
#include "common/strings.h"
#include "interp/exec_internal.h"
#include "interp/plan/exec.h"
#include "interp/timers.h"

namespace lce::interp {

namespace {

using internal::Abort;
using internal::UndoJournal;
using plan::LockMode;
using plan::LockPlan;
using spec::BinaryOp;
using spec::Expr;
using spec::ExprKind;
using spec::StateMachine;
using spec::Stmt;
using spec::StmtKind;
using spec::Transition;
using spec::TransitionKind;
using spec::UnaryOp;

// The tree-walking reference execution path. The compiled-plan path
// (interp/plan) must match it byte-for-byte; keep the two in lockstep
// when changing semantics here (the differential equivalence suite
// enforces it).
class Execution {
 public:
  Execution(const spec::SpecSet& spec, const InterpreterOptions& opts, ResourceStore& store)
      : spec_(spec), opts_(opts), store_(store) {}

  ApiResponse run(const ApiRequest& req, FailureSite& site_out) {
    site_out = FailureSite{};
    auto [machine, transition] = spec_.find_api(req.api);
    if (machine == nullptr || transition == nullptr) {
      site_out.origin = FailureSite::Origin::kDispatch;
      site_out.error_code = std::string(errc::kInvalidAction);
      return fail("", "", std::string(errc::kInvalidAction), {{"api", req.api}});
    }

    std::string target = !req.target.empty() ? req.target
                         : req.args.count("id") != 0
                             ? std::string(req.args.at("id").as_str())
                             : "";
    LockPlan lock = plan::classify_transition(*transition);
    mode_ = lock.mode;
    StripedRwLock::Guard guard;
    switch (lock.mode) {
      case LockMode::kReadShared:
        guard = store_.locks().lock_shared_all();
        break;
      case LockMode::kWriteAll:
        guard = store_.locks().lock_exclusive_all();
        break;
      case LockMode::kWriteLocal: {
        // Mint BEFORE locking so the new resource's shard joins the
        // ordered acquisition set (minting is internally synchronized
        // and journaled for rollback).
        if (transition->kind == TransitionKind::kCreate) {
          preminted_ = store_.mint_id(machine->id_prefix);
          journal_.note_minted(std::string(machine->id_prefix.empty()
                                               ? std::string_view("res")
                                               : std::string_view(machine->id_prefix)),
                               internal::id_suffix_counter(preminted_));
        }
        std::vector<std::size_t> shards;
        if (!preminted_.empty()) shards.push_back(store_.shard_of(preminted_));
        if (!target.empty()) shards.push_back(store_.shard_of(target));
        for (const auto& [_, v] : req.args) {
          internal::collect_ref_shards(v, store_, shards);
        }
        guard = store_.locks().lock_exclusive(std::move(shards));
        break;
      }
    }

    try {
      ApiResponse resp = run_transition(*machine, *transition, &req.args, nullptr, target);
      commit_timers();
      return resp;
    } catch (const Abort& a) {
      // Transactional semantics: a failed transition must leave no
      // partial writes behind. Undo in reverse under the locks we hold.
      journal_.rollback(store_);
      site_out = a.site;
      return a.response;
    }
  }

 private:
  struct Frame {
    const StateMachine* machine;
    const Transition* transition;
    Resource* self;
    Value::Map params;
    Value::Map reads;  // read() outputs
  };

  [[noreturn]] void abort_with(std::string code,
                               const std::vector<std::pair<std::string, std::string>>& fields,
                               const std::string& machine, const std::string& transition,
                               std::string note = "",
                               FailureSite::Origin origin = FailureSite::Origin::kDispatch,
                               std::string assert_text = "") {
    std::string msg = note.empty()
                          ? ErrorRegistry::instance().render_message(code, fields)
                          : note;
    if (opts_.decoder) msg = opts_.decoder(machine, transition, code, msg);
    FailureSite site;
    site.machine = machine;
    site.transition = transition;
    site.error_code = code;
    site.assert_text = std::move(assert_text);
    site.origin = origin;
    throw Abort{ApiResponse::failure(std::move(code), std::move(msg)), std::move(site)};
  }

  ApiResponse fail(const std::string& machine, const std::string& transition, std::string code,
                   const std::vector<std::pair<std::string, std::string>>& fields) {
    std::string msg = ErrorRegistry::instance().render_message(code, fields);
    if (opts_.decoder) msg = opts_.decoder(machine, transition, code, msg);
    return ApiResponse::failure(std::move(code), std::move(msg));
  }

  /// Create the target of a kCreate transition. The top-level create of a
  /// kWriteLocal plan consumes the preminted id; everything else (serial
  /// plans, nested creates reached via call() under kWriteAll) mints here.
  Resource& make_resource(const StateMachine& machine) {
    std::string id;
    if (!preminted_.empty()) {
      id = std::move(preminted_);
      preminted_.clear();
    } else {
      id = store_.mint_id(machine.id_prefix);
      journal_.note_minted(std::string(machine.id_prefix.empty()
                                           ? std::string_view("res")
                                           : std::string_view(machine.id_prefix)),
                           internal::id_suffix_counter(id));
    }
    Resource& r = store_.create_with_id(std::move(id), machine.name);
    journal_.note_created(r.id);
    if (machine.has_timers()) timer_touched_.emplace_back(r.id, &machine);
    return r;
  }

  /// Reconcile `after` clauses for every resource the (now committed)
  /// transition created, wrote or destroyed — in touch order, first touch
  /// wins — while the shard locks are still held. Aborted transitions
  /// never reach this, so rolled-back writes leave the timer set alone.
  void commit_timers() {
    for (std::size_t i = 0; i < timer_touched_.size(); ++i) {
      const auto& [id, machine] = timer_touched_[i];
      bool seen = false;
      for (std::size_t j = 0; j < i && !seen; ++j) seen = timer_touched_[j].first == id;
      if (seen) continue;
      if (const Resource* r = store_.find(id)) {
        timers::reconcile(store_, *machine, *r);
      } else {
        store_.timers().cancel_resource(id);
      }
    }
  }

  /// `named` (top-level request args, bound by name) and `positional`
  /// (sub-call argument values, aligned to the callee's param order) are
  /// the two argument sources; exactly one is non-null. Positional values
  /// are moved out — call() no longer rebuilds a string-keyed arg map.
  ApiResponse run_transition(const StateMachine& machine, const Transition& transition,
                             const Value::Map* named, std::vector<Value>* positional,
                             const std::string& target) {
    if (++depth_ > opts_.max_call_depth) {
      abort_with(std::string(errc::kInternalError), {}, machine.name, transition.name,
                 "call depth limit exceeded", FailureSite::Origin::kFramework);
    }
    Frame frame;
    frame.machine = &machine;
    frame.transition = &transition;

    // Bind parameters.
    for (std::size_t i = 0; i < transition.params.size(); ++i) {
      const auto& p = transition.params[i];
      const Value* src = nullptr;
      if (named != nullptr) {
        auto it = named->find(p.name);
        if (it != named->end()) src = &it->second;
      } else if (positional != nullptr && i < positional->size()) {
        src = &(*positional)[i];
      }
      if (src == nullptr) {
        if (opts_.validate_params) {
          abort_with(std::string(errc::kMissingParameter), {{"param", p.name}}, machine.name,
                     transition.name);
        }
        frame.params[p.name] = Value();
        continue;
      }
      if (opts_.validate_params && !src->is_null() && !p.type.admits(*src)) {
        abort_with(std::string(errc::kInvalidParameterValue),
                   {{"param", p.name}, {"value", src->to_text()}}, machine.name,
                   transition.name);
      }
      frame.params[p.name] =
          positional != nullptr ? std::move((*positional)[i]) : *src;
    }

    // Resolve or create the target instance.
    if (transition.kind == TransitionKind::kCreate) {
      Resource& r = make_resource(machine);
      {
        // Store write: the initial-value copies must be heap-backed.
        ArenaPause pause;
        for (const auto& sv : machine.states) r.attrs.set(sv.name, sv.initial);
      }
      frame.self = &r;
    } else {
      Resource* r = store_.find(target);
      if (r == nullptr || r->type != machine.name) {
        abort_with(std::string(errc::kResourceNotFound),
                   {{"resource", machine.name}, {"id", target.empty() ? "(none)" : target}},
                   machine.name, transition.name);
      }
      frame.self = r;
    }
    std::string self_id = frame.self->id;

    exec_body(transition.body, frame);

    // Built-in hierarchy guards (paper §1).
    if (opts_.hierarchy_guards) {
      if (transition.kind == TransitionKind::kDestroy &&
          store_.child_count(self_id) != 0) {
        abort_with(std::string(errc::kDependencyViolation),
                   {{"resource", machine.name}, {"id", self_id}}, machine.name,
                   transition.name, "", FailureSite::Origin::kFramework);
      }
      if (transition.kind == TransitionKind::kCreate && !machine.parent_type.empty()) {
        Resource* self = store_.find(self_id);
        if (self != nullptr && self->parent_id.empty()) {
          abort_with(std::string(errc::kValidationError),
                     {{"param", "parent"}}, machine.name, transition.name,
                     strf("created ", machine.name,
                          " was never attached to its containment parent (",
                          machine.parent_type, ")"),
                     FailureSite::Origin::kFramework);
        }
      }
    }

    // Build the response payload.
    Value::Map data;
    data["id"] = Value::ref(self_id);
    Resource* self = store_.find(self_id);
    if (transition.kind == TransitionKind::kCreate ||
        transition.kind == TransitionKind::kDescribe) {
      if (self != nullptr) {
        for (const auto& sv : machine.states) {
          const Value* v = self->attrs.get(sv.name);
          data[sv.name] = v != nullptr ? *v : Value();
        }
      }
    }
    for (auto& [k, v] : frame.reads) data[k] = v;
    if (transition.kind == TransitionKind::kDestroy) {
      // Journal the full before-image plus every child whose parent link
      // the promotion pass clears (destroy runs under kWriteAll, so the
      // scan is safe).
      for (const auto& child_id : store_.children_of(self_id)) {
        if (const Resource* child = store_.find(child_id)) {
          journal_.note_modified(*child);
        }
      }
      if (self != nullptr) journal_.note_destroyed(*self);
      store_.destroy(self_id);
      if (machine.has_timers()) timer_touched_.emplace_back(self_id, &machine);
    }
    --depth_;
    return ApiResponse::success(Value(std::move(data)));
  }

  void exec_body(const spec::Body& body, Frame& frame) {
    for (const auto& s : body) exec_stmt(*s, frame);
  }

  void exec_stmt(const Stmt& s, Frame& frame) {
    const std::string& mname = frame.machine->name;
    const std::string& tname = frame.transition->name;
    switch (s.kind) {
      case StmtKind::kWrite: {
        const spec::StateVar* sv = frame.machine->find_state(s.var);
        Value v = eval(*s.expr, frame);
        if (sv == nullptr) {
          abort_with(std::string(errc::kInternalError), {}, mname, tname,
                     strf("write to undeclared state '", s.var, "'"));
        }
        if (!v.is_null() && !sv->type.admits(v)) {
          abort_with(std::string(errc::kInvalidParameterValue),
                     {{"param", s.var}, {"value", v.to_text()}}, mname, tname, "",
                     FailureSite::Origin::kWriteCheck, s.var);
        }
        journal_.note_modified(*frame.self);
        v.detach();  // store write: the value outlives the request
        frame.self->attrs.set(s.var, std::move(v));
        if (frame.machine->has_timers()) {
          timer_touched_.emplace_back(frame.self->id, frame.machine);
        }
        return;
      }
      case StmtKind::kRead: {
        const Value* v = frame.self->attrs.get(s.var);
        frame.reads[s.var] = v != nullptr ? *v : Value();
        return;
      }
      case StmtKind::kAssert: {
        if (!eval(*s.expr, frame).truthy()) {
          // The {value}/{param} message fields name the first variable the
          // predicate mentions and its current value — the argument the
          // caller most likely got wrong.
          const Expr* var = first_var(*s.expr);
          std::string param = var != nullptr ? var->name : s.var;
          std::string value =
              var != nullptr ? eval(*var, frame).to_text() : s.expr->to_text();
          abort_with(s.error_code,
                     {{"resource", mname},
                      {"id", frame.self->id},
                      {"api", tname},
                      {"param", param},
                      {"value", value}},
                     mname, tname, s.error_note, FailureSite::Origin::kAssert,
                     s.expr->to_text());
        }
        return;
      }
      case StmtKind::kCall: {
        Value target = eval(*s.expr, frame);
        if (!target.is_ref()) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", "resource"}, {"id", target.to_text()}}, mname, tname);
        }
        Resource* callee_res = store_.find(target.as_str());
        if (callee_res == nullptr) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", "resource"}, {"id", std::string(target.as_str())}},
                     mname, tname);
        }
        const StateMachine* callee_m = spec_.find_machine(callee_res->type);
        const Transition* callee_t =
            callee_m != nullptr ? callee_m->find_transition(s.callee) : nullptr;
        if (callee_m == nullptr || callee_t == nullptr) {
          abort_with(std::string(errc::kInternalError), {}, mname, tname,
                     strf("call to unknown transition '", s.callee, "' on type '",
                          callee_res->type, "'"));
        }
        // Positional argument binding into a flat vector the callee binds
        // by index (no per-call arg map).
        std::size_t argc = std::min(s.args.size(), callee_t->params.size());
        std::vector<Value> args;
        args.reserve(argc);
        for (std::size_t i = 0; i < argc; ++i) args.push_back(eval(*s.args[i], frame));
        ApiResponse resp =
            run_transition(*callee_m, *callee_t, nullptr, &args, callee_res->id);
        if (!resp.ok) throw Abort{resp, {}};  // propagate (already decoded)
        return;
      }
      case StmtKind::kAttachParent: {
        Value parent = eval(*s.expr, frame);
        const Resource* p = parent.is_ref() ? store_.find(parent.as_str()) : nullptr;
        if (p == nullptr || (!frame.machine->parent_type.empty() &&
                             p->type != frame.machine->parent_type)) {
          abort_with(std::string(errc::kResourceNotFound),
                     {{"resource", frame.machine->parent_type},
                      {"id", parent.is_ref() ? std::string(parent.as_str())
                                             : parent.to_text()}},
                     mname, tname);
        }
        journal_.note_modified(*frame.self);
        if (mode_ == LockMode::kWriteLocal) {
          // Write-local implies a create body (classify_transition): self
          // is the freshly minted child, so no cycle walk is needed or
          // legal.
          store_.attach_created(frame.self->id, p->id);
        } else {
          store_.attach(frame.self->id, p->id);
        }
        return;
      }
      case StmtKind::kIf: {
        if (eval(*s.expr, frame).truthy()) {
          exec_body(s.then_body, frame);
        } else {
          exec_body(s.else_body, frame);
        }
        return;
      }
    }
  }

  /// First variable or self-field reference in a predicate (the argument
  /// most error messages should name), or nullptr.
  static const Expr* first_var(const Expr& e) {
    if (e.kind == ExprKind::kVar) return &e;
    if (e.kind == ExprKind::kField && e.kids[0]->kind == ExprKind::kSelf) return &e;
    for (const auto& k : e.kids) {
      if (const Expr* found = first_var(*k)) return found;
    }
    return nullptr;
  }

  // ------------------------------------------------------------- eval --
  Value eval(const Expr& e, Frame& frame) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kSelf:
        return Value::ref(frame.self->id);
      case ExprKind::kVar: {
        auto pit = frame.params.find(e.name);
        if (pit != frame.params.end()) return pit->second;
        if (const Value* av = frame.self->attrs.get(e.name)) return *av;
        // Unknown name evaluates to null (lenient, like the mock cloud).
        return Value();
      }
      case ExprKind::kField: {
        Value base = eval(*e.kids[0], frame);
        if (!base.is_ref()) return Value();
        if (e.name == "id") return base;
        const Resource* r = store_.find(base.as_str());
        if (r == nullptr) return Value();
        if (e.name == "parent") {
          return r->parent_id.empty() ? Value() : Value::ref(r->parent_id);
        }
        const Value* v = r->attrs.get(e.name);
        return v != nullptr ? *v : Value();
      }
      case ExprKind::kUnary: {
        Value v = eval(*e.kids[0], frame);
        if (e.unary_op == UnaryOp::kNot) return Value(!v.truthy());
        return Value(-v.as_int());
      }
      case ExprKind::kBinary:
        return eval_binary(e, frame);
      case ExprKind::kBuiltin:
        return eval_builtin(e, frame);
    }
    return Value();
  }

  Value eval_binary(const Expr& e, Frame& frame) {
    if (e.binary_op == BinaryOp::kAnd) {
      return Value(eval(*e.kids[0], frame).truthy() && eval(*e.kids[1], frame).truthy());
    }
    if (e.binary_op == BinaryOp::kOr) {
      return Value(eval(*e.kids[0], frame).truthy() || eval(*e.kids[1], frame).truthy());
    }
    Value l = eval(*e.kids[0], frame);
    Value r = eval(*e.kids[1], frame);
    switch (e.binary_op) {
      case BinaryOp::kEq: return Value(l == r);
      case BinaryOp::kNe: return Value(!(l == r));
      case BinaryOp::kLt: return Value(l < r);
      case BinaryOp::kLe: return Value(l < r || l == r);
      case BinaryOp::kGt: return Value(r < l);
      case BinaryOp::kGe: return Value(r < l || l == r);
      case BinaryOp::kAdd: return Value(l.as_int() + r.as_int());
      case BinaryOp::kSub: return Value(l.as_int() - r.as_int());
      default: return Value(false);
    }
  }

  Value eval_builtin(const Expr& e, Frame& frame) {
    auto arg = [&](std::size_t i) {
      return i < e.kids.size() ? eval(*e.kids[i], frame) : Value();
    };
    if (e.name == "is_null") return Value(arg(0).is_null());
    if (e.name == "len") {
      Value v = arg(0);
      if (v.is_list()) return Value(static_cast<std::int64_t>(v.as_list().size()));
      if (v.is_str()) return Value(static_cast<std::int64_t>(v.as_str().size()));
      return Value(0);
    }
    if (e.name == "in_list") {
      Value needle = arg(0);
      for (std::size_t i = 1; i < e.kids.size(); ++i) {
        if (arg(i) == needle) return Value(true);
      }
      return Value(false);
    }
    if (e.name == "cidr_valid") return Value(Cidr::parse(arg(0).as_str()).has_value());
    if (e.name == "cidr_prefix_len") {
      auto c = Cidr::parse(arg(0).as_str());
      return Value(c ? static_cast<std::int64_t>(c->prefix_len()) : -1);
    }
    if (e.name == "cidr_within") {
      auto inner = Cidr::parse(arg(0).as_str());
      auto outer = Cidr::parse(arg(1).as_str());
      return Value(inner && outer && outer->contains(*inner));
    }
    if (e.name == "cidr_overlaps") {
      auto a = Cidr::parse(arg(0).as_str());
      auto b = Cidr::parse(arg(1).as_str());
      return Value(a && b && a->overlaps(*b));
    }
    if (e.name == "child_count") {
      return Value(static_cast<std::int64_t>(
          store_.child_count(frame.self->id, arg(0).as_str())));
    }
    if (e.name == "sibling_cidr_conflict") {
      auto mine = Cidr::parse(arg(0).as_str());
      if (!mine) return Value(false);
      // Optional second arg: which sibling attribute holds the block
      // (defaults to the AWS-style "cidr_block").
      Value attr_arg = e.kids.size() > 1 ? arg(1) : Value();
      std::string_view attr =
          e.kids.size() > 1 ? attr_arg.as_str() : std::string_view("cidr_block");
      for (const auto& sid : store_.siblings_of(frame.self->id)) {
        const Resource* sib = store_.find(sid);
        if (sib == nullptr) continue;
        const Value* block = sib->attrs.get(attr);
        if (block == nullptr) continue;
        auto theirs = Cidr::parse(block->as_str());
        if (theirs && mine->overlaps(*theirs)) return Value(true);
      }
      return Value(false);
    }
    if (e.name == "exists") {
      Value v = arg(0);
      if (!v.is_ref()) return Value(false);
      const Resource* r = store_.find(v.as_str());
      if (r == nullptr) return Value(false);
      if (e.kids.size() > 1) {
        Value ty = arg(1);
        return Value(r->type == ty.as_str());
      }
      return Value(true);
    }
    return Value();
  }

  const spec::SpecSet& spec_;
  const InterpreterOptions& opts_;
  ResourceStore& store_;
  UndoJournal journal_;
  LockMode mode_ = LockMode::kWriteAll;
  std::string preminted_;  // create id minted before locking (kWriteLocal)
  int depth_ = 0;
  // Resources whose timer clauses need commit-time reconciliation, in
  // touch order (empty for machines without `after` clauses).
  std::vector<std::pair<std::string, const StateMachine*>> timer_touched_;
};

}  // namespace

Interpreter::Interpreter(spec::SpecSet spec, InterpreterOptions opts)
    : spec_(std::move(spec)), opts_(std::move(opts)) {
  rebuild_dispatch();
}

Interpreter::Interpreter(spec::SpecSet spec, InterpreterOptions opts,
                         std::shared_ptr<const plan::ExecutionPlan> shared_plan)
    : spec_(std::move(spec)), opts_(std::move(opts)), plan_(std::move(shared_plan)) {
  // Clone path: the plan (when any) is already built and immutable; only
  // the per-copy dispatch index needs (re)building.
  spec_.invalidate_api_index();
  spec_.ensure_api_index();
}

void Interpreter::rebuild_dispatch() {
  // The incoming spec may carry an index built before its last mutation
  // (repair edits specs in place); drop it rather than trust it.
  spec_.invalidate_api_index();
  spec_.ensure_api_index();
  plan_ = opts_.use_plan ? plan::ExecutionPlan::build(spec_) : nullptr;
}

ApiResponse Interpreter::invoke(const ApiRequest& req) {
  if (req.api == timers::kAdvanceClockApi) return advance_clock(req);
  FailureSite site;
  ApiResponse resp;
  if (opts_.use_arena && detail::current_arena() == nullptr) {
    // Request-scoped arena: every transient Value rep block this invoke
    // builds on this thread is bump-allocated and reclaimed in one reset.
    // Store writes detach at the write site; the response detaches here,
    // after which no arena-backed Value survives.
    static thread_local Arena arena;
    {
      ArenaScope scope(arena);
      resp = plan_ != nullptr ? plan::run_plan(*plan_, opts_, store_, req, site)
                              : Execution(spec_, opts_, store_).run(req, site);
      resp.data.detach();
    }
    arena.reset();
  } else {
    resp = plan_ != nullptr ? plan::run_plan(*plan_, opts_, store_, req, site)
                            : Execution(spec_, opts_, store_).run(req, site);
  }
  std::lock_guard<std::mutex> lock(*failure_mu_);
  last_failure_ = std::move(site);
  return resp;
}

ApiResponse Interpreter::advance_clock(const ApiRequest& req) {
  std::int64_t ticks = 1;
  auto it = req.args.find("ticks");
  if (it != req.args.end()) {
    if (!it->second.is_int() || it->second.as_int() < 1) {
      return ApiResponse::failure(
          std::string(errc::kInvalidParameterValue),
          strf("_AdvanceClock ticks must be a positive integer, got ",
               it->second.to_text()));
    }
    ticks = it->second.as_int();
  }
  std::uint64_t target = store_.timers().now() + static_cast<std::uint64_t>(ticks);
  std::int64_t fired = 0;
  std::int64_t failed = 0;
  // Due timers fire through the public invoke path one at a time, in
  // (deadline, seq) order, each under its own lock plan / undo journal —
  // a timer fire IS an ordinary transition. Timers armed by a fire with a
  // deadline inside the window fire in the same advance (delays are >= 1
  // tick, so the cascade provably terminates at `target`).
  while (auto ti = store_.timers().pop_due(target)) {
    ApiRequest fire;
    fire.api = ti->transition;
    fire.args["id"] = Value(ti->resource_id);
    ApiResponse resp = invoke(fire);
    if (resp.ok) {
      ++fired;
      // Popping disarmed the clause; if its variable still holds the
      // trigger value (the fire did not move it), re-arm so the clause
      // behaves periodically. Writes the fire made were already
      // reconciled inside the nested invoke. Only the fired resource is
      // read here, so one shard lock suffices (the TimerService itself is
      // a leaf lock) — a bulk advance fires thousands of these.
      auto guard =
          store_.locks().lock_shared_one(store_.shard_of(ti->resource_id));
      if (const Resource* r = store_.find(ti->resource_id)) {
        if (const spec::StateMachine* m = spec_.find_machine(r->type)) {
          timers::reconcile(store_, *m, *r);
        }
      }
    } else {
      ++failed;  // no retry: the clause stays disarmed (deterministic)
    }
  }
  Value::Map data;
  data["failed"] = Value(failed);
  data["fired"] = Value(fired);
  data["now"] = Value(static_cast<std::int64_t>(store_.timers().now()));
  std::lock_guard<std::mutex> lock(*failure_mu_);
  last_failure_ = FailureSite{};
  return ApiResponse::success(Value(std::move(data)));
}

void Interpreter::reset() {
  auto guard = store_.locks().lock_exclusive_all();
  store_.clear();
}

Value Interpreter::snapshot() const {
  auto guard = store_.locks().lock_shared_all();
  return store_.snapshot();
}

bool Interpreter::supports(const std::string& api) const {
  if (api == timers::kAdvanceClockApi) return true;
  // Same index/dispatch table invoke() uses — supports() + invoke() pairs
  // (the stack's validate layer) cost two cheap lookups, not two scans.
  if (plan_ != nullptr) return plan_->find_api(api) != nullptr;
  return spec_.find_api(api).first != nullptr;
}

bool Interpreter::read_only_api(const std::string& api) const {
  if (plan_ != nullptr) {
    const plan::CompiledTransition* t = plan_->find_api(api);
    return t != nullptr && t->lock.mode == LockMode::kReadShared;
  }
  auto [machine, transition] = spec_.find_api(api);
  return transition != nullptr &&
         plan::classify_transition(*transition).mode == LockMode::kReadShared;
}

FailureSite Interpreter::last_failure() const {
  std::lock_guard<std::mutex> lock(*failure_mu_);
  return last_failure_;
}

void Interpreter::replace_spec(spec::SpecSet spec) {
  spec_ = std::move(spec);
  // Rebuilding bumps the plan epoch, so every Resource slot cache built
  // against the old plan goes stale atomically with the swap.
  rebuild_dispatch();
}

std::unique_ptr<CloudBackend> Interpreter::clone() const {
  auto copy = std::unique_ptr<Interpreter>(
      new Interpreter(spec_.clone(), opts_, plan_));
  {
    auto guard = store_.locks().lock_shared_all();
    copy->store_ = store_.clone();
  }
  std::lock_guard<std::mutex> lock(*failure_mu_);
  copy->last_failure_ = last_failure_;
  return copy;
}

}  // namespace lce::interp
