#include "interp/store.h"

#include <algorithm>

namespace lce::interp {

Resource& ResourceStore::create(std::string_view type, std::string_view id_prefix) {
  std::string id = ids_.next(id_prefix.empty() ? "res" : id_prefix);
  Resource r;
  r.id = id;
  r.type = std::string(type);
  auto [it, _] = resources_.emplace(id, std::move(r));
  order_.push_back(id);
  return it->second;
}

Resource* ResourceStore::find(std::string_view id) {
  auto it = resources_.find(std::string(id));
  return it == resources_.end() ? nullptr : &it->second;
}

const Resource* ResourceStore::find(std::string_view id) const {
  auto it = resources_.find(std::string(id));
  return it == resources_.end() ? nullptr : &it->second;
}

bool ResourceStore::attach(std::string_view child_id, std::string_view parent_id) {
  Resource* child = find(child_id);
  if (child == nullptr || !exists(parent_id)) return false;
  // Containment must stay a forest: walking up from the proposed parent
  // must never reach the child (covers self-attach as the first step).
  for (const Resource* p = find(parent_id); p != nullptr; p = find(p->parent_id)) {
    if (p->id == child_id) return false;
  }
  child->parent_id = std::string(parent_id);
  return true;
}

bool ResourceStore::destroy(std::string_view id) {
  // Copy first: callers may pass a view into the Resource being erased
  // (e.g. `self->id`), which dies with the map node.
  std::string key(id);
  auto it = resources_.find(key);
  if (it == resources_.end()) return false;
  resources_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), key), order_.end());
  // Promote any unreclaimed children to top level: a parent_id must always
  // name a live resource (or be empty), else children_of/siblings_of and
  // snapshot() would report links into the void.
  for (auto& [_, r] : resources_) {
    if (r.parent_id == key) r.parent_id.clear();
  }
  return true;
}

std::vector<std::string> ResourceStore::children_of(std::string_view parent_id,
                                                    std::string_view type) const {
  std::vector<std::string> out;
  for (const auto& id : order_) {
    const Resource& r = resources_.at(id);
    if (r.parent_id == parent_id && (type.empty() || r.type == type)) out.push_back(id);
  }
  return out;
}

std::size_t ResourceStore::child_count(std::string_view parent_id,
                                       std::string_view type) const {
  return children_of(parent_id, type).size();
}

std::vector<std::string> ResourceStore::siblings_of(std::string_view id) const {
  const Resource* self = find(id);
  if (self == nullptr) return {};
  std::vector<std::string> out;
  for (const auto& other_id : order_) {
    if (other_id == id) continue;
    const Resource& r = resources_.at(other_id);
    if (r.type == self->type && r.parent_id == self->parent_id) out.push_back(other_id);
  }
  return out;
}

std::vector<std::string> ResourceStore::all_of_type(std::string_view type) const {
  std::vector<std::string> out;
  for (const auto& id : order_) {
    if (resources_.at(id).type == type) out.push_back(id);
  }
  return out;
}

void ResourceStore::clear() {
  resources_.clear();
  order_.clear();
  ids_.reset();
}

Value ResourceStore::snapshot() const {
  Value::Map out;
  for (const auto& id : order_) {
    const Resource& r = resources_.at(id);
    Value::Map entry;
    entry["type"] = Value(r.type);
    if (!r.parent_id.empty()) entry["parent"] = Value::ref(r.parent_id);
    for (const auto& [k, v] : r.attrs) entry[k] = v;
    out[id] = Value(std::move(entry));
  }
  return Value(std::move(out));
}

}  // namespace lce::interp
