#include "interp/store.h"

#include <algorithm>
#include <utility>

namespace lce::interp {

namespace {

/// Collect-and-sort helper: iteration surfaces (children_of, all_of_type,
/// snapshot) gather (seq, id) pairs across shards and order by seq, which
/// reproduces the single-vector creation order of the pre-sharded store.
using SeqId = std::pair<std::uint64_t, const Resource*>;

void sort_by_seq(std::vector<SeqId>& v) {
  std::sort(v.begin(), v.end(),
            [](const SeqId& a, const SeqId& b) { return a.first < b.first; });
}

}  // namespace

ResourceStore::ResourceStore(std::size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count),
      locks_(shard_count == 0 ? 1 : shard_count) {}

ResourceStore::ResourceStore(const ResourceStore& o)
    : shards_(o.shards_), timers_(o.timers_), ids_(o.ids_), next_seq_(o.next_seq_),
      locks_(o.shards_.size()) {}

ResourceStore& ResourceStore::operator=(const ResourceStore& o) {
  if (this == &o) return *this;
  shards_ = o.shards_;
  timers_ = o.timers_;
  ids_ = o.ids_;
  next_seq_ = o.next_seq_;
  if (locks_.shard_count() != o.shards_.size()) {
    locks_ = StripedRwLock(o.shards_.size());
  }
  return *this;
}

std::map<std::string, Resource>& ResourceStore::shard_for(std::string_view id) {
  return shards_[shard_of(id)];
}

const std::map<std::string, Resource>& ResourceStore::shard_for(
    std::string_view id) const {
  return shards_[shard_of(id)];
}

std::string ResourceStore::mint_id(std::string_view id_prefix) {
  std::lock_guard<std::mutex> lock(mint_mu_);
  return ids_.next(id_prefix.empty() ? "res" : id_prefix);
}

std::uint64_t ResourceStore::id_counter(std::string_view id_prefix) const {
  std::lock_guard<std::mutex> lock(mint_mu_);
  return ids_.current(id_prefix.empty() ? "res" : id_prefix);
}

void ResourceStore::rewind_id(std::string_view id_prefix,
                              std::uint64_t counter_before) {
  std::lock_guard<std::mutex> lock(mint_mu_);
  std::string_view prefix = id_prefix.empty() ? "res" : id_prefix;
  // Only un-mint when ours was the latest mint; otherwise a concurrent
  // transition already holds a higher id and rewinding would reissue it.
  if (ids_.current(prefix) == counter_before + 1) {
    ids_.set_counter(prefix, counter_before);
  }
}

Resource& ResourceStore::create_with_id(std::string id, std::string_view type) {
  Resource r;
  r.id = id;
  r.type = std::string(type);
  {
    std::lock_guard<std::mutex> lock(mint_mu_);
    r.seq = next_seq_++;
  }
  auto [it, _] = shard_for(id).emplace(std::move(id), std::move(r));
  return it->second;
}

Resource& ResourceStore::create(std::string_view type, std::string_view id_prefix) {
  return create_with_id(mint_id(id_prefix), type);
}

Resource* ResourceStore::find(std::string_view id) {
  auto& shard = shard_for(id);
  auto it = shard.find(std::string(id));
  return it == shard.end() ? nullptr : &it->second;
}

const Resource* ResourceStore::find(std::string_view id) const {
  const auto& shard = shard_for(id);
  auto it = shard.find(std::string(id));
  return it == shard.end() ? nullptr : &it->second;
}

bool ResourceStore::attach(std::string_view child_id, std::string_view parent_id) {
  Resource* child = find(child_id);
  if (child == nullptr || !exists(parent_id)) return false;
  // Containment must stay a forest: walking up from the proposed parent
  // must never reach the child (covers self-attach as the first step).
  for (const Resource* p = find(parent_id); p != nullptr; p = find(p->parent_id)) {
    if (p->id == child_id) return false;
  }
  child->parent_id = std::string(parent_id);
  return true;
}

bool ResourceStore::attach_created(std::string_view child_id,
                                   std::string_view parent_id) {
  if (child_id == parent_id) return false;
  Resource* child = find(child_id);
  const Resource* parent = find(parent_id);
  if (child == nullptr || parent == nullptr) return false;
  // No cycle walk: the caller guarantees `child_id` was created inside
  // the current transition, and a resource whose id has never been
  // visible outside its (still exclusively held) shard cannot be anyone's
  // ancestor. Attaches of pre-existing children go through attach() with
  // every shard held.
  child->parent_id = std::string(parent_id);
  return true;
}

bool ResourceStore::destroy(std::string_view id) {
  // Copy first: callers may pass a view into the Resource being erased
  // (e.g. `self->id`), which dies with the map node.
  std::string key(id);
  auto& shard = shard_for(key);
  auto it = shard.find(key);
  if (it == shard.end()) return false;
  shard.erase(it);
  // Promote any unreclaimed children to top level: a parent_id must always
  // name a live resource (or be empty), else children_of/siblings_of and
  // snapshot() would report links into the void.
  for (auto& s : shards_) {
    for (auto& [_, r] : s) {
      if (r.parent_id == key) r.parent_id.clear();
    }
  }
  return true;
}

bool ResourceStore::erase_raw(std::string_view id) {
  std::string key(id);
  return shard_for(key).erase(key) != 0;
}

void ResourceStore::restore(Resource r) {
  // Journal before-images may carry arena-backed attribute blocks (they
  // were copied mid-request); the store outlives the request, so pin the
  // tree to the heap before it lands.
  r.attrs.detach();
  std::string key = r.id;
  shard_for(key).insert_or_assign(std::move(key), std::move(r));
}

std::vector<std::string> ResourceStore::children_of(std::string_view parent_id,
                                                    std::string_view type) const {
  std::vector<SeqId> hits;
  for (const auto& shard : shards_) {
    for (const auto& [_, r] : shard) {
      if (r.parent_id == parent_id && (type.empty() || r.type == type)) {
        hits.emplace_back(r.seq, &r);
      }
    }
  }
  sort_by_seq(hits);
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (const auto& [_, r] : hits) out.push_back(r->id);
  return out;
}

std::size_t ResourceStore::child_count(std::string_view parent_id,
                                       std::string_view type) const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    for (const auto& [_, r] : shard) {
      if (r.parent_id == parent_id && (type.empty() || r.type == type)) ++n;
    }
  }
  return n;
}

std::vector<std::string> ResourceStore::siblings_of(std::string_view id) const {
  const Resource* self = find(id);
  if (self == nullptr) return {};
  std::vector<SeqId> hits;
  for (const auto& shard : shards_) {
    for (const auto& [_, r] : shard) {
      if (r.id == id) continue;
      if (r.type == self->type && r.parent_id == self->parent_id) {
        hits.emplace_back(r.seq, &r);
      }
    }
  }
  sort_by_seq(hits);
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (const auto& [_, r] : hits) out.push_back(r->id);
  return out;
}

std::vector<std::string> ResourceStore::all_of_type(std::string_view type) const {
  std::vector<SeqId> hits;
  for (const auto& shard : shards_) {
    for (const auto& [_, r] : shard) {
      if (r.type == type) hits.emplace_back(r.seq, &r);
    }
  }
  sort_by_seq(hits);
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (const auto& [_, r] : hits) out.push_back(r->id);
  return out;
}

std::size_t ResourceStore::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard.size();
  return n;
}

void ResourceStore::clear() {
  for (auto& shard : shards_) shard.clear();
  timers_.clear();
  std::lock_guard<std::mutex> lock(mint_mu_);
  ids_.reset();
  next_seq_ = 1;
}

std::uint64_t ResourceStore::next_seq() const {
  std::lock_guard<std::mutex> lock(mint_mu_);
  return next_seq_;
}

void ResourceStore::set_next_seq(std::uint64_t v) {
  std::lock_guard<std::mutex> lock(mint_mu_);
  next_seq_ = v;
}

std::map<std::string, std::uint64_t> ResourceStore::id_counters() const {
  std::lock_guard<std::mutex> lock(mint_mu_);
  return {ids_.counters().begin(), ids_.counters().end()};
}

void ResourceStore::restore_id_counters(
    const std::map<std::string, std::uint64_t>& counters) {
  std::lock_guard<std::mutex> lock(mint_mu_);
  ids_.reset();
  for (const auto& [prefix, value] : counters) ids_.set_counter(prefix, value);
}

void ResourceStore::set_id_counter(std::string_view id_prefix,
                                   std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mint_mu_);
  ids_.set_counter(id_prefix.empty() ? "res" : id_prefix, value);
}

std::vector<const Resource*> ResourceStore::resources_in_creation_order() const {
  std::vector<SeqId> all;
  for (const auto& shard : shards_) {
    for (const auto& [_, r] : shard) all.emplace_back(r.seq, &r);
  }
  sort_by_seq(all);
  std::vector<const Resource*> out;
  out.reserve(all.size());
  for (const auto& [_, r] : all) out.push_back(r);
  return out;
}

Value ResourceStore::snapshot() const {
  std::vector<SeqId> all;
  for (const auto& shard : shards_) {
    for (const auto& [_, r] : shard) all.emplace_back(r.seq, &r);
  }
  sort_by_seq(all);
  Value::Map out;
  for (const auto& [_, rp] : all) {
    const Resource& r = *rp;
    Value::Map entry;
    entry["type"] = Value(r.type);
    if (!r.parent_id.empty()) entry["parent"] = Value::ref(r.parent_id);
    for (const auto& [k, v] : r.attrs.as_map()) entry[std::string(k)] = v;
    out[r.id] = Value(std::move(entry));
  }
  return Value(std::move(out));
}

}  // namespace lce::interp
