// The mock-cloud resource store shared by every backend in the repo: live
// resource instances with attributes plus the containment hierarchy
// (parent/child links) that the paper's SM hierarchy scopes its checks to.
//
// Concurrency model (DESIGN.md "Sharded resource store"): resources are
// partitioned across shards keyed by id family + counter hash, with one
// shared_mutex stripe per shard (`locks()`). The store itself does NOT
// take shard locks around data operations — the caller owns the locking
// protocol, because only the caller (the interpreter's transition planner)
// knows a whole transition's footprint:
//
//   - read-only ops        caller holds lock_shared_all()
//   - known-footprint writes  caller holds lock_exclusive({touched shards})
//   - dynamic-footprint writes caller holds lock_exclusive_all()
//   - create-attaches      caller holds the child's and parent's shards
//                          exclusively and uses attach_created() (no
//                          cycle walk — a fresh child cannot be an
//                          ancestor); every other attach is planned as a
//                          dynamic-footprint write and uses attach()
//
// Serial callers (tests, the reference cloud behind SerializeLayer, the
// alignment loop's per-worker clones) may skip locking entirely — the
// sharded layout is semantics-preserving. Id minting and the creation-
// order sequence counter ARE internally synchronized (mint_mu_), so id
// sequences stay deterministic no matter how transitions interleave.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/shard_lock.h"
#include "common/value.h"
#include "time/service.h"

namespace lce::interp {

struct Resource {
  std::string id;
  std::string type;       // resource type name, e.g. "Vpc"
  std::string parent_id;  // containment parent ("" = top-level)
  // Attribute map in Value's compact interned-key representation: the
  // compiled-plan executor reads and writes state vars by KeyId, so the
  // former per-resource slot-pointer cache is gone — the map IS the fast
  // path, and stays the single source of truth for snapshots, canonical
  // dumps and the persist codec. Always map-kind (renders as {}).
  Value attrs = Value::empty_map();
  std::uint64_t seq = 0;  // store-wide creation stamp (iteration order)
};

class ResourceStore {
 public:
  explicit ResourceStore(std::size_t shard_count = StripedRwLock::kDefaultShards);

  /// Deep copies: resources, containment links, creation sequence AND the
  /// id counters (a clone's future id sequence matches the original's —
  /// the parallel alignment executor depends on this for determinism).
  /// Lock state is NOT copied; the copy gets fresh, unheld stripes.
  ResourceStore(const ResourceStore& o);
  ResourceStore& operator=(const ResourceStore& o);

  /// Create a resource of `type`, minting an id with `id_prefix`.
  Resource& create(std::string_view type, std::string_view id_prefix);

  /// Mint the next id for `id_prefix` without creating the resource —
  /// concurrent transitions mint BEFORE taking shard locks so the new
  /// resource's shard can be part of the ordered acquisition set.
  std::string mint_id(std::string_view id_prefix);
  /// Create under a previously minted id (see mint_id).
  Resource& create_with_id(std::string id, std::string_view type);
  /// Undo a mint during rollback: restores `id_prefix`'s counter to
  /// `counter_before` — but only when no other mint happened since, so a
  /// concurrent mint never gets its id reissued. Serial callers always
  /// satisfy that condition, keeping rolled-back id sequences gap-free.
  void rewind_id(std::string_view id_prefix, std::uint64_t counter_before);
  /// Counter value a mint_id for `id_prefix` would increment from.
  std::uint64_t id_counter(std::string_view id_prefix) const;

  Resource* find(std::string_view id);
  const Resource* find(std::string_view id) const;
  bool exists(std::string_view id) const { return find(id) != nullptr; }

  /// Link `child_id` under `parent_id`. Returns false when either is gone,
  /// or when the link would create a containment cycle (attaching a node
  /// under itself or under one of its own descendants).
  bool attach(std::string_view child_id, std::string_view parent_id);

  /// attach() for a child CREATED in the current transition, with both
  /// the child's and parent's shards exclusively held. Skips the cycle
  /// walk entirely: a freshly minted resource's id was never visible
  /// outside its still-held shard, so it cannot already be an ancestor of
  /// anything — and the walk's out-of-order shard probes would violate
  /// the ascending acquisition rule. Attaches of pre-existing children
  /// must use attach() with every shard held (the interpreter plans those
  /// transitions as write-all).
  bool attach_created(std::string_view child_id, std::string_view parent_id);

  /// Remove a resource. Returns false when missing. Callers normally
  /// enforce children-reclaimed guards first; if live children remain they
  /// are detached to top level so no dangling parent link survives.
  bool destroy(std::string_view id);

  /// Remove without child promotion — rollback of a create that never had
  /// children (transaction journal only).
  bool erase_raw(std::string_view id);
  /// Reinstate a resource exactly as captured (id, links, attrs, seq) —
  /// rollback of a destroy or of attribute writes (transaction journal).
  void restore(Resource r);

  /// Ids of live children of `parent_id`, optionally filtered by type.
  std::vector<std::string> children_of(std::string_view parent_id,
                                       std::string_view type = "") const;

  /// Live children count.
  std::size_t child_count(std::string_view parent_id, std::string_view type = "") const;

  /// Live resources of `type` sharing a containment parent with `id`
  /// (excluding `id` itself). Top-level resources are each other's siblings.
  std::vector<std::string> siblings_of(std::string_view id) const;

  /// All live resources of `type` in creation order.
  std::vector<std::string> all_of_type(std::string_view type) const;

  std::size_t size() const;

  void clear();

  /// Full state snapshot: id -> {type, parent, attrs...}, creation order.
  Value snapshot() const;

  /// Deep copy (see copy constructor). Callers in concurrent contexts
  /// hold lock_shared_all() across the copy (Interpreter::clone does).
  ResourceStore clone() const { return *this; }

  // ------------------------------------------------------- persistence --
  // Introspection + restore hooks for the durable-state subsystem
  // (src/persist). Snapshot files must capture everything that shapes
  // future behavior — the seq clock and the id counters, not just the
  // live resources — so a restored store mints the exact sequence the
  // original would have. Restore-side callers are serial (recovery runs
  // before the endpoint serves); dump-side callers hold lock_shared_all.

  /// The creation stamp the next create would receive.
  std::uint64_t next_seq() const;
  void set_next_seq(std::uint64_t v);

  /// Every id counter (prefix -> last minted value).
  std::map<std::string, std::uint64_t> id_counters() const;
  void restore_id_counters(const std::map<std::string, std::uint64_t>& counters);
  /// Force a single counter (replay uses this to pin the id a logged call
  /// minted, even when concurrent commits landed in the log out of mint
  /// order). Unlike rewind_id there is no latest-mint guard — replay is
  /// serial and KNOWS the target value.
  void set_id_counter(std::string_view id_prefix, std::uint64_t value);

  /// Live resources ordered by creation seq. Pointers are invalidated by
  /// any subsequent mutation.
  std::vector<const Resource*> resources_in_creation_order() const;

  // --------------------------------------------------------- virtual time --
  /// The store's delayed-transition service (timer wheel + virtual clock).
  /// Travels with the store so clones, snapshots and recovery see the same
  /// armed timers the resources imply. Internally synchronized (leaf
  /// mutex); acquire shard stripes BEFORE touching it, never after.
  vtime::TimerService& timers() { return timers_; }
  const vtime::TimerService& timers() const { return timers_; }

  // ----------------------------------------------------- lock protocol --
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(std::string_view id) const {
    return shard_index_for_id(id, shards_.size());
  }
  /// The stripe table callers acquire through (mutable: locking a shard
  /// of a const store is still a read).
  StripedRwLock& locks() const { return locks_; }

 private:
  std::map<std::string, Resource>& shard_for(std::string_view id);
  const std::map<std::string, Resource>& shard_for(std::string_view id) const;

  std::vector<std::map<std::string, Resource>> shards_;
  vtime::TimerService timers_;  // internally synchronized
  IdGenerator ids_;           // guarded by mint_mu_
  std::uint64_t next_seq_ = 1;  // guarded by mint_mu_
  mutable std::mutex mint_mu_;
  mutable StripedRwLock locks_;
};

}  // namespace lce::interp
