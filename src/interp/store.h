// The mock-cloud resource store shared by every backend in the repo: live
// resource instances with attributes plus the containment hierarchy
// (parent/child links) that the paper's SM hierarchy scopes its checks to.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/value.h"

namespace lce::interp {

struct Resource {
  std::string id;
  std::string type;       // resource type name, e.g. "Vpc"
  std::string parent_id;  // containment parent ("" = top-level)
  Value::Map attrs;
};

class ResourceStore {
 public:
  /// Create a resource of `type`, minting an id with `id_prefix`.
  Resource& create(std::string_view type, std::string_view id_prefix);

  Resource* find(std::string_view id);
  const Resource* find(std::string_view id) const;
  bool exists(std::string_view id) const { return find(id) != nullptr; }

  /// Link `child_id` under `parent_id`. Returns false when either is gone,
  /// or when the link would create a containment cycle (attaching a node
  /// under itself or under one of its own descendants).
  bool attach(std::string_view child_id, std::string_view parent_id);

  /// Remove a resource. Returns false when missing. Callers normally
  /// enforce children-reclaimed guards first; if live children remain they
  /// are detached to top level so no dangling parent link survives.
  bool destroy(std::string_view id);

  /// Ids of live children of `parent_id`, optionally filtered by type.
  std::vector<std::string> children_of(std::string_view parent_id,
                                       std::string_view type = "") const;

  /// Live children count.
  std::size_t child_count(std::string_view parent_id, std::string_view type = "") const;

  /// Live resources of `type` sharing a containment parent with `id`
  /// (excluding `id` itself). Top-level resources are each other's siblings.
  std::vector<std::string> siblings_of(std::string_view id) const;

  /// All live resources of `type` in creation order.
  std::vector<std::string> all_of_type(std::string_view type) const;

  std::size_t size() const { return resources_.size(); }

  void clear();

  /// Full state snapshot: id -> {type, parent, attrs...}.
  Value snapshot() const;

  /// Deep copy: resources, containment links, creation order AND the id
  /// counters, so a clone's future id sequence matches the original's (the
  /// parallel alignment executor depends on this for determinism).
  ResourceStore clone() const { return *this; }

 private:
  std::map<std::string, Resource> resources_;
  std::vector<std::string> order_;  // creation order of live ids
  IdGenerator ids_;
};

}  // namespace lce::interp
