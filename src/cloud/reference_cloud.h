// The reference cloud: a high-fidelity simulator standing in for the real
// AWS/Azure control plane (see DESIGN.md substitutions). It executes the
// *true* catalog — including behaviours the documentation omits — and is
// the black-box oracle the alignment phase tests against. It never shares
// code with the learned emulator's interpreter beyond the resource store,
// so differential testing compares genuinely independent implementations.
#pragma once

#include <string>

#include "common/api.h"
#include "docs/model.h"
#include "interp/store.h"

namespace lce::cloud {

struct ReferenceCloudOptions {
  std::string name = "reference-cloud";
  /// The real cloud universally refuses to delete resources that still
  /// contain children, whether or not the docs say so per-API.
  bool universal_reclaim_guard = true;
};

class ReferenceCloud final : public CloudBackend {
 public:
  explicit ReferenceCloud(docs::CloudCatalog catalog, ReferenceCloudOptions opts = {});

  std::string name() const override { return opts_.name; }
  ApiResponse invoke(const ApiRequest& req) override;
  void reset() override;
  bool supports(const std::string& api) const override;
  Value snapshot() const override { return store_.snapshot(); }
  /// Independent deep copy (catalog, options, resource state, id counters).
  std::unique_ptr<CloudBackend> clone() const override;

  const docs::CloudCatalog& catalog() const { return catalog_; }
  interp::ResourceStore& store() { return store_; }

 private:
  docs::CloudCatalog catalog_;
  ReferenceCloudOptions opts_;
  interp::ResourceStore store_;
};

}  // namespace lce::cloud
