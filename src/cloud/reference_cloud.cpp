#include "cloud/reference_cloud.h"

#include <optional>

#include "common/cidr.h"
#include "common/errors.h"
#include "common/strings.h"
#include "docs/literals.h"

namespace lce::cloud {

namespace {

using docs::ApiCategory;
using docs::ApiModel;
using docs::ConstraintKind;
using docs::ConstraintModel;
using docs::EffectKind;
using docs::FieldType;
using docs::ResourceModel;
using interp::Resource;
using interp::ResourceStore;

ApiResponse fail(std::string_view code,
                 const std::vector<std::pair<std::string, std::string>>& fields) {
  return ApiResponse::failure(std::string(code),
                              ErrorRegistry::instance().render_message(code, fields));
}

class Call {
 public:
  Call(const docs::CloudCatalog& catalog, const ReferenceCloudOptions& opts,
       ResourceStore& store)
      : catalog_(catalog), opts_(opts), store_(store) {}

  ApiResponse run(const ApiRequest& req) {
    const ResourceModel* resource = catalog_.find_api_owner(req.api);
    const ApiModel* api = resource != nullptr ? resource->find_api(req.api) : nullptr;
    if (resource == nullptr || api == nullptr) {
      return fail(errc::kInvalidAction, {{"api", req.api}});
    }

    // 1. Parameter presence and type validation, in declared order.
    for (const auto& p : api->params) {
      auto it = req.args.find(p.name);
      if (it == req.args.end()) {
        if (p.required) return fail(errc::kMissingParameter, {{"param", p.name}});
        continue;
      }
      if (!it->second.is_null() &&
          !docs::value_admits(p.type, p.enum_members, it->second)) {
        return fail(errc::kInvalidParameterValue,
                    {{"param", p.name}, {"value", it->second.to_text()}});
      }
    }

    // 2. Target resolution.
    Resource* self = nullptr;
    if (api->category != ApiCategory::kCreate) {
      std::string id = !req.target.empty()         ? req.target
                       : req.args.count("id") != 0 ? std::string(req.args.at("id").as_str())
                                                   : "";
      self = store_.find(id);
      if (self == nullptr || self->type != resource->name) {
        return fail(errc::kResourceNotFound,
                    {{"resource", resource->name}, {"id", id.empty() ? "(none)" : id}});
      }
    }

    // 3. Implicit ref-existence validation (the real cloud rejects calls
    //    naming resources that do not exist or have the wrong type).
    for (const auto& p : api->params) {
      if (p.type != FieldType::kRef) continue;
      auto it = req.args.find(p.name);
      if (it == req.args.end() || it->second.is_null()) continue;
      const Resource* target = store_.find(it->second.as_str());
      if (target == nullptr ||
          (!p.ref_type.empty() && target->type != p.ref_type)) {
        return fail(errc::kResourceNotFound,
                    {{"resource", p.ref_type.empty() ? "resource" : p.ref_type},
                     {"id", std::string(it->second.as_str())}});
      }
    }

    // 4. Behavioural constraints, in catalog order (documented or not —
    //    this is the real cloud).
    for (const auto& c : api->constraints) {
      if (auto resp = check_constraint(*resource, *api, c, self, req)) return *resp;
    }

    // 5. Universal containment-reclamation guard on destroy.
    if (api->category == ApiCategory::kDestroy && opts_.universal_reclaim_guard &&
        store_.child_count(self->id) != 0) {
      return fail(errc::kDependencyViolation,
                  {{"resource", resource->name}, {"id", self->id}});
    }

    // 6. Effects.
    if (api->category == ApiCategory::kCreate) {
      Resource& r = store_.create(resource->name, resource->id_prefix);
      for (const auto& a : resource->attrs) {
        r.attrs.set(a.name, docs::parse_literal(a.initial, a.type));
      }
      self = &r;
    }
    for (const auto& e : api->effects) {
      apply_effect(e, *self, req);
    }

    // 7. Response payload (same conventions as the spec interpreter:
    //    create/describe return full state; everything else returns {id}).
    Value::Map data;
    data["id"] = Value::ref(self->id);
    if (api->category == ApiCategory::kCreate ||
        api->category == ApiCategory::kDescribe) {
      for (const auto& a : resource->attrs) {
        const Value* v = self->attrs.get(a.name);
        data[a.name] = v != nullptr ? *v : Value();
      }
    }
    if (api->category == ApiCategory::kDestroy) {
      store_.destroy(self->id);
    }
    return ApiResponse::success(Value(std::move(data)));
  }

 private:
  Value arg_or_null(const ApiRequest& req, const std::string& name) const {
    auto it = req.args.find(name);
    return it == req.args.end() ? Value() : it->second;
  }

  /// The parent a create call will attach under (from its kLinkParent
  /// effect), or the existing parent for non-create calls.
  const Resource* intended_parent(const ApiModel& api, const Resource* self,
                                  const ApiRequest& req) const {
    if (self != nullptr && !self->parent_id.empty()) return store_.find(self->parent_id);
    for (const auto& e : api.effects) {
      if (e.kind == EffectKind::kLinkParent) {
        Value v = arg_or_null(req, e.param);
        if (v.is_ref()) return store_.find(v.as_str());
      }
    }
    return nullptr;
  }

  std::optional<ApiResponse> check_constraint(const ResourceModel& resource,
                                              const ApiModel& api,
                                              const ConstraintModel& c,
                                              const Resource* self,
                                              const ApiRequest& req) {
    auto violated = [&](std::string_view value_text) -> std::optional<ApiResponse> {
      return fail(c.error_code, {{"resource", resource.name},
                                 {"id", self != nullptr ? self->id : "(new)"},
                                 {"api", api.name},
                                 {"param", c.param},
                                 {"value", std::string(value_text)},
                                 {"attr", c.attr},
                                 {"state", self_attr_text(self, c.attr)}});
    };

    switch (c.kind) {
      case ConstraintKind::kEnumDomain: {
        Value v = arg_or_null(req, c.param);
        if (v.is_null()) return std::nullopt;  // optional param not given
        for (const auto& m : c.str_vals) {
          if (v.is_str() && v.as_str() == m) return std::nullopt;
        }
        return violated(v.to_text());
      }
      case ConstraintKind::kCidrValid: {
        Value v = arg_or_null(req, c.param);
        if (Cidr::parse(v.as_str())) return std::nullopt;
        return violated(v.as_str());
      }
      case ConstraintKind::kCidrPrefixRange: {
        auto cidr = Cidr::parse(arg_or_null(req, c.param).as_str());
        if (cidr && cidr->prefix_len() >= c.int_lo && cidr->prefix_len() <= c.int_hi) {
          return std::nullopt;
        }
        return violated(arg_or_null(req, c.param).as_str());
      }
      case ConstraintKind::kCidrWithinParent: {
        auto inner = Cidr::parse(arg_or_null(req, c.param).as_str());
        const Resource* parent = intended_parent(api, self, req);
        if (parent == nullptr) return std::nullopt;
        const Value* pv = parent->attrs.get(c.attr);
        auto outer = pv != nullptr ? Cidr::parse(pv->as_str()) : std::nullopt;
        if (inner && outer && outer->contains(*inner)) return std::nullopt;
        return violated(arg_or_null(req, c.param).as_str());
      }
      case ConstraintKind::kNoSiblingOverlap: {
        auto mine = Cidr::parse(arg_or_null(req, c.param).as_str());
        if (!mine) return std::nullopt;  // malformed handled elsewhere
        const Resource* parent = intended_parent(api, self, req);
        std::string parent_id = parent != nullptr ? parent->id : "";
        for (const auto& sid : store_.children_of(parent_id, resource.name)) {
          if (self != nullptr && sid == self->id) continue;
          const Resource* sib = store_.find(sid);
          const Value* av = sib->attrs.get(c.attr);
          if (av == nullptr) continue;
          auto theirs = Cidr::parse(av->as_str());
          if (theirs && mine->overlaps(*theirs)) {
            return violated(arg_or_null(req, c.param).as_str());
          }
        }
        return std::nullopt;
      }
      case ConstraintKind::kAttrEquals:
      case ConstraintKind::kAttrNotEquals: {
        if (self == nullptr) return std::nullopt;
        const Value* av = self->attrs.get(c.attr);
        Value actual = av != nullptr ? *av : Value();
        const docs::AttrModel* am = resource.find_attr(c.attr);
        Value expected = docs::parse_literal(c.str_vals.empty() ? "" : c.str_vals[0],
                                             am != nullptr ? am->type : FieldType::kStr);
        bool equal = actual == expected;
        if ((c.kind == ConstraintKind::kAttrEquals) == equal) return std::nullopt;
        return violated(actual.to_text());
      }
      case ConstraintKind::kRefAttrMatchesSelf: {
        if (self == nullptr) return std::nullopt;
        Value v = arg_or_null(req, c.param);
        if (!v.is_ref()) return std::nullopt;
        const Resource* target = store_.find(v.as_str());
        if (target == nullptr) return std::nullopt;  // existence checked earlier
        const Value* ti = target->attrs.get(c.attr);
        const Value* si = self->attrs.get(c.attr);
        Value tv = ti != nullptr ? *ti : Value();
        Value sv = si != nullptr ? *si : Value();
        if (tv == sv) return std::nullopt;
        return violated(tv.to_text());
      }
      case ConstraintKind::kAttrNull: {
        if (self == nullptr) return std::nullopt;
        const Value* av = self->attrs.get(c.attr);
        if (av == nullptr || av->is_null()) return std::nullopt;
        return violated(av->to_text());
      }
      case ConstraintKind::kAttrTrueRequires: {
        Value v = arg_or_null(req, c.param);
        if (!v.is_bool() || !v.as_bool()) return std::nullopt;
        if (self == nullptr) return std::nullopt;
        const Value* av = self->attrs.get(c.attr);
        if (av != nullptr && av->truthy()) return std::nullopt;
        return violated("true");
      }
      case ConstraintKind::kChildrenReclaimed: {
        if (self == nullptr || store_.child_count(self->id) == 0) return std::nullopt;
        return violated(std::to_string(store_.child_count(self->id)));
      }
      case ConstraintKind::kIntRange: {
        Value v = arg_or_null(req, c.param);
        if (v.is_null()) return std::nullopt;
        if (v.is_int() && v.as_int() >= c.int_lo && v.as_int() <= c.int_hi) {
          return std::nullopt;
        }
        return violated(v.to_text());
      }
    }
    return std::nullopt;
  }

  static std::string self_attr_text(const Resource* self, const std::string& attr) {
    if (self == nullptr) return "";
    const Value* v = self->attrs.get(attr);
    return v == nullptr ? "" : v->to_text();
  }

  void apply_effect(const docs::EffectModel& e, Resource& self, const ApiRequest& req) {
    switch (e.kind) {
      case EffectKind::kWriteParam:
        self.attrs.set(e.attr, arg_or_null(req, e.param));
        return;
      case EffectKind::kWriteConst:
        self.attrs.set(e.attr, docs::parse_literal(
            e.literal, e.literal_type == FieldType::kEnum ? FieldType::kStr
                                                          : e.literal_type));
        return;
      case EffectKind::kLinkParent: {
        Value v = arg_or_null(req, e.param);
        if (v.is_ref()) store_.attach(self.id, v.as_str());
        return;
      }
      case EffectKind::kSetRef: {
        Value v = arg_or_null(req, e.param);
        self.attrs.set(e.attr, v);
        if (!e.target_attr.empty() && v.is_ref()) {
          if (Resource* target = store_.find(v.as_str())) {
            target->attrs.set(e.target_attr, Value::ref(self.id));
          }
        }
        return;
      }
      case EffectKind::kClearAttr:
        self.attrs.set(e.attr, Value());
        return;
    }
  }

  const docs::CloudCatalog& catalog_;
  const ReferenceCloudOptions& opts_;
  ResourceStore& store_;
};

}  // namespace

ReferenceCloud::ReferenceCloud(docs::CloudCatalog catalog, ReferenceCloudOptions opts)
    : catalog_(std::move(catalog)), opts_(std::move(opts)) {}

ApiResponse ReferenceCloud::invoke(const ApiRequest& req) {
  return Call(catalog_, opts_, store_).run(req);
}

void ReferenceCloud::reset() { store_.clear(); }

bool ReferenceCloud::supports(const std::string& api) const {
  return catalog_.find_api_owner(api) != nullptr;
}

std::unique_ptr<CloudBackend> ReferenceCloud::clone() const {
  auto copy = std::make_unique<ReferenceCloud>(catalog_, opts_);
  copy->store_ = store_.clone();
  return copy;
}

}  // namespace lce::cloud
