// The synthetic Azure catalog (§5 "Multi-cloud"): the same behavioural
// vocabulary as AWS — addressing rules, dependency guards, state-machine
// preconditions — expressed through Azure-style resource and API naming
// (Put*/Deallocate*, VirtualNetwork/NetworkSecurityGroup, ...). The
// multi-cloud analysis compares equivalent services' check sets (§4.4).
#include "docs/corpus.h"

#include "common/errors.h"
#include "docs/builder.h"

namespace lce::docs {

namespace {

std::string err(std::string_view code) { return std::string(code); }

ResourceModel make_virtual_network() {
  ResourceBuilder b("VirtualNetwork", "network", "vnet",
                    "An isolated virtual network in which subnets and NICs live.");
  b.attr("address_space", FieldType::kStr);
  b.enum_attr("provisioning_state", {"Updating", "Succeeded"}, "Succeeded");
  b.attr("ddos_protection", FieldType::kBool, "false");
  b.attr("description", FieldType::kStr);

  ApiBuilder create("PutVirtualNetwork", ApiCategory::kCreate);
  create.param("address_space", FieldType::kStr);
  create.c_cidr_valid("address_space", err(errc::kInvalidParameterValue));
  create.c_prefix_range("address_space", 8, 29, err(errc::kValidationError));
  create.e_write_param("address_space", "address_space");
  create.e_write_const("provisioning_state", "Succeeded", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteVirtualNetwork", ApiCategory::kDestroy);
  del.c_children_reclaimed(err(errc::kResourceInUse));
  b.api(std::move(del));

  b.api(ApiBuilder("GetVirtualNetwork", ApiCategory::kDescribe));

  ApiBuilder ddos("UpdateVirtualNetworkDdosProtection", ApiCategory::kModify);
  ddos.param("value", FieldType::kBool);
  ddos.e_write_param("ddos_protection", "value");
  b.api(std::move(ddos));

  ApiBuilder desc("UpdateVirtualNetworkDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

ResourceModel make_azure_subnet() {
  ResourceBuilder b("VnetSubnet", "network", "vnsub",
                    "An address range carved out of a virtual network.");
  b.contained_in("VirtualNetwork");
  b.attr("address_prefix", FieldType::kStr);
  b.enum_attr("provisioning_state", {"Updating", "Succeeded"}, "Succeeded");
  b.attr("private_endpoint_policies", FieldType::kBool, "false");

  ApiBuilder create("PutVnetSubnet", ApiCategory::kCreate);
  create.ref_param("vnet", "VirtualNetwork");
  create.param("address_prefix", FieldType::kStr);
  create.c_cidr_valid("address_prefix", err(errc::kInvalidParameterValue));
  // Azure allows /29 where AWS stops at /28 — a genuine cross-cloud
  // behavioural difference surfaced by the multi-cloud comparison.
  create.c_prefix_range("address_prefix", 8, 29, err(errc::kValidationError));
  create.c_within_parent("address_prefix", "address_space", err(errc::kValidationError));
  create.c_no_overlap("address_prefix", "address_prefix", err(errc::kResourceInUse));
  create.e_link_parent("vnet");
  create.e_write_param("address_prefix", "address_prefix");
  create.e_write_const("provisioning_state", "Succeeded", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteVnetSubnet", ApiCategory::kDestroy);
  del.c_children_reclaimed(err(errc::kResourceInUse));
  b.api(std::move(del));

  b.api(ApiBuilder("GetVnetSubnet", ApiCategory::kDescribe));

  ApiBuilder pep("UpdateVnetSubnetPrivateEndpointPolicies", ApiCategory::kModify);
  pep.param("value", FieldType::kBool);
  pep.e_write_param("private_endpoint_policies", "value");
  b.api(std::move(pep));

  return std::move(b).build();
}

ResourceModel make_public_ip_address() {
  ResourceBuilder b("PublicIPAddress", "network", "pip",
                    "A public IP address assignable to a network interface.");
  b.enum_attr("allocation", {"Static", "Dynamic"}, "Dynamic");
  b.enum_attr("zone", regions());
  b.ref_attr("ip_configuration", "AzureNic");

  ApiBuilder create("PutPublicIPAddress", ApiCategory::kCreate);
  create.enum_param("zone", regions());
  create.enum_param("allocation", {"Static", "Dynamic"});
  create.c_enum_domain("zone", regions(), err(errc::kInvalidParameterValue));
  create.c_enum_domain("allocation", {"Static", "Dynamic"},
                       err(errc::kInvalidParameterValue));
  create.e_write_param("zone", "zone");
  create.e_write_param("allocation", "allocation");
  b.api(std::move(create));

  ApiBuilder del("DeletePublicIPAddress", ApiCategory::kDestroy);
  del.c_attr_null("ip_configuration", err(errc::kResourceInUse));
  b.api(std::move(del));

  b.api(ApiBuilder("GetPublicIPAddress", ApiCategory::kDescribe));

  ApiBuilder assoc("AssociatePublicIPAddress", ApiCategory::kModify);
  assoc.ref_param("nic", "AzureNic");
  assoc.c_attr_null("ip_configuration", err(errc::kResourceInUse));
  assoc.c_ref_attr_match("nic", "zone", err(errc::kZoneMismatch));
  assoc.e_set_ref("ip_configuration", "nic", "public_ip");
  b.api(std::move(assoc));

  ApiBuilder dis("DissociatePublicIPAddress", ApiCategory::kModify);
  dis.e_clear("ip_configuration");
  b.api(std::move(dis));

  return std::move(b).build();
}

ResourceModel make_azure_nic() {
  ResourceBuilder b("AzureNic", "network", "aznic",
                    "A network interface card attachable to a virtual machine.");
  b.contained_in("VnetSubnet");
  b.enum_attr("zone", regions());
  b.ref_attr("public_ip", "PublicIPAddress");
  b.attr("accelerated_networking", FieldType::kBool, "false");

  ApiBuilder create("PutAzureNic", ApiCategory::kCreate);
  create.ref_param("subnet", "VnetSubnet");
  create.enum_param("zone", regions());
  create.c_enum_domain("zone", regions(), err(errc::kInvalidParameterValue));
  create.e_link_parent("subnet");
  create.e_write_param("zone", "zone");
  b.api(std::move(create));

  ApiBuilder del("DeleteAzureNic", ApiCategory::kDestroy);
  del.c_attr_null("public_ip", err(errc::kResourceInUse));
  b.api(std::move(del));

  b.api(ApiBuilder("GetAzureNic", ApiCategory::kDescribe));

  ApiBuilder acc("UpdateAzureNicAcceleratedNetworking", ApiCategory::kModify);
  acc.param("value", FieldType::kBool);
  acc.e_write_param("accelerated_networking", "value");
  b.api(std::move(acc));

  return std::move(b).build();
}

ResourceModel make_network_security_group() {
  ResourceBuilder b("NetworkSecurityGroup", "network", "nsg",
                    "A packet filter applied to subnets and NICs.");
  b.contained_in("VirtualNetwork");
  b.attr("rule_priority_floor", FieldType::kInt, "100");
  b.attr("description", FieldType::kStr);

  ApiBuilder create("PutNetworkSecurityGroup", ApiCategory::kCreate);
  create.ref_param("vnet", "VirtualNetwork");
  create.e_link_parent("vnet");
  b.api(std::move(create));

  b.api(ApiBuilder("DeleteNetworkSecurityGroup", ApiCategory::kDestroy));
  b.api(ApiBuilder("GetNetworkSecurityGroup", ApiCategory::kDescribe));

  ApiBuilder rule("PutSecurityRule", ApiCategory::kAction);
  rule.param("priority", FieldType::kInt);
  rule.c_int_range("priority", 100, 4096, err(errc::kValidationError));
  rule.e_write_param("rule_priority_floor", "priority");
  b.api(std::move(rule));

  ApiBuilder desc("UpdateNetworkSecurityGroupDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

ResourceModel make_virtual_machine() {
  ResourceBuilder b("VirtualMachine", "compute", "vm",
                    "A virtual machine attached to a NIC inside a subnet.");
  b.contained_in("VnetSubnet");
  b.enum_attr("power_state", {"starting", "running", "deallocating", "deallocated"},
              "running");
  b.attr("vm_size", FieldType::kStr, "Standard_B1s");
  b.enum_attr("priority", {"Regular", "Spot"}, "Regular");

  ApiBuilder create("PutVirtualMachine", ApiCategory::kCreate);
  create.ref_param("subnet", "VnetSubnet");
  create.param("vm_size", FieldType::kStr);
  create.e_link_parent("subnet");
  create.e_write_param("vm_size", "vm_size");
  create.e_write_const("power_state", "running", FieldType::kEnum);
  b.api(std::move(create));

  b.api(ApiBuilder("DeleteVirtualMachine", ApiCategory::kDestroy));
  b.api(ApiBuilder("GetVirtualMachine", ApiCategory::kDescribe));

  // Same underspecification as AWS StartInstance: the docs do not spell
  // out the failure on a running VM (§6).
  ApiBuilder start("StartVirtualMachine", ApiCategory::kAction);
  start.c_attr_equals("power_state", "deallocated", err(errc::kIncorrectInstanceState),
                      /*documented=*/false);
  start.e_write_const("power_state", "running", FieldType::kEnum);
  b.api(std::move(start));

  ApiBuilder dealloc("DeallocateVirtualMachine", ApiCategory::kAction);
  dealloc.c_attr_equals("power_state", "running", err(errc::kIncorrectInstanceState));
  dealloc.e_write_const("power_state", "deallocated", FieldType::kEnum);
  b.api(std::move(dealloc));

  ApiBuilder resize("ResizeVirtualMachine", ApiCategory::kModify);
  resize.param("value", FieldType::kStr);
  resize.c_attr_equals("power_state", "deallocated", err(errc::kIncorrectInstanceState));
  resize.e_write_param("vm_size", "value");
  b.api(std::move(resize));

  return std::move(b).build();
}

ResourceModel make_managed_disk() {
  ResourceBuilder b("ManagedDisk", "compute", "disk",
                    "A managed block storage disk.");
  b.standard_lifecycle(/*guard_delete=*/false);
  ApiBuilder resize("ResizeManagedDisk", ApiCategory::kModify);
  resize.param("size_gb", FieldType::kInt);
  resize.c_int_range("size_gb", 4, 32767, err(errc::kValidationError));
  resize.e_write_param("size_gb", "size_gb");
  ResourceModel r = std::move(b).build();
  r.attrs.push_back(AttrModel{"size_gb", FieldType::kInt, {}, "", "32"});
  r.apis.push_back(std::move(resize).build());
  return r;
}

}  // namespace

CloudCatalog build_azure_catalog() {
  CloudCatalog c;
  c.provider = "azure";
  ServiceModel network;
  network.name = "network";
  network.provider = "azure";
  network.title = "Azure Virtual Network";
  network.resources.push_back(make_virtual_network());
  network.resources.push_back(make_azure_subnet());
  network.resources.push_back(make_public_ip_address());
  network.resources.push_back(make_azure_nic());
  network.resources.push_back(make_network_security_group());
  c.services.push_back(std::move(network));

  ServiceModel compute;
  compute.name = "compute";
  compute.provider = "azure";
  compute.title = "Azure Compute";
  compute.resources.push_back(make_virtual_machine());
  compute.resources.push_back(make_managed_disk());
  c.services.push_back(std::move(compute));
  return c;
}

const std::vector<ServiceEquivalence>& aws_azure_equivalences() {
  static const std::vector<ServiceEquivalence> kPairs = {
      {"Vpc", "VirtualNetwork"},
      {"Subnet", "VnetSubnet"},
      {"Instance", "VirtualMachine"},
      {"ElasticIp", "PublicIPAddress"},
      {"NetworkInterface", "AzureNic"},
      {"SecurityGroup", "NetworkSecurityGroup"},
  };
  return kPairs;
}

}  // namespace lce::docs
