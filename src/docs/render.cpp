#include "docs/render.h"

#include "common/strings.h"

namespace lce::docs {

const DocPage* DocCorpus::find_page(std::string_view resource) const {
  for (const auto& p : pages) {
    if (p.resource == resource) return &p;
  }
  return nullptr;
}

std::size_t DocCorpus::total_chars() const {
  std::size_t n = 0;
  for (const auto& p : pages) n += p.text.size();
  return n;
}

std::string render_field_type(FieldType t, const std::vector<std::string>& enum_members,
                              const std::string& ref_type) {
  switch (t) {
    case FieldType::kEnum: return strf("enum [", join(enum_members, ", "), "]");
    case FieldType::kRef:
      return ref_type.empty() ? "reference" : strf("reference to ", ref_type);
    default: return to_string(t);
  }
}

std::string render_constraint_sentence(const ConstraintModel& c) {
  std::string body;
  switch (c.kind) {
    case ConstraintKind::kEnumDomain:
      body = strf("the value of parameter '", c.param, "' must be one of [",
                  join(c.str_vals, ", "), "]");
      break;
    case ConstraintKind::kCidrValid:
      body = strf("the value of parameter '", c.param, "' must be a valid IPv4 CIDR block");
      break;
    case ConstraintKind::kCidrPrefixRange:
      body = strf("the prefix length of parameter '", c.param, "' must be between ",
                  c.int_lo, " and ", c.int_hi);
      break;
    case ConstraintKind::kCidrWithinParent:
      body = strf("the CIDR in parameter '", c.param, "' must lie within the parent attribute '",
                  c.attr, "'");
      break;
    case ConstraintKind::kNoSiblingOverlap:
      body = strf("the CIDR in parameter '", c.param, "' must not overlap the '", c.attr,
                  "' of any sibling resource of the same type");
      break;
    case ConstraintKind::kAttrEquals:
      body = strf("attribute '", c.attr, "' of this resource must equal \"",
                  c.str_vals.empty() ? "" : c.str_vals[0], "\"");
      break;
    case ConstraintKind::kAttrNotEquals:
      body = strf("attribute '", c.attr, "' of this resource must not equal \"",
                  c.str_vals.empty() ? "" : c.str_vals[0], "\"");
      break;
    case ConstraintKind::kRefAttrMatchesSelf:
      body = strf("the resource referenced by parameter '", c.param,
                  "' must have the same '", c.attr, "' as this resource");
      break;
    case ConstraintKind::kAttrNull:
      body = strf("attribute '", c.attr, "' of this resource must be unset");
      break;
    case ConstraintKind::kAttrTrueRequires:
      body = strf("parameter '", c.param, "' may only be set to true when attribute '",
                  c.attr, "' is true");
      break;
    case ConstraintKind::kChildrenReclaimed:
      body = "all resources contained in this resource must have been deleted";
      break;
    case ConstraintKind::kIntRange:
      body = strf("the value of parameter '", c.param, "' must be between ", c.int_lo,
                  " and ", c.int_hi);
      break;
  }
  return strf("Constraint: ", body, "; otherwise the call fails with error '",
              c.error_code, "'.");
}

std::string render_effect_sentence(const EffectModel& e) {
  switch (e.kind) {
    case EffectKind::kWriteParam:
      return strf("Effect: attribute '", e.attr, "' is set to the value of parameter '",
                  e.param, "'.");
    case EffectKind::kWriteConst:
      return strf("Effect: attribute '", e.attr, "' is set to the constant \"", e.literal,
                  "\" (", to_string(e.literal_type), ").");
    case EffectKind::kLinkParent:
      return strf("Effect: the new resource is attached under the resource given by "
                  "parameter '", e.param, "'.");
    case EffectKind::kSetRef: {
      std::string s = strf("Effect: attribute '", e.attr,
                           "' is set to reference the resource given by parameter '",
                           e.param, "'.");
      if (!e.target_attr.empty()) {
        s += strf(" Additionally, attribute '", e.target_attr,
                  "' of the referenced resource is set to reference this resource.");
      }
      return s;
    }
    case EffectKind::kClearAttr:
      return strf("Effect: attribute '", e.attr, "' is cleared.");
  }
  return "";
}

std::string render_resource_page(const ResourceModel& r, const ServiceModel& s) {
  std::string out;
  out += strf("== Resource: ", r.name, " ==\n");
  out += strf("Service: ", s.name, " (", s.title, ", provider ", s.provider, ")\n");
  out += strf("Id prefix: ", r.id_prefix, "\n");
  out += strf("Contained in: ", r.parent_type.empty() ? "(none)" : r.parent_type, "\n");
  out += strf("Summary: ", r.summary, "\n");
  out += "\nAttributes:\n";
  for (const auto& a : r.attrs) {
    out += strf("  - ", a.name, ": ",
                render_field_type(a.type, a.enum_members, a.ref_type));
    if (!a.initial.empty()) out += strf(" (initial: ", a.initial, ")");
    out += "\n";
  }
  out += "\nAPIs:\n";
  for (const auto& api : r.apis) {
    out += strf("\n* API ", api.name, " (category: ", to_string(api.category), ")\n");
    for (const auto& p : api.params) {
      out += strf("  Parameter: ", p.name, ": ",
                  render_field_type(p.type, p.enum_members, p.ref_type),
                  p.required ? " (required)" : " (optional)", "\n");
    }
    for (const auto& c : api.constraints) {
      if (!c.documented) continue;  // the docs are silent here (§6)
      out += "  " + render_constraint_sentence(c) + "\n";
    }
    for (const auto& e : api.effects) {
      out += "  " + render_effect_sentence(e) + "\n";
    }
  }
  return out;
}

DocCorpus render_corpus(const CloudCatalog& catalog) {
  DocCorpus corpus;
  corpus.provider = catalog.provider;
  int page = 1;
  for (const auto& s : catalog.services) {
    for (const auto& r : s.resources) {
      DocPage p;
      p.provider = catalog.provider;
      p.service = s.name;
      p.resource = r.name;
      p.page_number = page++;
      p.text = render_resource_page(r, s);
      corpus.pages.push_back(std::move(p));
    }
  }
  return corpus;
}

}  // namespace lce::docs
