#include "docs/builder.h"

#include <cassert>
#include <stdexcept>

#include "common/errors.h"
#include "common/strings.h"

namespace lce::docs {

ApiBuilder::ApiBuilder(std::string name, ApiCategory category) {
  api_.name = std::move(name);
  api_.category = category;
}

ApiBuilder& ApiBuilder::param(std::string name, FieldType type, bool required) {
  api_.params.push_back(ParamModel{std::move(name), type, {}, "", required});
  return *this;
}

ApiBuilder& ApiBuilder::enum_param(std::string name, std::vector<std::string> members,
                                   bool required) {
  api_.params.push_back(
      ParamModel{std::move(name), FieldType::kEnum, std::move(members), "", required});
  return *this;
}

ApiBuilder& ApiBuilder::ref_param(std::string name, std::string target, bool required) {
  api_.params.push_back(
      ParamModel{std::move(name), FieldType::kRef, {}, std::move(target), required});
  return *this;
}

namespace {
ConstraintModel make_c(ConstraintKind kind, std::string param, std::string attr,
                       std::vector<std::string> vals, int lo, int hi, std::string code,
                       bool documented) {
  ConstraintModel c;
  c.kind = kind;
  c.param = std::move(param);
  c.attr = std::move(attr);
  c.str_vals = std::move(vals);
  c.int_lo = lo;
  c.int_hi = hi;
  c.error_code = std::move(code);
  c.documented = documented;
  return c;
}
}  // namespace

ApiBuilder& ApiBuilder::c_enum_domain(std::string param, std::vector<std::string> vals,
                                      std::string code, bool documented) {
  api_.constraints.push_back(make_c(ConstraintKind::kEnumDomain, std::move(param), "",
                                    std::move(vals), 0, 0, std::move(code), documented));
  return *this;
}

ApiBuilder& ApiBuilder::c_cidr_valid(std::string param, std::string code) {
  api_.constraints.push_back(make_c(ConstraintKind::kCidrValid, std::move(param), "", {}, 0,
                                    0, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::c_prefix_range(std::string param, int lo, int hi, std::string code,
                                       bool documented) {
  api_.constraints.push_back(make_c(ConstraintKind::kCidrPrefixRange, std::move(param), "",
                                    {}, lo, hi, std::move(code), documented));
  return *this;
}

ApiBuilder& ApiBuilder::c_within_parent(std::string param, std::string attr,
                                        std::string code) {
  api_.constraints.push_back(make_c(ConstraintKind::kCidrWithinParent, std::move(param),
                                    std::move(attr), {}, 0, 0, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::c_no_overlap(std::string param, std::string attr, std::string code) {
  api_.constraints.push_back(make_c(ConstraintKind::kNoSiblingOverlap, std::move(param),
                                    std::move(attr), {}, 0, 0, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::c_attr_equals(std::string attr, std::string val, std::string code,
                                      bool documented) {
  api_.constraints.push_back(make_c(ConstraintKind::kAttrEquals, "", std::move(attr),
                                    {std::move(val)}, 0, 0, std::move(code), documented));
  return *this;
}

ApiBuilder& ApiBuilder::c_attr_not_equals(std::string attr, std::string val,
                                          std::string code, bool documented) {
  api_.constraints.push_back(make_c(ConstraintKind::kAttrNotEquals, "", std::move(attr),
                                    {std::move(val)}, 0, 0, std::move(code), documented));
  return *this;
}

ApiBuilder& ApiBuilder::c_ref_attr_match(std::string param, std::string attr,
                                         std::string code) {
  api_.constraints.push_back(make_c(ConstraintKind::kRefAttrMatchesSelf, std::move(param),
                                    std::move(attr), {}, 0, 0, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::c_attr_null(std::string attr, std::string code) {
  api_.constraints.push_back(make_c(ConstraintKind::kAttrNull, "", std::move(attr), {}, 0,
                                    0, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::c_true_requires(std::string param, std::string attr,
                                        std::string code, bool documented) {
  api_.constraints.push_back(make_c(ConstraintKind::kAttrTrueRequires, std::move(param),
                                    std::move(attr), {}, 0, 0, std::move(code), documented));
  return *this;
}

ApiBuilder& ApiBuilder::c_children_reclaimed(std::string code) {
  api_.constraints.push_back(
      make_c(ConstraintKind::kChildrenReclaimed, "", "", {}, 0, 0, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::c_int_range(std::string param, int lo, int hi, std::string code) {
  api_.constraints.push_back(make_c(ConstraintKind::kIntRange, std::move(param), "", {}, lo,
                                    hi, std::move(code), true));
  return *this;
}

ApiBuilder& ApiBuilder::e_write_param(std::string attr, std::string param) {
  EffectModel e;
  e.kind = EffectKind::kWriteParam;
  e.attr = std::move(attr);
  e.param = std::move(param);
  api_.effects.push_back(std::move(e));
  return *this;
}

ApiBuilder& ApiBuilder::e_write_const(std::string attr, std::string literal, FieldType type) {
  EffectModel e;
  e.kind = EffectKind::kWriteConst;
  e.attr = std::move(attr);
  e.literal = std::move(literal);
  e.literal_type = type;
  api_.effects.push_back(std::move(e));
  return *this;
}

ApiBuilder& ApiBuilder::e_link_parent(std::string param) {
  EffectModel e;
  e.kind = EffectKind::kLinkParent;
  e.param = std::move(param);
  api_.effects.push_back(std::move(e));
  return *this;
}

ApiBuilder& ApiBuilder::e_set_ref(std::string attr, std::string param,
                                  std::string target_attr) {
  EffectModel e;
  e.kind = EffectKind::kSetRef;
  e.attr = std::move(attr);
  e.param = std::move(param);
  e.target_attr = std::move(target_attr);
  api_.effects.push_back(std::move(e));
  return *this;
}

ApiBuilder& ApiBuilder::e_clear(std::string attr) {
  EffectModel e;
  e.kind = EffectKind::kClearAttr;
  e.attr = std::move(attr);
  api_.effects.push_back(std::move(e));
  return *this;
}

ResourceBuilder::ResourceBuilder(std::string name, std::string service,
                                 std::string id_prefix, std::string summary) {
  r_.name = std::move(name);
  r_.service = std::move(service);
  r_.id_prefix = std::move(id_prefix);
  r_.summary = std::move(summary);
}

ResourceBuilder& ResourceBuilder::contained_in(std::string parent) {
  r_.parent_type = std::move(parent);
  return *this;
}

ResourceBuilder& ResourceBuilder::attr(std::string name, FieldType type,
                                       std::string initial) {
  r_.attrs.push_back(AttrModel{std::move(name), type, {}, "", std::move(initial)});
  return *this;
}

ResourceBuilder& ResourceBuilder::enum_attr(std::string name,
                                            std::vector<std::string> members,
                                            std::string initial) {
  r_.attrs.push_back(
      AttrModel{std::move(name), FieldType::kEnum, std::move(members), "", std::move(initial)});
  return *this;
}

ResourceBuilder& ResourceBuilder::ref_attr(std::string name, std::string target) {
  r_.attrs.push_back(AttrModel{std::move(name), FieldType::kRef, {}, std::move(target), ""});
  return *this;
}

ResourceBuilder& ResourceBuilder::api(ApiBuilder b) {
  r_.apis.push_back(std::move(b).build());
  return *this;
}

ResourceBuilder& ResourceBuilder::standard_lifecycle(bool guard_delete) {
  if (r_.find_attr("state") == nullptr) {
    enum_attr("state", {"pending", "available"}, "available");
  }
  ApiBuilder create("Create" + r_.name, ApiCategory::kCreate);
  if (!r_.parent_type.empty()) {
    create.ref_param("parent", r_.parent_type);
    create.e_link_parent("parent");
  }
  create.e_write_const("state", "available", FieldType::kEnum);
  api(std::move(create));

  ApiBuilder del("Delete" + r_.name, ApiCategory::kDestroy);
  if (guard_delete) del.c_children_reclaimed(std::string(errc::kDependencyViolation));
  api(std::move(del));

  api(ApiBuilder("Describe" + r_.name, ApiCategory::kDescribe));
  return *this;
}

ResourceBuilder& ResourceBuilder::modifiable_attr(std::string attr_name, FieldType type) {
  attr(attr_name, type);
  ApiBuilder mod(strf("Modify", r_.name, snake_to_camel(attr_name)), ApiCategory::kModify);
  mod.param("value", type);
  mod.e_write_param(attr_name, "value");
  api(std::move(mod));
  return *this;
}

ResourceBuilder& ResourceBuilder::modifiable_enum_attr(std::string attr_name,
                                                       std::vector<std::string> members,
                                                       std::string initial) {
  enum_attr(attr_name, members, std::move(initial));
  ApiBuilder mod(strf("Modify", r_.name, snake_to_camel(attr_name)), ApiCategory::kModify);
  mod.enum_param("value", members);
  mod.c_enum_domain("value", members, std::string(errc::kInvalidParameterValue));
  mod.e_write_param(attr_name, "value");
  api(std::move(mod));
  return *this;
}

void pad_service_to(ServiceModel& service, std::size_t target,
                    const std::vector<std::string>& pool) {
  if (service.api_count() > target) {
    throw std::logic_error(strf("service ", service.name, " already has ",
                                service.api_count(), " APIs, above target ", target));
  }
  std::size_t pool_idx = 0;
  std::size_t res_idx = 0;
  while (service.api_count() < target) {
    ResourceModel& r = service.resources[res_idx % service.resources.size()];
    // Find the next pool attr this resource does not yet have.
    std::size_t tries = 0;
    while (tries < pool.size() &&
           r.find_attr(pool[(pool_idx + tries) % pool.size()]) != nullptr) {
      ++tries;
    }
    if (tries == pool.size()) {
      ++res_idx;
      if (res_idx > service.resources.size() * (pool.size() + 1)) {
        throw std::logic_error(strf("attribute pool exhausted for service ", service.name));
      }
      continue;
    }
    const std::string& name = pool[(pool_idx + tries) % pool.size()];
    r.attrs.push_back(AttrModel{name, FieldType::kStr, {}, "", ""});
    ApiModel mod;
    mod.name = strf("Modify", r.name, snake_to_camel(name));
    mod.category = ApiCategory::kModify;
    mod.params.push_back(ParamModel{"value", FieldType::kStr, {}, "", true});
    EffectModel e;
    e.kind = EffectKind::kWriteParam;
    e.attr = name;
    e.param = "value";
    mod.effects.push_back(std::move(e));
    r.apis.push_back(std::move(mod));
    ++pool_idx;
    ++res_idx;
  }
}

}  // namespace lce::docs
