#include "docs/wrangler.h"

#include "common/strings.h"

namespace lce::docs {

namespace {

/// Return the text between the i-th pair of single quotes (0-based), or
/// nullopt.
std::optional<std::string> quoted(const std::string& s, int index = 0) {
  std::size_t pos = 0;
  for (int i = 0; i <= index; ++i) {
    std::size_t open = s.find('\'', pos);
    if (open == std::string::npos) return std::nullopt;
    std::size_t close = s.find('\'', open + 1);
    if (close == std::string::npos) return std::nullopt;
    if (i == index) return s.substr(open + 1, close - open - 1);
    pos = close + 1;
  }
  return std::nullopt;
}

/// Text between the first pair of double quotes.
std::optional<std::string> dquoted(const std::string& s) {
  std::size_t open = s.find('"');
  if (open == std::string::npos) return std::nullopt;
  std::size_t close = s.find('"', open + 1);
  if (close == std::string::npos) return std::nullopt;
  return s.substr(open + 1, close - open - 1);
}

/// "between <lo> and <hi>" -> (lo, hi).
bool parse_between(const std::string& s, int& lo, int& hi) {
  std::size_t b = s.find("between ");
  if (b == std::string::npos) return false;
  auto words = split_ws(s.substr(b + 8));
  if (words.size() < 3 || words[1] != "and") return false;
  std::int64_t l = 0;
  std::int64_t h = 0;
  // Trailing punctuation on the hi word is possible ("28;").
  std::string hw = words[2];
  while (!hw.empty() && !std::isdigit(static_cast<unsigned char>(hw.back()))) hw.pop_back();
  if (!parse_int(words[0], l) || !parse_int(hw, h)) return false;
  lo = static_cast<int>(l);
  hi = static_cast<int>(h);
  return true;
}

/// Parse "[a, b, c]" bracket list following `from` position.
std::vector<std::string> bracket_list(const std::string& s) {
  std::size_t open = s.find('[');
  std::size_t close = s.find(']', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos) return {};
  std::vector<std::string> out;
  for (auto& part : split(s.substr(open + 1, close - open - 1), ',')) {
    std::string t = trim(part);
    if (!t.empty()) out.push_back(std::move(t));
  }
  return out;
}

/// Parse a rendered field type: "string", "boolean", "integer", "list",
/// "enum [a, b]", "reference", "reference to X".
bool parse_field_type(const std::string& text, FieldType& type,
                      std::vector<std::string>& enum_members, std::string& ref_type) {
  std::string t = trim(text);
  enum_members.clear();
  ref_type.clear();
  if (t == "string") { type = FieldType::kStr; return true; }
  if (t == "boolean") { type = FieldType::kBool; return true; }
  if (t == "integer") { type = FieldType::kInt; return true; }
  if (t == "list") { type = FieldType::kList; return true; }
  if (starts_with(t, "enum")) {
    type = FieldType::kEnum;
    enum_members = bracket_list(t);
    return !enum_members.empty();
  }
  if (starts_with(t, "reference")) {
    type = FieldType::kRef;
    if (starts_with(t, "reference to ")) ref_type = trim(t.substr(13));
    return true;
  }
  return false;
}

std::string error_code_of(const std::string& line) {
  // "...; otherwise the call fails with error '<code>'."
  std::size_t pos = line.find("fails with error '");
  if (pos == std::string::npos) return "";
  std::size_t open = line.find('\'', pos);
  std::size_t close = line.find('\'', open + 1);
  if (open == std::string::npos || close == std::string::npos) return "";
  return line.substr(open + 1, close - open - 1);
}

}  // namespace

std::optional<ConstraintModel> parse_constraint_sentence(const std::string& raw) {
  std::string line = trim(raw);
  if (!starts_with(line, "Constraint: ")) return std::nullopt;
  ConstraintModel c;
  c.error_code = error_code_of(line);
  if (c.error_code.empty()) return std::nullopt;
  std::string body = line.substr(12, line.find("; otherwise") - 12);

  if (contains(body, "must be one of")) {
    c.kind = ConstraintKind::kEnumDomain;
    auto p = quoted(body);
    if (!p) return std::nullopt;
    c.param = *p;
    c.str_vals = bracket_list(body);
    return c;
  }
  if (contains(body, "must be a valid IPv4 CIDR block")) {
    c.kind = ConstraintKind::kCidrValid;
    auto p = quoted(body);
    if (!p) return std::nullopt;
    c.param = *p;
    return c;
  }
  if (starts_with(body, "the prefix length of parameter")) {
    c.kind = ConstraintKind::kCidrPrefixRange;
    auto p = quoted(body);
    if (!p || !parse_between(body, c.int_lo, c.int_hi)) return std::nullopt;
    c.param = *p;
    return c;
  }
  if (contains(body, "must lie within the parent attribute")) {
    c.kind = ConstraintKind::kCidrWithinParent;
    auto p = quoted(body, 0);
    auto a = quoted(body, 1);
    if (!p || !a) return std::nullopt;
    c.param = *p;
    c.attr = *a;
    return c;
  }
  if (contains(body, "must not overlap the")) {
    c.kind = ConstraintKind::kNoSiblingOverlap;
    auto p = quoted(body, 0);
    auto a = quoted(body, 1);
    if (!p || !a) return std::nullopt;
    c.param = *p;
    c.attr = *a;
    return c;
  }
  if (contains(body, "must not equal")) {
    c.kind = ConstraintKind::kAttrNotEquals;
    auto a = quoted(body);
    auto v = dquoted(body);
    if (!a || !v) return std::nullopt;
    c.attr = *a;
    c.str_vals = {*v};
    return c;
  }
  if (contains(body, "must equal")) {
    c.kind = ConstraintKind::kAttrEquals;
    auto a = quoted(body);
    auto v = dquoted(body);
    if (!a || !v) return std::nullopt;
    c.attr = *a;
    c.str_vals = {*v};
    return c;
  }
  if (contains(body, "must have the same")) {
    c.kind = ConstraintKind::kRefAttrMatchesSelf;
    auto p = quoted(body, 0);
    auto a = quoted(body, 1);
    if (!p || !a) return std::nullopt;
    c.param = *p;
    c.attr = *a;
    return c;
  }
  if (contains(body, "must be unset")) {
    c.kind = ConstraintKind::kAttrNull;
    auto a = quoted(body);
    if (!a) return std::nullopt;
    c.attr = *a;
    return c;
  }
  if (contains(body, "may only be set to true when attribute")) {
    c.kind = ConstraintKind::kAttrTrueRequires;
    auto p = quoted(body, 0);
    auto a = quoted(body, 1);
    if (!p || !a) return std::nullopt;
    c.param = *p;
    c.attr = *a;
    return c;
  }
  if (contains(body, "contained in this resource must have been deleted")) {
    c.kind = ConstraintKind::kChildrenReclaimed;
    return c;
  }
  if (contains(body, "must be between")) {
    c.kind = ConstraintKind::kIntRange;
    auto p = quoted(body);
    if (!p || !parse_between(body, c.int_lo, c.int_hi)) return std::nullopt;
    c.param = *p;
    return c;
  }
  return std::nullopt;
}

std::optional<EffectModel> parse_effect_sentence(const std::string& raw) {
  std::string line = trim(raw);
  if (!starts_with(line, "Effect: ")) return std::nullopt;
  EffectModel e;
  std::string body = line.substr(8);

  if (starts_with(body, "the new resource is attached under")) {
    e.kind = EffectKind::kLinkParent;
    auto p = quoted(body);
    if (!p) return std::nullopt;
    e.param = *p;
    return e;
  }
  if (contains(body, "is set to the value of parameter")) {
    e.kind = EffectKind::kWriteParam;
    auto a = quoted(body, 0);
    auto p = quoted(body, 1);
    if (!a || !p) return std::nullopt;
    e.attr = *a;
    e.param = *p;
    return e;
  }
  if (contains(body, "is set to the constant")) {
    e.kind = EffectKind::kWriteConst;
    auto a = quoted(body, 0);
    auto lit = dquoted(body);
    if (!a || !lit) return std::nullopt;
    e.attr = *a;
    e.literal = *lit;
    // "(string)." / "(boolean)." / "(integer)." suffix
    if (contains(body, "(boolean)")) e.literal_type = FieldType::kBool;
    else if (contains(body, "(integer)")) e.literal_type = FieldType::kInt;
    else e.literal_type = FieldType::kStr;
    return e;
  }
  if (contains(body, "is set to reference the resource given by parameter")) {
    e.kind = EffectKind::kSetRef;
    auto a = quoted(body, 0);
    auto p = quoted(body, 1);
    if (!a || !p) return std::nullopt;
    e.attr = *a;
    e.param = *p;
    if (contains(body, "of the referenced resource is set to reference this resource")) {
      auto t = quoted(body, 2);
      if (!t) return std::nullopt;
      e.target_attr = *t;
    }
    return e;
  }
  if (contains(body, "is cleared")) {
    e.kind = EffectKind::kClearAttr;
    auto a = quoted(body);
    if (!a) return std::nullopt;
    e.attr = *a;
    return e;
  }
  return std::nullopt;
}

std::optional<ResourceModel> wrangle_page(const DocPage& page,
                                          std::vector<WrangleIssue>* issues) {
  auto note = [&](int line_no, std::string msg) {
    if (issues != nullptr) {
      issues->push_back(WrangleIssue{page.resource, line_no, std::move(msg)});
    }
  };

  ResourceModel r;
  ApiModel* cur_api = nullptr;
  enum class Section { kHeader, kAttrs, kApis } section = Section::kHeader;

  auto lines = split(page.text, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string raw = lines[i];
    std::string line = trim(raw);
    int ln = static_cast<int>(i + 1);
    if (line.empty()) continue;

    if (starts_with(line, "== Resource: ")) {
      std::string name = trim(line.substr(13));
      if (ends_with(name, "==")) name = trim(name.substr(0, name.size() - 2));
      r.name = name;
      continue;
    }
    if (starts_with(line, "Service: ")) {
      // "Service: ec2 (Title, provider aws)"
      std::string rest = line.substr(9);
      std::size_t paren = rest.find(" (");
      r.service = paren == std::string::npos ? trim(rest) : trim(rest.substr(0, paren));
      continue;
    }
    if (starts_with(line, "Id prefix: ")) {
      r.id_prefix = trim(line.substr(11));
      continue;
    }
    if (starts_with(line, "Contained in: ")) {
      std::string p = trim(line.substr(14));
      if (p != "(none)") r.parent_type = p;
      continue;
    }
    if (starts_with(line, "Summary: ")) {
      r.summary = line.substr(9);
      continue;
    }
    if (line == "Attributes:") { section = Section::kAttrs; continue; }
    if (line == "APIs:") { section = Section::kApis; continue; }

    if (section == Section::kAttrs && starts_with(line, "- ")) {
      // "- name: <type> (initial: v)"
      std::string body = line.substr(2);
      std::size_t colon = body.find(':');
      if (colon == std::string::npos) {
        note(ln, "attribute line without ':'");
        continue;
      }
      AttrModel a;
      a.name = trim(body.substr(0, colon));
      std::string ty = trim(body.substr(colon + 1));
      std::size_t init = ty.find(" (initial: ");
      if (init != std::string::npos) {
        std::string iv = ty.substr(init + 11);
        if (!iv.empty() && iv.back() == ')') iv.pop_back();
        a.initial = iv;
        ty = trim(ty.substr(0, init));
      }
      if (!parse_field_type(ty, a.type, a.enum_members, a.ref_type)) {
        note(ln, strf("unparseable attribute type '", ty, "'"));
        continue;
      }
      r.attrs.push_back(std::move(a));
      continue;
    }

    if (section == Section::kApis) {
      if (starts_with(line, "* API ")) {
        // "* API CreateVpc (category: create)"
        ApiModel api;
        std::string rest = line.substr(6);
        std::size_t paren = rest.find(" (category: ");
        if (paren == std::string::npos) {
          note(ln, "API line without category");
          continue;
        }
        api.name = trim(rest.substr(0, paren));
        std::string cat = rest.substr(paren + 12);
        if (!cat.empty() && cat.back() == ')') cat.pop_back();
        if (cat == "create") api.category = ApiCategory::kCreate;
        else if (cat == "destroy") api.category = ApiCategory::kDestroy;
        else if (cat == "describe") api.category = ApiCategory::kDescribe;
        else if (cat == "modify") api.category = ApiCategory::kModify;
        else if (cat == "action") api.category = ApiCategory::kAction;
        else {
          note(ln, strf("unknown API category '", cat, "'"));
          continue;
        }
        r.apis.push_back(std::move(api));
        cur_api = &r.apis.back();
        continue;
      }
      if (cur_api == nullptr) {
        note(ln, "API detail line before any API header");
        continue;
      }
      if (starts_with(line, "Parameter: ")) {
        // "Parameter: name: <type> (required)"
        std::string body = line.substr(11);
        std::size_t colon = body.find(':');
        if (colon == std::string::npos) {
          note(ln, "parameter line without ':'");
          continue;
        }
        ParamModel p;
        p.name = trim(body.substr(0, colon));
        std::string ty = trim(body.substr(colon + 1));
        if (ends_with(ty, "(required)")) {
          p.required = true;
          ty = trim(ty.substr(0, ty.size() - 10));
        } else if (ends_with(ty, "(optional)")) {
          p.required = false;
          ty = trim(ty.substr(0, ty.size() - 10));
        }
        if (!parse_field_type(ty, p.type, p.enum_members, p.ref_type)) {
          note(ln, strf("unparseable parameter type '", ty, "'"));
          continue;
        }
        cur_api->params.push_back(std::move(p));
        continue;
      }
      if (starts_with(line, "Constraint: ")) {
        auto c = parse_constraint_sentence(line);
        if (!c) {
          note(ln, strf("unparseable constraint sentence: ", line));
          continue;
        }
        cur_api->constraints.push_back(std::move(*c));
        continue;
      }
      if (starts_with(line, "Effect: ")) {
        auto e = parse_effect_sentence(line);
        if (!e) {
          note(ln, strf("unparseable effect sentence: ", line));
          continue;
        }
        cur_api->effects.push_back(std::move(*e));
        continue;
      }
      note(ln, strf("unrecognized API detail line: ", line));
      continue;
    }
  }
  if (r.name.empty()) return std::nullopt;
  return r;
}

WrangleResult wrangle(const DocCorpus& corpus) {
  WrangleResult out;
  out.catalog.provider = corpus.provider;
  for (const auto& page : corpus.pages) {
    auto r = wrangle_page(page, &out.issues);
    if (!r) {
      out.issues.push_back(WrangleIssue{page.resource, 0, "page has no resource header"});
      continue;
    }
    // Group into services in page order.
    ServiceModel* svc = nullptr;
    for (auto& s : out.catalog.services) {
      if (s.name == r->service) svc = &s;
    }
    if (svc == nullptr) {
      ServiceModel s;
      s.name = r->service;
      s.provider = corpus.provider;
      out.catalog.services.push_back(std::move(s));
      svc = &out.catalog.services.back();
    }
    svc->resources.push_back(std::move(*r));
  }
  return out;
}

}  // namespace lce::docs
