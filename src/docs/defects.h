// Documentation-defect injection (paper §4.3: "documentation may contain
// slight errors or does not stay perfectly in sync with the actual cloud
// behavior"). Defects are applied to a *copy* of the catalog before
// rendering, so the learned pipeline sees defective text while the
// reference cloud keeps executing the true catalog. The alignment phase
// must discover and repair precisely these divergences.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "docs/model.h"

namespace lce::docs {

enum class DefectKind {
  kOmittedConstraint,  // a documented constraint silently disappears
  kWrongErrorCode,     // text names a different (registered) error code
  kLooserRange,        // a numeric bound widened (e.g. /28 -> /29)
  kDroppedAttr,        // an attribute missing from the attribute table
  kStaleEnumMember,    // enum list gains a member the cloud rejects
};

std::string to_string(DefectKind k);

struct InjectedDefect {
  DefectKind kind;
  std::string resource;
  std::string api;    // "" for attribute-level defects
  std::string detail;

  std::string to_text() const;
};

struct DefectPlan {
  std::vector<InjectedDefect> defects;
};

/// Mutate `catalog` in place, injecting approximately `rate` defects per
/// eligible site (seeded). Core lifecycle integrity is preserved: create/
/// destroy/describe APIs always survive, and at most one defect lands per
/// API. Returns the plan of what was injected (used by EXPERIMENTS.md
/// reporting and by tests asserting the alignment loop repairs them).
DefectPlan inject_defects(CloudCatalog& catalog, double rate, Rng& rng);

}  // namespace lce::docs
