// Conversions between catalog-level field models and runtime Values,
// shared by the reference cloud engine and the spec synthesizer.
#pragma once

#include <string>
#include <vector>

#include "common/value.h"
#include "docs/model.h"

namespace lce::docs {

/// Parse a literal in its string form ("true", "5", "available") into a
/// Value of the given field type. Empty text -> null.
Value parse_literal(const std::string& text, FieldType type);

/// Runtime type admission for a field model (mirrors spec::Type::admits).
bool value_admits(FieldType type, const std::vector<std::string>& enum_members,
                  const Value& v);

}  // namespace lce::docs
