// Documentation renderer: catalog -> English-like provider documentation.
// The output follows a *set template* indexed by resource (paper §4.1:
// "The documentation follows a set template indexed by resource type and
// has ordered information ... for each API"), which is what makes the
// symbolic wrangler feasible. One page per resource, page numbering per
// service, mimicking AWS's consolidated PDF style.
#pragma once

#include <string>
#include <vector>

#include "docs/model.h"

namespace lce::docs {

struct DocPage {
  std::string provider;
  std::string service;
  std::string resource;
  int page_number = 0;
  std::string text;
};

struct DocCorpus {
  std::string provider;
  std::vector<DocPage> pages;

  const DocPage* find_page(std::string_view resource) const;
  /// Total rendered characters (a proxy for "thousands of PDF pages").
  std::size_t total_chars() const;
};

/// Render the full documentation corpus for `catalog`. Constraints marked
/// `documented = false` are omitted — the resulting text *underspecifies*
/// the cloud exactly where the real docs would.
DocCorpus render_corpus(const CloudCatalog& catalog);

/// Render a single resource page (used by tests and targeted re-reads).
std::string render_resource_page(const ResourceModel& r, const ServiceModel& s);

/// Template fragments shared with the wrangler (single source of truth).
std::string render_constraint_sentence(const ConstraintModel& c);
std::string render_effect_sentence(const EffectModel& e);
std::string render_field_type(FieldType t, const std::vector<std::string>& enum_members,
                              const std::string& ref_type);

}  // namespace lce::docs
