// The cloud *catalog*: the machine-readable source of truth about a cloud
// provider — services, resources, attributes, APIs, behavioural constraints
// and effects. In this reproduction the catalog plays the role of "the
// actual cloud's implementation knowledge":
//
//   catalog ──render()──> documentation text  ──wrangle()──> parsed catalog
//      │                        (possibly defective / underspecified)
//      └──> reference cloud semantics (ground truth, incl. UNDOCUMENTED
//           behaviours that only alignment can discover)
//
// The learned pipeline only ever sees the rendered *text*; constraints
// whose `documented` flag is false are omitted from rendering, reproducing
// the paper's §6 "Underspecified Documentation" gap.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lce::docs {

enum class FieldType { kBool, kInt, kStr, kEnum, kRef, kList };

std::string to_string(FieldType t);

struct ParamModel {
  std::string name;
  FieldType type = FieldType::kStr;
  std::vector<std::string> enum_members;  // kEnum
  std::string ref_type;                   // kRef
  bool required = true;
};

/// Behavioural constraint vocabulary. Each kind renders to (and parses
/// from) a fixed English template; each kind also has executable semantics
/// in the reference cloud and a translation into SM-grammar asserts.
enum class ConstraintKind {
  kEnumDomain,         // param value must be in str_vals
  kCidrValid,          // param parses as IPv4 CIDR
  kCidrPrefixRange,    // param prefix length in [int_lo, int_hi]
  kCidrWithinParent,   // param CIDR nested in parent's `attr`
  kNoSiblingOverlap,   // param CIDR disjoint from same-type siblings' `attr`
  kAttrEquals,         // precondition: self attr `attr` == str_vals[0]
  kAttrNotEquals,      // precondition: self attr `attr` != str_vals[0]
  kRefAttrMatchesSelf, // param ref's attr `attr` == self attr `attr`
  kAttrNull,           // precondition: self attr `attr` is null/unset
  kAttrTrueRequires,   // setting param true requires self attr `attr` true
  kChildrenReclaimed,  // destroy precondition: no containment children
  kIntRange,           // int param in [int_lo, int_hi]
};

std::string to_string(ConstraintKind k);

struct ConstraintModel {
  ConstraintKind kind = ConstraintKind::kEnumDomain;
  std::string param;  // involved parameter ("" = self-only precondition)
  std::string attr;   // involved attribute
  std::vector<std::string> str_vals;
  int int_lo = 0;
  int int_hi = 0;
  std::string error_code;
  /// When false, the provider's documentation omits this behaviour — the
  /// reference cloud still enforces it, so only alignment can learn it.
  bool documented = true;
};

enum class EffectKind {
  kWriteParam,  // attr := param
  kWriteConst,  // attr := literal
  kLinkParent,  // attach self under the resource named by param
  kSetRef,      // attr := param (a ref); optionally write back-ref on target
  kClearAttr,   // attr := null
};

std::string to_string(EffectKind k);

struct EffectModel {
  EffectKind kind = EffectKind::kWriteParam;
  std::string attr;
  std::string param;
  std::string literal;                      // kWriteConst (string form)
  FieldType literal_type = FieldType::kStr; // kWriteConst
  std::string target_attr;                  // kSetRef back-reference attr
};

enum class ApiCategory { kCreate, kDestroy, kDescribe, kModify, kAction };

std::string to_string(ApiCategory c);

struct ApiModel {
  std::string name;  // public API name, e.g. "CreateVpc"
  ApiCategory category = ApiCategory::kModify;
  std::vector<ParamModel> params;  // excluding the implicit target "id"
  std::vector<ConstraintModel> constraints;
  std::vector<EffectModel> effects;
};

struct AttrModel {
  std::string name;
  FieldType type = FieldType::kStr;
  std::vector<std::string> enum_members;
  std::string ref_type;
  std::string initial;  // literal string form; "" = null/unset
};

struct ResourceModel {
  std::string name;
  std::string service;
  std::string id_prefix;
  std::string parent_type;  // containment ("" = top-level)
  std::string summary;
  std::vector<AttrModel> attrs;
  std::vector<ApiModel> apis;

  const AttrModel* find_attr(std::string_view n) const;
  const ApiModel* find_api(std::string_view n) const;
  ApiModel* find_api(std::string_view n);
};

struct ServiceModel {
  std::string name;      // "ec2"
  std::string provider;  // "aws" / "azure"
  std::string title;     // "Amazon Elastic Compute Cloud"
  std::vector<ResourceModel> resources;

  std::size_t api_count() const;
  const ResourceModel* find_resource(std::string_view n) const;
};

struct CloudCatalog {
  std::string provider;
  std::vector<ServiceModel> services;

  std::size_t api_count() const;
  std::size_t resource_count() const;
  const ServiceModel* find_service(std::string_view n) const;
  const ResourceModel* find_resource(std::string_view n) const;
  ResourceModel* find_resource(std::string_view n);
  /// Locate the resource owning a public API ("" service = any).
  const ResourceModel* find_api_owner(std::string_view api) const;
  std::vector<std::string> all_api_names() const;
};

}  // namespace lce::docs
