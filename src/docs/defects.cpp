#include "docs/defects.h"

#include "common/errors.h"
#include "common/strings.h"

namespace lce::docs {

std::string to_string(DefectKind k) {
  switch (k) {
    case DefectKind::kOmittedConstraint: return "omitted-constraint";
    case DefectKind::kWrongErrorCode: return "wrong-error-code";
    case DefectKind::kLooserRange: return "looser-range";
    case DefectKind::kDroppedAttr: return "dropped-attr";
    case DefectKind::kStaleEnumMember: return "stale-enum-member";
  }
  return "?";
}

std::string InjectedDefect::to_text() const {
  return strf("[", to_string(kind), "] ", resource, api.empty() ? "" : strf("::", api),
              ": ", detail);
}

namespace {

/// Error codes a confused doc writer might substitute.
const std::vector<std::string>& decoy_codes() {
  static const std::vector<std::string> kDecoys = {
      std::string(errc::kValidationError),
      std::string(errc::kInvalidParameterValue),
      std::string(errc::kInvalidState),
      std::string(errc::kUnsupportedOperation),
  };
  return kDecoys;
}

}  // namespace

DefectPlan inject_defects(CloudCatalog& catalog, double rate, Rng& rng) {
  DefectPlan plan;
  for (auto& service : catalog.services) {
    for (auto& resource : service.resources) {
      for (auto& api : resource.apis) {
        if (api.constraints.empty() || !rng.chance(rate)) continue;
        // One defect per API maximum; pick a documented constraint.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < api.constraints.size(); ++i) {
          if (api.constraints[i].documented) candidates.push_back(i);
        }
        if (candidates.empty()) continue;
        ConstraintModel& c =
            api.constraints[candidates[rng.uniform(candidates.size())]];

        // Choose a defect applicable to this constraint.
        if (c.kind == ConstraintKind::kEnumDomain && rng.chance(0.34)) {
          // Stale documentation lists a value the cloud no longer accepts —
          // both in the API's domain sentence and in the attribute table.
          std::string stale = "legacy-" + c.str_vals.front();
          c.str_vals.push_back(stale);
          for (const auto& e : api.effects) {
            if (e.kind != EffectKind::kWriteParam || e.param != c.param) continue;
            for (auto& attr : resource.attrs) {
              if (attr.name == e.attr && attr.type == FieldType::kEnum) {
                attr.enum_members.push_back(stale);
              }
            }
          }
          plan.defects.push_back(InjectedDefect{
              DefectKind::kStaleEnumMember, resource.name, api.name,
              strf("docs list stale member '", stale, "' the cloud rejects")});
          continue;
        }
        switch (rng.uniform(3)) {
          case 0: {
            c.documented = false;  // omitted from the rendered docs
            plan.defects.push_back(InjectedDefect{
                DefectKind::kOmittedConstraint, resource.name, api.name,
                strf("docs omit ", to_string(c.kind), " check (code ", c.error_code, ")")});
            break;
          }
          case 1: {
            std::string old = c.error_code;
            std::string decoy = decoy_codes()[rng.uniform(decoy_codes().size())];
            if (decoy == old) decoy = decoy_codes()[(rng.uniform(3) + 1) % 4];
            if (decoy == old) break;
            c.error_code = decoy;
            plan.defects.push_back(InjectedDefect{
                DefectKind::kWrongErrorCode, resource.name, api.name,
                strf("docs say '", decoy, "' where the cloud returns '", old, "'")});
            break;
          }
          case 2: {
            if (c.kind == ConstraintKind::kCidrPrefixRange ||
                c.kind == ConstraintKind::kIntRange) {
              int old_hi = c.int_hi;
              c.int_hi += 1 + static_cast<int>(rng.uniform(3));
              plan.defects.push_back(InjectedDefect{
                  DefectKind::kLooserRange, resource.name, api.name,
                  strf("docs widen upper bound ", old_hi, " -> ", c.int_hi)});
            } else {
              c.documented = false;
              plan.defects.push_back(InjectedDefect{
                  DefectKind::kOmittedConstraint, resource.name, api.name,
                  strf("docs omit ", to_string(c.kind), " check (code ", c.error_code,
                       ")")});
            }
            break;
          }
        }
      }
      // Occasionally drop a non-essential attribute from the table.
      if (resource.attrs.size() > 2 && rng.chance(rate / 2)) {
        // Never drop attributes effects/constraints depend on.
        auto used = [&](const std::string& attr) {
          for (const auto& api : resource.apis) {
            for (const auto& c : api.constraints) {
              if (c.attr == attr) return true;
            }
            for (const auto& e : api.effects) {
              if (e.attr == attr || e.target_attr == attr) return true;
            }
          }
          return false;
        };
        std::vector<std::size_t> droppable;
        for (std::size_t i = 0; i < resource.attrs.size(); ++i) {
          if (!used(resource.attrs[i].name)) droppable.push_back(i);
        }
        if (!droppable.empty()) {
          std::size_t idx = droppable[rng.uniform(droppable.size())];
          plan.defects.push_back(InjectedDefect{
              DefectKind::kDroppedAttr, resource.name, "",
              strf("docs omit attribute '", resource.attrs[idx].name, "'")});
          resource.attrs.erase(resource.attrs.begin() +
                               static_cast<std::ptrdiff_t>(idx));
        }
      }
    }
  }
  return plan;
}

}  // namespace lce::docs
