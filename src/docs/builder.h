// Fluent builders for assembling CloudCatalog models. Used by the corpus
// definitions (corpus_aws.cpp / corpus_azure.cpp); kept separate so tests
// can assemble small synthetic catalogs too.
#pragma once

#include <string>
#include <vector>

#include "docs/model.h"

namespace lce::docs {

class ApiBuilder {
 public:
  ApiBuilder(std::string name, ApiCategory category);

  ApiBuilder& param(std::string name, FieldType type, bool required = true);
  ApiBuilder& enum_param(std::string name, std::vector<std::string> members,
                         bool required = true);
  ApiBuilder& ref_param(std::string name, std::string target, bool required = true);

  // Constraint shorthands; `documented=false` makes the docs silent about
  // the behaviour while the reference cloud still enforces it (§6).
  ApiBuilder& c_enum_domain(std::string param, std::vector<std::string> vals,
                            std::string code, bool documented = true);
  ApiBuilder& c_cidr_valid(std::string param, std::string code);
  ApiBuilder& c_prefix_range(std::string param, int lo, int hi, std::string code,
                             bool documented = true);
  ApiBuilder& c_within_parent(std::string param, std::string attr, std::string code);
  ApiBuilder& c_no_overlap(std::string param, std::string attr, std::string code);
  ApiBuilder& c_attr_equals(std::string attr, std::string val, std::string code,
                            bool documented = true);
  ApiBuilder& c_attr_not_equals(std::string attr, std::string val, std::string code,
                                bool documented = true);
  ApiBuilder& c_ref_attr_match(std::string param, std::string attr, std::string code);
  ApiBuilder& c_attr_null(std::string attr, std::string code);
  ApiBuilder& c_true_requires(std::string param, std::string attr, std::string code,
                              bool documented = true);
  ApiBuilder& c_children_reclaimed(std::string code);
  ApiBuilder& c_int_range(std::string param, int lo, int hi, std::string code);

  // Effect shorthands.
  ApiBuilder& e_write_param(std::string attr, std::string param);
  ApiBuilder& e_write_const(std::string attr, std::string literal,
                            FieldType type = FieldType::kStr);
  ApiBuilder& e_link_parent(std::string param);
  ApiBuilder& e_set_ref(std::string attr, std::string param, std::string target_attr = "");
  ApiBuilder& e_clear(std::string attr);

  ApiModel build() && { return std::move(api_); }
  const ApiModel& peek() const { return api_; }

 private:
  ApiModel api_;
};

class ResourceBuilder {
 public:
  ResourceBuilder(std::string name, std::string service, std::string id_prefix,
                  std::string summary);

  ResourceBuilder& contained_in(std::string parent);
  ResourceBuilder& attr(std::string name, FieldType type, std::string initial = "");
  ResourceBuilder& enum_attr(std::string name, std::vector<std::string> members,
                             std::string initial = "");
  ResourceBuilder& ref_attr(std::string name, std::string target);
  ResourceBuilder& api(ApiBuilder b);

  /// Standard lifecycle trio:
  ///  Create<Name>(parent ref if contained) — writes state "available";
  ///  Delete<Name>() — children-reclaimed guard when `guard_delete`;
  ///  Describe<Name>().
  /// Assumes the resource has a `state` enum attr (added if missing).
  ResourceBuilder& standard_lifecycle(bool guard_delete = true);

  /// Add a string attribute plus its Modify<Name><AttrCamel>(value) API —
  /// the paper's symbolic modifyX() transition (§3).
  ResourceBuilder& modifiable_attr(std::string attr_name, FieldType type = FieldType::kStr);

  /// Add an enum attribute plus its modify API with an enum-domain check.
  ResourceBuilder& modifiable_enum_attr(std::string attr_name,
                                        std::vector<std::string> members,
                                        std::string initial = "");

  ResourceModel build() && { return std::move(r_); }
  const ResourceModel& peek() const { return r_; }

 private:
  ResourceModel r_;
};

/// Append generated Modify-APIs (string option attributes drawn from
/// `pool`, round-robin across resources) until the service's API count
/// reaches `target`. Models the real cloud's long tail of per-attribute
/// modify APIs at the documented scale (Table 1 API counts). Pool
/// exhaustion is a hard error (grow the pool instead).
void pad_service_to(ServiceModel& service, std::size_t target,
                    const std::vector<std::string>& pool);

}  // namespace lce::docs
