// Documentation wrangler (paper §4.1): a *symbolic parser* that exploits
// the set template of provider documentation to turn rendered text pages
// back into structured per-resource information, "reducing the amount of
// context that the LLMs have to process". The learned pipeline consumes
// ONLY wrangler output — never the original catalog — so everything
// downstream sees exactly what the documentation said (including injected
// defects and omissions).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "docs/model.h"
#include "docs/render.h"

namespace lce::docs {

struct WrangleIssue {
  std::string page_resource;
  int line = 0;
  std::string message;
};

struct WrangleResult {
  CloudCatalog catalog;              // reconstructed (as-documented) catalog
  std::vector<WrangleIssue> issues;  // unparseable lines (skipped, logged)

  bool clean() const { return issues.empty(); }
};

/// Parse a full corpus back into a catalog.
WrangleResult wrangle(const DocCorpus& corpus);

/// Parse one page; service metadata (name/title/provider) comes from the
/// page header itself.
std::optional<ResourceModel> wrangle_page(const DocPage& page,
                                          std::vector<WrangleIssue>* issues);

/// Parse a constraint/effect sentence in isolation (exposed for tests and
/// for the alignment repair path, which re-reads targeted doc sentences).
std::optional<ConstraintModel> parse_constraint_sentence(const std::string& line);
std::optional<EffectModel> parse_effect_sentence(const std::string& line);

}  // namespace lce::docs
