// The synthetic provider corpora. AWS mirrors the paper's evaluated
// services at the documented API scale (Table 1: EC2 571 APIs over 28
// resources, DynamoDB 57 over 7, Network Firewall 45 over 8, EKS 58 over
// 4); Azure provides the multi-cloud replication target (§5 "Multi-cloud").
#pragma once

#include <string>
#include <vector>

#include "docs/model.h"

namespace lce::docs {

/// The region/zone vocabulary shared by both providers' corpora.
const std::vector<std::string>& regions();

/// Table 1 scale targets (exact API counts per service).
inline constexpr std::size_t kEc2ApiTarget = 571;
inline constexpr std::size_t kDynamoDbApiTarget = 57;
inline constexpr std::size_t kNetworkFirewallApiTarget = 45;
inline constexpr std::size_t kEksApiTarget = 58;

/// Fig. 4 scale: SMs per service.
inline constexpr std::size_t kEc2ResourceTarget = 28;
inline constexpr std::size_t kDynamoDbResourceTarget = 7;
inline constexpr std::size_t kNetworkFirewallResourceTarget = 8;
inline constexpr std::size_t kEksResourceTarget = 4;

/// Full AWS catalog: services ec2, dynamodb, network-firewall, eks.
CloudCatalog build_aws_catalog();

/// Azure catalog: services network + compute, with the same behavioural
/// vocabulary but Azure-style resource and API names.
CloudCatalog build_azure_catalog();

/// Cross-provider service equivalence (§4.4 multi-cloud): pairs of
/// (aws resource, azure resource) implementing the same concept.
struct ServiceEquivalence {
  std::string aws_resource;
  std::string azure_resource;
};
const std::vector<ServiceEquivalence>& aws_azure_equivalences();

}  // namespace lce::docs
