#include "docs/literals.h"

#include "common/strings.h"

namespace lce::docs {

Value parse_literal(const std::string& text, FieldType type) {
  if (text.empty()) return Value();
  switch (type) {
    case FieldType::kBool:
      return Value(text == "true");
    case FieldType::kInt: {
      std::int64_t v = 0;
      if (parse_int(text, v)) return Value(v);
      return Value();
    }
    case FieldType::kStr:
    case FieldType::kEnum:
      return Value(text);
    case FieldType::kRef:
      return Value::ref(text);
    case FieldType::kList:
      return Value(Value::List{});
  }
  return Value();
}

bool value_admits(FieldType type, const std::vector<std::string>& enum_members,
                  const Value& v) {
  switch (type) {
    case FieldType::kBool: return v.is_bool();
    case FieldType::kInt: return v.is_int();
    case FieldType::kStr: return v.is_str();
    case FieldType::kEnum: {
      if (!v.is_str()) return false;
      for (const auto& m : enum_members) {
        if (m == v.as_str()) return true;
      }
      // A string outside the documented member set is still a *string*;
      // domain membership is enforced by kEnumDomain constraints, so the
      // type check stays permissive here.
      return true;
    }
    case FieldType::kRef: return v.is_ref();
    case FieldType::kList: return v.is_list();
  }
  return false;
}

}  // namespace lce::docs
