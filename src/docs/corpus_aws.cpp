// The synthetic AWS catalog. Core resources (Vpc, Subnet, Instance,
// ElasticIp, NetworkInterface, SecurityGroup, ...) are modelled richly —
// they carry the behaviours the paper's evaluation exercises (CIDR rules,
// dependency violations, instance-state machines, DNS attribute coupling).
// The long tail is generated at the documented scale (Table 1 API counts)
// as per-attribute modify APIs, matching §3's symbolic modifyX() model.
#include "docs/corpus.h"

#include "common/errors.h"
#include "common/strings.h"
#include "docs/builder.h"

namespace lce::docs {

const std::vector<std::string>& regions() {
  static const std::vector<std::string> kRegions = {"us-east", "us-west", "eu-central"};
  return kRegions;
}

namespace {

std::string err(std::string_view code) { return std::string(code); }

/// Option-attribute pool for the generated long tail (realistic mutable
/// per-resource settings; each becomes a Modify API).
const std::vector<std::string>& option_pool() {
  static const std::vector<std::string> kPool = {
      "tag_spec",           "owner_label",        "billing_tag",
      "audit_mode",         "delete_protection",  "throughput_mode",
      "performance_tier",   "maintenance_window", "backup_retention",
      "monitoring_level",   "log_destination",    "encryption_key",
      "network_tier",       "replication_mode",   "failover_priority",
      "access_scope",       "compliance_mode",    "cost_center",
      "lifecycle_policy",   "notification_target", "request_limit",
      "burst_mode",         "archive_tier",       "snapshot_window",
      "placement_hint",     "quota_profile",
  };
  return kPool;
}

/// Enable/Disable action pair over a boolean `enabled` attribute with
/// documented state preconditions.
void add_toggle_actions(ResourceBuilder& b, const std::string& name) {
  b.attr("enabled", FieldType::kBool, "false");
  ApiBuilder enable("Enable" + name, ApiCategory::kAction);
  enable.c_attr_equals("enabled", "false", err(errc::kInvalidState));
  enable.e_write_const("enabled", "true", FieldType::kBool);
  b.api(std::move(enable));
  ApiBuilder disable("Disable" + name, ApiCategory::kAction);
  disable.c_attr_equals("enabled", "true", err(errc::kInvalidState));
  disable.e_write_const("enabled", "false", FieldType::kBool);
  b.api(std::move(disable));
}

// --------------------------------------------------------- EC2 core SMs --

ResourceModel make_vpc() {
  ResourceBuilder b("Vpc", "ec2", "vpc",
                    "A virtual private cloud: an isolated virtual network hosting "
                    "subnets, gateways and instances.");
  b.attr("cidr_block", FieldType::kStr);
  b.enum_attr("state", {"pending", "available"}, "available");
  b.enum_attr("instance_tenancy", {"default", "dedicated"}, "default");
  b.attr("dns_support", FieldType::kBool, "true");
  b.attr("dns_hostnames", FieldType::kBool, "false");
  b.attr("description", FieldType::kStr);

  ApiBuilder create("CreateVpc", ApiCategory::kCreate);
  create.param("cidr_block", FieldType::kStr);
  create.c_cidr_valid("cidr_block", err(errc::kInvalidParameterValue));
  create.c_prefix_range("cidr_block", 16, 28, err(errc::kInvalidVpcRange));
  create.e_write_param("cidr_block", "cidr_block");
  create.e_write_const("state", "available", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteVpc", ApiCategory::kDestroy);
  del.c_children_reclaimed(err(errc::kDependencyViolation));
  b.api(std::move(del));

  b.api(ApiBuilder("DescribeVpc", ApiCategory::kDescribe));

  ApiBuilder tenancy("ModifyVpcInstanceTenancy", ApiCategory::kModify);
  tenancy.enum_param("value", {"default", "dedicated"});
  tenancy.c_enum_domain("value", {"default", "dedicated"},
                        err(errc::kInvalidParameterValue));
  tenancy.e_write_param("instance_tenancy", "value");
  b.api(std::move(tenancy));

  ApiBuilder dns_support("ModifyVpcDnsSupport", ApiCategory::kModify);
  dns_support.param("value", FieldType::kBool);
  dns_support.e_write_param("dns_support", "value");
  b.api(std::move(dns_support));

  // The behaviour the paper's D2C baseline got wrong: hostnames require
  // DNS support to already be enabled.
  ApiBuilder dns_hosts("ModifyVpcDnsHostnames", ApiCategory::kModify);
  dns_hosts.param("value", FieldType::kBool);
  dns_hosts.c_true_requires("value", "dns_support", err(errc::kInvalidParameterValue));
  dns_hosts.e_write_param("dns_hostnames", "value");
  b.api(std::move(dns_hosts));

  ApiBuilder desc("ModifyVpcDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

ResourceModel make_subnet() {
  ResourceBuilder b("Subnet", "ec2", "subnet",
                    "A range of IP addresses inside a VPC where resources can be "
                    "launched.");
  b.contained_in("Vpc");
  b.attr("cidr_block", FieldType::kStr);
  b.enum_attr("state", {"pending", "available"}, "available");
  b.enum_attr("availability_zone", regions());
  b.attr("map_public_ip_on_launch", FieldType::kBool, "false");
  b.attr("description", FieldType::kStr);

  ApiBuilder create("CreateSubnet", ApiCategory::kCreate);
  create.ref_param("vpc", "Vpc");
  create.param("cidr_block", FieldType::kStr);
  create.enum_param("zone", regions());
  create.c_cidr_valid("cidr_block", err(errc::kInvalidParameterValue));
  // The /29 behaviour the paper's D2C baseline missed: AWS subnets must be
  // /16../28; the direct generation only checked "simple CIDR conflicts".
  create.c_prefix_range("cidr_block", 16, 28, err(errc::kInvalidSubnetRange));
  create.c_within_parent("cidr_block", "cidr_block", err(errc::kInvalidSubnetRange));
  create.c_no_overlap("cidr_block", "cidr_block", err(errc::kInvalidSubnetConflict));
  create.c_enum_domain("zone", regions(), err(errc::kInvalidParameterValue));
  create.e_link_parent("vpc");
  create.e_write_param("cidr_block", "cidr_block");
  create.e_write_param("availability_zone", "zone");
  create.e_write_const("state", "available", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteSubnet", ApiCategory::kDestroy);
  del.c_children_reclaimed(err(errc::kDependencyViolation));
  b.api(std::move(del));

  b.api(ApiBuilder("DescribeSubnet", ApiCategory::kDescribe));

  // Named after the real AWS API the paper's basic-functionality program
  // calls (ModifySubnetAttribute / MapPublicIpOnLaunch).
  ApiBuilder attr_api("ModifySubnetAttribute", ApiCategory::kModify);
  attr_api.param("map_public_ip_on_launch", FieldType::kBool);
  attr_api.e_write_param("map_public_ip_on_launch", "map_public_ip_on_launch");
  b.api(std::move(attr_api));

  ApiBuilder desc("ModifySubnetDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

ResourceModel make_instance() {
  ResourceBuilder b("Instance", "ec2", "i",
                    "A virtual machine launched inside a subnet.");
  b.contained_in("Subnet");
  b.enum_attr("state", {"pending", "running", "stopping", "stopped", "terminated"},
              "running");
  b.attr("instance_type", FieldType::kStr, "t3.micro");
  b.enum_attr("instance_tenancy", {"default", "dedicated", "host"}, "default");
  b.enum_attr("credit_specification", {"standard", "unlimited"}, "standard");
  b.attr("monitoring", FieldType::kBool, "false");
  b.attr("ebs_optimized", FieldType::kBool, "false");
  b.attr("user_data", FieldType::kStr);
  b.attr("source_dest_check", FieldType::kBool, "true");
  b.attr("disable_api_termination", FieldType::kBool, "false");

  ApiBuilder run("RunInstance", ApiCategory::kCreate);
  run.ref_param("subnet", "Subnet");
  run.param("instance_type", FieldType::kStr);
  run.e_link_parent("subnet");
  run.e_write_param("instance_type", "instance_type");
  run.e_write_const("state", "running", FieldType::kEnum);
  b.api(std::move(run));

  ApiBuilder term("TerminateInstance", ApiCategory::kDestroy);
  // Termination protection must be off (documented).
  term.c_attr_equals("disable_api_termination", "false",
                     err(errc::kUnsupportedOperation));
  b.api(std::move(term));

  b.api(ApiBuilder("DescribeInstance", ApiCategory::kDescribe));

  // The paper's transition-error example: StartInstances on an already
  // running instance must fail with IncorrectInstanceState. The AWS docs
  // underspecify this (§6) — marked undocumented, so only alignment
  // discovers it.
  ApiBuilder start("StartInstance", ApiCategory::kAction);
  start.c_attr_equals("state", "stopped", err(errc::kIncorrectInstanceState),
                      /*documented=*/false);
  start.e_write_const("state", "running", FieldType::kEnum);
  b.api(std::move(start));

  ApiBuilder stop("StopInstance", ApiCategory::kAction);
  stop.c_attr_equals("state", "running", err(errc::kIncorrectInstanceState));
  stop.e_write_const("state", "stopped", FieldType::kEnum);
  b.api(std::move(stop));

  ApiBuilder reboot("RebootInstance", ApiCategory::kAction);
  reboot.c_attr_equals("state", "running", err(errc::kIncorrectInstanceState));
  b.api(std::move(reboot));

  ApiBuilder mon("MonitorInstance", ApiCategory::kAction);
  mon.e_write_const("monitoring", "true", FieldType::kBool);
  b.api(std::move(mon));
  ApiBuilder unmon("UnmonitorInstance", ApiCategory::kAction);
  unmon.e_write_const("monitoring", "false", FieldType::kBool);
  b.api(std::move(unmon));

  ApiBuilder mtype("ModifyInstanceType", ApiCategory::kModify);
  mtype.param("value", FieldType::kStr);
  // Type changes require the instance to be stopped (documented).
  mtype.c_attr_equals("state", "stopped", err(errc::kIncorrectInstanceState));
  mtype.e_write_param("instance_type", "value");
  b.api(std::move(mtype));

  ApiBuilder mten("ModifyInstanceTenancy", ApiCategory::kModify);
  mten.enum_param("value", {"default", "dedicated", "host"});
  mten.c_enum_domain("value", {"default", "dedicated", "host"},
                     err(errc::kInvalidParameterValue));
  mten.e_write_param("instance_tenancy", "value");
  b.api(std::move(mten));

  ApiBuilder mcred("ModifyInstanceCreditSpecification", ApiCategory::kModify);
  mcred.enum_param("value", {"standard", "unlimited"});
  mcred.c_enum_domain("value", {"standard", "unlimited"},
                      err(errc::kInvalidParameterValue));
  mcred.e_write_param("credit_specification", "value");
  b.api(std::move(mcred));

  ApiBuilder mud("ModifyInstanceUserData", ApiCategory::kModify);
  mud.param("value", FieldType::kStr);
  mud.c_attr_equals("state", "stopped", err(errc::kIncorrectInstanceState));
  mud.e_write_param("user_data", "value");
  b.api(std::move(mud));

  ApiBuilder msdc("ModifyInstanceSourceDestCheck", ApiCategory::kModify);
  msdc.param("value", FieldType::kBool);
  msdc.e_write_param("source_dest_check", "value");
  b.api(std::move(msdc));

  ApiBuilder mdat("ModifyInstanceDisableApiTermination", ApiCategory::kModify);
  mdat.param("value", FieldType::kBool);
  mdat.e_write_param("disable_api_termination", "value");
  b.api(std::move(mdat));

  ApiBuilder mebs("ModifyInstanceEbsOptimized", ApiCategory::kModify);
  mebs.param("value", FieldType::kBool);
  mebs.c_attr_equals("state", "stopped", err(errc::kIncorrectInstanceState));
  mebs.e_write_param("ebs_optimized", "value");
  b.api(std::move(mebs));

  return std::move(b).build();
}

ResourceModel make_internet_gateway() {
  ResourceBuilder b("InternetGateway", "ec2", "igw",
                    "A gateway attached to a VPC enabling communication with the "
                    "Internet.");
  b.contained_in("Vpc");
  b.enum_attr("state", {"attaching", "attached"}, "attached");
  b.attr("description", FieldType::kStr);

  ApiBuilder create("CreateInternetGateway", ApiCategory::kCreate);
  create.ref_param("vpc", "Vpc");
  create.e_link_parent("vpc");
  create.e_write_const("state", "attached", FieldType::kEnum);
  b.api(std::move(create));

  b.api(ApiBuilder("DeleteInternetGateway", ApiCategory::kDestroy));
  b.api(ApiBuilder("DescribeInternetGateway", ApiCategory::kDescribe));

  ApiBuilder desc("ModifyInternetGatewayDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

ResourceModel make_elastic_ip() {
  // The paper's §3 toy example, at AWS fidelity.
  ResourceBuilder b("ElasticIp", "ec2", "eipalloc",
                    "A public IP address that allows Internet resources to "
                    "communicate inbound to resources in the cloud.");
  b.enum_attr("status", {"ASSIGNED", "IDLE"}, "IDLE");
  b.enum_attr("zone", regions());
  b.ref_attr("nic", "NetworkInterface");

  ApiBuilder alloc("AllocateAddress", ApiCategory::kCreate);
  alloc.enum_param("zone", regions());
  alloc.c_enum_domain("zone", regions(), err(errc::kInvalidParameterValue));
  alloc.e_write_param("zone", "zone");
  alloc.e_write_const("status", "ASSIGNED", FieldType::kEnum);
  b.api(std::move(alloc));

  ApiBuilder release("ReleaseAddress", ApiCategory::kDestroy);
  release.c_attr_null("nic", err(errc::kDependencyViolation));
  b.api(std::move(release));

  b.api(ApiBuilder("DescribeAddress", ApiCategory::kDescribe));

  ApiBuilder assoc("AssociateAddress", ApiCategory::kModify);
  assoc.ref_param("nic", "NetworkInterface");
  assoc.c_attr_null("nic", err(errc::kResourceInUse));
  assoc.c_ref_attr_match("nic", "zone", err(errc::kZoneMismatch));
  assoc.e_set_ref("nic", "nic", /*target_attr=*/"public_ip");
  b.api(std::move(assoc));

  ApiBuilder disassoc("DisassociateAddress", ApiCategory::kModify);
  disassoc.e_clear("nic");
  b.api(std::move(disassoc));

  return std::move(b).build();
}

ResourceModel make_network_interface() {
  ResourceBuilder b("NetworkInterface", "ec2", "eni",
                    "A virtual network card attachable to instances and "
                    "addressable by a public IP.");
  b.contained_in("Subnet");
  b.enum_attr("state", {"pending", "available", "in-use"}, "available");
  b.enum_attr("zone", regions());
  b.ref_attr("public_ip", "ElasticIp");
  b.attr("description", FieldType::kStr);
  b.attr("source_dest_check", FieldType::kBool, "true");

  ApiBuilder create("CreateNetworkInterface", ApiCategory::kCreate);
  create.ref_param("subnet", "Subnet");
  create.enum_param("zone", regions());
  create.c_enum_domain("zone", regions(), err(errc::kInvalidParameterValue));
  create.e_link_parent("subnet");
  create.e_write_param("zone", "zone");
  create.e_write_const("state", "available", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteNetworkInterface", ApiCategory::kDestroy);
  del.c_attr_null("public_ip", err(errc::kDependencyViolation));
  b.api(std::move(del));

  b.api(ApiBuilder("DescribeNetworkInterface", ApiCategory::kDescribe));

  ApiBuilder desc("ModifyNetworkInterfaceDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  ApiBuilder sdc("ModifyNetworkInterfaceSourceDestCheck", ApiCategory::kModify);
  sdc.param("value", FieldType::kBool);
  sdc.e_write_param("source_dest_check", "value");
  b.api(std::move(sdc));

  return std::move(b).build();
}

ResourceModel make_security_group() {
  ResourceBuilder b("SecurityGroup", "ec2", "sg",
                    "A stateful virtual firewall controlling traffic to resources "
                    "in a VPC.");
  b.contained_in("Vpc");
  b.attr("group_name", FieldType::kStr);
  b.attr("description", FieldType::kStr);
  b.attr("last_ingress_port", FieldType::kInt);
  b.attr("last_egress_port", FieldType::kInt);

  ApiBuilder create("CreateSecurityGroup", ApiCategory::kCreate);
  create.ref_param("vpc", "Vpc");
  create.param("group_name", FieldType::kStr);
  create.e_link_parent("vpc");
  create.e_write_param("group_name", "group_name");
  b.api(std::move(create));

  b.api(ApiBuilder("DeleteSecurityGroup", ApiCategory::kDestroy));
  b.api(ApiBuilder("DescribeSecurityGroup", ApiCategory::kDescribe));

  ApiBuilder ing("AuthorizeSecurityGroupIngress", ApiCategory::kAction);
  ing.param("port", FieldType::kInt);
  ing.c_int_range("port", 1, 65535, err(errc::kInvalidParameterValue));
  ing.e_write_param("last_ingress_port", "port");
  b.api(std::move(ing));

  ApiBuilder egr("AuthorizeSecurityGroupEgress", ApiCategory::kAction);
  egr.param("port", FieldType::kInt);
  egr.c_int_range("port", 1, 65535, err(errc::kInvalidParameterValue));
  egr.e_write_param("last_egress_port", "port");
  b.api(std::move(egr));

  ApiBuilder ring("RevokeSecurityGroupIngress", ApiCategory::kAction);
  ring.e_clear("last_ingress_port");
  b.api(std::move(ring));

  ApiBuilder regr("RevokeSecurityGroupEgress", ApiCategory::kAction);
  regr.e_clear("last_egress_port");
  b.api(std::move(regr));

  ApiBuilder desc("ModifySecurityGroupDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

// --------------------------------------------------------- EC2 long tail --

/// A long-tail EC2 resource: standard lifecycle + a couple of modifiable
/// string attributes + an Enable/Disable action pair.
ResourceModel tail_resource(const std::string& name, const std::string& prefix,
                            const std::string& parent, const std::string& summary,
                            const std::vector<std::string>& extra_attrs,
                            bool toggles = true) {
  ResourceBuilder b(name, "ec2", prefix, summary);
  if (!parent.empty()) b.contained_in(parent);
  b.standard_lifecycle();
  for (const auto& a : extra_attrs) b.modifiable_attr(a);
  if (toggles) add_toggle_actions(b, name);
  return std::move(b).build();
}

ServiceModel build_ec2() {
  ServiceModel s;
  s.name = "ec2";
  s.provider = "aws";
  s.title = "Elastic Compute Cloud";
  s.resources.push_back(make_vpc());
  s.resources.push_back(make_subnet());
  s.resources.push_back(make_instance());
  s.resources.push_back(make_internet_gateway());
  s.resources.push_back(make_elastic_ip());
  s.resources.push_back(make_network_interface());
  s.resources.push_back(make_security_group());

  s.resources.push_back(tail_resource(
      "NatGateway", "nat", "Subnet",
      "A managed network address translation gateway for outbound traffic.",
      {"connectivity_type", "allocation_mode"}));
  s.resources.push_back(tail_resource(
      "RouteTable", "rtb", "Vpc",
      "A set of routing rules determining where network traffic is directed.",
      {"main_route", "propagation_mode"}));
  s.resources.push_back(tail_resource(
      "VpcEndpoint", "vpce", "Vpc",
      "A private connection between a VPC and a supported service.",
      {"service_name", "policy_document"}));
  s.resources.push_back(tail_resource(
      "VpcPeeringConnection", "pcx", "Vpc",
      "A networking connection between two VPCs.", {"peer_vpc_label", "peer_region"}));
  s.resources.push_back(tail_resource(
      "KeyPair", "key", "",
      "A public/private key pair for instance login.", {"key_type", "fingerprint_alg"},
      /*toggles=*/false));
  s.resources.push_back(tail_resource(
      "Volume", "vol", "",
      "A block storage volume attachable to instances.",
      {"volume_type", "size_label", "iops_profile"}));
  s.resources.push_back(tail_resource(
      "Snapshot", "snap", "",
      "A point-in-time copy of a volume.", {"source_volume_label", "storage_tier"}));
  s.resources.push_back(tail_resource(
      "Image", "ami", "",
      "A machine image template for launching instances.",
      {"image_name", "architecture", "root_device"}));
  s.resources.push_back(tail_resource(
      "LaunchTemplate", "lt", "",
      "A saved configuration for launching instances.",
      {"template_name", "default_version"}));
  s.resources.push_back(tail_resource(
      "PlacementGroup", "pg", "",
      "A logical grouping of instances controlling placement strategy.",
      {"strategy", "partition_label"}, /*toggles=*/false));
  s.resources.push_back(tail_resource(
      "DhcpOptions", "dopt", "Vpc",
      "A set of DHCP configuration options for a VPC.",
      {"domain_name", "ntp_servers"}, /*toggles=*/false));
  s.resources.push_back(tail_resource(
      "NetworkAcl", "acl", "Vpc",
      "A stateless firewall layer for subnets.", {"default_rule", "rule_budget"}));
  s.resources.push_back(tail_resource(
      "FlowLog", "fl", "Vpc",
      "Captures IP traffic metadata for a network interface, subnet, or VPC.",
      {"traffic_type", "log_format"}));
  s.resources.push_back(tail_resource(
      "TransitGateway", "tgw", "",
      "A network transit hub interconnecting VPCs and on-premises networks.",
      {"amazon_side_asn", "route_table_mode"}));
  s.resources.push_back(tail_resource(
      "TransitGatewayAttachment", "tgw-attach", "TransitGateway",
      "An attachment binding a VPC to a transit gateway.",
      {"attachment_mode"}));
  s.resources.push_back(tail_resource(
      "CustomerGateway", "cgw", "",
      "Information about an on-premises customer gateway device.",
      {"bgp_asn_label", "device_name"}, /*toggles=*/false));
  s.resources.push_back(tail_resource(
      "VpnGateway", "vgw", "Vpc",
      "The VPC side of a site-to-site VPN connection.", {"amazon_asn"}));
  s.resources.push_back(tail_resource(
      "VpnConnection", "vpn", "VpnGateway",
      "A site-to-site VPN connection between a VPC and a customer gateway.",
      {"tunnel_options", "static_routes"}));
  s.resources.push_back(tail_resource(
      "EgressOnlyInternetGateway", "eigw", "Vpc",
      "A gateway permitting outbound-only IPv6 traffic.", {}, /*toggles=*/false));
  s.resources.push_back(tail_resource(
      "CarrierGateway", "cagw", "Vpc",
      "A gateway connecting a Wavelength-zone subnet to a carrier network.", {}));
  s.resources.push_back(tail_resource(
      "CapacityReservation", "cr", "",
      "Reserved compute capacity in a specific availability zone.",
      {"instance_platform", "end_date_label"}));

  pad_service_to(s, kEc2ApiTarget, option_pool());
  return s;
}

// --------------------------------------------------------------- others --

ResourceModel make_dynamodb_table() {
  ResourceBuilder b("Table", "dynamodb", "table",
                    "A schemaless key-value table with configurable throughput.");
  b.attr("table_name", FieldType::kStr);
  b.enum_attr("state", {"CREATING", "ACTIVE", "DELETING"}, "ACTIVE");
  b.enum_attr("billing_mode", {"PROVISIONED", "PAY_PER_REQUEST"}, "PROVISIONED");
  b.attr("read_capacity", FieldType::kInt, "5");
  b.attr("write_capacity", FieldType::kInt, "5");
  b.enum_attr("table_class", {"STANDARD", "STANDARD_IA"}, "STANDARD");
  b.attr("deletion_protection", FieldType::kBool, "false");

  ApiBuilder create("CreateTable", ApiCategory::kCreate);
  create.param("table_name", FieldType::kStr);
  create.enum_param("billing_mode", {"PROVISIONED", "PAY_PER_REQUEST"});
  create.c_enum_domain("billing_mode", {"PROVISIONED", "PAY_PER_REQUEST"},
                       err(errc::kValidationError));
  create.e_write_param("table_name", "table_name");
  create.e_write_param("billing_mode", "billing_mode");
  create.e_write_const("state", "ACTIVE", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteTable", ApiCategory::kDestroy);
  del.c_children_reclaimed(err(errc::kResourceInUse));
  del.c_attr_equals("deletion_protection", "false", err(errc::kValidationError));
  b.api(std::move(del));

  b.api(ApiBuilder("DescribeTable", ApiCategory::kDescribe));

  ApiBuilder bm("UpdateTableBillingMode", ApiCategory::kModify);
  bm.enum_param("value", {"PROVISIONED", "PAY_PER_REQUEST"});
  bm.c_enum_domain("value", {"PROVISIONED", "PAY_PER_REQUEST"},
                   err(errc::kValidationError));
  bm.e_write_param("billing_mode", "value");
  b.api(std::move(bm));

  ApiBuilder rc("UpdateTableReadCapacity", ApiCategory::kModify);
  rc.param("value", FieldType::kInt);
  rc.c_int_range("value", 1, 40000, err(errc::kLimitExceeded));
  // Capacity updates only make sense in PROVISIONED mode (documented).
  rc.c_attr_equals("billing_mode", "PROVISIONED", err(errc::kValidationError));
  rc.e_write_param("read_capacity", "value");
  b.api(std::move(rc));

  ApiBuilder wc("UpdateTableWriteCapacity", ApiCategory::kModify);
  wc.param("value", FieldType::kInt);
  wc.c_int_range("value", 1, 40000, err(errc::kLimitExceeded));
  wc.c_attr_equals("billing_mode", "PROVISIONED", err(errc::kValidationError));
  wc.e_write_param("write_capacity", "value");
  b.api(std::move(wc));

  ApiBuilder tc("UpdateTableClass", ApiCategory::kModify);
  tc.enum_param("value", {"STANDARD", "STANDARD_IA"});
  tc.c_enum_domain("value", {"STANDARD", "STANDARD_IA"}, err(errc::kValidationError));
  tc.e_write_param("table_class", "value");
  b.api(std::move(tc));

  ApiBuilder dp("UpdateTableDeletionProtection", ApiCategory::kModify);
  dp.param("value", FieldType::kBool);
  dp.e_write_param("deletion_protection", "value");
  b.api(std::move(dp));

  return std::move(b).build();
}

ResourceModel make_dynamodb_item() {
  ResourceBuilder b("Item", "dynamodb", "item",
                    "A single key-addressed record stored in a table.");
  b.contained_in("Table");
  b.attr("item_key", FieldType::kStr);
  b.attr("payload", FieldType::kStr);

  ApiBuilder put("PutItem", ApiCategory::kCreate);
  put.ref_param("table", "Table");
  put.param("item_key", FieldType::kStr);
  put.param("payload", FieldType::kStr, /*required=*/false);
  put.e_link_parent("table");
  put.e_write_param("item_key", "item_key");
  put.e_write_param("payload", "payload");
  b.api(std::move(put));

  b.api(ApiBuilder("DeleteItem", ApiCategory::kDestroy));
  b.api(ApiBuilder("GetItem", ApiCategory::kDescribe));

  ApiBuilder upd("UpdateItemPayload", ApiCategory::kModify);
  upd.param("value", FieldType::kStr);
  upd.e_write_param("payload", "value");
  b.api(std::move(upd));

  return std::move(b).build();
}

ServiceModel build_dynamodb() {
  ServiceModel s;
  s.name = "dynamodb";
  s.provider = "aws";
  s.title = "DynamoDB";
  s.resources.push_back(make_dynamodb_table());
  s.resources.push_back(make_dynamodb_item());

  {
    ResourceBuilder b("SecondaryIndex", "dynamodb", "gsi",
                      "A global secondary index over a table.");
    b.contained_in("Table");
    b.standard_lifecycle();
    b.modifiable_attr("projection_type");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("GlobalTable", "dynamodb", "gt",
                      "A multi-region replicated table.");
    b.standard_lifecycle();
    b.modifiable_attr("replica_regions");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("Backup", "dynamodb", "backup",
                      "A full backup of a table at a point in time.");
    b.contained_in("Table");
    b.standard_lifecycle(/*guard_delete=*/false);
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("TableStream", "dynamodb", "stream",
                      "An ordered change-data-capture stream for a table.");
    b.contained_in("Table");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_enum_attr("view_type", {"KEYS_ONLY", "NEW_IMAGE", "OLD_IMAGE"},
                           "KEYS_ONLY");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("ExportJob", "dynamodb", "export",
                      "An asynchronous export of table data to object storage.");
    b.contained_in("Table");
    b.standard_lifecycle(/*guard_delete=*/false);
    s.resources.push_back(std::move(b).build());
  }

  pad_service_to(s, kDynamoDbApiTarget, option_pool());
  return s;
}

ResourceModel make_firewall() {
  ResourceBuilder b("Firewall", "network-firewall", "fw",
                    "A stateful managed network firewall protecting a VPC.");
  b.contained_in("Vpc");
  b.enum_attr("state", {"PROVISIONING", "READY", "DELETING"}, "READY");
  b.ref_attr("policy", "FirewallPolicy");
  b.attr("delete_protection", FieldType::kBool, "false");
  b.attr("description", FieldType::kStr);

  ApiBuilder create("CreateFirewall", ApiCategory::kCreate);
  create.ref_param("vpc", "Vpc");
  create.ref_param("policy", "FirewallPolicy");
  create.e_link_parent("vpc");
  create.e_set_ref("policy", "policy");
  create.e_write_const("state", "READY", FieldType::kEnum);
  b.api(std::move(create));

  ApiBuilder del("DeleteFirewall", ApiCategory::kDestroy);
  del.c_attr_equals("delete_protection", "false", err(errc::kResourceInUse));
  b.api(std::move(del));

  b.api(ApiBuilder("DescribeFirewall", ApiCategory::kDescribe));

  ApiBuilder assoc("AssociateFirewallPolicy", ApiCategory::kModify);
  assoc.ref_param("policy", "FirewallPolicy");
  assoc.e_set_ref("policy", "policy");
  b.api(std::move(assoc));

  ApiBuilder dp("UpdateFirewallDeleteProtection", ApiCategory::kModify);
  dp.param("value", FieldType::kBool);
  dp.e_write_param("delete_protection", "value");
  b.api(std::move(dp));

  ApiBuilder desc("UpdateFirewallDescription", ApiCategory::kModify);
  desc.param("value", FieldType::kStr);
  desc.e_write_param("description", "value");
  b.api(std::move(desc));

  return std::move(b).build();
}

ServiceModel build_network_firewall() {
  ServiceModel s;
  s.name = "network-firewall";
  s.provider = "aws";
  s.title = "Network Firewall";
  s.resources.push_back(make_firewall());

  {
    ResourceBuilder b("FirewallPolicy", "network-firewall", "fwp",
                      "A reusable policy describing a firewall's rule groups and "
                      "default actions.");
    b.standard_lifecycle();
    b.modifiable_attr("description");
    b.modifiable_enum_attr("stateless_default_action", {"PASS", "DROP", "FORWARD"},
                           "DROP");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("RuleGroup", "network-firewall", "rg",
                      "A reusable set of traffic filtering rules.");
    ApiBuilder create("CreateRuleGroup", ApiCategory::kCreate);
    create.param("capacity", FieldType::kInt);
    create.enum_param("rule_type", {"STATELESS", "STATEFUL"});
    create.c_int_range("capacity", 1, 30000, err(errc::kLimitExceeded));
    create.c_enum_domain("rule_type", {"STATELESS", "STATEFUL"},
                         err(errc::kInvalidParameterValue));
    create.e_write_param("capacity", "capacity");
    create.e_write_param("rule_type", "rule_type");
    b.attr("capacity", FieldType::kInt);
    b.enum_attr("rule_type", {"STATELESS", "STATEFUL"});
    b.api(std::move(create));
    b.api(ApiBuilder("DeleteRuleGroup", ApiCategory::kDestroy));
    b.api(ApiBuilder("DescribeRuleGroup", ApiCategory::kDescribe));
    b.modifiable_attr("rules_source");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("LoggingConfiguration", "network-firewall", "fwlog",
                      "Destination configuration for firewall flow and alert logs.");
    b.contained_in("Firewall");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_enum_attr("log_type", {"FLOW", "ALERT", "TLS"}, "FLOW");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("TlsInspectionConfiguration", "network-firewall", "tlsconf",
                      "TLS traffic decryption and re-encryption settings.");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_attr("certificate_arn");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("FirewallEndpoint", "network-firewall", "fwe",
                      "A per-zone traffic inspection endpoint of a firewall.");
    b.contained_in("Firewall");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_enum_attr("zone", regions());
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("FirewallResourcePolicy", "network-firewall", "fwrp",
                      "A resource-sharing policy over firewall rule groups.");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_attr("policy_document");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("AnalysisReport", "network-firewall", "fwar",
                      "An asynchronous traffic-analysis report for a firewall.");
    b.contained_in("Firewall");
    b.standard_lifecycle(/*guard_delete=*/false);
    s.resources.push_back(std::move(b).build());
  }

  pad_service_to(s, kNetworkFirewallApiTarget, option_pool());
  return s;
}

ServiceModel build_eks() {
  ServiceModel s;
  s.name = "eks";
  s.provider = "aws";
  s.title = "Elastic Kubernetes Service";

  {
    ResourceBuilder b("Cluster", "eks", "eks",
                      "A managed Kubernetes control plane.");
    b.enum_attr("state", {"CREATING", "ACTIVE", "DELETING"}, "ACTIVE");
    b.enum_attr("version", {"1.27", "1.28", "1.29"}, "1.29");
    b.ref_attr("vpc", "Vpc");
    ApiBuilder create("CreateCluster", ApiCategory::kCreate);
    create.ref_param("vpc", "Vpc");
    create.enum_param("version", {"1.27", "1.28", "1.29"});
    create.c_enum_domain("version", {"1.27", "1.28", "1.29"},
                         err(errc::kInvalidParameterValue));
    create.e_set_ref("vpc", "vpc");
    create.e_write_param("version", "version");
    create.e_write_const("state", "ACTIVE", FieldType::kEnum);
    b.api(std::move(create));
    ApiBuilder del("DeleteCluster", ApiCategory::kDestroy);
    del.c_children_reclaimed(err(errc::kResourceInUse));
    b.api(std::move(del));
    b.api(ApiBuilder("DescribeCluster", ApiCategory::kDescribe));
    ApiBuilder upv("UpdateClusterVersion", ApiCategory::kModify);
    upv.enum_param("value", {"1.27", "1.28", "1.29"});
    upv.c_enum_domain("value", {"1.27", "1.28", "1.29"},
                      err(errc::kInvalidParameterValue));
    upv.c_attr_equals("state", "ACTIVE", err(errc::kInvalidState));
    upv.e_write_param("version", "value");
    b.api(std::move(upv));
    b.modifiable_attr("logging_config");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("Nodegroup", "eks", "ng",
                      "A managed group of worker nodes for a cluster.");
    b.contained_in("Cluster");
    b.standard_lifecycle(/*guard_delete=*/false);
    ApiBuilder scale("UpdateNodegroupScaling", ApiCategory::kModify);
    scale.param("desired_size", FieldType::kInt);
    scale.c_int_range("desired_size", 0, 450, err(errc::kLimitExceeded));
    scale.e_write_param("desired_size", "desired_size");
    b.attr("desired_size", FieldType::kInt, "2");
    b.api(std::move(scale));
    b.modifiable_attr("instance_types");
    b.modifiable_attr("ami_release");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("FargateProfile", "eks", "fp",
                      "A serverless compute profile selecting pods to run on "
                      "Fargate.");
    b.contained_in("Cluster");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_attr("pod_selectors");
    s.resources.push_back(std::move(b).build());
  }
  {
    ResourceBuilder b("Addon", "eks", "addon",
                      "A managed operational add-on installed into a cluster.");
    b.contained_in("Cluster");
    b.standard_lifecycle(/*guard_delete=*/false);
    b.modifiable_attr("addon_version");
    b.modifiable_enum_attr("resolve_conflicts", {"OVERWRITE", "NONE", "PRESERVE"},
                           "NONE");
    s.resources.push_back(std::move(b).build());
  }

  pad_service_to(s, kEksApiTarget, option_pool());
  return s;
}

}  // namespace

CloudCatalog build_aws_catalog() {
  CloudCatalog c;
  c.provider = "aws";
  c.services.push_back(build_ec2());
  c.services.push_back(build_dynamodb());
  c.services.push_back(build_network_firewall());
  c.services.push_back(build_eks());
  return c;
}

}  // namespace lce::docs
