#include "docs/model.h"

namespace lce::docs {

std::string to_string(FieldType t) {
  switch (t) {
    case FieldType::kBool: return "boolean";
    case FieldType::kInt: return "integer";
    case FieldType::kStr: return "string";
    case FieldType::kEnum: return "enum";
    case FieldType::kRef: return "reference";
    case FieldType::kList: return "list";
  }
  return "?";
}

std::string to_string(ConstraintKind k) {
  switch (k) {
    case ConstraintKind::kEnumDomain: return "enum-domain";
    case ConstraintKind::kCidrValid: return "cidr-valid";
    case ConstraintKind::kCidrPrefixRange: return "cidr-prefix-range";
    case ConstraintKind::kCidrWithinParent: return "cidr-within-parent";
    case ConstraintKind::kNoSiblingOverlap: return "no-sibling-overlap";
    case ConstraintKind::kAttrEquals: return "attr-equals";
    case ConstraintKind::kAttrNotEquals: return "attr-not-equals";
    case ConstraintKind::kRefAttrMatchesSelf: return "ref-attr-matches-self";
    case ConstraintKind::kAttrNull: return "attr-null";
    case ConstraintKind::kAttrTrueRequires: return "attr-true-requires";
    case ConstraintKind::kChildrenReclaimed: return "children-reclaimed";
    case ConstraintKind::kIntRange: return "int-range";
  }
  return "?";
}

std::string to_string(EffectKind k) {
  switch (k) {
    case EffectKind::kWriteParam: return "write-param";
    case EffectKind::kWriteConst: return "write-const";
    case EffectKind::kLinkParent: return "link-parent";
    case EffectKind::kSetRef: return "set-ref";
    case EffectKind::kClearAttr: return "clear-attr";
  }
  return "?";
}

std::string to_string(ApiCategory c) {
  switch (c) {
    case ApiCategory::kCreate: return "create";
    case ApiCategory::kDestroy: return "destroy";
    case ApiCategory::kDescribe: return "describe";
    case ApiCategory::kModify: return "modify";
    case ApiCategory::kAction: return "action";
  }
  return "?";
}

const AttrModel* ResourceModel::find_attr(std::string_view n) const {
  for (const auto& a : attrs) {
    if (a.name == n) return &a;
  }
  return nullptr;
}

const ApiModel* ResourceModel::find_api(std::string_view n) const {
  for (const auto& a : apis) {
    if (a.name == n) return &a;
  }
  return nullptr;
}

ApiModel* ResourceModel::find_api(std::string_view n) {
  for (auto& a : apis) {
    if (a.name == n) return &a;
  }
  return nullptr;
}

std::size_t ServiceModel::api_count() const {
  std::size_t n = 0;
  for (const auto& r : resources) n += r.apis.size();
  return n;
}

const ResourceModel* ServiceModel::find_resource(std::string_view n) const {
  for (const auto& r : resources) {
    if (r.name == n) return &r;
  }
  return nullptr;
}

std::size_t CloudCatalog::api_count() const {
  std::size_t n = 0;
  for (const auto& s : services) n += s.api_count();
  return n;
}

std::size_t CloudCatalog::resource_count() const {
  std::size_t n = 0;
  for (const auto& s : services) n += s.resources.size();
  return n;
}

const ServiceModel* CloudCatalog::find_service(std::string_view n) const {
  for (const auto& s : services) {
    if (s.name == n) return &s;
  }
  return nullptr;
}

const ResourceModel* CloudCatalog::find_resource(std::string_view n) const {
  for (const auto& s : services) {
    if (const ResourceModel* r = s.find_resource(n)) return r;
  }
  return nullptr;
}

ResourceModel* CloudCatalog::find_resource(std::string_view n) {
  for (auto& s : services) {
    for (auto& r : s.resources) {
      if (r.name == n) return &r;
    }
  }
  return nullptr;
}

const ResourceModel* CloudCatalog::find_api_owner(std::string_view api) const {
  for (const auto& s : services) {
    for (const auto& r : s.resources) {
      if (r.find_api(api) != nullptr) return &r;
    }
  }
  return nullptr;
}

std::vector<std::string> CloudCatalog::all_api_names() const {
  std::vector<std::string> out;
  for (const auto& s : services) {
    for (const auto& r : s.resources) {
      for (const auto& a : r.apis) out.push_back(a.name);
    }
  }
  return out;
}

}  // namespace lce::docs
