// Deterministic seeded randomness. Everything stochastic in this repository
// (doc-defect injection, the synthesizer's LLM noise model, the fuzzing
// baseline, the cloud-gym agent) draws from SplitMix64 so every bench and
// test is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace lce {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n == 0 returns 0.
  std::uint64_t uniform(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli(p).
  bool chance(double p) { return unit() < p; }

  /// Uniformly pick an element (container must be non-empty).
  template <typename C>
  const typename C::value_type& pick(const C& c) {
    return c[uniform(c.size())];
  }

  /// Fork an independent stream (for per-component determinism).
  Rng fork() { return Rng(next_u64()); }

 private:
  std::uint64_t state_;
};

}  // namespace lce
