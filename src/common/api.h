// The cloud-facing API surface. Every backend in this repository — the
// reference cloud (ground truth), the learned-spec interpreter, and both
// baselines — implements `CloudBackend`, so alignment and accuracy scoring
// are strictly black-box, mirroring the paper's methodology (§4.3).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace lce {

/// One API invocation, e.g. CreateVpc(CidrBlock="10.0.0.0/16").
struct ApiRequest {
  std::string api;          // e.g. "CreateVpc"
  Value::Map args;          // named arguments
  std::string target;       // resource id for instance-scoped APIs ("" = none)

  std::string to_text() const;
};

/// A backend's reply. Successful replies carry attributes (including the
/// created resource id under "id"); failures carry a machine error `code`
/// plus a free-form `message`. Per the paper (§4.3), alignment requires
/// exact code matches while messages may differ in wording.
struct ApiResponse {
  bool ok = false;
  std::string code;     // error code when !ok, e.g. "DependencyViolation"
  std::string message;  // human-readable; never used for alignment decisions
  Value data;           // response payload (map) when ok

  static ApiResponse success(Value data = Value(Value::Map{}));
  static ApiResponse failure(std::string code, std::string message);

  /// True when `*this` and `o` agree for alignment purposes: same ok bit;
  /// on failure, same code; on success, same data modulo resource ids
  /// (refs compare positionally, not by literal id text).
  bool aligned_with(const ApiResponse& o) const;

  std::string to_text() const;
};

/// Uniform black-box interface over any cloud implementation.
class CloudBackend {
 public:
  virtual ~CloudBackend() = default;

  /// Name for reports, e.g. "reference-cloud", "learned-emulator".
  virtual std::string name() const = 0;

  /// Execute one API call against current state.
  virtual ApiResponse invoke(const ApiRequest& req) = 0;

  /// Drop all state (fresh account).
  virtual void reset() = 0;

  /// True when this backend implements `api` at all (used for coverage
  /// accounting, Table 1). Default: optimistically true.
  virtual bool supports(const std::string& api) const;

  /// True when invoke()/reset()/snapshot() may be called concurrently
  /// without external serialization. Backends that lock internally (the
  /// sharded interpreter) return true; stack::build_stack consults this
  /// to decide whether the SerializeLayer compatibility gate is needed.
  /// Default: false — the safe assumption for plain single-threaded code.
  virtual bool thread_safe() const { return false; }

  /// Snapshot of all live resources for state comparison:
  /// map: resource-id -> {type, attrs...}. Backends that cannot enumerate
  /// return an empty map (treated as "no state claim").
  virtual Value snapshot() const { return Value(Value::Map{}); }

  /// Deep-copy this backend — behaviour AND current state — into an
  /// independent instance (the parallel alignment executor replays trace
  /// shards against per-worker clones instead of locking one backend).
  /// Backends that cannot clone return nullptr; callers fall back to
  /// serial execution.
  virtual std::unique_ptr<CloudBackend> clone() const { return nullptr; }
};

/// A trace is an ordered list of API calls; the unit of alignment testing.
///
/// Traces are backend-portable: an argument (or target) written as the
/// string "$<k>.<field>" is substituted at run time with `field` from the
/// k-th call's response on *this* backend (ids differ across backends).
/// "$<k>.id" is the common case — the id of the resource call k created.
struct Trace {
  std::string label;
  std::vector<ApiRequest> calls;

  /// Append a call and return its index (for later "$k.id" references).
  std::size_t add(std::string api, Value::Map args = {}, std::string target = "");
};

/// Run `trace` against `backend` from a reset state; returns one response
/// per call. Placeholders referencing failed calls resolve to null.
std::vector<ApiResponse> run_trace(CloudBackend& backend, const Trace& trace);

/// Substitute "$k.field" placeholders in `req` given prior responses.
ApiRequest resolve_placeholders(const ApiRequest& req,
                                const std::vector<ApiResponse>& prior);

}  // namespace lce
