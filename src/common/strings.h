// String and lightweight formatting utilities shared across the library.
// libstdc++ 12 lacks <format>, so `strf` provides stream-based formatting.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lce {

/// Concatenate all arguments via operator<< into one string.
template <typename... Args>
std::string strf(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
  }
}

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on any whitespace run, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading and trailing whitespace.
std::string trim(std::string_view s);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// "MapPublicIpOnLaunch" -> "map_public_ip_on_launch"
std::string camel_to_snake(std::string_view s);
/// "map_public_ip_on_launch" -> "MapPublicIpOnLaunch"
std::string snake_to_camel(std::string_view s);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// Parse a decimal signed integer; returns false on any non-numeric input.
bool parse_int(std::string_view s, std::int64_t& out);

/// Render `n` with `digits` fractional digits (no locale).
std::string fixed(double n, int digits);

}  // namespace lce
