// Plain-text table rendering for bench output (Table 1-style reports).
#pragma once

#include <string>
#include <vector>

namespace lce {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column-width alignment and a header separator.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a CDF series as "x y" pairs plus a coarse ASCII plot, for the
/// figure-reproducing benches (Fig. 3 / Fig. 4).
std::string render_series(const std::string& title,
                          const std::vector<std::pair<double, double>>& points);

}  // namespace lce
