// Canonical cloud error-code registry. Error *codes* are part of the
// machine contract (client tooling branches on them), so the registry keeps
// one authoritative list shared by the reference cloud, the synthesized
// specs, and the alignment scorer.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lce {

/// Well-known error codes used across the corpus. Matching the AWS naming
/// style the paper quotes ("DependencyViolation", "IncorrectInstanceState").
namespace errc {
inline constexpr std::string_view kDependencyViolation = "DependencyViolation";
inline constexpr std::string_view kIncorrectInstanceState = "IncorrectInstanceState";
inline constexpr std::string_view kInvalidParameterValue = "InvalidParameterValue";
inline constexpr std::string_view kInvalidSubnetRange = "InvalidSubnet.Range";
inline constexpr std::string_view kInvalidSubnetConflict = "InvalidSubnet.Conflict";
inline constexpr std::string_view kInvalidVpcRange = "InvalidVpc.Range";
inline constexpr std::string_view kResourceNotFound = "ResourceNotFoundException";
inline constexpr std::string_view kResourceInUse = "ResourceInUseException";
inline constexpr std::string_view kResourceAlreadyExists = "ResourceAlreadyExistsException";
inline constexpr std::string_view kLimitExceeded = "LimitExceededException";
inline constexpr std::string_view kInvalidState = "InvalidStateException";
inline constexpr std::string_view kZoneMismatch = "InvalidZone.Mismatch";
inline constexpr std::string_view kUnsupportedOperation = "UnsupportedOperation";
inline constexpr std::string_view kInvalidAction = "InvalidAction";
inline constexpr std::string_view kMissingParameter = "MissingParameter";
inline constexpr std::string_view kValidationError = "ValidationError";
inline constexpr std::string_view kInternalError = "InternalError";
inline constexpr std::string_view kRequestLimitExceeded = "RequestLimitExceeded";
}  // namespace errc

/// One registered error code with its default message template. Templates
/// may contain {placeholders} filled by `render_message`.
struct ErrorSpec {
  std::string code;
  std::string message_template;
};

/// Process-wide registry (append-only; seeded with the codes above).
/// Thread-safe: the parallel alignment executor renders error messages
/// from worker threads while the repair phase may register new codes.
class ErrorRegistry {
 public:
  static ErrorRegistry& instance();

  /// Register `code` if new; returns false when it already existed.
  bool add(std::string code, std::string message_template);

  bool known(std::string_view code) const;
  std::optional<ErrorSpec> find(std::string_view code) const;
  std::vector<std::string> all_codes() const;

  /// Fill {name} placeholders in the code's template from pairs; unknown
  /// codes yield a generic message.
  std::string render_message(
      std::string_view code,
      const std::vector<std::pair<std::string, std::string>>& fields) const;

 private:
  ErrorRegistry();
  bool known_locked(std::string_view code) const;
  std::optional<ErrorSpec> find_locked(std::string_view code) const;

  mutable std::mutex mu_;
  std::vector<ErrorSpec> specs_;
};

}  // namespace lce
