// Resource-id minting in cloud style: "vpc-00000001", "subnet-00000002".
// Counter-based so each backend produces a deterministic id sequence.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace lce {

class IdGenerator {
 public:
  /// Mint the next id for a type prefix, e.g. next("vpc") -> "vpc-00000001".
  std::string next(std::string_view prefix);

  void reset() { counters_.clear(); }

  /// Current counter for `prefix` (0 when nothing was minted yet). Paired
  /// with set_counter() so transactional callers can un-mint an id when a
  /// transition rolls back (keeping serial id sequences gap-free).
  std::uint64_t current(std::string_view prefix) const;
  void set_counter(std::string_view prefix, std::uint64_t value);

  /// Derive the conventional prefix for a resource-type name:
  /// "Vpc" -> "vpc", "NetworkInterface" -> "eni"-less generic "networkinterface".
  static std::string prefix_for(std::string_view resource_type);

  /// All counters, for canonical persistence dumps (snapshot files must
  /// reproduce the exact future id sequence on restore).
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace lce
