// Request-scoped bump allocator for Value rep blocks. While an ArenaScope
// is active on a thread, every Value representation block (string, list,
// map storage) built on that thread comes from the arena: no per-node
// malloc, and the whole request's scratch is recycled with one pointer
// reset. Ownership discipline (enforced at the write sites, documented in
// DESIGN.md): no Value carrying arena-backed blocks may outlive the scope —
// anything escaping into the store or returned from the request must be
// detach()ed to the heap first.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lce {

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t n);

  /// Rewind to empty, keeping the chunks for reuse. Every Value holding
  /// arena-backed blocks must already be destroyed or detached.
  void reset();

  std::size_t bytes_allocated() const { return bytes_; }

 private:
  struct Chunk {
    Chunk* next = nullptr;
    std::size_t cap = 0;
    std::size_t used = 0;
    // Payload follows the header.
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  Chunk* new_chunk(std::size_t min_payload);

  Chunk* head_ = nullptr;      // chunk currently bumping
  Chunk* reserve_ = nullptr;   // recycled chunks (after reset)
  std::size_t bytes_ = 0;
};

/// RAII: installs `a` as the thread's active Value arena; restores the
/// previous one (normally none) on destruction. Does NOT reset the arena —
/// the owner resets once all request-local Values are gone.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

/// RAII: temporarily suspends the thread's active arena, so Value copies
/// built inside the scope land on the heap. Used at store-write sites that
/// copy whole trees (a paused copy beats copy-then-detach).
class ArenaPause {
 public:
  ArenaPause();
  ~ArenaPause();
  ArenaPause(const ArenaPause&) = delete;
  ArenaPause& operator=(const ArenaPause&) = delete;

 private:
  Arena* prev_;
};

namespace detail {
/// Allocate a Value rep block: bump-allocated when this thread has an
/// active arena (`arena_backed` set accordingly), heap otherwise.
void* value_alloc(std::size_t n, bool& arena_backed);
/// Force a heap block regardless of any active arena (detach path).
void* value_alloc_heap(std::size_t n);
void value_free(void* p, bool arena_backed) noexcept;
Arena* current_arena() noexcept;
}  // namespace detail

/// Minimal STL allocator over the thread's active arena, pinned at
/// construction. For containers whose whole lifetime sits inside one
/// ArenaScope (the plan executor's eval stack and parameter frames):
/// buffers bump-allocate and the free is a no-op, so steady-state
/// request execution does zero container mallocs. With no arena active
/// it degrades to plain new/delete. Pinning is what keeps deallocate
/// correct — the arena-vs-heap decision cannot drift mid-lifetime even
/// if a reallocation happens under an ArenaPause.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;

  ArenaAlloc() noexcept : arena_(detail::current_arena()) {}
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& o) noexcept : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) return static_cast<T*>(arena_->allocate(n * sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const noexcept { return arena_; }
  bool operator==(const ArenaAlloc& o) const noexcept { return arena_ == o.arena_; }
  bool operator!=(const ArenaAlloc& o) const noexcept { return arena_ != o.arena_; }

 private:
  Arena* arena_;
};

}  // namespace lce
