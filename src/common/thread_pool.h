// A small fixed-size thread pool for the repository's data-parallel hot
// paths (the alignment loop's differential replay, §4.3). Deliberately
// minimal: FIFO job queue, blocking wait() barrier, no futures — callers
// that need results write into pre-sharded slots so no locking is required
// on the result side.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lce {

class ThreadPool {
 public:
  /// Start `workers` threads; workers <= 0 uses hardware_workers().
  explicit ThreadPool(int workers = 0);

  /// Drains the queue (wait()) and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueue a job. Jobs must not throw (the pool has no error channel);
  /// exceptions escaping a job terminate the process.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished running.
  void wait();

  /// The machine's concurrency, always >= 1.
  static int hardware_workers();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or stop
  std::condition_variable idle_cv_;   // signals wait(): all jobs done
  std::size_t running_ = 0;           // jobs currently executing
  bool stop_ = false;
};

}  // namespace lce
