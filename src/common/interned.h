// Process-wide intern table for map keys. `Value`'s map representation
// stores `KeyId`s instead of owned strings: interning happens once per
// distinct spelling (attribute names, response fields, resource ids in
// snapshots), after which key equality is an integer compare and lookups
// never allocate. Names are immutable and live for the process lifetime —
// see DESIGN.md "Value representation" for the growth implications.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lce {

using KeyId = std::uint32_t;
inline constexpr KeyId kNoKey = 0xffffffffu;

class KeyTable {
 public:
  /// The one process-wide table (map keys must compare across threads and
  /// subsystems, so per-instance tables would defeat id equality).
  static KeyTable& instance();

  /// Intern `name`, returning its stable id. Ids are dense and assigned in
  /// first-seen order; equal spellings always yield equal ids.
  KeyId intern(std::string_view name);

  /// Lookup without inserting; kNoKey when never interned.
  KeyId find(std::string_view name) const;

  /// The interned spelling. Lock-free; `id` must come from intern().
  std::string_view name(KeyId id) const {
    const Chunk* c = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return c->names[id & (kChunkSize - 1)];
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  KeyTable(const KeyTable&) = delete;
  KeyTable& operator=(const KeyTable&) = delete;

 private:
  KeyTable() = default;

  // Chunked stable storage: names never move, so `name()` needs no lock —
  // only an acquire load of the chunk pointer.
  static constexpr std::size_t kChunkBits = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 4096;  // 16M distinct keys

  struct Chunk {
    std::string names[kChunkSize];
  };

  std::atomic<std::size_t> size_{0};
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  mutable std::shared_mutex mu_;
  // Views point into chunk storage, which is append-only and stable.
  std::unordered_map<std::string_view, KeyId> index_;
};

/// Shorthand used throughout the Value implementation.
inline std::string_view key_name(KeyId id) { return KeyTable::instance().name(id); }
inline KeyId intern_key(std::string_view name) {
  return KeyTable::instance().intern(name);
}

}  // namespace lce
