#include "common/ids.h"

#include <cstdio>

#include "common/strings.h"

namespace lce {

std::string IdGenerator::next(std::string_view prefix) {
  auto it = counters_.find(prefix);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(prefix), 0).first;
  }
  ++it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(it->second));
  return strf(prefix, "-", buf);
}

std::uint64_t IdGenerator::current(std::string_view prefix) const {
  auto it = counters_.find(prefix);
  return it == counters_.end() ? 0 : it->second;
}

void IdGenerator::set_counter(std::string_view prefix, std::uint64_t value) {
  if (value == 0) {
    auto it = counters_.find(prefix);
    if (it != counters_.end()) counters_.erase(it);
    return;
  }
  counters_.insert_or_assign(std::string(prefix), value);
}

std::string IdGenerator::prefix_for(std::string_view resource_type) {
  return to_lower(resource_type);
}

}  // namespace lce
