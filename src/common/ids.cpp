#include "common/ids.h"

#include <cstdio>

#include "common/strings.h"

namespace lce {

std::string IdGenerator::next(std::string_view prefix) {
  auto it = counters_.find(prefix);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(prefix), 0).first;
  }
  ++it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(it->second));
  return strf(prefix, "-", buf);
}

std::string IdGenerator::prefix_for(std::string_view resource_type) {
  return to_lower(resource_type);
}

}  // namespace lce
