// IPv4 address and CIDR-block arithmetic. The reference cloud and the SM
// predicate language both validate subnet/VPC addressing with these
// primitives (AWS semantics: VPC blocks /16../28, subnets must nest inside
// their VPC and must not overlap siblings).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lce {

/// A single IPv4 address held in host byte order.
class Ipv4Addr {
 public:
  Ipv4Addr() = default;
  explicit Ipv4Addr(std::uint32_t bits) : bits_(bits) {}

  static std::optional<Ipv4Addr> parse(std::string_view text);

  std::uint32_t bits() const { return bits_; }
  std::string to_string() const;

  bool operator==(const Ipv4Addr&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

/// A CIDR block, e.g. "10.0.0.0/16". Stored normalized: host bits cleared.
class Cidr {
 public:
  Cidr() = default;
  Cidr(Ipv4Addr base, int prefix_len);

  /// Parses "a.b.c.d/len". Rejects malformed text and prefix > 32.
  /// Host bits set below the prefix are *accepted* and normalized away
  /// (matching the lenient behaviour of cloud APIs).
  static std::optional<Cidr> parse(std::string_view text);

  Ipv4Addr base() const { return base_; }
  int prefix_len() const { return prefix_len_; }
  std::uint64_t num_addresses() const { return 1ull << (32 - prefix_len_); }
  Ipv4Addr first() const { return base_; }
  Ipv4Addr last() const {
    return Ipv4Addr(base_.bits() + static_cast<std::uint32_t>(num_addresses() - 1));
  }

  bool contains(Ipv4Addr a) const;
  /// True when `inner` lies entirely within *this.
  bool contains(const Cidr& inner) const;
  bool overlaps(const Cidr& other) const;

  /// The i-th address inside the block (unchecked beyond size).
  Ipv4Addr address_at(std::uint64_t i) const {
    return Ipv4Addr(base_.bits() + static_cast<std::uint32_t>(i));
  }

  /// Carve the i-th sub-block of size `sub_prefix_len` out of this block.
  /// Returns nullopt when it does not fit.
  std::optional<Cidr> subnet_at(int sub_prefix_len, std::uint64_t i) const;

  std::string to_string() const;

  bool operator==(const Cidr&) const = default;

 private:
  Ipv4Addr base_;
  int prefix_len_ = 0;
};

}  // namespace lce
