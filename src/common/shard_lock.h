// Striped reader-writer locking for sharded state (DESIGN.md "Sharded
// resource store"). State is partitioned into N shards, each guarded by
// its own std::shared_mutex; callers take either
//
//   - shared locks on ALL shards   (read-only operations, scans),
//   - exclusive locks on a SET of shards (writes whose footprint is known
//     up front, e.g. "the target resource plus the referenced parent"), or
//   - exclusive locks on ALL shards (writes with a dynamic footprint).
//
// Deadlock freedom comes from one global rule: every multi-shard
// acquisition locks shards in ascending index order and releases in
// descending order. `shard_index_for_id` maps a resource id to its shard
// by hashing the id's family (the prefix before the trailing counter,
// e.g. "vpc" / "subnet") and mixing in the numeric suffix, so resources
// of one family spread across shards instead of piling onto one.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string_view>
#include <vector>

namespace lce {

/// Shard index for a resource id ("vpc-00000001"): hash of the family
/// prefix combined with the numeric suffix, modulo `shard_count`.
/// Ids without the family-counter shape hash as opaque strings — every
/// string maps to SOME stable shard, so callers never need a special case.
std::size_t shard_index_for_id(std::string_view id, std::size_t shard_count);

class StripedRwLock {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit StripedRwLock(std::size_t shard_count = kDefaultShards);

  // Movable (the sharded store is copy-assignable and rebuilds its lock
  // table), not copyable: a lock's identity is its mutexes.
  StripedRwLock(StripedRwLock&&) noexcept = default;
  StripedRwLock& operator=(StripedRwLock&&) noexcept = default;
  StripedRwLock(const StripedRwLock&) = delete;
  StripedRwLock& operator=(const StripedRwLock&) = delete;

  std::size_t shard_count() const { return mutexes_.size(); }

  /// RAII hold over a set of shards. Releases in reverse acquisition
  /// order on destruction; movable so guards can be returned.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept;
    Guard& operator=(Guard&& o) noexcept;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

    void release();
    bool exclusive() const { return exclusive_; }
    /// True when this guard holds `shard` (tests assert lock coverage).
    bool holds(std::size_t shard) const;
    /// Held shard indices, ascending (consumers pass these to store
    /// helpers that must know the held set, e.g. attach_guarded).
    const std::vector<std::size_t>& shards() const { return shards_; }

   private:
    friend class StripedRwLock;
    Guard(StripedRwLock* table, std::vector<std::size_t> shards, bool exclusive)
        : table_(table), shards_(std::move(shards)), exclusive_(exclusive) {}

    StripedRwLock* table_ = nullptr;
    std::vector<std::size_t> shards_;  // ascending; the acquisition order
    bool exclusive_ = false;
  };

  /// Shared-lock every shard (read-only scans see a consistent store).
  Guard lock_shared_all();
  /// Exclusively lock every shard (dynamic-footprint writes).
  Guard lock_exclusive_all();
  /// Exclusively lock just `shards` (any order / duplicates accepted;
  /// acquisition is sorted + deduplicated).
  Guard lock_exclusive(std::vector<std::size_t> shards);
  /// Shared-lock one shard — transient probes (e.g. the attach cycle walk
  /// peeking at an ancestor outside the caller's exclusive set).
  Guard lock_shared_one(std::size_t shard);

 private:
  std::vector<std::unique_ptr<std::shared_mutex>> mutexes_;
};

}  // namespace lce
