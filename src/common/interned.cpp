#include "common/interned.h"

#include <mutex>
#include <stdexcept>

namespace lce {

KeyTable& KeyTable::instance() {
  static KeyTable* table = new KeyTable();  // leaked: ids outlive all statics
  return *table;
}

KeyId KeyTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;

  std::size_t id = size_.load(std::memory_order_relaxed);
  std::size_t chunk_idx = id >> kChunkBits;
  if (chunk_idx >= kMaxChunks) throw std::length_error("KeyTable exhausted");
  Chunk* c = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (c == nullptr) {
    c = new Chunk();
    chunks_[chunk_idx].store(c, std::memory_order_release);
  }
  std::string& slot = c->names[id & (kChunkSize - 1)];
  slot.assign(name);
  index_.emplace(std::string_view(slot), static_cast<KeyId>(id));
  // Publish after the name is fully constructed: a reader that obtained
  // this id (necessarily after intern() returned) sees the string via the
  // release store on the chunk pointer / this size update.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<KeyId>(id);
}

KeyId KeyTable::find(std::string_view name) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(name);
  return it != index_.end() ? it->second : kNoKey;
}

}  // namespace lce
