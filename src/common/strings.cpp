#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace lce {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::string camel_to_snake(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (std::size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (std::isupper(c)) {
      if (i != 0) out += '_';
      out += static_cast<char>(std::tolower(c));
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string snake_to_camel(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool up = true;
  for (char c : s) {
    if (c == '_') {
      up = true;
      continue;
    }
    out += up ? static_cast<char>(std::toupper(static_cast<unsigned char>(c))) : c;
    up = false;
  }
  return out;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

bool parse_int(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = (s[0] == '-');
    i = 1;
    if (s.size() == 1) return false;
  }
  std::int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    v = v * 10 + (s[i] - '0');
  }
  out = neg ? -v : v;
  return true;
}

std::string fixed(double n, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, n);
  return buf;
}

}  // namespace lce
