#include "common/value.h"

#include <cstring>
#include <new>

#include "common/arena.h"
#include "common/strings.h"

namespace lce {

using value_detail::BigMapRep;
using value_detail::Entry;
using value_detail::ListRep;
using value_detail::map_entries;
using value_detail::list_items;
using value_detail::MapRep;
using value_detail::StrRep;

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

/// First entry whose key name is not less than `name` (entries are sorted
/// by key spelling).
std::uint32_t lower_bound_entries(const Entry* es, std::uint32_t n,
                                  std::string_view name) {
  std::uint32_t lo = 0;
  while (n > 0) {
    std::uint32_t half = n / 2;
    if (key_name(es[lo + half].key) < name) {
      lo += half + 1;
      n -= half + 1;
    } else {
      n = half;
    }
  }
  return lo;
}

/// Allocate a rep block with the same backing class as an existing block:
/// mutation must never silently move a heap-rooted tree into the arena
/// (the store's maps grow in place and outlive every request).
void* alloc_like(std::size_t n, bool old_arena, bool& arena_out) {
  if (old_arena && detail::current_arena() != nullptr) {
    return detail::value_alloc(n, arena_out);
  }
  arena_out = false;
  return detail::value_alloc_heap(n);
}

}  // namespace

std::string_view to_string(ValueKind k) {
  switch (k) {
    case ValueKind::kNull: return "null";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kStr: return "str";
    case ValueKind::kRef: return "ref";
    case ValueKind::kList: return "list";
    case ValueKind::kMap: return "map";
  }
  return "?";
}

void Value::init_str(ValueKind k, std::string_view s) {
  kind_ = k;
  if (s.size() <= kInlineStrCap) {
    std::memcpy(pay_.ch, s.data(), s.size());
    aux_ = static_cast<std::uint32_t>(s.size());
    return;
  }
  bool arena = false;
  auto* rep = static_cast<StrRep*>(
      detail::value_alloc(sizeof(StrRep) + s.size(), arena));
  rep->len = static_cast<std::uint32_t>(s.size());
  std::memcpy(rep->data(), s.data(), s.size());
  pay_.s = rep;
  flags_ = static_cast<std::uint8_t>(kHeapStr | (arena ? kArenaBlk : 0));
}

Value::Value(List l) : kind_(ValueKind::kList) {
  pay_.l = nullptr;
  if (l.empty()) return;
  bool arena = false;
  auto* rep = static_cast<ListRep*>(detail::value_alloc(
      sizeof(ListRep) + l.size() * sizeof(Value), arena));
  rep->size = 0;
  rep->cap = static_cast<std::uint32_t>(l.size());
  Value* items = list_items(rep);
  for (Value& v : l) new (&items[rep->size++]) Value(std::move(v));
  pay_.l = rep;
  if (arena) flags_ |= kArenaBlk;
}

Value::Value(Map m) : kind_(ValueKind::kMap) {
  pay_.m = nullptr;
  if (m.empty()) return;
  bool arena = false;
  if (m.size() <= kSmallMapMax) {
    std::uint32_t cap = 4;
    while (cap < m.size()) cap <<= 1;
    auto* rep = static_cast<MapRep*>(detail::value_alloc(
        sizeof(MapRep) + cap * sizeof(Entry), arena));
    rep->size = 0;
    rep->cap = cap;
    Entry* es = map_entries(rep);
    for (auto& [k, v] : m) {
      Entry* e = es + rep->size++;
      e->key = intern_key(k);
      new (&e->val) Value(std::move(v));
    }
    pay_.m = rep;
    if (arena) flags_ |= kArenaBlk;
  } else {
    auto* rep =
        static_cast<BigMapRep*>(detail::value_alloc(sizeof(BigMapRep), arena));
    new (rep) BigMapRep();
    for (auto& [k, v] : m) {
      rep->m.emplace_hint(rep->m.end(), intern_key(k), std::move(v));
    }
    pay_.bm = rep;
    flags_ = static_cast<std::uint8_t>(kBigMap | (arena ? kArenaBlk : 0));
  }
}

Value Value::ref(std::string_view id) {
  Value v;
  v.init_str(ValueKind::kRef, id);
  return v;
}

Value Value::empty_map() {
  Value v;
  v.kind_ = ValueKind::kMap;
  v.pay_.m = nullptr;
  return v;
}

Value Value::empty_list() {
  Value v;
  v.kind_ = ValueKind::kList;
  v.pay_.l = nullptr;
  return v;
}

void Value::copy_from(const Value& o) {
  kind_ = o.kind_;
  aux_ = o.aux_;
  flags_ = 0;
  switch (o.kind_) {
    case ValueKind::kNull:
    case ValueKind::kBool:
    case ValueKind::kInt:
      pay_ = o.pay_;
      return;
    case ValueKind::kStr:
    case ValueKind::kRef: {
      if ((o.flags_ & kHeapStr) == 0) {
        pay_ = o.pay_;
        return;
      }
      bool arena = false;
      auto* rep = static_cast<StrRep*>(
          detail::value_alloc(sizeof(StrRep) + o.pay_.s->len, arena));
      rep->len = o.pay_.s->len;
      std::memcpy(rep->data(), o.pay_.s->data(), rep->len);
      pay_.s = rep;
      flags_ = static_cast<std::uint8_t>(kHeapStr | (arena ? kArenaBlk : 0));
      return;
    }
    case ValueKind::kList: {
      pay_.l = nullptr;
      if (o.pay_.l == nullptr || o.pay_.l->size == 0) return;
      bool arena = false;
      auto* rep = static_cast<ListRep*>(detail::value_alloc(
          sizeof(ListRep) + o.pay_.l->size * sizeof(Value), arena));
      rep->size = o.pay_.l->size;
      rep->cap = o.pay_.l->size;
      const Value* src = list_items(o.pay_.l);
      Value* dst = list_items(rep);
      for (std::uint32_t i = 0; i < rep->size; ++i) new (&dst[i]) Value(src[i]);
      pay_.l = rep;
      if (arena) flags_ |= kArenaBlk;
      return;
    }
    case ValueKind::kMap: {
      pay_.m = nullptr;
      if (o.pay_.m == nullptr) return;
      bool arena = false;
      if ((o.flags_ & kBigMap) != 0) {
        auto* rep = static_cast<BigMapRep*>(
            detail::value_alloc(sizeof(BigMapRep), arena));
        new (rep) BigMapRep{o.pay_.bm->m};
        pay_.bm = rep;
        flags_ = static_cast<std::uint8_t>(kBigMap | (arena ? kArenaBlk : 0));
        return;
      }
      if (o.pay_.m->size == 0) return;
      std::uint32_t cap = 4;
      while (cap < o.pay_.m->size) cap <<= 1;
      auto* rep = static_cast<MapRep*>(detail::value_alloc(
          sizeof(MapRep) + cap * sizeof(Entry), arena));
      rep->size = o.pay_.m->size;
      rep->cap = cap;
      const Entry* src = map_entries(o.pay_.m);
      Entry* dst = map_entries(rep);
      for (std::uint32_t i = 0; i < rep->size; ++i) {
        dst[i].key = src[i].key;
        new (&dst[i].val) Value(src[i].val);
      }
      pay_.m = rep;
      if (arena) flags_ |= kArenaBlk;
      return;
    }
  }
}

void Value::destroy() noexcept {
  switch (kind_) {
    case ValueKind::kStr:
    case ValueKind::kRef:
      if ((flags_ & kHeapStr) != 0) {
        detail::value_free(pay_.s, (flags_ & kArenaBlk) != 0);
      }
      break;
    case ValueKind::kList:
      if (pay_.l != nullptr) {
        Value* items = list_items(pay_.l);
        for (std::uint32_t i = 0; i < pay_.l->size; ++i) items[i].~Value();
        detail::value_free(pay_.l, (flags_ & kArenaBlk) != 0);
      }
      break;
    case ValueKind::kMap:
      if (pay_.m != nullptr) {
        if ((flags_ & kBigMap) != 0) {
          pay_.bm->~BigMapRep();
          detail::value_free(pay_.bm, (flags_ & kArenaBlk) != 0);
        } else {
          Entry* es = map_entries(pay_.m);
          for (std::uint32_t i = 0; i < pay_.m->size; ++i) es[i].val.~Value();
          detail::value_free(pay_.m, (flags_ & kArenaBlk) != 0);
        }
      }
      break;
    default:
      break;
  }
  kind_ = ValueKind::kNull;
  flags_ = 0;
}

const Value* Value::get(std::string_view key) const {
  if (!is_map() || pay_.m == nullptr) return nullptr;
  if ((flags_ & kBigMap) != 0) {
    auto it = pay_.bm->m.find(key);
    return it != pay_.bm->m.end() ? &it->second : nullptr;
  }
  const Entry* es = map_entries(pay_.m);
  std::uint32_t idx = lower_bound_entries(es, pay_.m->size, key);
  if (idx < pay_.m->size && key_name(es[idx].key) == key) return &es[idx].val;
  return nullptr;
}

const Value* Value::get(KeyId key) const {
  if (!is_map() || pay_.m == nullptr) return nullptr;
  if ((flags_ & kBigMap) != 0) {
    auto it = pay_.bm->m.find(key);
    return it != pay_.bm->m.end() ? &it->second : nullptr;
  }
  const Entry* es = map_entries(pay_.m);
  for (std::uint32_t i = 0; i < pay_.m->size; ++i) {
    if (es[i].key == key) return &es[i].val;
  }
  return nullptr;
}

Value Value::get_or(std::string_view key, Value def) const {
  const Value* v = get(key);
  return v != nullptr ? *v : std::move(def);
}

void Value::become_empty_map() {
  destroy();
  kind_ = ValueKind::kMap;
  pay_.m = nullptr;
}

void Value::spill_to_big() {
  MapRep* old = pay_.m;
  bool old_arena = (flags_ & kArenaBlk) != 0;
  bool arena = false;
  auto* rep = static_cast<BigMapRep*>(
      alloc_like(sizeof(BigMapRep), old_arena, arena));
  new (rep) BigMapRep();
  Entry* es = map_entries(old);
  for (std::uint32_t i = 0; i < old->size; ++i) {
    rep->m.emplace_hint(rep->m.end(), es[i].key, std::move(es[i].val));
    es[i].val.~Value();
  }
  detail::value_free(old, old_arena);
  pay_.bm = rep;
  flags_ = static_cast<std::uint8_t>(kBigMap | (arena ? kArenaBlk : 0));
}

void Value::insert_new(KeyId key, std::string_view name, Value&& v) {
  MapRep* rep = pay_.m;
  if (rep == nullptr || rep->size == rep->cap) {
    if (rep != nullptr && rep->size >= kSmallMapMax) {
      spill_to_big();
      pay_.bm->m.emplace(key, std::move(v));
      return;
    }
    bool old_arena = (flags_ & kArenaBlk) != 0;
    std::uint32_t ncap = rep != nullptr ? rep->cap * 2 : 4;
    bool arena = false;
    auto* nrep = static_cast<MapRep*>(
        rep != nullptr
            ? alloc_like(sizeof(MapRep) + ncap * sizeof(Entry), old_arena, arena)
            : detail::value_alloc(sizeof(MapRep) + ncap * sizeof(Entry), arena));
    nrep->cap = ncap;
    nrep->size = rep != nullptr ? rep->size : 0;
    if (rep != nullptr) {
      Entry* src = map_entries(rep);
      Entry* dst = map_entries(nrep);
      for (std::uint32_t i = 0; i < rep->size; ++i) {
        dst[i].key = src[i].key;
        new (&dst[i].val) Value(std::move(src[i].val));
      }
      detail::value_free(rep, old_arena);
    }
    pay_.m = nrep;
    flags_ = static_cast<std::uint8_t>((flags_ & ~kArenaBlk) |
                                       (arena ? kArenaBlk : 0));
    rep = nrep;
  }
  Entry* es = map_entries(rep);
  std::uint32_t idx = lower_bound_entries(es, rep->size, name);
  if (idx < rep->size) {
    // Shift [idx, size) up one slot; the top slot is raw storage.
    std::uint32_t last = rep->size;
    es[last].key = es[last - 1].key;
    new (&es[last].val) Value(std::move(es[last - 1].val));
    for (std::uint32_t j = last - 1; j > idx; --j) {
      es[j].key = es[j - 1].key;
      es[j].val = std::move(es[j - 1].val);
    }
    es[idx].key = key;
    es[idx].val = std::move(v);
  } else {
    es[idx].key = key;
    new (&es[idx].val) Value(std::move(v));
  }
  rep->size++;
}

void Value::set(KeyId key, Value v) {
  if (!is_map()) become_empty_map();
  if ((flags_ & kBigMap) != 0) {
    pay_.bm->m.insert_or_assign(key, std::move(v));
    return;
  }
  std::string_view name = key_name(key);
  MapRep* rep = pay_.m;
  if (rep != nullptr && rep->size > 0) {
    Entry* es = map_entries(rep);
    // Fast path: ascending builds append at the end.
    if (key_name(es[rep->size - 1].key) < name) {
      insert_new(key, name, std::move(v));
      return;
    }
    std::uint32_t idx = lower_bound_entries(es, rep->size, name);
    if (idx < rep->size && es[idx].key == key) {
      es[idx].val = std::move(v);
      return;
    }
  }
  insert_new(key, name, std::move(v));
}

void Value::set(std::string_view key, Value v) {
  set(intern_key(key), std::move(v));
}

void Value::grow_list() {
  ListRep* rep = pay_.l;
  bool old_arena = (flags_ & kArenaBlk) != 0;
  std::uint32_t ncap = rep != nullptr ? rep->cap * 2 : 4;
  bool arena = false;
  auto* nrep = static_cast<ListRep*>(
      rep != nullptr
          ? alloc_like(sizeof(ListRep) + ncap * sizeof(Value), old_arena, arena)
          : detail::value_alloc(sizeof(ListRep) + ncap * sizeof(Value), arena));
  nrep->cap = ncap;
  nrep->size = rep != nullptr ? rep->size : 0;
  if (rep != nullptr) {
    Value* src = list_items(rep);
    Value* dst = list_items(nrep);
    for (std::uint32_t i = 0; i < rep->size; ++i) new (&dst[i]) Value(std::move(src[i]));
    detail::value_free(rep, old_arena);
  }
  pay_.l = nrep;
  flags_ = static_cast<std::uint8_t>((flags_ & ~kArenaBlk) | (arena ? kArenaBlk : 0));
}

void Value::append(Value v) {
  if (!is_list()) {
    destroy();
    kind_ = ValueKind::kList;
    pay_.l = nullptr;
  }
  if (pay_.l == nullptr || pay_.l->size == pay_.l->cap) grow_list();
  new (&list_items(pay_.l)[pay_.l->size]) Value(std::move(v));
  pay_.l->size++;
}

void Value::detach() {
  switch (kind_) {
    case ValueKind::kStr:
    case ValueKind::kRef:
      if ((flags_ & (kHeapStr | kArenaBlk)) == (kHeapStr | kArenaBlk)) {
        auto* rep = static_cast<StrRep*>(
            detail::value_alloc_heap(sizeof(StrRep) + pay_.s->len));
        rep->len = pay_.s->len;
        std::memcpy(rep->data(), pay_.s->data(), rep->len);
        pay_.s = rep;
        flags_ &= static_cast<std::uint8_t>(~kArenaBlk);
      }
      return;
    case ValueKind::kList: {
      if (pay_.l == nullptr) return;
      if ((flags_ & kArenaBlk) != 0) {
        auto* rep = static_cast<ListRep*>(detail::value_alloc_heap(
            sizeof(ListRep) + pay_.l->cap * sizeof(Value)));
        rep->size = pay_.l->size;
        rep->cap = pay_.l->cap;
        Value* src = list_items(pay_.l);
        Value* dst = list_items(rep);
        for (std::uint32_t i = 0; i < rep->size; ++i) {
          new (&dst[i]) Value(std::move(src[i]));
        }
        pay_.l = rep;  // old block reclaimed by the arena
        flags_ &= static_cast<std::uint8_t>(~kArenaBlk);
      }
      Value* items = list_items(pay_.l);
      for (std::uint32_t i = 0; i < pay_.l->size; ++i) items[i].detach();
      return;
    }
    case ValueKind::kMap: {
      if (pay_.m == nullptr) return;
      if ((flags_ & kBigMap) != 0) {
        if ((flags_ & kArenaBlk) != 0) {
          auto* rep =
              static_cast<BigMapRep*>(detail::value_alloc_heap(sizeof(BigMapRep)));
          new (rep) BigMapRep{std::move(pay_.bm->m)};
          pay_.bm->~BigMapRep();  // block itself reclaimed by the arena
          pay_.bm = rep;
          flags_ &= static_cast<std::uint8_t>(~kArenaBlk);
        }
        for (auto& [k, v] : pay_.bm->m) {
          (void)k;
          v.detach();
        }
        return;
      }
      if ((flags_ & kArenaBlk) != 0) {
        auto* rep = static_cast<MapRep*>(detail::value_alloc_heap(
            sizeof(MapRep) + pay_.m->cap * sizeof(Entry)));
        rep->size = pay_.m->size;
        rep->cap = pay_.m->cap;
        Entry* src = map_entries(pay_.m);
        Entry* dst = map_entries(rep);
        for (std::uint32_t i = 0; i < rep->size; ++i) {
          dst[i].key = src[i].key;
          new (&dst[i].val) Value(std::move(src[i].val));
        }
        pay_.m = rep;  // old block reclaimed by the arena
        flags_ &= static_cast<std::uint8_t>(~kArenaBlk);
      }
      Entry* es = map_entries(pay_.m);
      for (std::uint32_t i = 0; i < pay_.m->size; ++i) es[i].val.detach();
      return;
    }
    default:
      return;
  }
}

bool Value::truthy() const {
  switch (kind_) {
    case ValueKind::kNull: return false;
    case ValueKind::kBool: return pay_.b;
    case ValueKind::kInt: return pay_.i != 0;
    case ValueKind::kStr:
    case ValueKind::kRef: return !as_str().empty();
    case ValueKind::kList: return pay_.l != nullptr && pay_.l->size > 0;
    case ValueKind::kMap: return as_map().size() > 0;
  }
  return false;
}

bool Value::operator==(const Value& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case ValueKind::kNull: return true;
    case ValueKind::kBool: return pay_.b == o.pay_.b;
    case ValueKind::kInt: return pay_.i == o.pay_.i;
    case ValueKind::kStr:
    case ValueKind::kRef: return as_str() == o.as_str();
    case ValueKind::kList: {
      ListView a = as_list(), b = o.as_list();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) return false;
      }
      return true;
    }
    case ValueKind::kMap: {
      MapView a = as_map(), b = o.as_map();
      if (a.size() != b.size()) return false;
      auto ia = a.begin(), ib = b.begin(), ea = a.end();
      for (; ia != ea; ++ia, ++ib) {
        auto pa = *ia;
        auto pb = *ib;
        if (pa.first != pb.first || !(pa.second == pb.second)) return false;
      }
      return true;
    }
  }
  return false;
}

bool Value::operator<(const Value& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  switch (kind_) {
    case ValueKind::kNull: return false;
    case ValueKind::kBool: return static_cast<int>(pay_.b) < static_cast<int>(o.pay_.b);
    case ValueKind::kInt: return pay_.i < o.pay_.i;
    case ValueKind::kStr:
    case ValueKind::kRef: return as_str() < o.as_str();
    case ValueKind::kList: {
      // std::vector's lexicographic order, reproduced over the views.
      ListView a = as_list(), b = o.as_list();
      std::size_t n = a.size() < b.size() ? a.size() : b.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (a[i] < b[i]) return true;
        if (b[i] < a[i]) return false;
      }
      return a.size() < b.size();
    }
    case ValueKind::kMap: {
      // std::map's lexicographic order over (key, value) pairs.
      MapView a = as_map(), b = o.as_map();
      auto ia = a.begin(), ea = a.end(), ib = b.begin(), eb = b.end();
      for (; ia != ea && ib != eb; ++ia, ++ib) {
        auto pa = *ia;
        auto pb = *ib;
        if (pa.first < pb.first) return true;
        if (pb.first < pa.first) return false;
        if (pa.second < pb.second) return true;
        if (pb.second < pa.second) return false;
      }
      return ib != eb;
    }
  }
  return false;
}

std::string Value::to_text() const {
  std::string out;
  append_text(out);
  return out;
}

void Value::append_text(std::string& out) const {
  switch (kind_) {
    case ValueKind::kNull: out += "null"; return;
    case ValueKind::kBool: out += pay_.b ? "true" : "false"; return;
    case ValueKind::kInt: out += std::to_string(pay_.i); return;
    case ValueKind::kStr: append_escaped(out, as_str()); return;
    case ValueKind::kRef:
      out += '@';
      out += as_str();
      return;
    case ValueKind::kList: {
      out += '[';
      ListView items = as_list();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ',';
        items[i].append_text(out);
      }
      out += ']';
      return;
    }
    case ValueKind::kMap: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : as_map()) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        v.append_text(out);
      }
      out += '}';
      return;
    }
  }
}

std::vector<std::string> Value::diff(const Value& a, const Value& b, const std::string& path) {
  std::vector<std::string> out;
  if (a.kind() == ValueKind::kMap && b.kind() == ValueKind::kMap) {
    for (const auto& [k, va] : a.as_map()) {
      auto vb = b.get(k);
      if (!vb) {
        out.push_back(strf(path, ".", k, ": present vs missing"));
      } else {
        auto sub = diff(va, *vb, strf(path, ".", k));
        out.insert(out.end(), sub.begin(), sub.end());
      }
    }
    for (const auto& [k, vb] : b.as_map()) {
      (void)vb;
      if (!a.has(k)) out.push_back(strf(path, ".", k, ": missing vs present"));
    }
    return out;
  }
  if (a.kind() == ValueKind::kList && b.kind() == ValueKind::kList) {
    ListView la = a.as_list();
    ListView lb = b.as_list();
    if (la.size() != lb.size()) {
      out.push_back(strf(path, ": list size ", la.size(), " vs ", lb.size()));
      return out;
    }
    for (std::size_t i = 0; i < la.size(); ++i) {
      auto sub = diff(la[i], lb[i], strf(path, "[", i, "]"));
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  if (!(a == b)) {
    out.push_back(strf(path.empty() ? "." : path, ": ", a.to_text(), " vs ", b.to_text()));
  }
  return out;
}

}  // namespace lce
