#include "common/value.h"

#include "common/strings.h"

namespace lce {

namespace {
const Value::List kEmptyList;
const Value::Map kEmptyMap;
const std::string kEmptyStr;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}
}  // namespace

std::string_view to_string(ValueKind k) {
  switch (k) {
    case ValueKind::kNull: return "null";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kStr: return "str";
    case ValueKind::kRef: return "ref";
    case ValueKind::kList: return "list";
    case ValueKind::kMap: return "map";
  }
  return "?";
}

Value Value::ref(std::string id) {
  Value v(std::move(id));
  v.kind_ = ValueKind::kRef;
  return v;
}

const std::string& Value::as_str() const {
  return (is_str() || is_ref()) ? str_ : kEmptyStr;
}

const Value::List& Value::as_list() const { return is_list() ? list_ : kEmptyList; }
const Value::Map& Value::as_map() const { return is_map() ? map_ : kEmptyMap; }

Value::List& Value::mutable_list() {
  if (!is_list()) {
    kind_ = ValueKind::kList;
    list_.clear();
  }
  return list_;
}

Value::Map& Value::mutable_map() {
  if (!is_map()) {
    kind_ = ValueKind::kMap;
    map_.clear();
  }
  return map_;
}

const Value* Value::get(std::string_view key) const {
  if (!is_map()) return nullptr;
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  return &it->second;
}

Value Value::get_or(std::string_view key, Value def) const {
  const Value* v = get(key);
  return v != nullptr ? *v : std::move(def);
}

void Value::set(std::string key, Value v) { mutable_map()[std::move(key)] = std::move(v); }

bool Value::truthy() const {
  switch (kind_) {
    case ValueKind::kNull: return false;
    case ValueKind::kBool: return bool_;
    case ValueKind::kInt: return int_ != 0;
    case ValueKind::kStr:
    case ValueKind::kRef: return !str_.empty();
    case ValueKind::kList: return !list_.empty();
    case ValueKind::kMap: return !map_.empty();
  }
  return false;
}

bool Value::operator==(const Value& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case ValueKind::kNull: return true;
    case ValueKind::kBool: return bool_ == o.bool_;
    case ValueKind::kInt: return int_ == o.int_;
    case ValueKind::kStr:
    case ValueKind::kRef: return str_ == o.str_;
    case ValueKind::kList: return list_ == o.list_;
    case ValueKind::kMap: return map_ == o.map_;
  }
  return false;
}

bool Value::operator<(const Value& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  switch (kind_) {
    case ValueKind::kNull: return false;
    case ValueKind::kBool: return bool_ < o.bool_;
    case ValueKind::kInt: return int_ < o.int_;
    case ValueKind::kStr:
    case ValueKind::kRef: return str_ < o.str_;
    case ValueKind::kList: return list_ < o.list_;
    case ValueKind::kMap: return map_ < o.map_;
  }
  return false;
}

std::string Value::to_text() const {
  std::string out;
  append_text(out);
  return out;
}

void Value::append_text(std::string& out) const {
  switch (kind_) {
    case ValueKind::kNull: out += "null"; return;
    case ValueKind::kBool: out += bool_ ? "true" : "false"; return;
    case ValueKind::kInt: out += std::to_string(int_); return;
    case ValueKind::kStr: append_escaped(out, str_); return;
    case ValueKind::kRef:
      out += '@';
      out += str_;
      return;
    case ValueKind::kList: {
      out += '[';
      for (std::size_t i = 0; i < list_.size(); ++i) {
        if (i != 0) out += ',';
        list_[i].append_text(out);
      }
      out += ']';
      return;
    }
    case ValueKind::kMap: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : map_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        v.append_text(out);
      }
      out += '}';
      return;
    }
  }
}

std::vector<std::string> Value::diff(const Value& a, const Value& b, const std::string& path) {
  std::vector<std::string> out;
  if (a.kind() == ValueKind::kMap && b.kind() == ValueKind::kMap) {
    for (const auto& [k, va] : a.as_map()) {
      auto vb = b.get(k);
      if (!vb) {
        out.push_back(strf(path, ".", k, ": present vs missing"));
      } else {
        auto sub = diff(va, *vb, strf(path, ".", k));
        out.insert(out.end(), sub.begin(), sub.end());
      }
    }
    for (const auto& [k, vb] : b.as_map()) {
      (void)vb;
      if (!a.has(k)) out.push_back(strf(path, ".", k, ": missing vs present"));
    }
    return out;
  }
  if (a.kind() == ValueKind::kList && b.kind() == ValueKind::kList) {
    const auto& la = a.as_list();
    const auto& lb = b.as_list();
    if (la.size() != lb.size()) {
      out.push_back(strf(path, ": list size ", la.size(), " vs ", lb.size()));
      return out;
    }
    for (std::size_t i = 0; i < la.size(); ++i) {
      auto sub = diff(la[i], lb[i], strf(path, "[", i, "]"));
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  if (!(a == b)) {
    out.push_back(strf(path.empty() ? "." : path, ": ", a.to_text(), " vs ", b.to_text()));
  }
  return out;
}

}  // namespace lce
