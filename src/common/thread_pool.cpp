#include "common/thread_pool.h"

#include <algorithm>

namespace lce {

int ThreadPool::hardware_workers() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int workers) {
  int n = workers > 0 ? workers : hardware_workers();
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace lce
