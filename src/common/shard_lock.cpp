#include "common/shard_lock.h"

#include <algorithm>

namespace lce {

namespace {

/// FNV-1a, the same cheap stable hash everywhere (std::hash<string> may
/// differ across libc++ / libstdc++; shard placement must not).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::size_t shard_index_for_id(std::string_view id, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  // "vpc-00000001" -> family "vpc", suffix 1. Family hash keeps distinct
  // types apart; adding the suffix spreads one family's instances across
  // shards instead of serializing a type behind a single stripe.
  std::size_t dash = id.rfind('-');
  std::uint64_t suffix = 0;
  bool numeric = dash != std::string_view::npos && dash + 1 < id.size();
  if (numeric) {
    for (std::size_t i = dash + 1; i < id.size(); ++i) {
      char c = id[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      suffix = suffix * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }
  std::uint64_t h = numeric ? fnv1a(id.substr(0, dash)) + suffix : fnv1a(id);
  return static_cast<std::size_t>(h % shard_count);
}

StripedRwLock::StripedRwLock(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  mutexes_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    mutexes_.push_back(std::make_unique<std::shared_mutex>());
  }
}

StripedRwLock::Guard::Guard(Guard&& o) noexcept
    : table_(o.table_), shards_(std::move(o.shards_)), exclusive_(o.exclusive_) {
  o.table_ = nullptr;
  o.shards_.clear();
}

StripedRwLock::Guard& StripedRwLock::Guard::operator=(Guard&& o) noexcept {
  if (this != &o) {
    release();
    table_ = o.table_;
    shards_ = std::move(o.shards_);
    exclusive_ = o.exclusive_;
    o.table_ = nullptr;
    o.shards_.clear();
  }
  return *this;
}

void StripedRwLock::Guard::release() {
  if (table_ == nullptr) return;
  // Reverse acquisition order: the mirror image of the ascending-order
  // rule that makes multi-shard holds deadlock-free.
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    if (exclusive_) {
      table_->mutexes_[*it]->unlock();
    } else {
      table_->mutexes_[*it]->unlock_shared();
    }
  }
  table_ = nullptr;
  shards_.clear();
}

bool StripedRwLock::Guard::holds(std::size_t shard) const {
  return table_ != nullptr &&
         std::find(shards_.begin(), shards_.end(), shard) != shards_.end();
}

StripedRwLock::Guard StripedRwLock::lock_shared_all() {
  std::vector<std::size_t> all(shard_count());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
    mutexes_[i]->lock_shared();
  }
  return Guard(this, std::move(all), /*exclusive=*/false);
}

StripedRwLock::Guard StripedRwLock::lock_exclusive_all() {
  std::vector<std::size_t> all(shard_count());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
    mutexes_[i]->lock();
  }
  return Guard(this, std::move(all), /*exclusive=*/true);
}

StripedRwLock::Guard StripedRwLock::lock_exclusive(std::vector<std::size_t> shards) {
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  for (std::size_t s : shards) mutexes_[s]->lock();
  return Guard(this, std::move(shards), /*exclusive=*/true);
}

StripedRwLock::Guard StripedRwLock::lock_shared_one(std::size_t shard) {
  mutexes_[shard]->lock_shared();
  return Guard(this, {shard}, /*exclusive=*/false);
}

}  // namespace lce
