#include "common/arena.h"

#include <cstdlib>
#include <new>

namespace lce {

namespace {
thread_local Arena* t_arena = nullptr;
}  // namespace

Arena::~Arena() {
  reset();
  for (Chunk* c = reserve_; c != nullptr;) {
    Chunk* next = c->next;
    std::free(c);
    c = next;
  }
}

Arena::Chunk* Arena::new_chunk(std::size_t min_payload) {
  // Reuse a recycled chunk when it fits; oversized requests get their own.
  if (reserve_ != nullptr && reserve_->cap >= min_payload) {
    Chunk* c = reserve_;
    reserve_ = c->next;
    c->used = 0;
    return c;
  }
  std::size_t payload = min_payload > kChunkBytes ? min_payload : kChunkBytes;
  auto* c = static_cast<Chunk*>(std::malloc(sizeof(Chunk) + payload));
  if (c == nullptr) throw std::bad_alloc();
  c->cap = payload;
  c->used = 0;
  return c;
}

void* Arena::allocate(std::size_t n) {
  n = (n + 15) & ~std::size_t{15};
  if (head_ == nullptr || head_->cap - head_->used < n) {
    Chunk* c = new_chunk(n);
    c->next = head_;
    head_ = c;
  }
  void* p = head_->data() + head_->used;
  head_->used += n;
  bytes_ += n;
  return p;
}

void Arena::reset() {
  while (head_ != nullptr) {
    Chunk* next = head_->next;
    head_->next = reserve_;
    reserve_ = head_;
    head_ = next;
  }
  bytes_ = 0;
}

ArenaScope::ArenaScope(Arena& a) : prev_(t_arena) { t_arena = &a; }
ArenaScope::~ArenaScope() { t_arena = prev_; }

ArenaPause::ArenaPause() : prev_(t_arena) { t_arena = nullptr; }
ArenaPause::~ArenaPause() { t_arena = prev_; }

namespace detail {

Arena* current_arena() noexcept { return t_arena; }

void* value_alloc(std::size_t n, bool& arena_backed) {
  if (t_arena != nullptr) {
    arena_backed = true;
    return t_arena->allocate(n);
  }
  arena_backed = false;
  return ::operator new(n);
}

void* value_alloc_heap(std::size_t n) { return ::operator new(n); }

void value_free(void* p, bool arena_backed) noexcept {
  if (!arena_backed) ::operator delete(p);
  // Arena blocks are reclaimed wholesale by Arena::reset().
}

}  // namespace detail

}  // namespace lce
