#include "common/table.h"

#include <algorithm>

#include "common/strings.h"

namespace lce {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = emit_row(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) sep += std::string(widths[c] + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string render_series(const std::string& title,
                          const std::vector<std::pair<double, double>>& points) {
  std::string out = title + "\n";
  for (const auto& [x, y] : points) {
    int bar = static_cast<int>(y * 40.0 + 0.5);
    bar = std::clamp(bar, 0, 40);
    out += strf("  x=", fixed(x, 1), "  y=", fixed(y, 3), "  ",
                std::string(static_cast<std::size_t>(bar), '#'), "\n");
  }
  return out;
}

}  // namespace lce
