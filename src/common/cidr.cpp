#include "common/cidr.h"

#include "common/strings.h"

namespace lce {

namespace {
std::uint32_t mask_for(int prefix_len) {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 32) return 0xFFFFFFFFu;
  return ~((1u << (32 - prefix_len)) - 1u);
}
}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (const auto& p : parts) {
    std::int64_t octet = 0;
    if (p.empty() || p.size() > 3 || !parse_int(p, octet)) return std::nullopt;
    if (octet < 0 || octet > 255) return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(bits);
}

std::string Ipv4Addr::to_string() const {
  return strf((bits_ >> 24) & 0xFF, ".", (bits_ >> 16) & 0xFF, ".", (bits_ >> 8) & 0xFF, ".",
              bits_ & 0xFF);
}

Cidr::Cidr(Ipv4Addr base, int prefix_len)
    : base_(Ipv4Addr(base.bits() & mask_for(prefix_len))), prefix_len_(prefix_len) {}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::int64_t len = 0;
  if (!parse_int(text.substr(slash + 1), len)) return std::nullopt;
  if (len < 0 || len > 32) return std::nullopt;
  return Cidr(*addr, static_cast<int>(len));
}

bool Cidr::contains(Ipv4Addr a) const {
  return (a.bits() & mask_for(prefix_len_)) == base_.bits();
}

bool Cidr::contains(const Cidr& inner) const {
  return inner.prefix_len_ >= prefix_len_ && contains(inner.base_);
}

bool Cidr::overlaps(const Cidr& other) const {
  return contains(other.base_) || other.contains(base_);
}

std::optional<Cidr> Cidr::subnet_at(int sub_prefix_len, std::uint64_t i) const {
  if (sub_prefix_len < prefix_len_ || sub_prefix_len > 32) return std::nullopt;
  std::uint64_t slots = 1ull << (sub_prefix_len - prefix_len_);
  if (i >= slots) return std::nullopt;
  std::uint64_t size = 1ull << (32 - sub_prefix_len);
  return Cidr(Ipv4Addr(base_.bits() + static_cast<std::uint32_t>(i * size)), sub_prefix_len);
}

std::string Cidr::to_string() const { return strf(base_.to_string(), "/", prefix_len_); }

}  // namespace lce
