#include "common/errors.h"

#include <algorithm>

#include "common/strings.h"

namespace lce {

ErrorRegistry& ErrorRegistry::instance() {
  static ErrorRegistry reg;
  return reg;
}

ErrorRegistry::ErrorRegistry() {
  auto seed = [this](std::string_view code, std::string msg) {
    specs_.push_back(ErrorSpec{std::string(code), std::move(msg)});
  };
  seed(errc::kDependencyViolation,
       "The {resource} '{id}' has dependencies and cannot be deleted.");
  seed(errc::kIncorrectInstanceState,
       "The instance '{id}' is not in a state from which it can perform {api}.");
  seed(errc::kInvalidParameterValue, "Value ({value}) for parameter {param} is invalid.");
  seed(errc::kInvalidSubnetRange, "The CIDR '{value}' is invalid (block size must be /16 to /28).");
  seed(errc::kInvalidSubnetConflict, "The CIDR '{value}' conflicts with another subnet.");
  seed(errc::kInvalidVpcRange, "The CIDR '{value}' is invalid (block size must be /16 to /28).");
  seed(errc::kResourceNotFound, "The {resource} '{id}' does not exist.");
  seed(errc::kResourceInUse, "The {resource} '{id}' is currently in use.");
  seed(errc::kResourceAlreadyExists, "The {resource} '{id}' already exists.");
  seed(errc::kLimitExceeded, "You have reached the limit on {resource} resources.");
  seed(errc::kInvalidState, "The {resource} '{id}' is in state '{state}'; operation not allowed.");
  seed(errc::kZoneMismatch, "Resources must be located in the same zone (got '{value}').");
  seed(errc::kUnsupportedOperation, "The requested operation {api} is not supported.");
  seed(errc::kInvalidAction, "The action {api} is not valid for this endpoint.");
  seed(errc::kMissingParameter, "The request must contain the parameter {param}.");
  seed(errc::kValidationError, "Validation failed for {param}.");
  seed(errc::kInternalError, "An internal error has occurred.");
  seed(errc::kRequestLimitExceeded, "Request limit exceeded for {api}; retry later.");
}

bool ErrorRegistry::add(std::string code, std::string message_template) {
  std::lock_guard<std::mutex> lock(mu_);
  if (known_locked(code)) return false;
  specs_.push_back(ErrorSpec{std::move(code), std::move(message_template)});
  return true;
}

bool ErrorRegistry::known_locked(std::string_view code) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [&](const ErrorSpec& s) { return s.code == code; });
}

bool ErrorRegistry::known(std::string_view code) const {
  std::lock_guard<std::mutex> lock(mu_);
  return known_locked(code);
}

std::optional<ErrorSpec> ErrorRegistry::find_locked(std::string_view code) const {
  for (const auto& s : specs_) {
    if (s.code == code) return s;
  }
  return std::nullopt;
}

std::optional<ErrorSpec> ErrorRegistry::find(std::string_view code) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_locked(code);
}

std::vector<std::string> ErrorRegistry::all_codes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.code);
  return out;
}

std::string ErrorRegistry::render_message(
    std::string_view code,
    const std::vector<std::pair<std::string, std::string>>& fields) const {
  std::optional<ErrorSpec> spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = find_locked(code);
  }
  std::string msg = spec ? spec->message_template
                         : strf("Request failed with code ", code, ".");
  for (const auto& [k, v] : fields) {
    msg = replace_all(std::move(msg), "{" + k + "}", v);
  }
  return msg;
}

}  // namespace lce
