#include "common/api.h"

#include "common/strings.h"

namespace lce {

std::string ApiRequest::to_text() const {
  std::string out = api + "(";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) out += ", ";
    first = false;
    out += k + "=" + v.to_text();
  }
  out += ")";
  if (!target.empty()) out += " @" + target;
  return out;
}

ApiResponse ApiResponse::success(Value data) {
  ApiResponse r;
  r.ok = true;
  r.data = std::move(data);
  return r;
}

ApiResponse ApiResponse::failure(std::string code, std::string message) {
  ApiResponse r;
  r.ok = false;
  r.code = std::move(code);
  r.message = std::move(message);
  return r;
}

namespace {
// Compare payloads treating any two ref values as equal: backends mint
// different id text for the same logical resource.
bool data_equivalent(const Value& a, const Value& b) {
  if (a.is_ref() && b.is_ref()) return true;
  if (a.kind() != b.kind()) return false;
  if (a.is_map()) {
    const auto& ma = a.as_map();
    const auto& mb = b.as_map();
    if (ma.size() != mb.size()) return false;
    auto ib = mb.begin();
    for (auto ia = ma.begin(); ia != ma.end(); ++ia, ++ib) {
      if (ia->first != ib->first) return false;
      if (!data_equivalent(ia->second, ib->second)) return false;
    }
    return true;
  }
  if (a.is_list()) {
    const auto& la = a.as_list();
    const auto& lb = b.as_list();
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i) {
      if (!data_equivalent(la[i], lb[i])) return false;
    }
    return true;
  }
  return a == b;
}
}  // namespace

bool ApiResponse::aligned_with(const ApiResponse& o) const {
  if (ok != o.ok) return false;
  if (!ok) return code == o.code;
  return data_equivalent(data, o.data);
}

std::string ApiResponse::to_text() const {
  if (ok) return strf("OK ", data.to_text());
  return strf("ERR ", code, ": ", message);
}

bool CloudBackend::supports(const std::string& api) const {
  (void)api;
  return true;
}

std::size_t Trace::add(std::string api, Value::Map args, std::string target) {
  calls.push_back(ApiRequest{std::move(api), std::move(args), std::move(target)});
  return calls.size() - 1;
}

namespace {
// Resolve one "$k.field" placeholder; returns nullopt when `s` is not a
// placeholder at all (so ordinary strings pass through untouched).
std::optional<Value> resolve_one(std::string_view s,
                                 const std::vector<ApiResponse>& prior) {
  if (s.size() < 4 || s[0] != '$') return std::nullopt;
  std::size_t dot = s.find('.');
  if (dot == std::string_view::npos) return std::nullopt;
  std::int64_t k = 0;
  if (!parse_int(s.substr(1, dot - 1), k)) return std::nullopt;
  if (k < 0 || static_cast<std::size_t>(k) >= prior.size()) return Value();
  const ApiResponse& resp = prior[static_cast<std::size_t>(k)];
  if (!resp.ok) return Value();
  return resp.data.get_or(s.substr(dot + 1), Value());
}

Value resolve_value(const Value& v, const std::vector<ApiResponse>& prior) {
  if (v.is_str() || v.is_ref()) {
    if (auto r = resolve_one(v.as_str(), prior)) return *r;
    return v;
  }
  if (v.is_list()) {
    Value::List out;
    out.reserve(v.as_list().size());
    for (const auto& e : v.as_list()) out.push_back(resolve_value(e, prior));
    return Value(std::move(out));
  }
  if (v.is_map()) {
    Value::Map out;
    for (const auto& [k, e] : v.as_map()) out.emplace(k, resolve_value(e, prior));
    return Value(std::move(out));
  }
  return v;
}
}  // namespace

ApiRequest resolve_placeholders(const ApiRequest& req,
                                const std::vector<ApiResponse>& prior) {
  ApiRequest out = req;
  for (auto& [k, v] : out.args) v = resolve_value(v, prior);
  if (auto r = resolve_one(out.target, prior)) {
    out.target = (r->is_ref() || r->is_str()) ? std::string(r->as_str()) : "";
  }
  return out;
}

std::vector<ApiResponse> run_trace(CloudBackend& backend, const Trace& trace) {
  backend.reset();
  std::vector<ApiResponse> out;
  out.reserve(trace.calls.size());
  for (const auto& call : trace.calls) {
    out.push_back(backend.invoke(resolve_placeholders(call, out)));
  }
  return out;
}

}  // namespace lce
