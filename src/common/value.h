// `Value` is the dynamic value type flowing through the whole system: cloud
// resource attributes, API arguments, API response payloads, and the SM
// interpreter's state variables. It is a JSON-like tagged union with ordered
// maps (for deterministic printing and comparison).
//
// Representation (DESIGN.md "Value representation"): a 24-byte tagged union.
// Strings up to 16 bytes live inline; longer ones in a single heap block.
// Maps keep interned keys (`KeyId`, see common/interned.h) sorted by key
// *string*, stored as a flat entry array while small and spilling to a
// node-based ordered form when large — logical semantics are identical to
// the historical std::map<std::string, Value>, byte-for-byte in every
// rendering. Rep blocks come from the thread's active request arena when
// one is installed (common/arena.h); `detach()` rewrites a tree onto the
// heap before it may outlive the request.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/interned.h"

namespace lce {

enum class ValueKind : std::uint8_t {
  kNull,
  kBool,
  kInt,
  kStr,   // also used for enum members and CIDR blocks
  kRef,   // a resource identifier, e.g. "vpc-000001"
  kList,
  kMap,
};

std::string_view to_string(ValueKind k);

class Value;

namespace value_detail {

// Rep-block headers; the payload (chars, Values, Entries) follows the
// header inside the same allocation.
struct StrRep {
  std::uint32_t len;
  char* data() { return reinterpret_cast<char*>(this + 1); }
  const char* data() const { return reinterpret_cast<const char*>(this + 1); }
};
struct ListRep {
  std::uint32_t size;
  std::uint32_t cap;
  // Value[cap] follows.
};
struct MapRep {
  std::uint32_t size;
  std::uint32_t cap;
  // Entry[cap] follows.
};
struct Entry;      // { KeyId key; Value val; }
struct BigMapRep;  // node-based ordered form for large maps

// Orders interned keys by their spelling, so iteration order matches the
// historical std::map<std::string, Value> exactly.
struct KeyNameLess {
  using is_transparent = void;
  bool operator()(KeyId a, KeyId b) const { return key_name(a) < key_name(b); }
  bool operator()(KeyId a, std::string_view b) const { return key_name(a) < b; }
  bool operator()(std::string_view a, KeyId b) const { return a < key_name(b); }
};
using BigMap = std::map<KeyId, Value, KeyNameLess>;

}  // namespace value_detail

class Value {
 public:
  /// Builder/reference forms: ergonomic for literals and incremental
  /// construction; converted into the compact representation by the
  /// Value(Map)/Value(List) constructors. std::less<> so lookups with
  /// string_view keys need no temporary string.
  using List = std::vector<Value>;
  using Map = std::map<std::string, Value, std::less<>>;

  Value() noexcept {}
  // NOLINTBEGIN(google-explicit-constructor): implicit conversions are the
  // point of a dynamic value type.
  Value(bool b) noexcept : kind_(ValueKind::kBool) { pay_.b = b; }
  Value(std::int64_t i) noexcept : kind_(ValueKind::kInt) { pay_.i = i; }
  Value(int i) noexcept : kind_(ValueKind::kInt) { pay_.i = i; }
  Value(const std::string& s) { init_str(ValueKind::kStr, s); }
  Value(std::string_view s) { init_str(ValueKind::kStr, s); }
  Value(const char* s) { init_str(ValueKind::kStr, s); }
  Value(List l);
  Value(Map m);
  // NOLINTEND(google-explicit-constructor)

  Value(const Value& o) { copy_from(o); }
  Value(Value&& o) noexcept : pay_(o.pay_), aux_(o.aux_), kind_(o.kind_), flags_(o.flags_) {
    o.kind_ = ValueKind::kNull;
    o.flags_ = 0;
  }
  Value& operator=(const Value& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      destroy();
      pay_ = o.pay_;
      aux_ = o.aux_;
      kind_ = o.kind_;
      flags_ = o.flags_;
      o.kind_ = ValueKind::kNull;
      o.flags_ = 0;
    }
    return *this;
  }
  ~Value() { destroy(); }

  /// Make a resource-reference value (distinct kind from plain strings so
  /// alignment can treat ids specially when diffing responses).
  static Value ref(std::string_view id);
  static Value null() { return Value(); }
  /// An empty map (distinct from null: renders as {} and accepts set()).
  static Value empty_map();
  /// An empty list (distinct from null: renders as [] and accepts append()).
  static Value empty_list();

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_bool() const { return kind_ == ValueKind::kBool; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_str() const { return kind_ == ValueKind::kStr; }
  bool is_ref() const { return kind_ == ValueKind::kRef; }
  bool is_list() const { return kind_ == ValueKind::kList; }
  bool is_map() const { return kind_ == ValueKind::kMap; }

  /// Accessors return a zero value on kind mismatch rather than UB
  /// (emulation code paths prefer robustness).
  bool as_bool() const { return is_bool() ? pay_.b : false; }
  std::int64_t as_int() const { return is_int() ? pay_.i : 0; }
  std::string_view as_str() const {  // str or ref
    if (!is_str() && !is_ref()) return {};
    return (flags_ & kHeapStr) != 0 ? std::string_view(pay_.s->data(), pay_.s->len)
                                    : std::string_view(pay_.ch, aux_);
  }

  class ListView;
  class MapView;
  ListView as_list() const;
  MapView as_map() const;

  /// Map convenience: pointer into the map, nullptr when not a map or key
  /// missing. (Pointer, not optional<Value>: callers chain `->as_list()`
  /// etc., which must not reference a temporary.) The pointer is valid
  /// until the map is next mutated.
  const Value* get(std::string_view key) const;
  const Value* get(KeyId key) const;
  /// Map convenience with default.
  Value get_or(std::string_view key, Value def) const;
  bool has(std::string_view key) const { return get(key) != nullptr; }
  /// Insert or overwrite; converts *this to an (empty) map first when it
  /// is not one, matching the historical mutable_map() behavior.
  void set(std::string_view key, Value v);
  void set(KeyId key, Value v);
  /// List append; converts *this to an (empty) list first if needed.
  void append(Value v);

  /// Rewrite any arena-backed rep blocks in this tree onto the heap, in
  /// place. Required before a Value escapes the request that built it
  /// (store writes, returned responses). No-op for heap/inline trees.
  void detach();

  /// "Truthiness" used by predicates: null/false/0/""/[]/{} are false.
  bool truthy() const;

  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }
  /// Total order for use as container key and stable sorting.
  bool operator<(const Value& o) const;

  /// Compact JSON-ish rendering (refs rendered as @id).
  std::string to_text() const;
  /// Same rendering appended to `out` — one buffer threaded through the
  /// whole tree instead of a temporary string per child.
  void append_text(std::string& out) const;

  /// Structural diff: returns human-readable paths that differ, e.g.
  /// ".cidr_block: \"10.0.0.0/16\" vs \"10.0.0.0/24\"". Empty if equal.
  static std::vector<std::string> diff(const Value& a, const Value& b,
                                       const std::string& path = "");

 private:
  friend struct value_detail::Entry;

  enum : std::uint8_t {
    kHeapStr = 1,   // str/ref payload is a StrRep*, not inline chars
    kBigMap = 2,    // map payload is a BigMapRep*, not a flat MapRep*
    kArenaBlk = 4,  // the rep block was bump-allocated from the arena
  };
  static constexpr std::size_t kInlineStrCap = 16;
  static constexpr std::uint32_t kSmallMapMax = 32;  // flat->big threshold

  union Payload {
    bool b;
    std::int64_t i;
    char ch[kInlineStrCap];
    value_detail::StrRep* s;
    value_detail::ListRep* l;
    value_detail::MapRep* m;
    value_detail::BigMapRep* bm;
  };

  void init_str(ValueKind k, std::string_view s);
  void copy_from(const Value& o);
  void destroy() noexcept;
  void become_empty_map();
  /// Insert `v` at sorted position for `key` (which must be absent),
  /// growing or spilling as needed.
  void insert_new(KeyId key, std::string_view name, Value&& v);
  void spill_to_big();
  void grow_list();

  Payload pay_{};
  std::uint32_t aux_ = 0;  // inline string length
  ValueKind kind_ = ValueKind::kNull;
  std::uint8_t flags_ = 0;
};

static_assert(sizeof(Value) <= 40, "Value must stay a compact tagged union");

namespace value_detail {

struct Entry {
  KeyId key;
  Value val;
};

struct BigMapRep {
  BigMap m;
};

inline Value* list_items(ListRep* l) { return reinterpret_cast<Value*>(l + 1); }
inline const Value* list_items(const ListRep* l) {
  return reinterpret_cast<const Value*>(l + 1);
}
inline Entry* map_entries(MapRep* m) { return reinterpret_cast<Entry*>(m + 1); }
inline const Entry* map_entries(const MapRep* m) {
  return reinterpret_cast<const Entry*>(m + 1);
}

}  // namespace value_detail

/// Read-only view over a list Value's contiguous elements. Value-semantic
/// and cheap; empty for non-list Values.
class Value::ListView {
 public:
  using iterator = const Value*;
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Value& operator[](std::size_t i) const { return data_[i]; }
  const Value& front() const { return data_[0]; }
  const Value& back() const { return data_[size_ - 1]; }
  /// Builder copy, for call sites that mutate a snapshot of the list.
  operator List() const { return List(begin(), end()); }  // NOLINT

 private:
  friend class Value;
  ListView(const Value* d, std::size_t n) : data_(d), size_(n) {}
  const Value* data_;
  std::size_t size_;
};

/// Read-only view over a map Value's ordered (key, value) pairs; iteration
/// yields pair<string_view, const Value&> in key order. Empty for non-map
/// Values.
class Value::MapView {
  using Entry = value_detail::Entry;
  using BigIt = value_detail::BigMap::const_iterator;

 public:
  class iterator {
   public:
    using reference = std::pair<std::string_view, const Value&>;
    reference operator*() const {
      if (big_) return {key_name(it_->first), it_->second};
      return {key_name(e_->key), e_->val};
    }
    struct ArrowProxy {
      reference p;
      const reference* operator->() const { return &p; }
    };
    ArrowProxy operator->() const { return ArrowProxy{**this}; }
    iterator& operator++() {
      if (big_) {
        ++it_;
      } else {
        ++e_;
      }
      return *this;
    }
    bool operator==(const iterator& o) const {
      return big_ ? it_ == o.it_ : e_ == o.e_;
    }
    bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    friend class MapView;
    iterator(const Entry* e) : e_(e), big_(false) {}
    iterator(BigIt it) : it_(it), big_(true) {}
    const Entry* e_ = nullptr;
    BigIt it_{};
    bool big_;
  };

  iterator begin() const {
    if (big_ != nullptr) return iterator(big_->m.begin());
    return iterator(flat_);
  }
  iterator end() const {
    if (big_ != nullptr) return iterator(big_->m.end());
    return iterator(flat_ + size_);
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Builder copy, for call sites that mutate a snapshot of the map.
  operator Map() const {  // NOLINT
    Map out;
    for (const auto& [k, v] : *this) out.emplace_hint(out.end(), std::string(k), v);
    return out;
  }

 private:
  friend class Value;
  MapView() : flat_(nullptr), size_(0) {}
  MapView(const Entry* e, std::size_t n) : flat_(e), size_(n) {}
  explicit MapView(const value_detail::BigMapRep* b)
      : flat_(nullptr), big_(b), size_(b->m.size()) {}
  const Entry* flat_;
  const value_detail::BigMapRep* big_ = nullptr;
  std::size_t size_;
};

inline Value::ListView Value::as_list() const {
  if (!is_list() || pay_.l == nullptr) return ListView(nullptr, 0);
  return ListView(value_detail::list_items(pay_.l), pay_.l->size);
}

inline Value::MapView Value::as_map() const {
  if (!is_map() || pay_.m == nullptr) return MapView();
  if ((flags_ & kBigMap) != 0) return MapView(pay_.bm);
  return MapView(value_detail::map_entries(pay_.m), pay_.m->size);
}

}  // namespace lce
