// `Value` is the dynamic value type flowing through the whole system: cloud
// resource attributes, API arguments, API response payloads, and the SM
// interpreter's state variables. It is a JSON-like tagged union with ordered
// maps (for deterministic printing and comparison).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lce {

enum class ValueKind {
  kNull,
  kBool,
  kInt,
  kStr,   // also used for enum members and CIDR blocks
  kRef,   // a resource identifier, e.g. "vpc-000001"
  kList,
  kMap,
};

std::string_view to_string(ValueKind k);

class Value {
 public:
  using List = std::vector<Value>;
  // std::less<> so lookups with string_view keys need no temporary string.
  using Map = std::map<std::string, Value, std::less<>>;

  Value() : kind_(ValueKind::kNull) {}
  // NOLINTBEGIN(google-explicit-constructor): implicit conversions are the
  // point of a dynamic value type.
  Value(bool b) : kind_(ValueKind::kBool), bool_(b) {}
  Value(std::int64_t i) : kind_(ValueKind::kInt), int_(i) {}
  Value(int i) : kind_(ValueKind::kInt), int_(i) {}
  Value(std::string s) : kind_(ValueKind::kStr), str_(std::move(s)) {}
  Value(const char* s) : kind_(ValueKind::kStr), str_(s) {}
  Value(List l) : kind_(ValueKind::kList), list_(std::move(l)) {}
  Value(Map m) : kind_(ValueKind::kMap), map_(std::move(m)) {}
  // NOLINTEND(google-explicit-constructor)

  /// Make a resource-reference value (distinct kind from plain strings so
  /// alignment can treat ids specially when diffing responses).
  static Value ref(std::string id);
  static Value null() { return Value(); }

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_bool() const { return kind_ == ValueKind::kBool; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_str() const { return kind_ == ValueKind::kStr; }
  bool is_ref() const { return kind_ == ValueKind::kRef; }
  bool is_list() const { return kind_ == ValueKind::kList; }
  bool is_map() const { return kind_ == ValueKind::kMap; }

  /// Accessors assert the kind in debug builds; on mismatch they return a
  /// zero value rather than UB (emulation code paths prefer robustness).
  bool as_bool() const { return is_bool() ? bool_ : false; }
  std::int64_t as_int() const { return is_int() ? int_ : 0; }
  const std::string& as_str() const;  // str or ref
  const List& as_list() const;
  const Map& as_map() const;
  List& mutable_list();
  Map& mutable_map();

  /// Map convenience: pointer into the map, nullptr when not a map or key
  /// missing. (Pointer, not optional<Value>: callers chain `->as_list()`
  /// etc., which must not reference a temporary.)
  const Value* get(std::string_view key) const;
  /// Map convenience with default.
  Value get_or(std::string_view key, Value def) const;
  bool has(std::string_view key) const { return get(key) != nullptr; }
  void set(std::string key, Value v);

  /// "Truthiness" used by predicates: null/false/0/"" are false.
  bool truthy() const;

  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }
  /// Total order for use as container key and stable sorting.
  bool operator<(const Value& o) const;

  /// Compact JSON-ish rendering (refs rendered as @id).
  std::string to_text() const;
  /// Same rendering appended to `out` — one buffer threaded through the
  /// whole tree instead of a temporary string per child.
  void append_text(std::string& out) const;

  /// Structural diff: returns human-readable paths that differ, e.g.
  /// ".cidr_block: \"10.0.0.0/16\" vs \"10.0.0.0/24\"". Empty if equal.
  static std::vector<std::string> diff(const Value& a, const Value& b,
                                       const std::string& path = "");

 private:
  ValueKind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::string str_;
  List list_;
  Map map_;
};

}  // namespace lce
