// Load generation for the serve path (DESIGN.md "Serve throughput
// benchmark"): a mixed Create/Describe/Mutate workload driven against any
// CloudBackend at configurable concurrency, in two modes:
//
//   closed loop  every worker fires its next request the moment the
//                previous one returns — measures peak sustainable
//                throughput of the invoke path.
//   open loop    requests arrive on a fixed global schedule (arrival_rate
//                ops/sec, split across workers) and latency is measured
//                from the SCHEDULED arrival, so queueing delay behind a
//                saturated backend is charged to the backend instead of
//                being silently absorbed (no coordinated omission).
//
// The workload shape matches the LocalStack steady state: mostly
// describes, some attribute writes, a trickle of creates. All randomness
// is SplitMix64-seeded per worker, so the op SEQUENCE is reproducible;
// timings of course are not.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/api.h"
#include "common/value.h"

namespace lce::bench {

/// Workload mix in percent; the remainder after create + mutate is the
/// describe share.
struct WorkloadMix {
  int create_pct = 10;
  int mutate_pct = 20;
};

struct LoadOptions {
  int concurrency = 4;
  std::size_t total_ops = 8000;   // across all workers
  /// Open-loop arrival rate in ops/sec across all workers; 0 = closed loop.
  double arrival_rate = 0.0;
  std::uint64_t seed = 42;
  /// Resources created (serially) before the measured phase, so describes
  /// and mutates have targets from the first op on.
  std::size_t prepopulate = 64;
  WorkloadMix mix;
  /// When nonzero, the measured phase drives a live loopback endpoint on
  /// this port over real sockets (POST /invoke) instead of calling the
  /// backend in process. reset() and prepopulation still go through the
  /// in-process backend — it must be the same state the endpoint serves.
  std::uint16_t http_port = 0;
  /// HTTP mode only: one persistent keep-alive connection per worker vs a
  /// fresh Connection: close socket per request. The difference is the
  /// keep-alive sweep in BENCH_serve.json.
  bool http_keep_alive = true;
  /// HTTP closed-loop keep-alive only: requests kept in flight per
  /// connection. Depth 1 is strict request/response ping-pong; deeper
  /// windows pipeline a burst per batch, amortizing the per-request RTT so
  /// wire CPU (not syscall latency) dominates — the regime the zero-copy
  /// fast path is gated in. Latency is measured from the batch send, so
  /// pipeline queueing is charged to the server. Ignored in open-loop and
  /// Connection: close modes.
  int http_pipeline = 1;
  /// Describes target only the prepopulated resources (mutates and their
  /// targets are unrestricted). Needed when reads are served under a
  /// bounded-staleness contract (the replica sweep): a replica within the
  /// staleness bound is guaranteed to hold every PREPOPULATED resource,
  /// but may not yet hold one created mid-run by a racing worker — which
  /// would turn an expected-ok describe into a spurious error.
  bool describe_targets_seeded = false;
  /// Called once after prepopulation, before the measured clock starts
  /// (e.g. to let replica appliers drain the prepopulation records so the
  /// measured phase starts from caught-up replicas).
  std::function<void()> after_prepopulate;
};

struct LoadStats {
  std::size_t ops = 0;
  std::size_t errors = 0;  // !ok responses (should be 0 for this workload)
  double wall_ms = 0;
  double throughput_ops_s = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;

  /// JSON-ready map (BENCH_serve.json rows).
  Value to_value() const;
};

/// Nearest-rank percentile of `sample` (sorted in place); p in [0, 100].
/// Empty samples yield 0.
double percentile(std::vector<double>& sample, double p);

/// Drive `backend` with the configured workload and gather stats. The
/// backend is reset() first; prepopulation happens before the clock
/// starts. Workers are plain threads — the generator IS the concurrency
/// under test, so it must not serialize anything itself.
LoadStats run_load(CloudBackend& backend, const LoadOptions& opts);

}  // namespace lce::bench
