#include "bench/serve_bench.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string_view>

#include "bench/loadgen.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/emulator.h"
#include "docs/corpus.h"
#include "docs/render.h"
#include "interp/interpreter.h"
#include "persist/journal.h"
#include "persist/replica.h"
#include "server/json.h"
#include "server/service.h"
#include "stack/config.h"
#include "stack/route.h"

namespace lce::bench {

namespace {

// Sanitizer instrumentation swamps the socket-layer numbers, so the
// keep-alive gate (like the plan gate in bench_interpreter_micro) only
// enforces on uninstrumented builds.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

stack::StackConfig bench_config(stack::SerializeMode mode) {
  stack::StackConfig cfg;
  cfg.serialize = mode;
  cfg.validate = true;
  // No metrics layer: its counter mutex is shared contention that would
  // blur the serialized-vs-sharded comparison this bench exists to make.
  cfg.metrics = false;
  return cfg;
}

struct SweepPoint {
  std::string config;
  int concurrency = 0;
  LoadStats stats;
  /// HTTP sweep only: TCP connections the server accepted during the run
  /// (keep-alive ~= concurrency, close ~= ops).
  std::int64_t connections = -1;
};

Value point_value(const SweepPoint& p, double rate) {
  Value::Map m = p.stats.to_value().as_map();
  m["config"] = Value(p.config);
  m["concurrency"] = Value(static_cast<std::int64_t>(p.concurrency));
  if (rate > 0) m["arrival_rate_ops_s"] = Value(static_cast<std::int64_t>(rate));
  if (p.connections >= 0) m["connections"] = Value(p.connections);
  return Value(std::move(m));
}

std::string fmt_speedup(double s) {
  return strf(static_cast<long>(s), ".", static_cast<long>(s * 100) % 100 / 10,
              static_cast<long>(s * 100) % 10, "x");
}

std::string fixed_digits(double v, int prec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

// ---------------------------------------------------------------------------
// Allocation probe: a raw-socket pipelined client whose steady-state loop
// is allocation-free (pre-rendered burst, fixed receive buffer, in-place
// frame scan), so the process-wide operator-new counter isolates the SERVE
// path's allocations per request.

int dial_loopback(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Complete Content-Length-framed responses in buf[0..len), without
/// allocating. Both serve paths emit the lowercase "content-length: " form.
std::size_t count_frames(const char* data, std::size_t len) {
  std::string_view sv(data, len);
  std::size_t count = 0;
  std::size_t pos = 0;
  for (;;) {
    std::size_t hdr_end = sv.find("\r\n\r\n", pos);
    if (hdr_end == std::string_view::npos) return count;
    std::size_t cl = sv.find("content-length: ", pos);
    std::size_t body_len = 0;
    if (cl != std::string_view::npos && cl < hdr_end) {
      for (std::size_t i = cl + 16; i < hdr_end && data[i] >= '0' && data[i] <= '9';
           ++i) {
        body_len = body_len * 10 + static_cast<std::size_t>(data[i] - '0');
      }
    }
    std::size_t next = hdr_end + 4 + body_len;
    if (next > len) return count;
    ++count;
    pos = next;
  }
}

/// Steady-state allocations per request over a keep-alive pipelined burst
/// against `port`. Returns -1 when the probe could not run.
double run_alloc_probe(std::uint16_t port, std::uint64_t (*counter)()) {
  constexpr int kBurst = 32;
  constexpr int kRounds = 16;
  // A target to describe, created outside the measured window (describes
  // are the steady state; creates grow the store by design).
  auto created = server::invoke_over_http(
      port, "CreateVpc", {{"cidr_block", Value("10.250.0.0/16")}});
  if (!created.ok || created.data.get("id") == nullptr) return -1;
  std::string body = strf("{\"Action\":\"DescribeVpc\",\"Params\":{\"id\":\"",
                          created.data.get("id")->as_str(), "\"}}");
  std::string one =
      strf("POST /invoke HTTP/1.1\r\nhost: b\r\ncontent-length: ", body.size(),
           "\r\nconnection: keep-alive\r\n\r\n", body);
  std::string burst;
  burst.reserve(one.size() * kBurst);
  for (int i = 0; i < kBurst; ++i) burst += one;

  int fd = dial_loopback(port);
  if (fd < 0) return -1;
  std::vector<char> buf(static_cast<std::size_t>(kBurst) * 8192);
  auto round = [&]() -> bool {
    std::size_t off = 0;
    while (off < burst.size()) {
      ssize_t n = ::send(fd, burst.data() + off, burst.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    std::size_t got = 0;
    while (count_frames(buf.data(), got) < kBurst) {
      if (got == buf.size()) return false;
      ssize_t n = ::read(fd, buf.data() + got, buf.size() - got);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return true;
  };
  // Warm the connection's buffers, the parser capacity, the request arena
  // and the interned-key table before counting.
  if (!round() || !round()) {
    ::close(fd);
    return -1;
  }
  std::uint64_t before = counter();
  for (int r = 0; r < kRounds; ++r) {
    if (!round()) {
      ::close(fd);
      return -1;
    }
  }
  std::uint64_t after = counter();
  ::close(fd);
  return static_cast<double>(after - before) / (kBurst * kRounds);
}

}  // namespace

bool parse_serve_bench_args(int argc, char** argv, ServeBenchOptions& out) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      out.quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      out.json_path = argv[++i];
    } else if (arg == "--no-json") {
      out.json_path.clear();
    } else if (arg == "--ops" && i + 1 < argc) {
      out.ops = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--concurrency" && i + 1 < argc) {
      out.concurrency.clear();
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        out.concurrency.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (arg == "--rate" && i + 1 < argc) {
      out.open_loop_rate = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      out.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      out.min_speedup = std::atof(argv[++i]);
    } else if (arg == "--no-enforce") {
      out.enforce = false;
    } else if (arg == "--data-dir" && i + 1 < argc) {
      out.data_dir = argv[++i];
    } else if (arg == "--wal-sync" && i + 1 < argc) {
      std::string mode = argv[++i];
      if (mode != "none" && mode != "batch") {
        std::cerr << "unknown --wal-sync mode: " << mode << "\n";
        return false;
      }
      out.wal_sync_batch = mode == "batch";
    } else if (arg == "--max-wal-overhead" && i + 1 < argc) {
      out.max_wal_overhead = std::atof(argv[++i]);
    } else if (arg == "--no-http") {
      out.http_sweep = false;
    } else if (arg == "--io-threads" && i + 1 < argc) {
      out.io_threads = std::atoi(argv[++i]);
    } else if (arg == "--min-keepalive-speedup" && i + 1 < argc) {
      out.min_keepalive_speedup = std::atof(argv[++i]);
    } else if (arg == "--http-pipeline" && i + 1 < argc) {
      out.http_pipeline = std::atoi(argv[++i]);
    } else if (arg == "--min-http-speedup" && i + 1 < argc) {
      out.min_http_speedup = std::atof(argv[++i]);
    } else if (arg == "--max-serve-allocs" && i + 1 < argc) {
      out.max_serve_allocs = std::atof(argv[++i]);
    } else if (arg == "--no-replica-sweep") {
      out.replica_sweep = false;
    } else if (arg == "--replica-lag-max" && i + 1 < argc) {
      out.replica_lag_max = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--min-replica-speedup" && i + 1 < argc) {
      out.min_replica_speedup = std::atof(argv[++i]);
    } else {
      std::cerr << "unknown bench flag: " << arg << "\n"
                << "flags: --quick --json FILE --no-json --ops N "
                   "--concurrency a,b,c --rate R --seed N --min-speedup X "
                   "--no-enforce --data-dir DIR --wal-sync none|batch "
                   "--max-wal-overhead X --no-http --io-threads N "
                   "--min-keepalive-speedup X --http-pipeline N "
                   "--min-http-speedup X --max-serve-allocs N "
                   "--no-replica-sweep --replica-lag-max K "
                   "--min-replica-speedup X\n";
      return false;
    }
  }
  return true;
}

int run_serve_bench(const ServeBenchOptions& opts) {
  std::vector<int> sweep = opts.concurrency;
  if (sweep.empty()) {
    sweep = opts.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  }
  std::size_t ops = opts.ops != 0 ? opts.ops : (opts.quick ? 3000 : 20000);
  int hw = ThreadPool::hardware_workers();

  std::cout << "=== Serve-path throughput: serialized vs sharded invoke ===\n"
            << "  workload: " << ops << " ops/run, 10% create / 20% mutate / "
               "70% describe, hardware workers: " << hw << "\n\n";

  // One emulator, three stacks over the same interpreter: identical
  // layers except the serialize gate / the journal. Each run_load resets
  // the shared store.
  auto emulator = core::LearnedEmulator::from_docs(
      docs::render_corpus(docs::build_aws_catalog()));
  stack::LayerStack serialized =
      stack::build_stack(emulator.backend(), bench_config(stack::SerializeMode::kOn));
  stack::LayerStack sharded =
      stack::build_stack(emulator.backend(), bench_config(stack::SerializeMode::kOff));

  // The durable path: sharded stack + JournalLayer over a real data dir.
  std::string data_dir = opts.data_dir;
  if (data_dir.empty()) {
    data_dir = (std::filesystem::temp_directory_path() / "lce_bench_wal").string();
  }
  std::error_code ec;
  std::filesystem::remove_all(data_dir, ec);  // fresh log per bench run
  persist::PersistOptions popts;
  popts.data_dir = data_dir;
  popts.sync = opts.wal_sync_batch ? persist::WalSync::kBatch : persist::WalSync::kNone;
  popts.snapshot_every = 0;  // measure the log alone, no rotation pauses
  std::string persist_error;
  auto persist_mgr =
      persist::PersistManager::open(emulator.backend(), popts, &persist_error);
  if (persist_mgr == nullptr) {
    std::cerr << "cannot open bench data dir " << data_dir << ": " << persist_error
              << "\n";
    return 1;
  }
  stack::StackConfig wal_cfg = bench_config(stack::SerializeMode::kOff);
  wal_cfg.journal = [&persist_mgr] {
    return std::make_unique<persist::JournalLayer>(persist_mgr.get());
  };
  stack::LayerStack wal = stack::build_stack(emulator.backend(), wal_cfg);

  LoadOptions base;
  base.total_ops = ops;
  base.seed = opts.seed;

  std::vector<SweepPoint> closed;
  double best_sharded = 0;
  for (int c : sweep) {
    for (auto* side : {&serialized, &sharded, &wal}) {
      LoadOptions lo = base;
      lo.concurrency = c;
      SweepPoint p;
      p.config = side == &serialized ? "serialized"
                 : side == &sharded  ? "sharded"
                                     : "wal";
      p.concurrency = c;
      p.stats = run_load(*side, lo);
      if (side == &sharded && p.stats.throughput_ops_s > best_sharded) {
        best_sharded = p.stats.throughput_ops_s;
      }
      closed.push_back(std::move(p));
    }
  }

  TextTable table({"config", "conc", "ops/s", "p50 us", "p99 us", "errors"});
  for (const auto& p : closed) {
    table.add_row({p.config, strf(p.concurrency),
                   strf(static_cast<long>(p.stats.throughput_ops_s)),
                   strf(static_cast<long>(p.stats.p50_us)),
                   strf(static_cast<long>(p.stats.p99_us)),
                   strf(p.stats.errors)});
  }
  std::cout << table.render() << "\n";

  // Speedups per concurrency point.
  double gate_speedup = 0;
  double gate_wal_overhead = 0;
  int gate_conc = 0;
  std::cout << "sharded vs serialized:";
  for (int c : sweep) {
    double ser = 0, sha = 0, wl = 0;
    for (const auto& p : closed) {
      if (p.concurrency != c) continue;
      if (p.config == "serialized") ser = p.stats.throughput_ops_s;
      if (p.config == "sharded") sha = p.stats.throughput_ops_s;
      if (p.config == "wal") wl = p.stats.throughput_ops_s;
    }
    double speedup = ser > 0 ? sha / ser : 0;
    std::cout << "  c" << c << "=" << fmt_speedup(speedup);
    if (c >= 4 && c >= gate_conc) {
      gate_conc = c;
      gate_speedup = speedup;
      gate_wal_overhead = wl > 0 ? sha / wl : 0;
    }
  }
  std::cout << "\n";
  {
    // WAL overhead per concurrency point (sharded ops/s over wal ops/s —
    // 1.00x means journaling is free).
    std::cout << "wal overhead (sharded / wal):";
    for (int c : sweep) {
      double sha = 0, wl = 0;
      for (const auto& p : closed) {
        if (p.concurrency != c) continue;
        if (p.config == "sharded") sha = p.stats.throughput_ops_s;
        if (p.config == "wal") wl = p.stats.throughput_ops_s;
      }
      std::cout << "  c" << c << "=" << fmt_speedup(wl > 0 ? sha / wl : 0);
    }
    std::cout << "\n";
  }

  // Open-loop latency at a rate the serialized path struggles with.
  double rate = opts.open_loop_rate > 0 ? opts.open_loop_rate : best_sharded * 0.6;
  int open_conc = sweep.back();
  std::vector<SweepPoint> open;
  if (rate > 0) {
    std::cout << "\nopen loop: " << static_cast<long>(rate)
              << " ops/s scheduled arrivals, concurrency " << open_conc
              << " (latency from scheduled arrival):\n";
    for (auto* side : {&serialized, &sharded}) {
      LoadOptions lo = base;
      lo.concurrency = open_conc;
      lo.arrival_rate = rate;
      SweepPoint p;
      p.config = side == &serialized ? "serialized" : "sharded";
      p.concurrency = open_conc;
      p.stats = run_load(*side, lo);
      std::cout << "  " << p.config << ": p50 "
                << static_cast<long>(p.stats.p50_us) << " us, p99 "
                << static_cast<long>(p.stats.p99_us) << " us, max "
                << static_cast<long>(p.stats.max_us / 1000) << " ms\n";
      open.push_back(std::move(p));
    }
  }

  // HTTP front-end sweep: the same sharded stack, but reached through the
  // epoll server over real loopback sockets — once with one keep-alive
  // connection per worker, once with a fresh Connection: close socket per
  // request — then an open-loop latency run near the keep-alive peak.
  std::vector<SweepPoint> http_points;
  double ka_speedup = 0;
  double http_speedup = 0;
  double serve_allocs = -1;
  double serve_allocs_heap = -1;
  double http_rate = 0;
  int http_io_threads = 0;
  if (opts.http_sweep) {
    server::HttpServerOptions hopts;
    hopts.io_threads = opts.io_threads;
    server::EmulatorEndpoint endpoint(emulator.backend(),
                                      bench_config(stack::SerializeMode::kOff),
                                      nullptr, hopts);
    std::uint16_t port = endpoint.start();
    if (port == 0) {
      std::cerr << "cannot bind the HTTP front-end sweep endpoint\n";
      return 1;
    }
    http_io_threads = endpoint.io_threads();
    int hc = sweep.back();
    double ka_tput = 0, close_tput = 0;
    std::cout << "\nHTTP front end (" << http_io_threads << " io threads, concurrency "
              << hc << "): keep-alive vs close-per-request\n";
    auto http_point = [&](const char* config, bool keep_alive, double rate) {
      LoadOptions lo = base;
      lo.concurrency = hc;
      lo.http_port = port;
      lo.http_keep_alive = keep_alive;
      lo.arrival_rate = rate;
      auto before = endpoint.server_stats();
      SweepPoint p;
      p.config = config;
      p.concurrency = hc;
      p.stats = run_load(endpoint.stack(), lo);
      auto after = endpoint.server_stats();
      p.connections = static_cast<std::int64_t>(after.connections_accepted -
                                                before.connections_accepted);
      return p;
    };
    for (bool keep_alive : {false, true}) {
      SweepPoint p = http_point(keep_alive ? "http_keepalive" : "http_close",
                                keep_alive, 0);
      (keep_alive ? ka_tput : close_tput) = p.stats.throughput_ops_s;
      std::cout << "  " << p.config << ": "
                << static_cast<long>(p.stats.throughput_ops_s) << " ops/s over "
                << p.connections << " connection(s), p99 "
                << static_cast<long>(p.stats.p99_us) << " us, errors "
                << p.stats.errors << "\n";
      http_points.push_back(std::move(p));
    }
    ka_speedup = close_tput > 0 ? ka_tput / close_tput : 0;
    http_rate = ka_tput * 0.7;
    if (http_rate > 0) {
      SweepPoint p = http_point("http_keepalive_open", true, http_rate);
      std::cout << "  open loop @" << static_cast<long>(http_rate)
                << " ops/s: p50 " << static_cast<long>(p.stats.p50_us)
                << " us, p99 " << static_cast<long>(p.stats.p99_us) << " us, max "
                << static_cast<long>(p.stats.max_us / 1000) << " ms\n";
      http_points.push_back(std::move(p));
    }

    // Wire fast-path comparison: the same sharded stack served twice at a
    // pipelined keep-alive point — once through the zero-copy wire path
    // (`endpoint`, the default) and once through the --no-wire-fastpath
    // heap path — so the ratio isolates wire CPU: request parsing, JSON
    // decode, and response rendering (DESIGN.md "Wire fast path").
    server::HttpServerOptions heap_hopts = hopts;
    heap_hopts.wire_fastpath = false;
    server::EmulatorEndpoint heap_endpoint(emulator.backend(),
                                           bench_config(stack::SerializeMode::kOff),
                                           nullptr, heap_hopts);
    std::uint16_t heap_port = heap_endpoint.start();
    if (heap_port == 0) {
      std::cerr << "cannot bind the heap-path comparison endpoint\n";
      return 1;
    }
    double fast_tput = 0, heap_tput = 0;
    std::cout << "\nwire fast path vs heap path (pipeline depth "
              << opts.http_pipeline << ", concurrency " << hc << "):\n";
    for (bool fast : {false, true}) {
      LoadOptions lo = base;
      lo.concurrency = hc;
      lo.http_port = fast ? port : heap_port;
      lo.http_pipeline = opts.http_pipeline;
      SweepPoint p;
      p.config = fast ? "http_fastpath_pipelined" : "http_heap_pipelined";
      p.concurrency = hc;
      auto& ep = fast ? endpoint : heap_endpoint;
      auto before = ep.server_stats();
      p.stats = run_load(ep.stack(), lo);
      auto after = ep.server_stats();
      p.connections = static_cast<std::int64_t>(after.connections_accepted -
                                                before.connections_accepted);
      (fast ? fast_tput : heap_tput) = p.stats.throughput_ops_s;
      std::cout << "  " << p.config << ": "
                << static_cast<long>(p.stats.throughput_ops_s) << " ops/s, p99 "
                << static_cast<long>(p.stats.p99_us) << " us, errors "
                << p.stats.errors << "\n";
      http_points.push_back(std::move(p));
    }
    http_speedup = heap_tput > 0 ? fast_tput / heap_tput : 0;

    // Allocations per served request, fast path gated and heap path as the
    // reference number. Counted, not timed — valid even on one core.
    if (opts.alloc_counter != nullptr) {
      serve_allocs = run_alloc_probe(port, opts.alloc_counter);
      serve_allocs_heap = run_alloc_probe(heap_port, opts.alloc_counter);
      std::cout << "  allocs/request over a pipelined keep-alive burst: fast ";
      if (serve_allocs >= 0) {
        std::cout << fixed_digits(serve_allocs, 1);
      } else {
        std::cout << "probe-failed";
      }
      std::cout << ", heap ";
      if (serve_allocs_heap >= 0) {
        std::cout << fixed_digits(serve_allocs_heap, 1);
      } else {
        std::cout << "probe-failed";
      }
      std::cout << "\n";
    }
    heap_endpoint.stop();
    endpoint.stop();
  }

  // Replica sweep: the durable stack again, but with N WAL-shipped
  // replicas absorbing a describe-heavy mix (5% create / 15% mutate /
  // 80% describe) through the RouteLayer. Each count gets a fresh data
  // dir + manager (one feed per manager) and starts measuring only after
  // the replicas drained the prepopulation records, so a staleness
  // fallback during the run means real lag, not a cold start.
  std::vector<SweepPoint> replica_points;
  double replica_speedup = 0;
  if (opts.replica_sweep) {
    const std::vector<std::size_t> counts =
        opts.quick ? std::vector<std::size_t>{0, 2}
                   : std::vector<std::size_t>{0, 2, 4};
    const int rc = sweep.back();
    double baseline_tput = 0, best_replicated = 0;
    std::cout << "\nreplica sweep (journal + route, 5/15/80 mix, lag max "
              << opts.replica_lag_max << ", concurrency " << rc << "):\n";
    for (std::size_t nrep : counts) {
      const std::string rdir = strf(data_dir, "_replica", nrep);
      std::filesystem::remove_all(rdir, ec);
      persist::PersistOptions rpopts = popts;
      rpopts.data_dir = rdir;
      std::string rerr;
      auto rmgr =
          persist::PersistManager::open(emulator.backend(), rpopts, &rerr);
      if (rmgr == nullptr) {
        std::cerr << "cannot open replica-sweep data dir " << rdir << ": "
                  << rerr << "\n";
        return 1;
      }
      std::unique_ptr<persist::ReplicaSet> rset;
      stack::StackConfig rcfg = bench_config(stack::SerializeMode::kOff);
      rcfg.journal = [&rmgr] {
        return std::make_unique<persist::JournalLayer>(rmgr.get());
      };
      if (nrep > 0) {
        rset = persist::ReplicaSet::create(*rmgr, nrep, {}, &rerr);
        if (rset == nullptr) {
          std::cerr << "cannot start " << nrep << " replica(s): " << rerr << "\n";
          return 1;
        }
        rcfg.route = [&rset, &opts, interp = &emulator.backend()] {
          stack::RouteOptions ro;
          ro.lag_max = opts.replica_lag_max;
          ro.read_only = [interp](const std::string& api) {
            return interp->read_only_api(api);
          };
          return std::make_unique<stack::RouteLayer>(rset.get(), std::move(ro));
        };
      }
      stack::LayerStack rstack = stack::build_stack(emulator.backend(), rcfg);
      LoadOptions lo = base;
      lo.concurrency = rc;
      lo.mix = {5, 15};
      lo.describe_targets_seeded = true;
      if (rset != nullptr) {
        lo.after_prepopulate = [&rset] { rset->drain(); };
      }
      SweepPoint p;
      p.config = strf("replica", nrep);
      p.concurrency = rc;
      p.stats = run_load(rstack, lo);
      std::uint64_t replica_reads = 0;
      if (auto* route = rstack.find<stack::RouteLayer>()) {
        replica_reads = route->stats().replica_reads;
      }
      std::cout << "  " << p.config << ": "
                << static_cast<long>(p.stats.throughput_ops_s) << " ops/s, p99 "
                << static_cast<long>(p.stats.p99_us) << " us, "
                << replica_reads << " replica read(s), errors "
                << p.stats.errors << "\n";
      if (nrep == 0) {
        baseline_tput = p.stats.throughput_ops_s;
      } else if (p.stats.throughput_ops_s > best_replicated) {
        best_replicated = p.stats.throughput_ops_s;
      }
      replica_points.push_back(std::move(p));
      // The stack and replica set die here, before their manager; the
      // scratch dir stays for post-mortems until the next run re-creates it.
    }
    replica_speedup = baseline_tput > 0 ? best_replicated / baseline_tput : 0;
  }

  bool gate_applicable = opts.enforce && gate_conc >= 4 && hw >= 2;
  bool speedup_pass = !gate_applicable || gate_speedup >= opts.min_speedup;
  bool wal_pass = !gate_applicable || gate_wal_overhead == 0 ||
                  gate_wal_overhead <= opts.max_wal_overhead;
  // Keep-alive must beat close-per-request: without parallel event loops
  // (single core) or with sanitizer instrumentation the comparison is
  // meaningless, so the gate self-skips there.
  bool ka_applicable = opts.enforce && opts.http_sweep && !kSanitized && hw >= 2;
  bool ka_pass = !ka_applicable || ka_speedup >= opts.min_keepalive_speedup;
  // The zero-copy fast path must beat the heap path at the pipelined
  // point. Single-core runners serve the load generator and the event
  // loop on the same core, so the ratio measures scheduling, not wire
  // CPU — skipped there, like the other timed gates.
  bool fastpath_applicable =
      opts.enforce && opts.http_sweep && !kSanitized && hw >= 2;
  bool fastpath_pass = !fastpath_applicable || http_speedup >= opts.min_http_speedup;
  // Allocs/request is counted, not timed, so it holds on any core count —
  // but it needs the binary's operator-new hook (compiled out under
  // sanitizers, absent in `lce bench serve`).
  bool alloc_applicable = opts.enforce && opts.http_sweep && !kSanitized &&
                          opts.alloc_counter != nullptr && opts.max_serve_allocs > 0;
  bool alloc_pass =
      !alloc_applicable || (serve_allocs >= 0 && serve_allocs <= opts.max_serve_allocs);
  // Replica reads only beat the baseline when they can run in parallel
  // with primary writes — meaningless on one core or instrumented builds.
  bool replica_applicable =
      opts.enforce && opts.replica_sweep && !kSanitized && hw >= 2;
  bool replica_pass =
      !replica_applicable || replica_speedup >= opts.min_replica_speedup;
  bool pass = speedup_pass && wal_pass && ka_pass && fastpath_pass && alloc_pass &&
              replica_pass;
  if (replica_applicable) {
    std::cout << "\nbest replicated >= " << fmt_speedup(opts.min_replica_speedup)
              << " of replica0: " << (replica_pass ? "PASS" : "FAIL") << " ("
              << fmt_speedup(replica_speedup) << ")\n";
  } else if (opts.enforce && opts.replica_sweep) {
    std::cout << "\nreplica gate skipped ("
              << (kSanitized ? "sanitizer build" : "single-core machine") << ")\n";
  }
  if (ka_applicable) {
    std::cout << "\nkeep-alive >= " << fmt_speedup(opts.min_keepalive_speedup)
              << " close-per-request: " << (ka_pass ? "PASS" : "FAIL") << " ("
              << fmt_speedup(ka_speedup) << ")\n";
  } else if (opts.enforce && opts.http_sweep) {
    std::cout << "\nkeep-alive gate skipped ("
              << (kSanitized ? "sanitizer build" : "single-core machine") << ")\n";
  }
  if (fastpath_applicable) {
    std::cout << "wire fast path >= " << fmt_speedup(opts.min_http_speedup)
              << " heap path (pipelined): " << (fastpath_pass ? "PASS" : "FAIL")
              << " (" << fmt_speedup(http_speedup) << ")\n";
  } else if (opts.enforce && opts.http_sweep) {
    std::cout << "wire fast-path gate skipped ("
              << (kSanitized ? "sanitizer build" : "single-core machine") << ")\n";
  }
  if (alloc_applicable) {
    std::cout << "serve allocs/request <= "
              << fixed_digits(opts.max_serve_allocs, 1) << ": "
              << (alloc_pass ? "PASS" : "FAIL") << " ("
              << (serve_allocs >= 0 ? fixed_digits(serve_allocs, 1)
                                    : std::string("probe failed"))
              << ")\n";
  } else if (opts.enforce && opts.http_sweep && opts.max_serve_allocs > 0) {
    std::cout << "serve alloc gate skipped ("
              << (kSanitized ? "sanitizer build" : "no allocation hook in this binary")
              << ")\n";
  }
  if (gate_applicable) {
    std::cout << "\nsharded >= " << fmt_speedup(opts.min_speedup)
              << " serialized at c" << gate_conc << ": "
              << (speedup_pass ? "PASS" : "FAIL") << " ("
              << fmt_speedup(gate_speedup) << ")\n";
    std::cout << "wal overhead <= " << fmt_speedup(opts.max_wal_overhead)
              << " at c" << gate_conc << ": " << (wal_pass ? "PASS" : "FAIL")
              << " (" << fmt_speedup(gate_wal_overhead) << ")\n";
  } else if (opts.enforce) {
    std::cout << "\nspeedup gate skipped ("
              << (hw < 2 ? "single-core machine" : "no sweep point >= 4")
              << ")\n";
  }

  if (!opts.json_path.empty()) {
    Value::Map root;
    root["bench"] = Value(std::string("serve_throughput"));
    root["quick"] = Value(opts.quick);
    root["hardware_workers"] = Value(static_cast<std::int64_t>(hw));
    root["ops_per_run"] = Value(static_cast<std::int64_t>(ops));
    Value::List closed_rows;
    for (const auto& p : closed) closed_rows.push_back(point_value(p, 0));
    root["closed_loop"] = Value(std::move(closed_rows));
    Value::List open_rows;
    for (const auto& p : open) open_rows.push_back(point_value(p, rate));
    root["open_loop"] = Value(std::move(open_rows));
    Value::List http_rows;
    for (const auto& p : http_points) {
      http_rows.push_back(
          point_value(p, p.config == "http_keepalive_open" ? http_rate : 0));
    }
    root["http_front_end"] = Value(std::move(http_rows));
    Value::List replica_rows;
    for (const auto& p : replica_points) replica_rows.push_back(point_value(p, 0));
    root["replica_sweep"] = Value(std::move(replica_rows));
    root["replica_speedup"] = Value(fmt_speedup(replica_speedup));
    root["replica_lag_max"] =
        Value(static_cast<std::int64_t>(opts.replica_lag_max));
    root["keepalive_speedup"] = Value(fmt_speedup(ka_speedup));
    root["http_speedup"] = Value(fmt_speedup(http_speedup));
    root["http_pipeline"] = Value(static_cast<std::int64_t>(opts.http_pipeline));
    // Allocation counts ride as x10 integers (Value is integer-only) —
    // same convention as the interpreter bench's alloc_per_op_x10.
    if (serve_allocs >= 0) {
      root["serve_alloc_per_req_x10"] =
          Value(static_cast<std::int64_t>(serve_allocs * 10 + 0.5));
    }
    if (serve_allocs_heap >= 0) {
      root["serve_alloc_heap_per_req_x10"] =
          Value(static_cast<std::int64_t>(serve_allocs_heap * 10 + 0.5));
    }
    root["io_threads"] = Value(static_cast<std::int64_t>(http_io_threads));
    root["speedup_at_gate"] = Value(fmt_speedup(gate_speedup));
    root["wal_overhead"] = Value(fmt_speedup(gate_wal_overhead));
    root["wal_sync"] = Value(std::string(opts.wal_sync_batch ? "batch" : "none"));
    root["gate_concurrency"] = Value(static_cast<std::int64_t>(gate_conc));
    // Mirror every self-skipped gate into the artifact with its reason —
    // a consumer reading only the JSON must be able to tell "measured and
    // passed" from "could not be measured on this runner".
    Value::Map gate_skips;
    if (opts.enforce && !gate_applicable) {
      gate_skips["sharded_speedup_and_wal"] = Value(std::string(
          hw < 2 ? "single-core machine" : "no sweep point >= 4"));
    }
    if (opts.enforce && opts.http_sweep && !ka_applicable) {
      gate_skips["keepalive"] = Value(
          std::string(kSanitized ? "sanitizer build" : "single-core machine"));
    }
    if (opts.enforce && opts.http_sweep && !fastpath_applicable) {
      gate_skips["http_fastpath"] = Value(
          std::string(kSanitized ? "sanitizer build" : "single-core machine"));
    }
    if (opts.enforce && opts.http_sweep && opts.max_serve_allocs > 0 &&
        !alloc_applicable) {
      gate_skips["serve_alloc"] =
          Value(std::string(kSanitized ? "sanitizer build"
                                       : "no allocation hook in this binary"));
    }
    if (opts.enforce && opts.replica_sweep && !replica_applicable) {
      gate_skips["replica"] = Value(
          std::string(kSanitized ? "sanitizer build" : "single-core machine"));
    }
    if (!gate_skips.empty()) {
      root["gate_skips"] = Value(std::move(gate_skips));
    }
    root["pass"] = Value(pass);
    std::ofstream out(opts.json_path);
    if (!out) {
      std::cerr << "cannot write " << opts.json_path << "\n";
      return 1;
    }
    out << server::to_json(Value(std::move(root))) << "\n";
    std::cout << "wrote " << opts.json_path << "\n";
  }

  return pass ? 0 : 1;
}

}  // namespace lce::bench
