#include "bench/serve_bench.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/loadgen.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/emulator.h"
#include "docs/corpus.h"
#include "docs/render.h"
#include "server/json.h"
#include "stack/config.h"

namespace lce::bench {

namespace {

stack::StackConfig bench_config(stack::SerializeMode mode) {
  stack::StackConfig cfg;
  cfg.serialize = mode;
  cfg.validate = true;
  // No metrics layer: its counter mutex is shared contention that would
  // blur the serialized-vs-sharded comparison this bench exists to make.
  cfg.metrics = false;
  return cfg;
}

struct SweepPoint {
  std::string config;
  int concurrency = 0;
  LoadStats stats;
};

Value point_value(const SweepPoint& p, double rate) {
  Value::Map m = p.stats.to_value().as_map();
  m["config"] = Value(p.config);
  m["concurrency"] = Value(static_cast<std::int64_t>(p.concurrency));
  if (rate > 0) m["arrival_rate_ops_s"] = Value(static_cast<std::int64_t>(rate));
  return Value(std::move(m));
}

std::string fmt_speedup(double s) {
  return strf(static_cast<long>(s), ".", static_cast<long>(s * 100) % 100 / 10,
              static_cast<long>(s * 100) % 10, "x");
}

}  // namespace

bool parse_serve_bench_args(int argc, char** argv, ServeBenchOptions& out) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      out.quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      out.json_path = argv[++i];
    } else if (arg == "--no-json") {
      out.json_path.clear();
    } else if (arg == "--ops" && i + 1 < argc) {
      out.ops = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--concurrency" && i + 1 < argc) {
      out.concurrency.clear();
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        out.concurrency.push_back(std::atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (arg == "--rate" && i + 1 < argc) {
      out.open_loop_rate = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      out.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      out.min_speedup = std::atof(argv[++i]);
    } else if (arg == "--no-enforce") {
      out.enforce = false;
    } else {
      std::cerr << "unknown bench flag: " << arg << "\n"
                << "flags: --quick --json FILE --no-json --ops N "
                   "--concurrency a,b,c --rate R --seed N --min-speedup X "
                   "--no-enforce\n";
      return false;
    }
  }
  return true;
}

int run_serve_bench(const ServeBenchOptions& opts) {
  std::vector<int> sweep = opts.concurrency;
  if (sweep.empty()) {
    sweep = opts.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  }
  std::size_t ops = opts.ops != 0 ? opts.ops : (opts.quick ? 3000 : 20000);
  int hw = ThreadPool::hardware_workers();

  std::cout << "=== Serve-path throughput: serialized vs sharded invoke ===\n"
            << "  workload: " << ops << " ops/run, 10% create / 20% mutate / "
               "70% describe, hardware workers: " << hw << "\n\n";

  // One emulator, two stacks over the same interpreter: identical layers
  // except the serialize gate. Each run_load resets the shared store.
  auto emulator = core::LearnedEmulator::from_docs(
      docs::render_corpus(docs::build_aws_catalog()));
  stack::LayerStack serialized =
      stack::build_stack(emulator.backend(), bench_config(stack::SerializeMode::kOn));
  stack::LayerStack sharded =
      stack::build_stack(emulator.backend(), bench_config(stack::SerializeMode::kOff));

  LoadOptions base;
  base.total_ops = ops;
  base.seed = opts.seed;

  std::vector<SweepPoint> closed;
  double best_sharded = 0;
  for (int c : sweep) {
    for (auto* side : {&serialized, &sharded}) {
      LoadOptions lo = base;
      lo.concurrency = c;
      SweepPoint p;
      p.config = side == &serialized ? "serialized" : "sharded";
      p.concurrency = c;
      p.stats = run_load(*side, lo);
      if (side == &sharded && p.stats.throughput_ops_s > best_sharded) {
        best_sharded = p.stats.throughput_ops_s;
      }
      closed.push_back(std::move(p));
    }
  }

  TextTable table({"config", "conc", "ops/s", "p50 us", "p99 us", "errors"});
  for (const auto& p : closed) {
    table.add_row({p.config, strf(p.concurrency),
                   strf(static_cast<long>(p.stats.throughput_ops_s)),
                   strf(static_cast<long>(p.stats.p50_us)),
                   strf(static_cast<long>(p.stats.p99_us)),
                   strf(p.stats.errors)});
  }
  std::cout << table.render() << "\n";

  // Speedups per concurrency point.
  double gate_speedup = 0;
  int gate_conc = 0;
  std::cout << "sharded vs serialized:";
  for (int c : sweep) {
    double ser = 0, sha = 0;
    for (const auto& p : closed) {
      if (p.concurrency != c) continue;
      (p.config == "serialized" ? ser : sha) = p.stats.throughput_ops_s;
    }
    double speedup = ser > 0 ? sha / ser : 0;
    std::cout << "  c" << c << "=" << fmt_speedup(speedup);
    if (c >= 4 && c >= gate_conc) {
      gate_conc = c;
      gate_speedup = speedup;
    }
  }
  std::cout << "\n";

  // Open-loop latency at a rate the serialized path struggles with.
  double rate = opts.open_loop_rate > 0 ? opts.open_loop_rate : best_sharded * 0.6;
  int open_conc = sweep.back();
  std::vector<SweepPoint> open;
  if (rate > 0) {
    std::cout << "\nopen loop: " << static_cast<long>(rate)
              << " ops/s scheduled arrivals, concurrency " << open_conc
              << " (latency from scheduled arrival):\n";
    for (auto* side : {&serialized, &sharded}) {
      LoadOptions lo = base;
      lo.concurrency = open_conc;
      lo.arrival_rate = rate;
      SweepPoint p;
      p.config = side == &serialized ? "serialized" : "sharded";
      p.concurrency = open_conc;
      p.stats = run_load(*side, lo);
      std::cout << "  " << p.config << ": p50 "
                << static_cast<long>(p.stats.p50_us) << " us, p99 "
                << static_cast<long>(p.stats.p99_us) << " us, max "
                << static_cast<long>(p.stats.max_us / 1000) << " ms\n";
      open.push_back(std::move(p));
    }
  }

  bool gate_applicable = opts.enforce && gate_conc >= 4 && hw >= 2;
  bool pass = !gate_applicable || gate_speedup >= opts.min_speedup;
  if (gate_applicable) {
    std::cout << "\nsharded >= " << fmt_speedup(opts.min_speedup)
              << " serialized at c" << gate_conc << ": "
              << (pass ? "PASS" : "FAIL") << " (" << fmt_speedup(gate_speedup)
              << ")\n";
  } else if (opts.enforce) {
    std::cout << "\nspeedup gate skipped ("
              << (hw < 2 ? "single-core machine" : "no sweep point >= 4")
              << ")\n";
  }

  if (!opts.json_path.empty()) {
    Value::Map root;
    root["bench"] = Value(std::string("serve_throughput"));
    root["quick"] = Value(opts.quick);
    root["hardware_workers"] = Value(static_cast<std::int64_t>(hw));
    root["ops_per_run"] = Value(static_cast<std::int64_t>(ops));
    Value::List closed_rows;
    for (const auto& p : closed) closed_rows.push_back(point_value(p, 0));
    root["closed_loop"] = Value(std::move(closed_rows));
    Value::List open_rows;
    for (const auto& p : open) open_rows.push_back(point_value(p, rate));
    root["open_loop"] = Value(std::move(open_rows));
    root["speedup_at_gate"] = Value(fmt_speedup(gate_speedup));
    root["gate_concurrency"] = Value(static_cast<std::int64_t>(gate_conc));
    root["pass"] = Value(pass);
    std::ofstream out(opts.json_path);
    if (!out) {
      std::cerr << "cannot write " << opts.json_path << "\n";
      return 1;
    }
    out << server::to_json(Value(std::move(root))) << "\n";
    std::cout << "wrote " << opts.json_path << "\n";
  }

  return pass ? 0 : 1;
}

}  // namespace lce::bench
