#include "bench/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "common/strings.h"
#include "server/http.h"
#include "server/service.h"

namespace lce::bench {

namespace {

using Clock = std::chrono::steady_clock;

/// Unique-enough CIDR for the n-th created vpc: 65536 distinct /24 blocks,
/// wrapping after that (duplicates are legal for top-level vpcs).
std::string cidr_for(std::uint64_t n) {
  return strf("10.", (n >> 8) & 0xff, ".", n & 0xff, ".0/24");
}

struct WorkerResult {
  std::vector<double> latencies_us;
  std::size_t ops = 0;
  std::size_t errors = 0;
};

}  // namespace

double percentile(std::vector<double>& sample, double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  double rank = (p / 100.0) * static_cast<double>(sample.size());
  std::size_t idx = rank <= 1 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

Value LoadStats::to_value() const {
  Value::Map m;
  m["ops"] = Value(static_cast<std::int64_t>(ops));
  m["errors"] = Value(static_cast<std::int64_t>(errors));
  m["wall_ms"] = Value(static_cast<std::int64_t>(wall_ms));
  m["throughput_ops_s"] = Value(static_cast<std::int64_t>(throughput_ops_s));
  m["p50_us"] = Value(static_cast<std::int64_t>(p50_us));
  m["p90_us"] = Value(static_cast<std::int64_t>(p90_us));
  m["p99_us"] = Value(static_cast<std::int64_t>(p99_us));
  m["max_us"] = Value(static_cast<std::int64_t>(max_us));
  return Value(std::move(m));
}

LoadStats run_load(CloudBackend& backend, const LoadOptions& opts) {
  backend.reset();

  // Prepopulate serially so every worker starts with live targets.
  std::vector<Value> seeded_ids;
  seeded_ids.reserve(opts.prepopulate);
  for (std::size_t i = 0; i < opts.prepopulate; ++i) {
    ApiResponse r =
        backend.invoke({"CreateVpc", {{"cidr_block", Value(cidr_for(i))}}, ""});
    if (r.ok && r.data.get("id") != nullptr) seeded_ids.push_back(*r.data.get("id"));
  }

  if (opts.after_prepopulate) opts.after_prepopulate();

  int workers = std::max(1, opts.concurrency);
  std::vector<WorkerResult> results(static_cast<std::size_t>(workers));
  // Creates draw globally unique CIDR indices; ops are claimed from one
  // global ticket so open-loop scheduling stays a single arrival stream.
  std::atomic<std::uint64_t> cidr_counter{opts.prepopulate};
  std::atomic<std::size_t> next_op{0};

  auto t0 = Clock::now();
  auto worker = [&](int w) {
    WorkerResult& out = results[static_cast<std::size_t>(w)];
    Rng rng(opts.seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(w + 1)));
    std::vector<Value> own_ids;  // resources this worker created
    // HTTP mode: one client per worker. With keep-alive that is one TCP
    // connection for the worker's whole op stream; without it the client
    // is told to close after every response, so each op pays a handshake.
    std::unique_ptr<server::HttpClient> client;
    if (opts.http_port != 0) {
      client = std::make_unique<server::HttpClient>(opts.http_port);
      // Dial before claiming any op: connection setup is not part of the
      // measured workload, and every worker holds its own live connection
      // even if a sibling drains the shared op ticket first (the serve
      // path is fast enough on one core for that to actually happen).
      if (opts.http_keep_alive) client->preconnect();
    }
    auto invoke = [&](const ApiRequest& req) -> ApiResponse {
      if (client == nullptr) return backend.invoke(req);
      return server::invoke_over_client(*client, req.api, req.args,
                                        opts.http_keep_alive);
    };
    auto pick_target = [&]() -> const Value* {
      std::uint64_t n = seeded_ids.size() + own_ids.size();
      if (n == 0) return nullptr;
      std::uint64_t k = rng.uniform(n);
      return k < seeded_ids.size() ? &seeded_ids[k]
                                   : &own_ids[k - seeded_ids.size()];
    };
    auto make_req = [&](std::size_t k) -> ApiRequest {
      int roll = static_cast<int>(rng.uniform(100));
      const bool wants_describe =
          roll >= opts.mix.create_pct + opts.mix.mutate_pct;
      const Value* target = nullptr;
      if (roll >= opts.mix.create_pct) {
        if (wants_describe && opts.describe_targets_seeded) {
          target = seeded_ids.empty()
                       ? nullptr
                       : &seeded_ids[rng.uniform(seeded_ids.size())];
        } else {
          target = pick_target();
        }
      }
      if (roll < opts.mix.create_pct || target == nullptr) {
        std::uint64_t n = cidr_counter.fetch_add(1, std::memory_order_relaxed);
        return {"CreateVpc", {{"cidr_block", Value(cidr_for(n))}}, ""};
      }
      if (roll < opts.mix.create_pct + opts.mix.mutate_pct) {
        return {"ModifyVpcDescription",
                {{"id", *target}, {"value", Value(strf("w", w, "-op", k))}},
                ""};
      }
      return {"DescribeVpc", {{"id", *target}}, ""};
    };
    auto account = [&](const ApiRequest& req, const ApiResponse& resp,
                       Clock::time_point measured_from, Clock::time_point now) {
      if (resp.ok) {
        if (req.api == "CreateVpc" && resp.data.get("id") != nullptr) {
          own_ids.push_back(*resp.data.get("id"));
        }
      } else {
        ++out.errors;
      }
      ++out.ops;
      out.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(now - measured_from).count());
    };

    // Pipelining only makes sense when a persistent connection carries a
    // closed-loop stream; open loop keeps its own per-op schedule.
    std::size_t depth = 1;
    if (client != nullptr && opts.http_keep_alive && opts.arrival_rate <= 0 &&
        opts.http_pipeline > 1) {
      depth = static_cast<std::size_t>(opts.http_pipeline);
    }

    if (depth > 1) {
      std::vector<ApiRequest> batch;
      batch.reserve(depth);
      for (;;) {
        batch.clear();
        while (batch.size() < depth) {
          std::size_t k = next_op.fetch_add(1, std::memory_order_relaxed);
          if (k >= opts.total_ops) break;
          batch.push_back(make_req(k));
        }
        if (batch.empty()) break;
        auto batch_start = Clock::now();
        std::size_t sent = 0;
        for (const auto& req : batch) {
          if (!server::send_invoke(*client, req.api, req.args,
                                   opts.http_keep_alive)) {
            break;
          }
          ++sent;
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
          ApiResponse resp =
              i < sent ? server::read_invoke_response(*client)
                       : ApiResponse::failure("TransportError", "send failed");
          account(batch[i], resp, batch_start, Clock::now());
        }
      }
      return;
    }

    for (;;) {
      std::size_t k = next_op.fetch_add(1, std::memory_order_relaxed);
      if (k >= opts.total_ops) break;
      Clock::time_point measured_from;
      if (opts.arrival_rate > 0) {
        // Open loop: op k is scheduled at t0 + k/rate; latency runs from
        // the scheduled arrival, so time spent queued behind a slow
        // backend counts against the backend.
        auto offset = std::chrono::duration<double>(
            static_cast<double>(k) / opts.arrival_rate);
        measured_from =
            t0 + std::chrono::duration_cast<Clock::duration>(offset);
        std::this_thread::sleep_until(measured_from);
      } else {
        measured_from = Clock::now();
      }

      ApiRequest req = make_req(k);
      ApiResponse resp = invoke(req);
      auto now = Clock::now();
      account(req, resp, measured_from, now);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();
  double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  LoadStats stats;
  std::vector<double> all;
  for (const auto& r : results) {
    stats.ops += r.ops;
    stats.errors += r.errors;
    all.insert(all.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  stats.wall_ms = wall_ms;
  stats.throughput_ops_s =
      wall_ms > 0 ? static_cast<double>(stats.ops) * 1000.0 / wall_ms : 0;
  stats.p50_us = percentile(all, 50);
  stats.p90_us = percentile(all, 90);
  stats.p99_us = percentile(all, 99);
  stats.max_us = all.empty() ? 0 : *std::max_element(all.begin(), all.end());
  return stats;
}

}  // namespace lce::bench
